"""Tests for the CF lock structure (paper §3.3.1)."""

import pytest

from repro.cf import LockMode, LockStructure, StructureFailedError


@pytest.fixture
def struct():
    return LockStructure("LOCK1", n_entries=1 << 16)


@pytest.fixture
def conns(struct):
    return [struct.connect(f"SYS{i:02d}") for i in range(3)]


def test_requires_entries():
    with pytest.raises(ValueError):
        LockStructure("BAD", n_entries=0)


def test_exclusive_grant_then_conflict(struct, conns):
    a, b, _ = conns
    r1 = struct.request(a, "res1", LockMode.EXCL)
    assert r1.granted
    r2 = struct.request(b, "res1", LockMode.EXCL)
    assert not r2.granted
    assert r2.holders == (a.conn_id,)
    assert r2.real_conflict  # same name: real contention


def test_shared_locks_compatible_across_systems(struct, conns):
    a, b, c = conns
    assert struct.request(a, "res1", LockMode.SHR).granted
    assert struct.request(b, "res1", LockMode.SHR).granted
    assert struct.request(c, "res1", LockMode.SHR).granted


def test_shr_blocks_excl(struct, conns):
    a, b, _ = conns
    assert struct.request(a, "res1", LockMode.SHR).granted
    r = struct.request(b, "res1", LockMode.EXCL)
    assert not r.granted and r.real_conflict


def test_excl_blocks_shr(struct, conns):
    a, b, _ = conns
    assert struct.request(a, "res1", LockMode.EXCL).granted
    r = struct.request(b, "res1", LockMode.SHR)
    assert not r.granted and r.real_conflict


def test_same_connector_reentrant(struct, conns):
    """One system's lock manager holds many locks under one hash class;
    its own interest never conflicts with itself at the CF level."""
    a = conns[0]
    assert struct.request(a, "res1", LockMode.EXCL).granted
    assert struct.request(a, "res1", LockMode.EXCL).granted
    assert struct.request(a, "res1", LockMode.SHR).granted


def test_release_restores_grantability(struct, conns):
    a, b, _ = conns
    struct.request(a, "res1", LockMode.EXCL)
    struct.release(a, "res1", LockMode.EXCL)
    assert struct.request(b, "res1", LockMode.EXCL).granted


def test_release_is_counted(struct, conns):
    """Two grants to the same connector need two releases."""
    a, b, _ = conns
    struct.request(a, "res1", LockMode.EXCL)
    struct.request(a, "res1", LockMode.EXCL)
    struct.release(a, "res1", LockMode.EXCL)
    assert not struct.request(b, "res1", LockMode.EXCL).granted
    struct.release(a, "res1", LockMode.EXCL)
    assert struct.request(b, "res1", LockMode.EXCL).granted


def test_release_unheld_is_noop(struct, conns):
    struct.release(conns[0], "never-held", LockMode.EXCL)  # must not raise


def test_false_contention_on_hash_collision():
    """With a single-entry table every pair of names collides: contention
    on *different* names must be classified as false."""
    st = LockStructure("TINY", n_entries=1)
    a = st.connect("SYS00")
    b = st.connect("SYS01")
    assert st.request(a, "resA", LockMode.EXCL).granted
    r = st.request(b, "resB", LockMode.EXCL)
    assert not r.granted
    assert not r.real_conflict  # different names: false contention
    assert st.false_contention == 1
    assert st.real_contention == 0


def test_false_contention_rate_decreases_with_table_size(conns):
    """Paper: efficient hashing keeps false contention to a minimum —
    bigger tables must produce (weakly) fewer collisions."""
    rates = []
    for bits in (4, 8, 14):
        st = LockStructure("S", n_entries=1 << bits)
        a = st.connect("A")
        b = st.connect("B")
        for i in range(300):
            st.request(a, f"a{i}", LockMode.EXCL)
        for i in range(300):
            st.request(b, f"b{i}", LockMode.EXCL)
        rates.append(st.false_contention_rate())
    assert rates[0] > rates[2]
    assert rates[2] < 0.05


def test_interest_of_lists_held_units(struct, conns):
    a = conns[0]
    struct.request(a, "r1", LockMode.EXCL)
    struct.request(a, "r2", LockMode.SHR)
    struct.request(a, "r2", LockMode.SHR)
    interest = struct.interest_of(a)
    assert interest.count(("r1", LockMode.EXCL)) == 1
    assert interest.count(("r2", LockMode.SHR)) == 2


def test_record_data_survives_disconnect(struct, conns):
    """Persistent lock info must survive connector death (fast lock
    recovery, paper §3.3.1)."""
    a, b, _ = conns
    struct.request(a, "res1", LockMode.EXCL)
    struct.write_record(a, "res1", {"txn": 42})
    cid = a.conn_id
    struct.disconnect(a)  # system died
    # interest is gone but the record remains for the recovering peer
    assert struct.request(b, "res1", LockMode.EXCL).granted
    assert struct.records_of(cid) == {"res1": {"txn": 42}}
    struct.purge_records(cid)
    assert struct.records_of(cid) == {}


def test_delete_record(struct, conns):
    a = conns[0]
    struct.write_record(a, "r", {"x": 1})
    struct.delete_record(a, "r")
    assert struct.records_of(a.conn_id) == {}


def test_disconnect_purges_interest(struct, conns):
    a, b, _ = conns
    struct.request(a, "res1", LockMode.EXCL)
    struct.disconnect(a)
    assert struct.request(b, "res1", LockMode.EXCL).granted
    assert struct.occupied_entries == 1


def test_empty_entries_are_garbage_collected(struct, conns):
    a = conns[0]
    struct.request(a, "res1", LockMode.EXCL)
    assert struct.occupied_entries == 1
    struct.release(a, "res1", LockMode.EXCL)
    assert struct.occupied_entries == 0


def test_structure_failure_raises(struct, conns):
    struct.on_facility_failed()
    with pytest.raises(StructureFailedError):
        struct.request(conns[0], "r", LockMode.SHR)


def test_loss_callbacks_fire_on_facility_failure():
    st = LockStructure("L", n_entries=16)
    called = []
    st.connect("SYS00", on_loss=lambda: called.append("a"))
    st.connect("SYS01", on_loss=lambda: called.append("b"))
    st.on_facility_failed()
    assert sorted(called) == ["a", "b"]


def test_entry_of_is_deterministic(struct):
    assert struct.entry_of("page:123") == struct.entry_of("page:123")
    assert struct.entry_of(("db", 5)) == struct.entry_of(("db", 5))
