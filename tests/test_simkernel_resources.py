"""Unit tests for Resource, Store and Container primitives."""

import pytest

from repro.simkernel import Interrupt, Resource, Simulator, Store, Container


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    granted = []

    def user(tag):
        req = res.request()
        yield req
        granted.append((tag, sim.now))
        yield sim.timeout(10)
        res.release(req)

    for t in "abc":
        sim.process(user(t))
    sim.run()
    assert granted == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(hold)

    for t in "abcd":
        sim.process(user(t, 1))
    sim.run()
    assert order == list("abcd")


def test_resource_priority_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(5)

    def user(tag, prio, delay):
        yield sim.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)

    sim.process(holder())
    sim.process(user("low", 5, 1))
    sim.process(user("high", 1, 2))  # arrives later but jumps the queue
    sim.run()
    assert order == ["high", "low"]


def test_resource_capacity_never_exceeded():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    peak = [0]

    def user(delay):
        yield sim.timeout(delay)
        with res.request() as req:
            yield req
            peak[0] = max(peak[0], res.in_use)
            assert res.in_use <= 3
            yield sim.timeout(2)

    for i in range(20):
        sim.process(user(i % 4))
    sim.run()
    assert peak[0] == 3


def test_context_manager_releases_on_exit():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    times = []

    def user(tag):
        with res.request() as req:
            yield req
            times.append((tag, sim.now))
            yield sim.timeout(1)

    sim.process(user("x"))
    sim.process(user("y"))
    sim.run()
    assert times == [("x", 0), ("y", 1)]


def test_release_is_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # second release must be harmless

    sim.process(user())
    sim.run()
    assert res.in_use == 0


def test_cancel_waiting_request_skips_grant():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(10)

    def impatient():
        yield sim.timeout(1)
        req = res.request()
        try:
            yield req
        except Interrupt:
            req.cancel()
            order.append("gave-up")

    def patient():
        yield sim.timeout(2)
        with res.request() as req:
            yield req
            order.append(("patient", sim.now))

    sim.process(holder())
    p = sim.process(impatient())
    sim.process(patient())

    def killer():
        yield sim.timeout(5)
        p.interrupt()

    sim.process(killer())
    sim.run()
    assert order == ["gave-up", ("patient", 10)]


def test_resource_utilization_tracking():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield sim.timeout(5)

    sim.process(user())
    sim.run(until=10)
    assert res.utilization() == pytest.approx(0.5)


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    store.put("msg")
    sim.process(consumer())
    sim.run()
    assert got == ["msg"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(3)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(3, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    for x in (1, 2, 3):
        store.put(x)
    sim.process(consumer())
    sim.run()
    assert got == [1, 2, 3]


def test_store_multiple_waiters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))

    def producer():
        yield sim.timeout(1)
        store.put("a")
        store.put("b")

    sim.process(producer())
    sim.run()
    assert got == [("first", "a"), ("second", "b")]


def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, init=1)
    got = []

    def consumer():
        yield tank.get(3)
        got.append(sim.now)

    def producer():
        yield sim.timeout(2)
        tank.put(2)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [2]
    assert tank.level == 0


def test_container_rejects_bad_init():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, init=-1)
    with pytest.raises(ValueError):
        Container(sim, init=5, capacity=2)


def test_container_capacity_clamps_put():
    sim = Simulator()
    tank = Container(sim, init=0, capacity=10)
    tank.put(25)
    assert tank.level == 10


# ------------------------------------------------------- scalar claims ----
def test_claim_holds_capacity_without_events():
    """claim() occupies a unit with no Request and no grant event."""
    sim = Simulator()
    res = Resource(sim, capacity=2)
    assert res.claim() is True
    assert res.claim() is True
    assert res.in_use == 2
    assert res.claim() is False  # full
    assert sim.events_processed == 0  # truly event-free
    res.unclaim()
    assert res.in_use == 1
    assert res.claim() is True


def test_claim_defers_to_queued_waiters():
    """A queued waiter keeps FIFO priority over opportunistic claims."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    got = []

    def waiter():
        req = res.request()
        yield req
        got.append(sim.now)
        req.cancel()

    sim.process(waiter(), name="w")
    sim.run(until=0.1)
    assert res.claim() is False  # busy AND a waiter queued
    first.cancel()
    sim.run(until=0.2)
    assert got and res.claim() is True


def test_unclaim_dispatches_waiters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    assert res.claim() is True
    got = []

    def waiter():
        req = res.request()
        yield req
        got.append(sim.now)
        req.cancel()

    sim.process(waiter(), name="w")
    sim.run(until=0.1)
    assert got == []  # still held by the claim
    res.unclaim()
    sim.run(until=0.2)
    assert got == [0.1]


def test_claim_and_request_account_identically():
    """Busy-area statistics are identical for a scalar hold and for the
    equivalent Request/release pair."""

    def occupy(use_claim):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            if use_claim:
                assert res.claim()
                yield sim.timeout(3.0)
                res.unclaim()
            else:
                req = res.request()
                yield req
                yield sim.timeout(3.0)
                req.cancel()
            yield sim.timeout(1.0)

        sim.process(holder(), name="h")
        sim.run()
        return res.utilization(), res.in_use

    assert occupy(True) == occupy(False)
