"""Tests for VSAM record-level sharing (paper §5.2's in-development
exploiter)."""

import pytest

from repro.subsystems.vsam import VsamCatalog, VsamDataset, VsamRls


def make_rls(mp, index=0, granularity="record", catalog=None):
    from repro.hardware import DasdDevice
    from repro.subsystems import LogManager

    if catalog is None:
        catalog = VsamCatalog(first_page=1_000_000)
        catalog.define("ACCTS", max_cis=500, records_per_ci=10)
    import numpy as np

    dev = DasdDevice(mp.sim, mp.config.dasd, np.random.default_rng(index),
                     f"vlog{index}")
    log = LogManager(mp.sim, mp.nodes[index], mp.config.db, dev)
    rls = VsamRls(mp.sim, mp.nodes[index], catalog,
                  mp.lockmgrs[index], mp.buffermgrs[index], log,
                  lock_granularity=granularity)
    return rls, catalog


# -------------------------------------------------------------- dataset ----
def test_dataset_placement_and_splits():
    ds = VsamDataset("X", base_page=0, max_cis=100, records_per_ci=4)
    for k in range(4):
        ci, split = ds.place_new_record(k)
        assert not split
    assert ds.n_cis == 1
    ci, split = ds.place_new_record(4)  # fifth record: CI splits
    assert split
    assert ds.n_cis == 2
    assert ds.ci_splits == 1
    # every record still findable, membership consistent
    for k in range(5):
        ci = ds.ci_for(k)
        assert k in ds._ci_members[ci]


def test_dataset_split_preserves_key_clustering():
    ds = VsamDataset("X", base_page=0, max_cis=100, records_per_ci=4)
    for k in (10, 20, 30, 40, 25):  # 25 inserts into a full CI
        ds.place_new_record(k)
    # after the split the upper keys live together
    ci_hi = ds.ci_for(40)
    ci_lo = ds.ci_for(10)
    assert ci_hi != ci_lo
    assert ds.ci_for(30) == ci_hi


def test_dataset_range_and_remove():
    ds = VsamDataset("X", base_page=0, max_cis=10, records_per_ci=10)
    for k in (5, 1, 9, 3):
        ds.place_new_record(k)
    assert ds.keys_in_range(2, 8) == [3, 5]
    ds.remove_record(3)
    assert ds.keys_in_range(0, 10) == [1, 5, 9]
    assert ds.n_records == 3


def test_dataset_duplicate_key_rejected():
    ds = VsamDataset("X", base_page=0, max_cis=10)
    ds.place_new_record(1)
    with pytest.raises(KeyError):
        ds.place_new_record(1)


def test_catalog_allocates_disjoint_page_ranges():
    cat = VsamCatalog(first_page=100)
    a = cat.define("A", max_cis=50)
    b = cat.define("B", max_cis=50)
    assert a.base_page == 100
    assert b.base_page == 150
    with pytest.raises(ValueError):
        cat.define("A", max_cis=10)


# ------------------------------------------------------------------ RLS ----
def test_rls_crud_cycle(miniplex):
    mp = miniplex
    rls, cat = make_rls(mp)
    results = []

    def work():
        r = yield from rls.get(1, "ACCTS", 42)
        results.append(("miss", r))
        yield from rls.put(1, "ACCTS", 42)
        yield from rls.commit(1)
        r = yield from rls.get(2, "ACCTS", 42)
        results.append(("hit", r))
        yield from rls.put(2, "ACCTS", 42)  # update
        yield from rls.commit(2)
        ok = yield from rls.erase(3, "ACCTS", 42)
        results.append(("erased", ok))
        yield from rls.commit(3)
        r = yield from rls.get(4, "ACCTS", 42)
        results.append(("gone", r))
        yield from rls.commit(4)

    mp.run(work())
    assert results == [("miss", None), ("hit", 1), ("erased", True),
                       ("gone", None)]
    assert rls.commits == 4


def test_rls_commit_releases_locks(miniplex):
    mp = miniplex
    rls, cat = make_rls(mp)

    def work():
        yield from rls.put(1, "ACCTS", 7)
        owner = (mp.nodes[0].name, "vsam", 1)
        assert rls.locks.locks_of(owner)
        yield from rls.commit(1)
        assert rls.locks.locks_of(owner) == {}

    mp.run(work())
    mp.space.check_invariant()
    assert not mp.space._resources


def test_rls_record_locks_allow_same_ci_concurrency(miniplex):
    """Two systems updating different records in one CI proceed
    concurrently under record-level locking."""
    mp = miniplex
    cat = VsamCatalog(first_page=1_000_000)
    cat.define("ACCTS", max_cis=100, records_per_ci=10)
    rls0, _ = make_rls(mp, 0, catalog=cat)
    rls1, _ = make_rls(mp, 1, catalog=cat)
    order = []

    def seed():
        yield from rls0.put(0, "ACCTS", 1)
        yield from rls0.put(0, "ACCTS", 2)
        yield from rls0.commit(0)

    def writer(rls, txn, key, hold):
        yield from rls.put(txn, "ACCTS", key)
        order.append((f"got-{key}", mp.sim.now))
        yield mp.sim.timeout(hold)
        yield from rls.commit(txn)

    mp.run(seed(), until=1.0)
    mp.run(writer(rls0, 10, 1, 0.05), writer(rls1, 11, 2, 0.05), until=2.0)
    # both acquired without waiting for each other's commit
    t1 = next(t for tag, t in order if tag == "got-1")
    t2 = next(t for tag, t in order if tag == "got-2")
    assert abs(t1 - t2) < 0.04  # concurrent, not serialized


def test_rls_ci_locks_serialize_same_ci(miniplex):
    """The pre-RLS granularity: CI-level locks serialize those updates."""
    mp = miniplex
    cat = VsamCatalog(first_page=1_000_000)
    cat.define("ACCTS", max_cis=100, records_per_ci=10)
    rls0, _ = make_rls(mp, 0, granularity="ci", catalog=cat)
    rls1, _ = make_rls(mp, 1, granularity="ci", catalog=cat)
    order = []

    def seed():
        yield from rls0.put(0, "ACCTS", 1)
        yield from rls0.put(0, "ACCTS", 2)
        yield from rls0.commit(0)

    def writer(rls, txn, key, hold):
        yield from rls.put(txn, "ACCTS", key)
        order.append((f"got-{key}", mp.sim.now))
        yield mp.sim.timeout(hold)
        yield from rls.commit(txn)

    mp.run(seed(), until=1.0)
    mp.run(writer(rls0, 10, 1, 0.05), writer(rls1, 11, 2, 0.05), until=2.0)
    t1 = next(t for tag, t in order if tag == "got-1")
    t2 = next(t for tag, t in order if tag == "got-2")
    assert abs(t1 - t2) >= 0.05  # second waited for the first's commit


def test_rls_updates_are_coherent_across_systems(miniplex):
    """A record updated on one system is seen current on the other (the
    CI buffer cross-invalidation path)."""
    mp = miniplex
    cat = VsamCatalog(first_page=1_000_000)
    cat.define("ACCTS", max_cis=100, records_per_ci=10)
    rls0, _ = make_rls(mp, 0, catalog=cat)
    rls1, _ = make_rls(mp, 1, catalog=cat)
    versions = []

    def scenario():
        yield from rls0.put(1, "ACCTS", 5)
        yield from rls0.commit(1)
        v = yield from rls1.get(2, "ACCTS", 5)
        versions.append(v)
        yield from rls1.commit(2)
        yield from rls0.put(3, "ACCTS", 5)
        yield from rls0.commit(3)
        v = yield from rls1.get(4, "ACCTS", 5)
        versions.append(v)
        yield from rls1.commit(4)

    mp.run(scenario(), until=5.0)
    assert versions == [1, 2]


def test_rls_range_read(miniplex):
    mp = miniplex
    rls, cat = make_rls(mp)
    got = []

    def work():
        for k in (3, 1, 7, 5):
            yield from rls.put(1, "ACCTS", k)
        yield from rls.commit(1)
        rows = yield from rls.read_range(2, "ACCTS", 2, 6)
        got.append(rows)
        yield from rls.commit(2)

    mp.run(work())
    assert got == [[(3, 1), (5, 1)]]


def test_rls_backout_releases_without_commit(miniplex):
    mp = miniplex
    rls, cat = make_rls(mp)

    def work():
        yield from rls.put(1, "ACCTS", 9)
        yield from rls.backout(1)

    mp.run(work())
    assert not mp.space._resources
    assert rls.commits == 0


def test_rls_insert_split_touches_sibling(miniplex):
    mp = miniplex
    cat = VsamCatalog(first_page=1_000_000)
    ds = cat.define("ACCTS", max_cis=100, records_per_ci=4)
    rls, _ = make_rls(mp, catalog=cat)

    def work():
        for k in range(5):  # fifth insert splits
            yield from rls.put(1, "ACCTS", k)
        yield from rls.commit(1)

    mp.run(work())
    assert ds.ci_splits == 1
    assert ds.n_cis == 2
