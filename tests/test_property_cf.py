"""Property-based tests (hypothesis) on the CF structures' invariants."""

from hypothesis import given, settings, strategies as st

from repro.cf import (
    CacheStructure,
    ListEntry,
    ListStructure,
    LockMode,
    LockStructure,
)

# ---------------------------------------------------------------- lock ----

lock_ops = st.lists(
    st.tuples(
        st.sampled_from(["request", "release"]),
        st.integers(0, 3),                      # connector
        st.integers(0, 5),                      # resource name id
        st.sampled_from([LockMode.SHR, LockMode.EXCL]),
    ),
    max_size=60,
)


@given(lock_ops)
@settings(max_examples=120, deadline=None)
def test_lock_table_never_grants_incompatible(ops):
    """No interleaving of requests/releases produces two different
    connectors holding the same *hash class* incompatibly."""
    st_ = LockStructure("P", n_entries=8)  # tiny: collisions guaranteed
    conns = [st_.connect(f"SYS{i:02d}") for i in range(4)]
    granted = {}  # (conn_id, name, mode) -> count

    for op, c, n, mode in ops:
        name = f"res{n}"
        if op == "request":
            r = st_.request(conns[c], name, mode)
            if r.granted:
                key = (c, name, mode)
                granted[key] = granted.get(key, 0) + 1
        else:
            key = (c, name, mode)
            if granted.get(key):
                st_.release(conns[c], name, mode)
                granted[key] -= 1

        # invariant: per hash class, EXCL interest from one connector
        # excludes any interest from another
        for idx, entry in st_._table.items():
            excl_holders = {
                cid for cid, names in entry.holds.items()
                if any(cnt[1] > 0 for cnt in names.values())
            }
            if excl_holders:
                assert len(entry.holds) == 1, (
                    f"entry {idx}: EXCL {excl_holders} with "
                    f"{set(entry.holds)}"
                )


@given(lock_ops)
@settings(max_examples=60, deadline=None)
def test_lock_table_counts_never_negative(ops):
    st_ = LockStructure("P", n_entries=4)
    conns = [st_.connect(f"SYS{i:02d}") for i in range(4)]
    for op, c, n, mode in ops:
        name = f"res{n}"
        if op == "request":
            st_.request(conns[c], name, mode)
        else:
            st_.release(conns[c], name, mode)
        for entry in st_._table.values():
            for names in entry.holds.values():
                for shr, excl in names.values():
                    assert shr >= 0 and excl >= 0


# ---------------------------------------------------------------- cache ----

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "unregister"]),
        st.integers(0, 2),   # connector
        st.integers(0, 4),   # page
    ),
    max_size=60,
)


@given(cache_ops)
@settings(max_examples=120, deadline=None)
def test_cache_coherency_invariant(ops):
    """A valid local bit always refers to the latest version — under any
    interleaving of reads, writes, and unregisters."""
    cache = CacheStructure("P", data_elements=4, directory_entries=16)
    conns = [cache.connect(f"SYS{i:02d}") for i in range(3)]
    for op, c, p in ops:
        page = f"pg{p}"
        if op == "read":
            cache.register_and_read(conns[c], page, bit_index=p)
        elif op == "write":
            try:
                cache.write_and_invalidate(conns[c], page)
            except Exception:
                # cache full of changed data is a legal outcome here
                continue
        else:
            cache.unregister(conns[c], page)
        cache.check_coherency()


@given(cache_ops)
@settings(max_examples=60, deadline=None)
def test_cache_versions_monotonic(ops):
    cache = CacheStructure("P", data_elements=8, directory_entries=32)
    conns = [cache.connect(f"SYS{i:02d}") for i in range(3)]
    seen = {}
    for op, c, p in ops:
        page = f"pg{p}"
        if op == "write":
            try:
                cache.write_and_invalidate(conns[c], page)
            except Exception:
                continue
        v = cache.version_of(page)
        assert v >= seen.get(page, 0)
        seen[page] = v


# ---------------------------------------------------------------- list ----

list_ops = st.lists(
    st.tuples(
        st.sampled_from(["push_fifo", "push_lifo", "push_keyed", "pop",
                         "move", "delete_head"]),
        st.integers(0, 1),   # connector
        st.integers(0, 2),   # header
        st.integers(0, 9),   # key/data
    ),
    max_size=80,
)


@given(list_ops)
@settings(max_examples=120, deadline=None)
def test_list_entries_conserved(ops):
    """Pushes minus pops/deletes equals the structure population; moves
    conserve entries; keyed lists stay sorted."""
    ls = ListStructure("P", n_headers=3)
    conns = [ls.connect(f"SYS{i:02d}") for i in range(2)]
    pushed = popped = 0
    for op, c, h, k in ops:
        if op.startswith("push"):
            where = op.split("_")[1]
            ls.push(conns[c], h, ListEntry(key=k, data=k), where=where)
            pushed += 1
        elif op == "pop":
            if ls.pop(conns[c], h) is not None:
                popped += 1
        elif op == "move":
            entries = ls.read(h)
            if entries:
                ls.move(conns[c], h, (h + 1) % 3, entries[0].entry_id)
        elif op == "delete_head":
            entries = ls.read(h)
            if entries and ls.delete(conns[c], h, entries[0].entry_id):
                popped += 1
        assert ls.total_entries == pushed - popped
        assert ls.total_entries == sum(ls.length(i) for i in range(3))


@given(st.lists(st.integers(0, 100), max_size=40))
@settings(max_examples=80, deadline=None)
def test_keyed_list_always_sorted(keys):
    ls = ListStructure("P", n_headers=1)
    conn = ls.connect("SYS00")
    for k in keys:
        ls.push(conn, 0, ListEntry(key=k), where="keyed")
        got = [e.key for e in ls.read(0)]
        assert got == sorted(got)
