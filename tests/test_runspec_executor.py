"""Tests for the RunSpec layer and the parallel sweep executor."""

import json
import os
import subprocess
import sys

import pytest

from repro.config import CpuConfig, DatabaseConfig, SysplexConfig
from repro.executor import ResultCache, execute
from repro.metrics import RunResult
from repro.runner import run_oltp
from repro.runspec import SCHEMA_VERSION, RunSpec, canonical_json


def small_cfg(n_systems=2, data_sharing=True, seed=11):
    return SysplexConfig(
        n_systems=n_systems,
        cpu=CpuConfig(n_cpus=1),
        data_sharing=data_sharing,
        n_cfs=1 if data_sharing else 0,
        db=DatabaseConfig(n_pages=20_000, buffer_pages=4_000),
        seed=seed,
    )


def small_spec(**overrides):
    kw = dict(config=small_cfg(), duration=0.25, warmup=0.15)
    kw.update(overrides)
    return RunSpec(**kw)


# ---------------------------------------------------------- serialization ----
def test_runspec_round_trips_through_dict():
    spec = small_spec(label="rt", params={"a": 1, "b": [1, 2]})
    again = RunSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.config == spec.config
    assert again.content_hash() == spec.content_hash()


def test_runspec_dict_is_json_serializable():
    spec = small_spec()
    json.loads(canonical_json(spec.to_dict()))


def test_runresult_round_trips_through_dict():
    result = run_oltp(small_cfg(), duration=0.2, warmup=0.1)
    again = RunResult.from_dict(result.to_dict())
    assert again == result


def test_sysplex_config_round_trips_subconfigs():
    cfg = small_cfg()
    again = SysplexConfig.from_dict(cfg.to_dict())
    assert again == cfg
    assert isinstance(again.cpu, CpuConfig)
    assert isinstance(again.db, DatabaseConfig)


# --------------------------------------------------------------- identity ----
def test_content_hash_is_stable_for_equal_specs():
    assert small_spec().content_hash() == small_spec().content_hash()


def test_content_hash_changes_with_any_field():
    base = small_spec()
    assert base.replace(duration=0.3).content_hash() != base.content_hash()
    assert base.replace(tracing=True).content_hash() != base.content_hash()
    other_cfg = small_spec(config=small_cfg(seed=12))
    assert other_cfg.content_hash() != base.content_hash()


def test_content_hash_is_stable_across_processes():
    spec = small_spec(label="xproc", params={"k": 3})
    prog = (
        "from tests.test_runspec_executor import small_spec;"
        "print(small_spec(label='xproc', params={'k': 3}).content_hash())"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + "."
    out = subprocess.run(
        [sys.executable, "-c", prog], capture_output=True, text=True,
        env=env, check=True,
    )
    assert out.stdout.strip() == spec.content_hash()


# -------------------------------------------------------- runner dispatch ----
def test_default_runner_matches_run_oltp():
    direct = run_oltp(small_cfg(), duration=0.25, warmup=0.15)
    via_spec = execute([small_spec()])[0]
    assert via_spec.completed == direct.completed
    assert via_spec.throughput == pytest.approx(direct.throughput)


def test_unknown_runner_is_an_error():
    with pytest.raises((ValueError, ModuleNotFoundError)):
        small_spec(runner="no-such-alias").run()


def probe_runner(spec):
    return {"label": spec.label, "n": spec.params["n"] * 2}


def test_scenario_runner_returns_plain_data():
    spec = RunSpec(runner="tests.test_runspec_executor:probe_runner",
                   label="probe", params={"n": 21})
    assert execute([spec]) == [{"label": "probe", "n": 42}]


# ------------------------------------------------------------ determinism ----
def test_jobs_1_jobs_2_and_cache_hit_are_identical(tmp_path):
    specs = [small_spec(), small_spec(config=small_cfg(seed=12))]
    cache = ResultCache(tmp_path / "rc")

    serial = execute(specs, jobs=1)
    parallel = execute(specs, jobs=2, cache=cache)
    assert cache.misses == 2 and cache.hits == 0
    hits = execute(specs, jobs=1, cache=cache)
    assert cache.hits == 2

    for a, b, c in zip(serial, parallel, hits):
        assert a.to_dict() == b.to_dict() == c.to_dict()
        assert isinstance(a, RunResult)


def test_results_keep_spec_order(tmp_path):
    specs = [
        RunSpec(runner="tests.test_runspec_executor:probe_runner",
                label=f"s{i}", params={"n": i})
        for i in range(5)
    ]
    got = execute(specs, jobs=2, cache=ResultCache(tmp_path / "rc"))
    assert [r["n"] for r in got] == [0, 2, 4, 6, 8]


# ------------------------------------------------------------------ cache ----
def test_cache_files_are_self_describing(tmp_path):
    cache = ResultCache(tmp_path / "rc")
    spec = RunSpec(runner="tests.test_runspec_executor:probe_runner",
                   label="audit", params={"n": 1})
    execute([spec], cache=cache)
    entry = json.loads(cache.path_for(spec).read_text())
    assert entry["schema"] == SCHEMA_VERSION
    assert entry["hash"] == spec.content_hash()
    assert entry["spec"]["label"] == "audit"
    assert entry["payload"]["kind"] == "json"


def test_corrupt_and_stale_cache_entries_read_as_misses(tmp_path):
    cache = ResultCache(tmp_path / "rc")
    spec = RunSpec(runner="tests.test_runspec_executor:probe_runner",
                   params={"n": 1})
    execute([spec], cache=cache)

    cache.path_for(spec).write_text("{not json")
    fresh = ResultCache(tmp_path / "rc")
    assert fresh.get(spec) is None and fresh.misses == 1

    execute([spec], cache=fresh)
    entry = json.loads(cache.path_for(spec).read_text())
    entry["schema"] = SCHEMA_VERSION + 1
    cache.path_for(spec).write_text(json.dumps(entry))
    stale = ResultCache(tmp_path / "rc")
    assert stale.get(spec) is None


def test_on_result_reports_cache_state(tmp_path):
    cache = ResultCache(tmp_path / "rc")
    spec = RunSpec(runner="tests.test_runspec_executor:probe_runner",
                   params={"n": 7})
    seen = []

    def cb(index, s, result, cached, seconds):
        seen.append((index, result["n"], cached))

    execute([spec], cache=cache, on_result=cb)
    execute([spec], cache=cache, on_result=cb)
    assert seen == [(0, 14, False), (0, 14, True)]


# -------------------------------------------------------------------- csv ----
def test_print_rows_archives_csv(tmp_path, capsys):
    from repro.experiments.common import print_rows

    rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": None}]
    path = tmp_path / "out" / "table.csv"
    print_rows("T", rows, ["a", "b"], csv_path=path)
    capsys.readouterr()
    lines = path.read_text().strip().splitlines()
    assert lines == ["a,b", "1,2.5", "3,"]
