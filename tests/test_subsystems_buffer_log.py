"""Tests for the buffer manager (coherency protocol) and the log manager."""

import numpy as np
import pytest

from repro.config import DasdConfig, SysplexConfig
from repro.hardware import DasdDevice
from repro.subsystems import LogManager
from repro.subsystems.buffermgr import CastoutEngine

from conftest import MiniPlex


# ------------------------------------------------------------- buffers ----
def test_first_read_comes_from_dasd(miniplex):
    mp = miniplex
    sources = []

    def work():
        src = yield from mp.buffermgrs[0].get_page(42)
        sources.append(src)

    mp.run(work())
    assert sources == ["dasd"]
    assert mp.buffermgrs[0].dasd_reads == 1


def test_second_read_is_local_hit(miniplex):
    mp = miniplex
    sources = []

    def work():
        yield from mp.buffermgrs[0].get_page(42)
        src = yield from mp.buffermgrs[0].get_page(42)
        sources.append(src)

    mp.run(work())
    assert sources == ["local"]
    assert mp.buffermgrs[0].local_hits == 1


def test_local_hit_costs_no_cf_command(miniplex):
    mp = miniplex
    bm = mp.buffermgrs[0]

    def work():
        yield from bm.get_page(42)
        before = bm.xes.port.sync_ops
        yield from bm.get_page(42)
        assert bm.xes.port.sync_ops == before  # bit test only, no CF trip

    mp.run(work())


def test_peer_update_invalidates_and_refreshes_from_cf(miniplex):
    mp = miniplex
    b0, b1 = mp.buffermgrs
    sources = []

    def work():
        yield from b0.get_page(7)          # SYS00 caches page 7
        yield from b1.get_page(7)          # SYS01 caches page 7
        b1.mark_dirty(7)
        yield from b1.commit_writes([7])   # SYS01 updates -> XI to SYS00
        yield mp.sim.timeout(1e-4)         # let the signal land
        assert b0.is_valid(7) is False     # invalidated, no CPU spent
        src = yield from b0.get_page(7)    # refresh
        sources.append(src)

    mp.run(work())
    assert sources == ["cf"]  # high-speed refresh from CF, not DASD
    assert b0.coherency_misses == 1
    assert b0.cf_refreshes == 1


def test_writer_keeps_its_own_copy_valid(miniplex):
    mp = miniplex
    b1 = mp.buffermgrs[1]

    def work():
        yield from b1.get_page(7)
        b1.mark_dirty(7)
        yield from b1.commit_writes([7])
        assert b1.is_valid(7) is True

    mp.run(work())


def test_write_before_read_raises(miniplex):
    with pytest.raises(KeyError):
        miniplex.buffermgrs[0].mark_dirty(99)


def test_nonsharing_manager_never_touches_cf(miniplex):
    mp = miniplex
    from repro.subsystems import BufferManager

    bm = BufferManager(mp.sim, mp.nodes[0], mp.config.db, mp.farm, xes=None)
    sources = []

    def work():
        s1 = yield from bm.get_page(1)
        s2 = yield from bm.get_page(1)
        sources.extend([s1, s2])

    mp.run(work())
    assert sources == ["dasd", "local"]


def test_lru_steal_reuses_slot_with_name_replacement():
    mp = MiniPlex()
    # tiny pool to force steals
    mp.config.db.buffer_pages = 2
    from repro.subsystems import BufferManager

    bm = BufferManager(mp.sim, mp.nodes[0], mp.config.db, mp.farm,
                       xes=mp.buffermgrs[0].xes)

    def work():
        yield from bm.get_page(1)
        yield from bm.get_page(2)
        yield from bm.get_page(3)  # steals page 1's buffer
        assert not bm.contains(1)
        assert bm.contains(3)
        # the stolen page's registration must be gone: an update to page 1
        # by a peer must NOT invalidate the slot now holding page 3
        cache = bm.cache
        assert not cache.is_registered(bm.xes.connector, 1)
        assert cache.is_registered(bm.xes.connector, 3)

    mp.run(work())


def test_prewarm_loads_and_registers(miniplex):
    mp = miniplex
    bm = mp.buffermgrs[0]
    n = bm.prewarm([10, 11, 12])
    assert n == 3
    assert bm.contains(11)
    assert bm.cache.is_registered(bm.xes.connector, 11)

    def work():
        src = yield from bm.get_page(10)
        assert src == "local"

    mp.run(work())


def test_dirty_pages_listing_and_deferred_flush(miniplex):
    mp = miniplex
    from repro.subsystems import BufferManager

    bm = BufferManager(mp.sim, mp.nodes[0], mp.config.db, mp.farm, xes=None)

    def work():
        yield from bm.get_page(5)
        bm.mark_dirty(5)
        assert bm.dirty_pages() == [5]
        flushed = yield from bm.flush_deferred()
        assert flushed == 1
        assert bm.dirty_pages() == []

    mp.run(work())


def test_castout_engine_drains_changed_blocks(miniplex):
    mp = miniplex
    b0 = mp.buffermgrs[0]
    engine = CastoutEngine(mp.sim, b0.xes, mp.farm, interval=0.01)

    def work():
        yield from b0.get_page(3)
        b0.mark_dirty(3)
        yield from b0.commit_writes([3])

    mp.run(work(), until=1.0)
    cache = b0.cache
    assert engine.pages_cast >= 1
    assert cache.changed_blocks() == []  # drained to DASD
    engine.stop()


# ------------------------------------------------------------------ log ----
def make_log():
    from repro.simkernel import Simulator
    from repro.hardware import SystemNode

    sim = Simulator()
    cfg = SysplexConfig()
    node = SystemNode(sim, cfg, 0)
    rng = np.random.default_rng(3)
    dev = DasdDevice(sim, DasdConfig(service_sigma=1e-9), rng, "log")
    return sim, node, LogManager(sim, node, cfg.db, dev)


def test_log_force_takes_io_time():
    sim, node, log = make_log()
    t = []

    def work():
        log.log_update("t1", 5)
        yield from log.force()
        t.append(sim.now)

    sim.process(work())
    sim.run()
    assert t[0] >= DasdConfig().service_mean * 0.5
    assert log.forces == 1


def test_group_commit_shares_one_io():
    sim, node, log = make_log()
    done = []

    def committer(tag):
        log.log_update(tag, 1)
        yield from log.force()
        done.append((tag, sim.now))

    for tag in ("a", "b", "c"):
        sim.process(committer(tag))
    sim.run()
    assert len(done) == 3
    # three committers, far fewer I/Os than three (a follows the batch)
    assert log.forces <= 2


def test_in_flight_tracking():
    sim, node, log = make_log()
    log.log_update("t1", 5)
    log.log_update("t1", 6)
    log.log_update("t2", 7)
    assert log.crash_snapshot() == {"t1": [5, 6], "t2": [7]}
    log.log_end("t1")
    assert log.crash_snapshot() == {"t2": [7]}
