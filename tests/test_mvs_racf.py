"""Tests for the sysplex-wide RACF profile cache (paper §5.1)."""

import numpy as np

from repro.config import DasdConfig
from repro.hardware import DasdDevice
from repro.mvs.racf import SecurityManager, SecurityProfile



def make_racf(mp, n=2):
    database = {}
    prof = SecurityProfile("PAYROLL.DATA")
    prof.access = {"alice": "UPDATE", "bob": "READ"}
    database["PAYROLL.DATA"] = prof
    dasd = DasdDevice(mp.sim, DasdConfig(), np.random.default_rng(5), "racfdb")
    managers = []
    for i in range(n):
        # each system connects to the shared CACHE structure
        xes = mp.xes.connect(mp.nodes[i], "CACHE")
        managers.append(
            SecurityManager(mp.sim, mp.nodes[i], database, xes, dasd)
        )
    return managers, database


def run_check(mp, mgr, user, profile, level):
    out = []

    def proc():
        r = yield from mgr.check_access(user, profile, level)
        out.append(r)

    mp.run(proc(), until=mp.sim.now + 5)
    return out[0]


def test_access_levels_enforced(miniplex):
    mp = miniplex
    (mgr,), db = make_racf(mp, n=1)
    assert run_check(mp, mgr, "alice", "PAYROLL.DATA", "UPDATE") is True
    assert run_check(mp, mgr, "alice", "PAYROLL.DATA", "ALTER") is False
    assert run_check(mp, mgr, "bob", "PAYROLL.DATA", "READ") is True
    assert run_check(mp, mgr, "bob", "PAYROLL.DATA", "UPDATE") is False
    assert run_check(mp, mgr, "mallory", "PAYROLL.DATA", "READ") is False


def test_unknown_profile_denies(miniplex):
    mp = miniplex
    (mgr,), db = make_racf(mp, n=1)
    assert run_check(mp, mgr, "alice", "NO.SUCH", "READ") is False


def test_checks_are_cached_locally(miniplex):
    mp = miniplex
    (mgr,), db = make_racf(mp, n=1)
    run_check(mp, mgr, "alice", "PAYROLL.DATA", "READ")
    assert mgr.dasd_fetches == 1
    for _ in range(5):
        run_check(mp, mgr, "alice", "PAYROLL.DATA", "READ")
    assert mgr.dasd_fetches == 1  # all subsequent checks were local
    assert mgr.local_hits == 5


def test_cached_check_is_microseconds(miniplex):
    mp = miniplex
    (mgr,), db = make_racf(mp, n=1)
    run_check(mp, mgr, "alice", "PAYROLL.DATA", "READ")  # warm
    times = []

    def timed():
        t0 = mp.sim.now
        yield from mgr.check_access("alice", "PAYROLL.DATA", "READ")
        times.append(mp.sim.now - t0)

    mp.run(timed(), until=mp.sim.now + 1)
    assert times[0] < 50e-6


def test_revoke_takes_effect_sysplex_wide(miniplex):
    """The §5.1 win: an admin change on one system invalidates every
    cached copy; the other system's next check sees the revoke."""
    mp = miniplex
    (mgr0, mgr1), db = make_racf(mp, n=2)
    # both systems cache the profile
    assert run_check(mp, mgr0, "bob", "PAYROLL.DATA", "READ") is True
    assert run_check(mp, mgr1, "bob", "PAYROLL.DATA", "READ") is True
    fetches_before = mgr1.dasd_fetches

    def revoke():
        yield from mgr0.alter_profile("PAYROLL.DATA", "bob", "NONE")

    mp.run(revoke(), until=mp.sim.now + 5)
    # SYS01's cached copy was cross-invalidated: next check re-fetches
    assert run_check(mp, mgr1, "bob", "PAYROLL.DATA", "READ") is False
    assert mgr1.dasd_fetches == fetches_before + 1
    # and the admin's own system also answers correctly
    assert run_check(mp, mgr0, "bob", "PAYROLL.DATA", "READ") is False


def test_permit_grants_new_access(miniplex):
    mp = miniplex
    (mgr0, mgr1), db = make_racf(mp, n=2)
    assert run_check(mp, mgr1, "carol", "PAYROLL.DATA", "READ") is False

    def permit():
        yield from mgr0.alter_profile("PAYROLL.DATA", "carol", "ALTER")

    mp.run(permit(), until=mp.sim.now + 5)
    assert run_check(mp, mgr1, "carol", "PAYROLL.DATA", "UPDATE") is True


def test_unrelated_profiles_not_invalidated(miniplex):
    mp = miniplex
    (mgr0, mgr1), db = make_racf(mp, n=2)
    other = SecurityProfile("HR.DATA")
    other.access = {"alice": "READ"}
    db["HR.DATA"] = other
    run_check(mp, mgr1, "alice", "HR.DATA", "READ")
    fetches = mgr1.dasd_fetches

    def alter():
        yield from mgr0.alter_profile("PAYROLL.DATA", "bob", "NONE")

    mp.run(alter(), until=mp.sim.now + 5)
    run_check(mp, mgr1, "alice", "HR.DATA", "READ")
    assert mgr1.dasd_fetches == fetches  # HR.DATA stayed cached
