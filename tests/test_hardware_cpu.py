"""Tests for the CPU complex and MP-effect model."""

import pytest

from repro.config import CpuConfig
from repro.hardware import CpuComplex
from repro.simkernel import Simulator


def test_single_cpu_no_inflation():
    cfg = CpuConfig(n_cpus=1)
    assert cfg.inflation() == 1.0
    assert cfg.effective_engines() == 1.0


def test_inflation_monotone_in_n():
    cfg = CpuConfig()
    vals = [cfg.inflation(n) for n in range(1, 11)]
    assert all(b > a for a, b in zip(vals, vals[1:]))


def test_ten_way_effective_engines_in_calibrated_band():
    """Published S/390 MP ratios put a 10-way around 7.3-7.7 engines."""
    cfg = CpuConfig(n_cpus=10)
    assert 7.0 <= cfg.effective_engines() <= 7.9


def test_effective_engines_diminishing_increments():
    """Each added engine contributes less than the one before (Figure 3)."""
    cfg = CpuConfig()
    eff = [cfg.effective_engines(n) for n in range(1, 11)]
    increments = [b - a for a, b in zip(eff, eff[1:])]
    assert all(i2 < i1 for i1, i2 in zip(increments, increments[1:]))
    assert all(0 < i < 1 for i in increments)


def test_consume_takes_inflated_time():
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(n_cpus=4))
    done = []

    def work():
        yield from cpu.consume(1.0)
        done.append(sim.now)

    sim.process(work())
    sim.run()
    assert done[0] == pytest.approx(CpuConfig().inflation(4))


def test_consume_zero_is_noop():
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(n_cpus=1))
    done = []

    def work():
        yield from cpu.consume(0.0)
        yield from cpu.consume(-1.0)
        done.append(sim.now)
        yield sim.timeout(0)

    sim.process(work())
    sim.run()
    assert done == [0.0]


def test_engines_queue_when_saturated():
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(n_cpus=2))
    finish = []

    def work(tag):
        yield from cpu.consume(1.0)
        finish.append((tag, sim.now))

    for t in range(4):
        sim.process(work(t))
    sim.run()
    inflation = CpuConfig().inflation(2)
    # two run immediately, two wait for a release
    assert finish[0][1] == pytest.approx(inflation)
    assert finish[2][1] == pytest.approx(2 * inflation)


def test_speed_scales_service_time():
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(n_cpus=1, speed=2.0))
    done = []

    def work():
        yield from cpu.consume(1.0)
        done.append(sim.now)

    sim.process(work())
    sim.run()
    assert done[0] == pytest.approx(0.5)


def test_spin_holds_engine_for_wall_time():
    """Spin duration is NOT MP-inflated (it is already wall time)."""
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(n_cpus=4))
    done = []

    def work():
        yield from cpu.spin(10e-6)
        done.append(sim.now)

    sim.process(work())
    sim.run()
    assert done[0] == pytest.approx(10e-6)


def test_utilization_accounting():
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(n_cpus=2))

    def work():
        yield from cpu.consume(5.0 / CpuConfig().inflation(2))

    sim.process(work())
    sim.run(until=10)
    # one engine busy 5s of 10s over 2 engines = 0.25
    assert cpu.utilization() == pytest.approx(0.25, rel=1e-6)


def test_busy_seconds_tracks_burn():
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(n_cpus=1))

    def work():
        yield from cpu.consume(2.0)

    sim.process(work())
    sim.run()
    assert cpu.busy_seconds == pytest.approx(2.0)
