"""CF request-level robustness: timeout, interface control check, retry.

The regression the chaos work demands: a CF command in flight on a link
that dies mid-transfer must surface an interface control check, back
off, redrive on a surviving link, and complete — and a command stuck
behind a congested CF must time out and redrive rather than spin
forever.  The structure mutation must execute exactly once across
redrives.
"""

import pytest

from repro import RunOptions
from repro.cf.commands import CfRequestTimeout
from repro.config import CfConfig, DatabaseConfig, SysplexConfig
from repro.hardware.links import InterfaceControlCheck, LinkDownError
from repro.runner import build_loaded_sysplex


def robust_cfg(n=2, timeout=0.05, retries=3, **kw):
    return SysplexConfig(
        n_systems=n,
        db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000),
        cf=CfConfig(request_timeout=timeout, request_retries=retries),
        **kw,
    )


def quiet_plex(cfg):
    return build_loaded_sysplex(
        cfg, options=RunOptions(terminals_per_system=0))


# ------------------------------------------------ ICC redirect + retry ----
def test_link_death_mid_flight_redrives_on_survivor():
    """The acceptance scenario: in-flight command on a failing link times
    out with an interface control check, backs off, retries on the
    surviving link, and completes."""
    plex, _ = quiet_plex(robust_cfg())
    inst = plex.instances["SYS00"]
    port = inst.xes_lock.port
    links = inst.node.cf_links["CF01"]
    results = []

    def work():
        # ~2 ms transfer: long enough to kill the link under it
        out = yield from port.sync(lambda: "ok", out_bytes=200_000)
        results.append(out)

    plex.sim.process(work())
    # both links idle => pick() takes link 0; kill it mid-transfer
    plex.sim.call_at(0.001, lambda: links.fail_link(0))
    plex.sim.run(until=1.0)

    assert results == ["ok"]
    assert port.iccs >= 1
    assert port.retries >= 1
    assert links.links[1].ops >= 1  # the redrive used the survivor


def test_mutation_executes_once_across_redrives():
    """Redrives re-pay the trip but never re-run the structure op."""
    plex, _ = quiet_plex(robust_cfg())
    inst = plex.instances["SYS00"]
    port = inst.xes_lock.port
    links = inst.node.cf_links["CF01"]
    calls = []

    def work():
        # service_factor stretches CF execution to ~3 ms so the link dies
        # AFTER the mutation ran but BEFORE the response returned
        out = yield from port.sync(
            lambda: calls.append(1) or "done", service_factor=1000.0)
        return out

    plex.sim.process(work())
    plex.sim.call_at(0.0015, lambda: links.fail_link(0))
    plex.sim.run(until=1.0)

    assert port.iccs >= 1
    assert calls == [1]  # exactly once, despite the redrive


# ------------------------------------------------ timeout + redrive ----
def test_congested_cf_times_out_then_completes():
    plex, _ = quiet_plex(robust_cfg(timeout=0.002, retries=5))
    inst = plex.instances["SYS00"]
    port = inst.xes_lock.port
    cf = plex.cfs[0]
    results = []

    def blocker():
        # occupy both CF engines for 5 ms: every attempt inside that
        # window exceeds the 2 ms request timeout
        yield from cf.execute(0.005)

    def work():
        out = yield from port.sync(lambda: "ok")
        results.append(out)

    plex.sim.process(blocker())
    plex.sim.process(blocker())
    plex.sim.process(work())
    plex.sim.run(until=1.0)

    assert results == ["ok"]
    assert port.timeouts >= 1
    assert port.retries >= 1


def test_exhausted_retry_budget_raises_timeout():
    plex, _ = quiet_plex(robust_cfg(timeout=0.001, retries=2))
    inst = plex.instances["SYS00"]
    port = inst.xes_lock.port
    cf = plex.cfs[0]
    errors = []

    def blocker():
        yield from cf.execute(1.0)  # congested for the whole test

    def work():
        try:
            yield from port.sync(lambda: "ok")
        except CfRequestTimeout as exc:
            errors.append(exc)

    plex.sim.process(blocker())
    plex.sim.process(blocker())
    plex.sim.process(work())
    plex.sim.run(until=1.0)

    assert len(errors) == 1
    assert port.timeouts == 3  # initial attempt + 2 redrives


def test_all_links_down_raises_link_error_on_robust_path():
    plex, _ = quiet_plex(robust_cfg())
    inst = plex.instances["SYS00"]
    port = inst.xes_lock.port
    links = inst.node.cf_links["CF01"]
    for i in range(len(links.links)):
        links.fail_link(i)
    errors = []

    def work():
        try:
            yield from port.sync(lambda: "ok")
        except LinkDownError as exc:
            errors.append(exc)

    plex.sim.process(work())
    plex.sim.run(until=1.0)
    assert len(errors) == 1


def test_icc_is_a_link_down_error():
    # the TM's except clause catches both through one base class
    assert issubclass(InterfaceControlCheck, LinkDownError)


# ------------------------------------------------ fast path untouched ----
def test_fast_path_runs_without_robustness_counters():
    plex, _ = quiet_plex(
        SysplexConfig(n_systems=2,
                      db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000)))
    inst = plex.instances["SYS00"]
    port = inst.xes_lock.port
    assert port.config.request_timeout is None
    assert port.retry_rng is None  # no jitter stream created
    results = []

    def work():
        out = yield from port.sync(lambda: "ok")
        results.append(out)

    plex.sim.process(work())
    plex.sim.run(until=0.1)
    assert results == ["ok"]
    assert (port.timeouts, port.iccs, port.retries) == (0, 0, 0)


def test_retry_jitter_stream_created_when_enabled():
    plex, _ = quiet_plex(robust_cfg())
    for inst in plex.instances.values():
        assert inst.xes_lock.port.retry_rng is not None


# ------------------------------------------------ under load ----
def test_transactions_survive_link_loss_under_robustness():
    """Mainline work keeps completing when a link dies under load."""
    plex, _ = build_loaded_sysplex(
        robust_cfg(), options=RunOptions(terminals_per_system=3))
    inst = plex.instances["SYS00"]
    plex.injector.fail_link(inst.node.cf_links["CF01"], at=0.3, index=0)
    plex.sim.run(until=1.0)
    assert inst.tm.completed > 0
    assert plex.metrics.counter("txn.failed").count == 0
    assert plex.injector.log_events() == [[0.3, "link-fail:SYS00-CF01.0"]]


def test_timeout_budget_must_be_positive():
    with pytest.raises(ValueError):
        robust_cfg(timeout=-1.0)
