"""Shared test fixtures: miniature sysplex components."""

import numpy as np
import pytest

from repro.cf import CouplingFacility, LockStructure, CacheStructure, ListStructure
from repro.config import CpuConfig, SysplexConfig
from repro.hardware import DasdFarm, LinkSet, SystemNode
from repro.mvs import XesServices
from repro.simkernel import Simulator
from repro.subsystems import BufferManager, LockManager, LockSpace


class MiniPlex:
    """A hand-wired micro-sysplex for subsystem unit tests: N systems,
    one CF with all three structures, no MVS monitoring overhead."""

    def __init__(self, n_systems=2, n_cpus=1, seed=7, lock_entries=1 << 16):
        self.sim = Simulator()
        self.config = SysplexConfig(
            n_systems=n_systems, cpu=CpuConfig(n_cpus=n_cpus), seed=seed
        )
        self.rng = np.random.default_rng(seed)
        self.cf = CouplingFacility(self.sim, self.config.cf, "CF01")
        self.xes = XesServices(self.sim, self.config.cf)
        self.xes.add_facility(self.cf)
        self.xes.allocate(LockStructure("LOCK", lock_entries))
        self.xes.allocate(CacheStructure("CACHE", 256, 4096))
        self.xes.allocate(ListStructure("LIST", n_headers=4, n_locks=2))
        self.farm = DasdFarm(self.sim, self.config.dasd, self.rng, n_devices=4)
        self.space = LockSpace(self.sim)
        self.nodes = []
        self.lockmgrs = []
        self.buffermgrs = []
        for i in range(n_systems):
            node = SystemNode(self.sim, self.config, i)
            for cf in (self.cf,):
                node.cf_links[cf.name] = LinkSet(self.sim, self.config.link,
                                                 name=f"{node.name}-{cf.name}")
            self.nodes.append(node)
            xl = self.xes.connect(node, "LOCK")
            xc = self.xes.connect(node, "CACHE")
            self.lockmgrs.append(
                LockManager(self.sim, self.space, xl, self.config.xcf,
                            node.name)
            )
            self.buffermgrs.append(
                BufferManager(self.sim, node, self.config.db, self.farm,
                              xes=xc)
            )

    def run(self, *procs, until=10.0):
        for p in procs:
            self.sim.process(p)
        self.sim.run(until=until)


@pytest.fixture
def miniplex():
    return MiniPlex()


@pytest.fixture
def miniplex4():
    return MiniPlex(n_systems=4)
