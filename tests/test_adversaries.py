"""Adversary library: manifestation, seed contract, sick guardrail."""

import pytest

from repro import ChaosConfig, ChaosEngine, FaultClassConfig, RunOptions
from repro.adversaries import (
    ADVERSARIES,
    adversary_spec,
    adversary_specs,
    base_spec,
    manifests,
)
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import build_loaded_sysplex


# ------------------------------------------------ manifestation ----
@pytest.mark.parametrize("name", list(ADVERSARIES))
def test_adversary_manifests(name):
    payload = adversary_spec(name, seed=1).run()
    ok, detail = manifests(name, payload)
    assert ok, f"{name} no longer manifests: {detail}"
    # an adversary stresses the plex; it must never break correctness
    assert payload["invariants"]["ok"], payload["invariants"]["violations"]


def test_healthy_base_manifests_nothing():
    # the thresholds discriminate: the unperturbed base spec crosses none
    payload = base_spec(seed=1).run()
    assert payload["invariants"]["ok"]
    for name in ADVERSARIES:
        ok, detail = manifests(name, payload)
        assert not ok, f"healthy base trips {name}: {detail}"


# ------------------------------------------------ seed contract ----
def test_same_name_and_seed_same_hash():
    for name in ADVERSARIES:
        a = adversary_spec(name, seed=3)
        assert a.content_hash() == adversary_spec(name, seed=3).content_hash()
        assert a.content_hash() != adversary_spec(name, seed=4).content_hash()


def test_catalog_specs_distinct_and_labeled():
    specs = adversary_specs(seed=1)
    assert [s.label for s in specs] == [f"adv-{n}-seed1" for n in ADVERSARIES]
    assert len({s.content_hash() for s in specs}) == len(specs)


def test_geometry_forwards_to_base_spec():
    spec = adversary_spec("lock_hog", seed=2, n_systems=2, horizon=1.0)
    assert spec.config.n_systems == 2
    assert spec.params["chaos"]["horizon"] == 1.0


def test_unknown_adversary_raises():
    with pytest.raises(KeyError, match="unknown adversary"):
        adversary_spec("nope")
    with pytest.raises(KeyError, match="unknown adversary"):
        manifests("nope", {})


# ------------------------------------------------ sick guardrail ----
def _quiet_plex(n=3, seed=5):
    cfg = SysplexConfig(
        n_systems=n,
        seed=seed,
        db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000),
    )
    plex, _ = build_loaded_sysplex(cfg, options=RunOptions(terminals_per_system=0))
    return plex


def test_min_healthy_systems_floor_suppresses_sickness():
    # floor == n_systems: every sampled sick event must be skipped
    cfg = ChaosConfig(
        start=0.0,
        horizon=2.0,
        sick=FaultClassConfig(mtbf=0.2, mttr=30.0, max_faults=2),
        min_healthy_systems=3,
    )
    plex = _quiet_plex()
    eng = ChaosEngine(plex, cfg)
    assert any(r[1].startswith("sick") for r in eng.schedule_rows())
    eng.arm()
    plex.sim.run(until=2.0)
    assert all(not n.cpu.degraded for n in plex.nodes)
    labels = [label for _, label in plex.injector.log_events()]
    assert any(label.startswith("chaos-skip:sick") for label in labels)


def test_min_healthy_floor_keeps_one_full_speed_member():
    # default floor of 1: sickness spreads, but never to the whole plex
    cfg = ChaosConfig(
        start=0.0,
        horizon=2.0,
        sick=FaultClassConfig(mtbf=0.1, mttr=30.0, max_faults=3),
    )
    plex = _quiet_plex()
    ChaosEngine(plex, cfg).arm()
    plex.sim.run(until=2.0)
    assert sum(1 for n in plex.nodes if n.cpu.degraded) >= 1
    healthy = sum(1 for n in plex.nodes if n.alive and not n.cpu.degraded)
    assert healthy >= 1
