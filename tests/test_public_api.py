"""Tests for the public API surface: repro.run and RunOptions."""

import pytest

import repro
from repro import (
    CpuConfig,
    DatabaseConfig,
    RunOptions,
    RunSpec,
    SysplexConfig,
    run,
    run_oltp,
)
from repro.options import OPTION_FIELDS
from repro.runner import build_loaded_sysplex


def small_cfg(n_systems=2, seed=11):
    return SysplexConfig(
        n_systems=n_systems,
        cpu=CpuConfig(n_cpus=1),
        db=DatabaseConfig(n_pages=20_000, buffer_pages=4_000),
        seed=seed,
    )


# -------------------------------------------------------------- RunOptions ----
def test_run_options_defaults_and_replace():
    opts = RunOptions()
    assert opts.mode == "closed"
    assert opts.router_policy == "threshold"
    assert opts.monitoring and not opts.tracing
    changed = opts.replace(tracing=True, mode="open")
    assert changed.tracing and changed.mode == "open"
    assert not opts.tracing  # frozen: original untouched


def test_run_options_rejects_unknown_mode():
    with pytest.raises(ValueError):
        RunOptions(mode="sideways")


def test_run_options_dict_round_trip():
    opts = RunOptions(mode="open", offered_tps_per_system=42.0,
                      terminals_per_system=7, tracing=True)
    again = RunOptions.from_dict(opts.to_dict())
    assert again == opts
    assert set(opts.to_dict()) == OPTION_FIELDS


# --------------------------------------------------- RunSpec folds options ----
def test_runspec_round_trips_options():
    spec = RunSpec(config=small_cfg(), duration=0.2, warmup=0.1,
                   options=RunOptions(tracing=True, router_policy="wlm"))
    again = RunSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.options == spec.options
    assert again.content_hash() == spec.content_hash()


def test_runspec_options_affect_content_hash():
    base = RunSpec(config=small_cfg(), duration=0.2, warmup=0.1)
    for field in ("tracing", "monitoring"):
        changed = base.replace(**{field: not getattr(base.options, field)})
        assert changed.content_hash() != base.content_hash(), field
    assert (base.replace(router_policy="wlm").content_hash()
            != base.content_hash())


def test_runspec_exposes_option_properties():
    spec = RunSpec(options=RunOptions(mode="open", terminals_per_system=3))
    assert spec.mode == "open"
    assert spec.terminals_per_system == 3
    assert spec.router_policy == spec.options.router_policy


def test_runspec_replace_routes_option_fields():
    base = RunSpec(config=small_cfg())
    spec = base.replace(tracing=True, duration=0.5)
    assert spec.options.tracing and spec.duration == 0.5
    assert spec.options.router_policy == base.options.router_policy


def test_runspec_from_dict_accepts_legacy_flat_options():
    # schema-v1 dicts carried drive options as flat spec keys
    d = RunSpec(config=small_cfg()).to_dict()
    del d["options"]
    d["tracing"] = True
    d["mode"] = "open"
    spec = RunSpec.from_dict(d)
    assert spec.options.tracing and spec.options.mode == "open"


# -------------------------------------------------------------- run facade ----
def test_run_accepts_config_and_spec_identically():
    cfg = small_cfg()
    via_cfg = run(cfg, duration=0.2, warmup=0.1)
    via_spec = run(RunSpec(config=cfg, duration=0.2, warmup=0.1))
    assert via_cfg.completed == via_spec.completed
    assert via_cfg.throughput == via_spec.throughput


def test_run_applies_options_and_overrides_to_spec():
    spec = RunSpec(config=small_cfg(), duration=0.2, warmup=0.1)
    traced = run(spec, options=RunOptions(tracing=True))
    assert any(k.startswith("trace.") for k in traced.extras)
    plain = run(spec, tracing=False)
    assert not any(k.startswith("trace.") for k in plain.extras)
    assert traced.completed == plain.completed


def test_run_rejects_other_types():
    with pytest.raises(TypeError):
        run({"n_systems": 2})


def test_public_surface_is_importable():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


# ----------------------------------------------- loose kwargs are removed ----
def test_loose_kwargs_removed():
    """The pre-1.1 loose keyword style (deprecated in 1.1, removed in
    2.0) is now a plain TypeError: drive parameters travel only as a
    RunOptions bundle."""
    with pytest.raises(TypeError):
        run_oltp(small_cfg(), duration=0.2, warmup=0.1, router_policy="wlm")
    with pytest.raises(TypeError):
        build_loaded_sysplex(small_cfg(), mode="closed",
                             terminals_per_system=2)
    with pytest.raises(TypeError):
        run_oltp(small_cfg(), durations=0.2)
