"""Tests for the redesigned execution API.

The :class:`~repro.experiments.common.Execution` value object, the
deprecated ``set_execution`` shim over it, sweep-level
:class:`~repro.executor.Progress` reporting, and the ``repro.run()``
sweep routing.
"""

import io
from pathlib import Path

import pytest

import repro
from repro.executor import LocalPoolBackend, Progress, ResultCache
from repro.experiments import common
from repro.experiments.common import Execution, set_execution, sweep
from repro.runspec import RunSpec

RUNNER = "tests.test_execution_api:echo_runner"


def echo_runner(spec):
    return {"n": spec.params["n"] * 2, "profile": spec.profile}


def echo_specs(n=3):
    return [RunSpec(runner=RUNNER, label=f"e{i}", params={"n": i})
            for i in range(n)]


@pytest.fixture(autouse=True)
def _reset_session():
    """The shim mutates module state; every test starts from the default."""
    yield
    common._SESSION = common.DEFAULT_EXECUTION


# ------------------------------------------------------------- Execution ----
def test_execution_defaults_are_plain_in_process():
    ex = Execution()
    assert ex.jobs == 1 and ex.backend is None and ex.cache is None
    assert ex.csv_dir is None and ex.progress is False and ex.profile is None
    assert ex.parallelism() == 1


def test_execution_is_frozen_and_replace_copies():
    ex = Execution(jobs=2)
    with pytest.raises(AttributeError):
        ex.jobs = 4
    assert ex.replace(jobs=4).jobs == 4
    assert ex.jobs == 2


def test_execution_normalizes_jobs_and_csv_dir():
    ex = Execution(jobs=0, csv_dir="out/csv")
    assert ex.jobs == 1
    assert ex.csv_dir == Path("out/csv")


def test_execution_parallelism_follows_the_backend():
    ex = Execution(jobs=1, backend=LocalPoolBackend(jobs=6))
    assert ex.parallelism() == 6


# ----------------------------------------------------------------- sweep ----
def test_sweep_threads_the_execution_cache(tmp_path):
    specs = echo_specs()
    cache = ResultCache(tmp_path / "rc")
    ex = Execution(cache=cache)
    out = sweep(specs, execution=ex)
    assert out == [s.run() for s in specs]
    assert cache.misses == len(specs)
    sweep(specs, execution=ex)
    assert cache.hits == len(specs)


def test_sweep_forces_the_execution_profile():
    out = sweep(echo_specs(1), execution=Execution(profile="verify"))
    assert out[0]["profile"] == "verify"
    out = sweep(echo_specs(1), execution=Execution())
    assert out[0]["profile"] == "sweep"  # the spec's own default


def test_sweep_kwargs_override_the_execution(tmp_path):
    ex = Execution(cache=ResultCache(tmp_path / "rc"))
    sweep(echo_specs(1), execution=ex, cache=None)  # forced cache-off
    assert ex.cache.misses == 0 and ex.cache.hits == 0


def test_sweep_without_execution_uses_plain_defaults():
    assert sweep(echo_specs(2)) == [s.run() for s in echo_specs(2)]


# ------------------------------------------------------ deprecated shim ----
def test_set_execution_warns_deprecation():
    with pytest.deprecated_call():
        set_execution(jobs=2)


def test_set_execution_rebinds_the_session_fallback(tmp_path):
    cache = ResultCache(tmp_path / "rc")
    with pytest.warns(DeprecationWarning):
        set_execution(cache=cache)
    specs = echo_specs(2)
    sweep(specs)  # no execution passed: the shim's session applies
    assert cache.misses == 2
    # ...but an explicit Execution always wins over the session
    sweep(specs, execution=Execution())
    assert cache.misses == 2 and cache.hits == 0


# -------------------------------------------------------------- Progress ----
def test_progress_counts_hits_and_smooths_cost():
    p = Progress(total=4, parallelism=2, clock=lambda: 0.0)
    spec = echo_specs(1)[0]
    p.update(spec, cached=True, seconds=0.0)
    assert p.cache_hits == 1 and p.ewma_seconds is None
    assert p.eta_seconds() is None  # no computed point yet
    p.update(spec, cached=False, seconds=2.0)
    assert p.ewma_seconds == 2.0
    p.update(spec, cached=False, seconds=4.0)
    assert p.ewma_seconds == pytest.approx(
        Progress.ALPHA * 4.0 + (1 - Progress.ALPHA) * 2.0)
    # 1 point left, pipelined over 2 workers
    assert p.eta_seconds() == pytest.approx(p.ewma_seconds / 2)


def test_progress_eta_is_zero_when_done():
    p = Progress(total=1, clock=lambda: 0.0)
    p.update(echo_specs(1)[0], cached=False, seconds=1.0)
    assert p.eta_seconds() == 0.0


def test_progress_renders_lines_and_summary():
    stream = io.StringIO()
    p = Progress(total=2, stream=stream, clock=lambda: 0.0)
    p.update(echo_specs(1)[0], cached=True, seconds=0.0)
    p.update(echo_specs(1)[0], cached=False, seconds=1.5)
    lines = stream.getvalue().splitlines()
    assert "[1/2 cache  hits 1" in lines[0] and "e0" in lines[0]
    assert "1.5s/pt" in lines[1] and "eta 0s" in lines[1]
    assert p.summary() == "2/2 points in 0s (1 cache hits)"


def test_progress_label_falls_back_to_runner_and_hash():
    spec = RunSpec(runner=RUNNER, params={"n": 1})  # no label
    line = Progress(total=1).line(spec, cached=False, seconds=0.1)
    assert RUNNER in line and spec.short_hash() in line


# ------------------------------------------------------ repro.run sweeps ----
def test_run_routes_spec_sequences_through_execute():
    specs = echo_specs(3)
    assert repro.run(specs) == [s.run() for s in specs]


def test_run_sweep_rejects_mixed_sequences():
    with pytest.raises(TypeError, match="sequence of RunSpec"):
        repro.run([echo_specs(1)[0], "not-a-spec"])


def test_run_sweep_passes_execute_kwargs(tmp_path):
    specs = echo_specs(2)
    cache = ResultCache(tmp_path / "rc")
    repro.run(specs, cache=cache)
    assert cache.misses == 2
    assert repro.run(specs, cache=cache) == [s.run() for s in specs]
    assert cache.hits == 2
