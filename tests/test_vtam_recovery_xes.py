"""Tests for VTAM generic resources, peer recovery, and XES services."""

import pytest

from repro import RunOptions
from repro.cf import CouplingFacility, LockMode, LockStructure
from repro.config import DatabaseConfig, SysplexConfig
from repro.mvs import XesServices
from repro.runner import build_loaded_sysplex
from repro.subsystems import GenericResources


def small_cfg(n_systems=3, n_cfs=1):
    return SysplexConfig(
        n_systems=n_systems,
        n_cfs=n_cfs,
        db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000),
    )


# ----------------------------------------------------------------- VTAM ----
def make_gr(n=3):
    plex, gen = build_loaded_sysplex(small_cfg(n), options=RunOptions(terminals_per_system=0))
    connections = {
        name: inst.xes_list for name, inst in plex.instances.items()
    }
    gr = GenericResources(plex.sim, "CICS", plex.wlm, plex.nodes,
                          connections)
    return plex, gr


def test_logon_binds_and_records_in_cf_list():
    plex, gr = make_gr()
    landed = []

    def work():
        target = yield from gr.logon("alice")
        landed.append(target.name)

    plex.sim.process(work())
    plex.sim.run(until=0.5)
    assert landed and landed[0] in gr.session_counts()
    assert gr.system_of("alice") == landed[0]
    st = plex.xes.find("WORKQ1")
    assert st.length(gr.affinity_header) == 1  # the affinity entry


def test_logoff_removes_binding():
    plex, gr = make_gr()

    def work():
        yield from gr.logon("bob")
        yield from gr.logoff("bob")

    plex.sim.process(work())
    plex.sim.run(until=0.5)
    assert gr.system_of("bob") is None
    st = plex.xes.find("WORKQ1")
    assert st.length(gr.affinity_header) == 0


def test_session_distribution_roughly_balanced_when_idle():
    plex, gr = make_gr()

    def work():
        for u in range(120):
            yield from gr.logon(f"user{u}")

    plex.sim.process(work())
    plex.sim.run(until=2.0)
    counts = gr.session_counts()
    assert sum(counts.values()) == 120
    assert gr.balance_index() < 1.5  # no system gets 50%+ over fair share


def test_rebind_orphans_after_failure():
    plex, gr = make_gr()

    def work():
        for u in range(30):
            yield from gr.logon(f"user{u}")

    plex.sim.process(work())
    plex.sim.run(until=1.0)
    victim = "SYS01"
    before = dict(gr.session_counts())
    orphans = gr.rebind_orphans(victim)
    assert len(orphans) == before[victim]
    assert all(gr.system_of(u) != victim for u in gr.sessions)
    assert gr.session_counts()[victim] == 0


def test_logon_requires_live_system():
    plex, gr = make_gr(n=2)
    for node in plex.nodes:
        node.fail()

    def work():
        with pytest.raises(RuntimeError):
            yield from gr.logon("carol")
        yield plex.sim.timeout(0)

    plex.sim.process(work())
    plex.sim.run(until=0.2)


# -------------------------------------------------------- peer recovery ----
def test_peer_recovery_releases_retained_locks():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    failed = plex.instances["SYS01"]
    peer = plex.instances["SYS00"]
    done = []

    def scenario():
        owner = ("SYS01", 99)
        yield from failed.lockmgr.lock(owner, 1234, LockMode.EXCL)
        failed.log.log_update(owner, 1234)
        failed.node.fail()
        failed.db.fail()
        assert 1234 in plex.lock_space.retained
        n = yield from plex.recovery.recover(failed.db, peer.db)
        done.append(n)

    plex.sim.process(scenario())
    plex.sim.run(until=10)
    assert done == [1]
    assert not plex.lock_space.retained
    # persistent lock records purged from the CF structure
    structure = plex.xes.find("IRLMLOCK1")
    assert structure.records_of(failed.lockmgr.xes.connector.conn_id) == {}


def test_peer_recovery_takes_real_time():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    failed = plex.instances["SYS01"]
    peer = plex.instances["SYS00"]
    times = []

    def scenario():
        failed.node.fail()
        failed.db.fail()
        t0 = plex.sim.now
        yield from plex.recovery.recover(failed.db, peer.db)
        times.append(plex.sim.now - t0)

    plex.sim.process(scenario())
    plex.sim.run(until=10)
    assert times[0] >= plex.config.arm.log_replay_time


# ------------------------------------------------------------------ XES ----
def test_xes_structure_rebuild_into_surviving_cf():
    """CF failover at the XES level: a lost structure is rebuilt in the
    alternate CF and repopulated by the contributors' generators (paper:
    multiple CFs for availability).  Standalone — no Sysplex wiring."""
    from repro.config import CfConfig, LinkConfig
    from repro.hardware import LinkSet, SystemNode
    from repro.simkernel import Simulator

    sim = Simulator()
    cf_cfg = CfConfig()
    xes = XesServices(sim, cf_cfg)
    cf1 = CouplingFacility(sim, cf_cfg, "CF01")
    cf2 = CouplingFacility(sim, cf_cfg, "CF02")
    xes.add_facility(cf1)
    xes.add_facility(cf2)
    xes.allocate(LockStructure("L1", 1 << 12), preferred=cf1)

    nodes = []
    conns = []
    for i in range(3):
        node = SystemNode(sim, SysplexConfig(n_systems=1), i)
        node.cf_links["CF01"] = LinkSet(sim, LinkConfig())
        node.cf_links["CF02"] = LinkSet(sim, LinkConfig())
        nodes.append(node)
        conns.append(xes.connect(node, "L1"))

    def setup():
        for i, xconn in enumerate(conns):
            yield from xconn.sync(
                lambda i=i, x=xconn: x.structure.request(
                    x.connector, f"res{i}", LockMode.EXCL)
            )

    sim.process(setup())
    sim.run(until=0.1)

    old = xes.find("L1")
    cf1.fail()
    assert old.lost

    def contribute(i):
        def fn(xconn):
            yield from xconn.sync(
                lambda x=xconn, i=i: x.structure.force_record(
                    x.connector, f"res{i}", LockMode.EXCL)
            )

        return fn

    done = []

    def rebuild():
        new_conns = yield from xes.rebuild(
            "L1", lambda: LockStructure("L1", 1 << 12),
            {nodes[i]: contribute(i) for i in range(3)},
        )
        done.append(new_conns)

    sim.process(rebuild())
    sim.run(until=1.0)
    assert done
    new = xes.find("L1")
    assert new is not old and not new.lost
    assert new.facility is cf2
    total_units = sum(
        len(new.interest_of(c.connector)) for c in done[0].values()
    )
    assert total_units == 3
    assert xes.rebuilds == 1


def test_xes_connect_unknown_structure():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    with pytest.raises(KeyError):
        plex.xes.connect(plex.nodes[0], "NOSUCH")


def test_xes_allocation_prefers_live_cf():
    from repro.simkernel import Simulator
    from repro.config import CfConfig

    sim = Simulator()
    xes = XesServices(sim, CfConfig())
    cf1 = CouplingFacility(sim, CfConfig(), "CF01")
    cf2 = CouplingFacility(sim, CfConfig(), "CF02")
    xes.add_facility(cf1)
    xes.add_facility(cf2)
    cf1.fail()
    st = LockStructure("X", 64)
    placed = xes.allocate(st, preferred=cf1)  # preferred is dead
    assert placed is cf2
