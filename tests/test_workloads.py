"""Tests for workload generation: OLTP sampler/generator, traces, DSS."""

import numpy as np
import pytest

from repro.config import OltpConfig
from repro.simkernel import Simulator
from repro.workloads import (
    DemandTrace,
    OltpGenerator,
    PageSampler,
    flat_trace,
    rotating_hotspot_trace,
    spike_trace,
)


def rng():
    return np.random.default_rng(11)


# ------------------------------------------------------------- sampler ----
def test_sampler_draws_distinct_sorted_pages():
    s = PageSampler(1000, theta=0.8, rng=rng())
    pages = s.sample(16)
    assert len(pages) == 16
    assert len(set(pages)) == 16
    assert pages == sorted(pages)
    assert all(0 <= p < 1000 for p in pages)


def test_sampler_skew_concentrates_access():
    s = PageSampler(10_000, theta=0.9, rng=rng())
    counts = {}
    for _ in range(2000):
        for p in s.sample(4):
            counts[p] = counts.get(p, 0) + 1
    top = sorted(counts.values(), reverse=True)
    # the most popular page gets far more than the uniform share
    assert top[0] > 8 * (sum(top) / 10_000)


def test_sampler_uniform_when_theta_zero():
    s = PageSampler(1000, theta=0.0, rng=rng())
    counts = np.zeros(1000)
    for _ in range(3000):
        for p in s.sample(4):
            counts[p] += 1
    # no page dominates under uniform access
    assert counts.max() < 12 * counts.mean()


def test_sampler_hottest_prefix():
    s = PageSampler(100, theta=1.0, rng=rng())
    hot = s.hottest(10)
    assert len(hot) == 10
    assert len(set(hot)) == 10


def test_sampler_k_equal_n():
    s = PageSampler(8, theta=0.5, rng=rng())
    assert sorted(s.sample(8)) == list(range(8))


# ------------------------------------------------------------ generator ----
class _SinkRouter:
    def __init__(self):
        self.txns = []

    def route(self, txn):
        self.txns.append(txn)


def make_gen(partition_affinity=False, trace=None, n_systems=4):
    sim = Simulator()
    router = _SinkRouter()
    gen = OltpGenerator(
        sim, OltpConfig(), n_pages=8000, n_systems=n_systems, rng=rng(),
        router=router, trace=trace, partition_affinity=partition_affinity,
    )
    return sim, router, gen


def test_transaction_shape():
    sim, router, gen = make_gen()
    txn = gen.make_transaction(home=2)
    cfg = OltpConfig()
    assert len(txn.reads) == cfg.reads_per_txn
    assert len(txn.writes) == cfg.writes_per_txn
    assert not set(txn.reads) & set(txn.writes)
    assert txn.home == 2
    assert txn.reads == sorted(txn.reads)
    assert txn.writes == sorted(txn.writes)


def test_transaction_ids_unique():
    sim, router, gen = make_gen()
    ids = {gen.make_transaction(0).txn_id for _ in range(100)}
    assert len(ids) == 100


def test_open_loop_rate():
    sim, router, gen = make_gen()
    gen.start_open_loop(tps_per_system=100)
    sim.run(until=4)
    # 4 systems x 100 tps x 4 s = 1600 expected
    assert router.txns
    assert len(router.txns) == pytest.approx(1600, rel=0.15)


def test_open_loop_with_trace_shapes_arrivals():
    trace = DemandTrace(2, step=1.0, multipliers=[[2.0, 0.0], [0.0, 2.0]])
    sim, router, gen = make_gen(trace=trace, n_systems=2)
    gen.start_open_loop(tps_per_system=100)
    sim.run(until=1.0)
    homes_first = [t.home for t in router.txns]
    assert homes_first and all(h == 0 for h in homes_first)
    n_first = len(router.txns)
    sim.run(until=2.0)
    homes_second = [t.home for t in router.txns[n_first:]]
    assert homes_second and all(h == 1 for h in homes_second)


def test_closed_loop_waits_for_completion():
    sim, router, gen = make_gen()
    gen.start_closed_loop(terminals_per_system=2)
    sim.run(until=1.0)
    # nobody completes transactions, so each terminal submits exactly once
    assert len(router.txns) == 8
    # completing one lets its terminal continue
    router.txns[0].done.succeed(0.01)
    sim.run(until=1.1)
    assert len(router.txns) == 9


def test_partition_affinity_keeps_accesses_local():
    sim, router, gen = make_gen(partition_affinity=True)
    seg = 8000 // 4
    local = total = 0
    for _ in range(100):
        txn = gen.make_transaction(home=1)
        for p in txn.reads + txn.writes:
            total += 1
            if seg <= p < 2 * seg:
                local += 1
    assert local / total > 0.75  # ~90% by default remote_fraction=0.1


# ---------------------------------------------------------------- traces ----
def test_flat_trace():
    t = flat_trace(4, duration=10)
    assert t.multiplier(5, 2) == 1.0
    assert t.peak() == 1.0


def test_rotating_hotspot_constant_total():
    t = rotating_hotspot_trace(4, step=1.0, n_steps=8, spike_factor=3.0)
    for k in range(8):
        total = sum(t.multiplier(k + 0.5, i) for i in range(4))
        assert total == pytest.approx(4.0)
    # the hot stream rotates
    hot_at = [max(range(4), key=lambda i: t.multiplier(k + 0.5, i))
              for k in range(4)]
    assert hot_at == [0, 1, 2, 3]


def test_spike_trace_seeded():
    a = spike_trace(4, 1.0, 5, rng=np.random.default_rng(3))
    b = spike_trace(4, 1.0, 5, rng=np.random.default_rng(3))
    assert a.multipliers == b.multipliers


def test_trace_validation():
    with pytest.raises(ValueError):
        DemandTrace(0, 1.0, [])
    with pytest.raises(ValueError):
        DemandTrace(2, 1.0, [[1.0]])  # wrong row width


def test_trace_clamps_past_end():
    t = DemandTrace(1, 1.0, [[2.0]])
    assert t.multiplier(99.0, 0) == 2.0
