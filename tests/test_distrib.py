"""Tests for the work-queue backend and the repro.distrib transport.

The spawned worker clients (``python -m repro.distrib.worker``) resolve
scenario runners by dotted path, so every runner used here lives at
module level and the backend gets the repo root on its ``pythonpath``
(the workers need ``tests.test_distrib`` importable, exactly as a real
remote worker needs the experiment code installed).
"""

import os
from pathlib import Path

import pytest

from repro.distrib import SweepServer, WorkerTaskError, format_address, parse_address
from repro.executor import (
    LocalPoolBackend,
    ResultCache,
    WorkQueueBackend,
    execute,
    execute_iter,
)
from repro.runspec import RunSpec, canonical_json
from tests.test_runspec_executor import small_spec

ROOT = Path(__file__).resolve().parent.parent

RUNNER = "tests.test_distrib:probe_runner"
CRASH_ONCE = "tests.test_distrib:crash_once_runner"
ALWAYS_CRASH = "tests.test_distrib:always_crash_runner"
BOOM = "tests.test_distrib:boom_runner"


def wq(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("pythonpath", [ROOT])
    kw.setdefault("startup_timeout", 30.0)
    return WorkQueueBackend(**kw)


def probe_runner(spec):
    return {"label": spec.label, "n": spec.params["n"] * 2}


def crash_once_runner(spec):
    sentinel = Path(spec.params["sentinel"])
    if not sentinel.exists():
        sentinel.write_text("crashed")
        os._exit(17)  # hard kill: no exception, no cleanup — a dead worker
    return {"survived": spec.params["n"]}


def always_crash_runner(spec):
    os._exit(17)


def boom_runner(spec):
    raise ValueError(f"boom from {spec.label}")


def probe_specs(n=4):
    return [RunSpec(runner=RUNNER, label=f"p{i}", params={"n": i})
            for i in range(n)]


# ------------------------------------------------------------ addresses ----
def test_address_round_trips():
    for addr in ("127.0.0.1:7777", "unix:/tmp/x.sock"):
        assert format_address(*parse_address(addr)) == addr


def test_bad_address_is_an_error():
    with pytest.raises(ValueError):
        parse_address("no-port-here")


# ------------------------------------------------ cross-backend identity ----
def test_workqueue_matches_local_pool_byte_for_byte(tmp_path):
    """The determinism contract across every execution path.

    The same two simulation specs run in-process, across a local pool,
    through the work-queue with 2 worker processes, and replayed from a
    warm cache — all four must agree to the byte.
    """
    specs = [small_spec(), small_spec(duration=0.3)]
    cache = ResultCache(tmp_path / "rc")

    serial = execute(specs, jobs=1)
    pooled = execute(specs, backend=LocalPoolBackend(jobs=2))
    queued = execute(specs, backend=wq(), cache=cache)
    assert cache.misses == 2 and cache.hits == 0
    replayed = execute(specs, jobs=1, cache=cache)
    assert cache.hits == 2

    for a, b, c, d in zip(serial, pooled, queued, replayed):
        assert (canonical_json(a.to_dict()) == canonical_json(b.to_dict())
                == canonical_json(c.to_dict()) == canonical_json(d.to_dict()))


def test_workqueue_over_a_unix_socket(tmp_path):
    specs = probe_specs(3)
    backend = wq(address=f"unix:{tmp_path}/sweep.sock")
    assert execute(specs, backend=backend) == [s.run() for s in specs]
    assert backend.last_address.startswith("unix:")


def test_workqueue_keeps_spec_order(tmp_path):
    specs = probe_specs(6)
    out = execute(specs, backend=wq(workers=3))
    assert out == [{"label": f"p{i}", "n": i * 2} for i in range(6)]


# ---------------------------------------------------------- streaming ----
def test_streaming_yields_cache_hits_first_then_matches_barrier(tmp_path):
    specs = probe_specs(4)
    cache = ResultCache(tmp_path / "rc")
    execute([specs[1], specs[3]], cache=cache)  # warm two of four

    seen = list(execute_iter(specs, jobs=2, cache=cache))
    # hits stream first, in spec order, before any computed point
    assert [c.index for c in seen[:2]] == [1, 3]
    assert all(c.cached for c in seen[:2])
    assert not any(c.cached for c in seen[2:])
    # reassembled, the stream equals the barrier form
    by_index = {c.index: c.result for c in seen}
    assert [by_index[i] for i in range(4)] == execute(specs, jobs=1)


def test_streaming_write_back_fills_the_cache(tmp_path):
    specs = probe_specs(3)
    cache = ResultCache(tmp_path / "rc")
    list(execute_iter(specs, backend=wq(), cache=cache))
    assert cache.misses == 3
    again = ResultCache(tmp_path / "rc")
    assert execute(specs, cache=again) == [s.run() for s in specs]
    assert again.hits == 3 and again.misses == 0


# ------------------------------------------------------- fault handling ----
def test_worker_crash_resubmits_and_the_sweep_completes(tmp_path):
    """A worker dying mid-task loses a worker, not the task."""
    crash = RunSpec(runner=CRASH_ONCE, label="crashy",
                    params={"n": 7, "sentinel": str(tmp_path / "sentinel")})
    healthy = probe_specs(3)
    out = execute([crash] + healthy, backend=wq(workers=2))
    assert out[0] == {"survived": 7}
    assert out[1:] == [s.run() for s in healthy]
    assert (tmp_path / "sentinel").exists()


def test_task_that_kills_every_worker_fails_loudly(tmp_path):
    """A spec that crashes every worker trips the resubmit cap (or runs
    the fleet dry) instead of hanging the sweep forever."""
    crash = RunSpec(runner=ALWAYS_CRASH, label="fatal")
    healthy = probe_specs(3)
    with pytest.raises(WorkerTaskError):
        execute([crash] + healthy,
                backend=wq(workers=3, max_resubmits=1))


def test_runner_exception_propagates_without_retry():
    """A runner *exception* is deterministic — it must not be retried
    (the spec would just fail again) and must surface at the submitter."""
    with pytest.raises(WorkerTaskError, match="boom from angry"):
        execute([RunSpec(runner=BOOM, label="angry")], backend=wq())


def test_server_raises_when_no_worker_ever_connects():
    server = SweepServer([(0, probe_specs(1)[0].to_dict())])
    server.start("127.0.0.1:0")
    try:
        with pytest.raises(WorkerTaskError):
            list(server.results(procs=[], startup_timeout=0.2))
    finally:
        server.close()


# --------------------------------------------------- shared cache reads ----
def test_worker_reads_through_the_shared_cache(tmp_path):
    """Workers answer from the shared store without re-simulating.

    The backend is driven directly (``backend.run``) so the submitter's
    own cache check cannot mask the worker-side read-through.
    """
    spec = probe_specs(1)[0]
    cache = ResultCache(tmp_path / "rc")
    execute([spec], cache=cache)  # populate: 1 miss
    assert cache.misses == 1

    backend = wq(workers=1)
    done = list(backend.run([(0, spec)], cache=ResultCache(tmp_path / "rc")))
    assert len(done) == 1
    assert done[0].cached, "worker should have hit the shared cache"


def test_worker_cache_off_recomputes(tmp_path):
    spec = probe_specs(1)[0]
    cache = ResultCache(tmp_path / "rc")
    execute([spec], cache=cache)

    backend = wq(workers=1, worker_cache=False)
    done = list(backend.run([(0, spec)], cache=ResultCache(tmp_path / "rc")))
    assert not done[0].cached
