"""Tests for the CF list structure (paper §3.3.3)."""

import pytest

from repro.cf import ListEntry, ListStructure, LockHeldError


@pytest.fixture
def ls():
    return ListStructure("LIST1", n_headers=4, n_locks=2)


@pytest.fixture
def conns(ls):
    return [ls.connect(f"SYS{i:02d}") for i in range(2)]


def test_needs_headers():
    with pytest.raises(ValueError):
        ListStructure("BAD", n_headers=0)


def test_fifo_order(ls, conns):
    a = conns[0]
    for i in range(3):
        ls.push(a, 0, ListEntry(data=i))
    assert [ls.pop(a, 0).data for _ in range(3)] == [0, 1, 2]


def test_lifo_order(ls, conns):
    a = conns[0]
    for i in range(3):
        ls.push(a, 0, ListEntry(data=i), where="lifo")
    assert [ls.pop(a, 0).data for _ in range(3)] == [2, 1, 0]


def test_keyed_collating_sequence(ls, conns):
    a = conns[0]
    for k in (5, 1, 3):
        ls.push(a, 0, ListEntry(key=k, data=k), where="keyed")
    assert [ls.pop(a, 0).data for _ in range(3)] == [1, 3, 5]


def test_keyed_insert_stable_for_equal_keys(ls, conns):
    a = conns[0]
    ls.push(a, 0, ListEntry(key=1, data="first"), where="keyed")
    ls.push(a, 0, ListEntry(key=1, data="second"), where="keyed")
    assert ls.pop(a, 0).data == "first"


def test_unknown_discipline_rejected(ls, conns):
    with pytest.raises(ValueError):
        ls.push(conns[0], 0, ListEntry(), where="random")


def test_pop_empty_returns_none(ls, conns):
    assert ls.pop(conns[0], 0) is None


def test_entries_not_lost_or_duplicated_by_moves(ls, conns):
    """Atomic move: the total entry population is conserved."""
    a = conns[0]
    ids = []
    for i in range(10):
        e = ListEntry(data=i)
        ids.append(e.entry_id)
        ls.push(a, 0, e)
    for eid in ids[:5]:
        assert ls.move(a, 0, 1, eid)
    all_data = sorted(e.data for e in ls.read(0) + ls.read(1))
    assert all_data == list(range(10))
    assert ls.total_entries == 10


def test_move_missing_entry_returns_false(ls, conns):
    assert ls.move(conns[0], 0, 1, entry_id=999999) is False


def test_delete_specific_entry(ls, conns):
    a = conns[0]
    e1, e2 = ListEntry(data=1), ListEntry(data=2)
    ls.push(a, 0, e1)
    ls.push(a, 0, e2)
    assert ls.delete(a, 0, e1.entry_id)
    assert [e.data for e in ls.read(0)] == [2]
    assert not ls.delete(a, 0, e1.entry_id)


def test_update_entry_data(ls, conns):
    a = conns[0]
    e = ListEntry(data="old")
    ls.push(a, 0, e)
    assert ls.update(a, 0, e.entry_id, "new")
    assert ls.read(0)[0].data == "new"


def test_lock_entry_acquire_release(ls, conns):
    a, b = conns
    assert ls.lock_get(a, 0)
    assert ls.lock_get(a, 0)  # reacquire by holder ok
    assert not ls.lock_get(b, 0)
    ls.lock_release(a, 0)
    assert ls.lock_holder(0) is None
    assert ls.lock_get(b, 0)


def test_lock_release_by_nonholder_ignored(ls, conns):
    a, b = conns
    ls.lock_get(a, 0)
    ls.lock_release(b, 0)
    assert ls.lock_holder(0) == a.conn_id


def test_conditional_execution_rejected_while_locked(ls, conns):
    """Recovery sets the lock; mainline commands are rejected rather than
    having to acquire the lock on every request (paper §3.3.3)."""
    a, b = conns
    ls.lock_get(a, 0)
    with pytest.raises(LockHeldError):
        ls.push(b, 0, ListEntry(), unless_lock=0)
    with pytest.raises(LockHeldError):
        ls.pop(b, 0, unless_lock=0)
    ls.lock_release(a, 0)
    ls.push(b, 0, ListEntry(data=1), unless_lock=0)  # now fine
    assert ls.pop(b, 0, unless_lock=0).data == 1


def test_mainline_without_condition_ignores_lock(ls, conns):
    a, b = conns
    ls.lock_get(a, 0)
    ls.push(b, 0, ListEntry(data=1))  # unconditional command: allowed
    assert ls.length(0) == 1


def test_transition_signal_on_empty_to_nonempty(ls, conns):
    a, b = conns
    ls.register_monitor(b, 0, bit_index=7)
    assert ls.vector_of(b).test(7) is False
    ls.push(a, 0, ListEntry())
    assert ls.vector_of(b).test(7) is True
    assert ls.transitions_signalled == 1


def test_no_signal_when_already_nonempty(ls, conns):
    a, b = conns
    ls.push(a, 0, ListEntry())
    ls.register_monitor(b, 0, bit_index=7)
    before = ls.transitions_signalled
    ls.push(a, 0, ListEntry())  # non-empty -> non-empty: no transition
    assert ls.transitions_signalled == before


def test_monitor_registration_on_nonempty_list_sets_bit(ls, conns):
    a, b = conns
    ls.push(a, 0, ListEntry())
    ls.register_monitor(b, 0, bit_index=3)
    assert ls.vector_of(b).test(3) is True


def test_polling_cycle(ls, conns):
    """Poll, consume everything, reset bit, get signalled again."""
    a, b = conns
    ls.register_monitor(b, 0, 0)
    ls.push(a, 0, ListEntry(data=1))
    assert ls.vector_of(b).test(0)
    while ls.pop(b, 0):
        pass
    ls.clear_monitor_bit(b, 0)
    assert ls.vector_of(b).test(0) is False
    ls.push(a, 0, ListEntry(data=2))
    assert ls.vector_of(b).test(0) is True


def test_deregister_monitor(ls, conns):
    a, b = conns
    ls.register_monitor(b, 0, 0)
    ls.deregister_monitor(b, 0)
    ls.push(a, 0, ListEntry())
    assert ls.transitions_signalled == 0


def test_purge_connector_releases_locks_and_monitors(ls, conns):
    a, b = conns
    ls.lock_get(a, 0)
    ls.register_monitor(a, 1, 0)
    ls.disconnect(a)
    assert ls.lock_holder(0) is None
    ls.push(b, 1, ListEntry())
    assert ls.transitions_signalled == 0
