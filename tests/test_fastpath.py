"""Tests for the uncontended fast paths through the CF command stack.

The fast paths (``repro.cf.commands.FAST_PATH``, the lock-manager
single-frame grant, the buffer-manager ``try_get_local``) are pure
machinery: they must change *nothing* observable about a run — not the
event timing, not the RNG draw order, not a single statistic.  These
tests pin that contract on a contended-by-construction scenario, gate the
events-per-transaction cost metric, and check the robustness/chaos
configurations stay off the fast path entirely.
"""

import pytest

import repro.cf.commands as commands
from repro.config import CfConfig
from repro.experiments.common import QUICK, scaled_config
from repro.options import RunOptions
from repro.runner import build_loaded_sysplex, run_oltp
from repro.simkernel import Resource, Simulator

#: events_per_committed_txn measured for the Table-1 base quick point
#: (1 system, no data sharing, seed 1) when the fast paths landed.  The
#: count is deterministic for a fixed seed; growth means new event
#: machinery crept onto the per-transaction path.
TAB1_BASE_EVENTS_PER_TXN = 60.5


def _run(cfg, duration=0.25, warmup=0.15):
    """run_oltp, but keeping the sysplex so tests can inspect the ports."""
    plex, _gen = build_loaded_sysplex(cfg, options=RunOptions())
    plex.sim.run(until=warmup)
    plex.reset_measurement()
    plex.sim.run(until=warmup + duration)
    return plex, plex.collect("fastpath-test")


def _ports(plex):
    for inst in plex.instances.values():
        for xes in (inst.xes_lock, inst.xes_cache, inst.xes_list):
            if xes is not None and hasattr(xes, "port"):
                yield xes.port


# ------------------------------------------------------------ equivalence ----
def test_fast_path_identical_under_contention(monkeypatch):
    """Fast on vs. off: byte-identical results on a contended scenario.

    A single CF processor serving 8 saturated systems queues commands by
    construction, so the flattened path's contended branches (subchannel
    wait, processor wait) all execute — and must reproduce the general
    path's event sequence exactly.
    """
    # one slow CF processor serving 8 systems: commands queue at the
    # subchannels and at the CF engine on most requests
    cfg = scaled_config(8, 1, seed=1,
                        cf=CfConfig(n_cpus=1, cmd_service=12e-6,
                                    data_cmd_service=24e-6))

    monkeypatch.setattr(commands, "FAST_PATH", False)
    plex_gen, res_gen = _run(cfg)
    assert all(p.fast_syncs == 0 for p in _ports(plex_gen))

    monkeypatch.setattr(commands, "FAST_PATH", True)
    plex_fast, res_fast = _run(cfg)
    assert sum(p.fast_syncs for p in _ports(plex_fast)) > 0

    # contended by construction: the lone CF processor is the bottleneck
    assert res_gen.cf_utilization > 0.5
    assert res_fast.to_dict() == res_gen.to_dict()


def test_collapsed_mode_statistically_neutral(monkeypatch):
    """COLLAPSE merges events (not byte-safe at saturation, hence opt-in)
    but must stay statistically indistinguishable from the general path."""
    cfg = scaled_config(4, 1, seed=1)

    monkeypatch.setattr(commands, "COLLAPSE", False)
    _, res_default = _run(cfg)
    monkeypatch.setattr(commands, "COLLAPSE", True)
    plex_col, res_col = _run(cfg)

    assert sum(p.fast_syncs for p in _ports(plex_col)) > 0
    assert res_col.completed == pytest.approx(res_default.completed, rel=0.05)
    assert res_col.response_mean == pytest.approx(
        res_default.response_mean, rel=0.10)


# ------------------------------------------------------------- cost gate ----
def test_events_per_committed_txn_no_regression():
    cfg = scaled_config(1, 1, data_sharing=False, seed=1)
    result = run_oltp(cfg, duration=QUICK["duration"],
                      warmup=QUICK["warmup"])
    assert result.sim_events > 0
    assert result.completed > 0
    assert result.events_per_committed_txn <= 1.10 * TAB1_BASE_EVENTS_PER_TXN


def test_sim_events_excluded_from_payloads():
    """The machine-cost counter must never leak into golden payloads."""
    cfg = scaled_config(1, 1, data_sharing=False, seed=1)
    result = run_oltp(cfg, duration=0.1, warmup=0.05)
    assert result.sim_events > 0
    assert "sim_events" not in result.to_dict()


# ------------------------------------------------------ robustness gating ----
def test_request_timeout_disables_fast_path():
    """Chaos/robustness runs (request_timeout set) need the general path's
    retry/ICC machinery — the fast path must never engage."""
    cfg = scaled_config(2, 1, seed=1,
                        cf=CfConfig(request_timeout=0.005))
    plex, result = _run(cfg, duration=0.15, warmup=0.1)
    ports = list(_ports(plex))
    assert ports and all(not p._fast for p in ports)
    assert all(p.fast_syncs == 0 for p in ports)
    assert sum(p.sync_ops for p in ports) > 0
    assert result.completed > 0


def test_tracing_disables_fast_path():
    cfg = scaled_config(2, 1, seed=1)
    plex, _gen = build_loaded_sysplex(
        cfg, options=RunOptions(tracing=True))
    ports = list(_ports(plex))
    assert ports and all(not p._fast for p in ports)


# ------------------------------------------------------ kernel primitives ----
def test_try_acquire_grants_only_when_truly_free():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.try_acquire()
    assert req is not None and req.processed
    assert res.try_acquire() is None  # full
    req.cancel()
    assert res.try_acquire() is not None


def test_try_acquire_defers_to_waiters():
    """A queued waiter must keep FIFO priority over opportunistic claims."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()

    got = []

    def waiter():
        req = res.request()
        yield req
        got.append("waiter")
        req.cancel()

    sim.process(waiter(), name="w")
    sim.run(until=0.1)
    assert res.try_acquire() is None  # unit busy AND a waiter queued
    first.cancel()
    sim.run(until=0.2)
    assert got == ["waiter"]


def test_timeout_at_matches_relative_chain():
    sim = Simulator()
    seen = []

    def p():
        yield sim.timeout(0.25)
        seen.append(sim.now)
        yield sim.timeout_at(0.75, "x")
        seen.append(sim.now)

    sim.process(p(), name="p")
    sim.run()
    assert seen == [0.25, 0.75]
    with pytest.raises(ValueError):
        sim.timeout_at(sim.now - 1.0)
