"""Tests for the uncontended fast paths through the CF command stack.

The *byte-safe* fast paths (``repro.cf.commands.FAST_PATH``, the
lock-manager single-frame grant, the buffer-manager ``try_get_local``)
are pure machinery: they must change *nothing* observable about a run —
not the event timing, not the RNG draw order, not a single statistic.
The *collapsed* execution (``profile="sweep"``: event merging + scalar
resource holds + the calendar-queue scheduler) trades byte identity for
speed and must stay statistically neutral.  These tests pin both
contracts — including the full 22-point golden grid against the
pre-refactor payload hashes — gate the events-per-transaction cost
metric, and check the robustness/chaos configurations stay off the fast
path entirely.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

import repro.cf.commands as commands
from repro.config import CfConfig
from repro.executor import _payload_from
from repro.experiments.common import QUICK, scaled_config
from repro.experiments.fig3_scalability import fig3_specs
from repro.experiments.tab1_overhead import tab1_specs
from repro.options import RunOptions
from repro.runner import build_loaded_sysplex, run_oltp
from repro.runspec import canonical_json
from repro.simkernel import Resource, Simulator

#: events_per_committed_txn measured for the Table-1 base quick point
#: (1 system, no data sharing, seed 1) under the golden verify profile
#: when the fast paths landed.  The count is deterministic for a fixed
#: seed; growth means new event machinery crept onto the
#: per-transaction path.
TAB1_BASE_EVENTS_PER_TXN = 60.5

GOLDEN_GRID = Path(__file__).parent / "data" / "golden_grid.json"
GOLDEN_DUPLEX = Path(__file__).parent / "data" / "golden_duplex.json"


def _run(cfg, duration=0.25, warmup=0.15, options=None):
    """run_oltp, but keeping the sysplex so tests can inspect the ports."""
    plex, _gen = build_loaded_sysplex(cfg, options=options or RunOptions())
    plex.sim.run(until=warmup)
    plex.reset_measurement()
    plex.sim.run(until=warmup + duration)
    return plex, plex.collect("fastpath-test")


def _ports(plex):
    for inst in plex.instances.values():
        for xes in (inst.xes_lock, inst.xes_cache, inst.xes_list):
            if xes is not None and hasattr(xes, "port"):
                yield xes.port


# ------------------------------------------------------------ equivalence ----
def test_fast_path_identical_under_contention(monkeypatch):
    """Fast on vs. off: byte-identical results on a contended scenario.

    A single CF processor serving 8 saturated systems queues commands by
    construction, so the flattened path's contended branches (subchannel
    wait, processor wait) all execute — and must reproduce the general
    path's event sequence exactly.
    """
    # one slow CF processor serving 8 systems: commands queue at the
    # subchannels and at the CF engine on most requests
    cfg = scaled_config(8, 1, seed=1,
                        cf=CfConfig(n_cpus=1, cmd_service=12e-6,
                                    data_cmd_service=24e-6))
    verify = RunOptions(profile="verify")

    monkeypatch.setattr(commands, "FAST_PATH", False)
    plex_gen, res_gen = _run(cfg, options=verify)
    assert all(p.fast_syncs == 0 for p in _ports(plex_gen))

    monkeypatch.setattr(commands, "FAST_PATH", True)
    plex_fast, res_fast = _run(cfg, options=verify)
    assert sum(p.fast_syncs for p in _ports(plex_fast)) > 0

    # contended by construction: the lone CF processor is the bottleneck
    assert res_gen.cf_utilization > 0.5
    assert res_fast.to_dict() == res_gen.to_dict()


def test_collapsed_mode_statistically_neutral():
    """The sweep profile merges events (not byte-safe at saturation) but
    must stay statistically indistinguishable from the golden path."""
    cfg = scaled_config(4, 1, seed=1)

    _, res_default = _run(cfg, options=RunOptions(profile="verify"))
    plex_col, res_col = _run(cfg, options=RunOptions(profile="sweep"))

    assert sum(p.fast_syncs for p in _ports(plex_col)) > 0
    assert res_col.completed == pytest.approx(res_default.completed, rel=0.05)
    assert res_col.response_mean == pytest.approx(
        res_default.response_mean, rel=0.10)


def test_collapse_cuts_events_for_the_same_outcome():
    """Collapse is the sweep profile's whole point: materially fewer
    calendar events for a statistically identical run."""
    cfg = scaled_config(2, 1, seed=1)
    plex_v, _ = _run(cfg, options=RunOptions(profile="verify"))
    plex_s, _ = _run(cfg, options=RunOptions(profile="sweep"))
    assert plex_s.sim.events_processed < 0.8 * plex_v.sim.events_processed


# ------------------------------------------------------------- cost gate ----
def test_events_per_committed_txn_no_regression():
    cfg = scaled_config(1, 1, data_sharing=False, seed=1)
    verify = run_oltp(cfg, duration=QUICK["duration"],
                      warmup=QUICK["warmup"],
                      options=RunOptions(profile="verify"))
    assert verify.sim_events > 0
    assert verify.completed > 0
    assert verify.events_per_committed_txn <= 1.10 * TAB1_BASE_EVENTS_PER_TXN
    # the sweep default must only ever *cut* per-transaction machinery
    sweep = run_oltp(cfg, duration=QUICK["duration"],
                     warmup=QUICK["warmup"],
                     options=RunOptions(profile="sweep"))
    assert sweep.events_per_committed_txn < verify.events_per_committed_txn


def test_sim_events_excluded_from_payloads():
    """The machine-cost counter must never leak into golden payloads."""
    cfg = scaled_config(1, 1, data_sharing=False, seed=1)
    result = run_oltp(cfg, duration=0.1, warmup=0.05)
    assert result.sim_events > 0
    assert "sim_events" not in result.to_dict()


# ------------------------------------------------------------ golden grid ----
def _grid_specs():
    return {s.label: s for s in fig3_specs() + tab1_specs()}


def _payload_sha(spec):
    payload = json.loads(canonical_json(_payload_from(spec.run())))
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest(), payload


#: Default byte-identity coverage: one point per grid family (TCMP,
#: small/medium plex, the non-sharing base, the DS-overhead pairs) keeps
#: the test under ~15 s.  Set ``REPRO_FULL_GRID=1`` to check all 22
#: points (~80 s) — the CI golden-grid job does.
_SUBSET = ("base-1cpu", "tcmp-4", "tcmp-10", "plex-1", "plex-4", "plex-8",
           "1-system no-DS", "2-system DS", "8-system DS")


def test_verify_profile_reproduces_golden_grid():
    """The heapq/verify backend is byte-identical to pre-refactor main."""
    fixture = json.loads(GOLDEN_GRID.read_text())
    golden = {p["label"]: p for p in fixture["points"]}
    labels = (list(golden) if os.environ.get("REPRO_FULL_GRID")
              else list(_SUBSET))
    specs = _grid_specs()
    for label in labels:
        sha, _payload = _payload_sha(specs[label].replace(profile="verify"))
        assert sha == golden[label]["payload_sha256"], label


def test_verify_profile_reproduces_golden_duplex():
    """The duplexed-write protocol is itself byte-pinned: a duplexed
    chaos run under the verify profile reproduces its golden payload
    hash (the simplex grid above already pins duplex="none")."""
    from repro.experiments.exp_chaos import chaos_spec

    fixture = json.loads(GOLDEN_DUPLEX.read_text())
    for point in fixture["points"]:
        spec = chaos_spec(seed=1, duplex="all", horizon=1.5, drain=1.0,
                          window=0.5).replace(profile="verify")
        assert spec.label == point["label"]
        sha, payload = _payload_sha(spec)
        assert sha == point["payload_sha256"], point["label"]
        assert payload["data"]["summary"]["completed"] == point["completed"]


def test_sweep_default_statistically_neutral_vs_golden():
    """COLLAPSE-by-default: sweep payloads stay within statistical
    tolerance of the golden fixtures.  The deltas are exact per-seed
    numbers (both paths are deterministic), not machine noise; the worst
    observed throughput delta across the 22-point grid is 6.7%."""
    specs = _grid_specs()
    fixture = json.loads(GOLDEN_GRID.read_text())
    golden = {p["label"]: p for p in fixture["points"]}
    for label in ("tcmp-4", "plex-4", "2-system DS"):
        payload = json.loads(canonical_json(
            _payload_from(specs[label].replace(profile="sweep").run())))
        data = payload["data"]
        g = golden[label]
        assert data["completed"] == pytest.approx(
            g["completed"], rel=0.10), label
        assert data["response_mean"] == pytest.approx(
            g["response_mean"], rel=0.25), label


def test_scheduler_backends_byte_identical():
    """heap vs calendar under identical options: identical payload bytes."""
    spec = _grid_specs()["tcmp-4"]
    sha_h, _ = _payload_sha(spec.replace(scheduler="heap"))
    sha_c, _ = _payload_sha(spec.replace(scheduler="calendar"))
    assert sha_h == sha_c


# ------------------------------------------------------ robustness gating ----
def test_request_timeout_disables_fast_path():
    """Chaos/robustness runs (request_timeout set) need the general path's
    retry/ICC machinery — the fast path must never engage."""
    cfg = scaled_config(2, 1, seed=1,
                        cf=CfConfig(request_timeout=0.005))
    plex, result = _run(cfg, duration=0.15, warmup=0.1)
    ports = list(_ports(plex))
    assert ports and all(not p._fast for p in ports)
    assert all(p.fast_syncs == 0 for p in ports)
    assert sum(p.sync_ops for p in ports) > 0
    assert result.completed > 0


def test_tracing_disables_fast_path():
    cfg = scaled_config(2, 1, seed=1)
    plex, _gen = build_loaded_sysplex(
        cfg, options=RunOptions(tracing=True))
    ports = list(_ports(plex))
    assert ports and all(not p._fast for p in ports)


# ------------------------------------------------------ kernel primitives ----
def test_try_acquire_grants_only_when_truly_free():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.try_acquire()
    assert req is not None and req.processed
    assert res.try_acquire() is None  # full
    req.cancel()
    assert res.try_acquire() is not None


def test_try_acquire_defers_to_waiters():
    """A queued waiter must keep FIFO priority over opportunistic claims."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()

    got = []

    def waiter():
        req = res.request()
        yield req
        got.append("waiter")
        req.cancel()

    sim.process(waiter(), name="w")
    sim.run(until=0.1)
    assert res.try_acquire() is None  # unit busy AND a waiter queued
    first.cancel()
    sim.run(until=0.2)
    assert got == ["waiter"]


def test_timeout_at_matches_relative_chain():
    sim = Simulator()
    seen = []

    def p():
        yield sim.timeout(0.25)
        seen.append(sim.now)
        yield sim.timeout_at(0.75, "x")
        seen.append(sim.now)

    sim.process(p(), name="p")
    sim.run()
    assert seen == [0.25, 0.75]
    with pytest.raises(ValueError):
        sim.timeout_at(sim.now - 1.0)
