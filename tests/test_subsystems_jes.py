"""Tests for the JES-style shared batch queue (multi-access spool)."""


from repro import RunOptions
from repro.cf import ListStructure
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import build_loaded_sysplex
from repro.subsystems.jes import BatchJob, JesMember, JesSpool


def make_jes(n=3, initiators=None):
    cfg = SysplexConfig(
        n_systems=n,
        db=DatabaseConfig(n_pages=6_000, buffer_pages=2_000),
    )
    plex, gen = build_loaded_sysplex(cfg, options=RunOptions(terminals_per_system=0))
    spool = JesSpool(n_members=n)
    plex.xes.allocate(ListStructure("JESCKPT", n_headers=spool.n_headers))
    members = []
    for i, inst in enumerate(plex.instances.values()):
        xes = plex.xes.connect(inst.node, "JESCKPT")
        members.append(
            JesMember(plex.sim, inst.node, plex.farm, spool, xes, i,
                      initiators or {"A": 2, "B": 1},
                      plex.streams.stream(f"jes-{i}"))
        )
    return plex, spool, members


def submit_jobs(plex, member, jobs):
    def do():
        for job in jobs:
            yield from member.submit(job)

    plex.sim.process(do())


def test_jobs_run_exactly_once():
    plex, spool, members = make_jes()
    jobs = [BatchJob(job_id=i, cpu_seconds=0.01, io_count=1)
            for i in range(30)]
    submit_jobs(plex, members[0], jobs)
    plex.sim.run(until=5.0)
    assert spool.submitted == 30
    assert spool.completed == 30
    assert all(j.runs == 1 for j in jobs)
    # work was shared across the members (multi-access spool)
    ran = [m.jobs_run for m in members]
    assert sum(ran) == 30
    assert sum(1 for r in ran if r > 0) >= 2


def test_priority_order_within_class():
    plex, spool, members = make_jes(n=1, initiators={"A": 1, "B": 1})
    finished = []

    class TrackedJob(BatchJob):
        pass

    jobs = [BatchJob(job_id=i, priority=p, cpu_seconds=0.005, io_count=0)
            for i, p in enumerate([9, 1, 5])]

    def do():
        for job in jobs:
            yield from members[0].submit(job)

    plex.sim.process(do())
    plex.sim.run(until=3.0)
    assert spool.completed == 3
    # completion order follows priority (1 first, then 5, then 9) for
    # jobs submitted before any started... allow the first-taken to be
    # whatever was alone in the queue at take time, but 1 beats 9:
    assert jobs[1].runs == 1


def test_classes_served_by_their_initiators():
    plex, spool, members = make_jes(n=2, initiators={"A": 1, "B": 1})
    a_jobs = [BatchJob(job_id=i, job_class="A", cpu_seconds=0.005,
                       io_count=0) for i in range(5)]
    b_jobs = [BatchJob(job_id=100 + i, job_class="B", cpu_seconds=0.005,
                       io_count=0) for i in range(5)]
    submit_jobs(plex, members[0], a_jobs + b_jobs)
    plex.sim.run(until=5.0)
    assert spool.completed == 10


def test_member_failure_requeues_parked_jobs():
    """Jobs executing on a dead member are recovered by a peer and run to
    completion elsewhere (restart counts recorded)."""
    plex, spool, members = make_jes(n=2, initiators={"A": 2})
    jobs = [BatchJob(job_id=i, cpu_seconds=0.2, io_count=2)
            for i in range(6)]
    submit_jobs(plex, members[0], jobs)

    def kill_and_recover():
        yield plex.sim.timeout(0.15)  # some jobs are mid-execution
        plex.nodes[1].fail()
        yield plex.sim.timeout(0.1)
        n = yield from members[0].recover_member(dead_index=1)
        assert n >= 0

    plex.sim.process(kill_and_recover())
    plex.sim.run(until=15.0)
    assert spool.completed == 6
    # at least the jobs that died mid-run were started twice
    assert spool.requeued >= 0
    if spool.requeued:
        assert any(j.runs == 2 for j in jobs)
    # nothing left parked anywhere
    st = plex.xes.find("JESCKPT")
    for h in range(spool.n_headers):
        assert st.length(h) == 0


def test_turnaround_recorded():
    plex, spool, members = make_jes()
    jobs = [BatchJob(job_id=i, cpu_seconds=0.01, io_count=1)
            for i in range(10)]
    submit_jobs(plex, members[0], jobs)
    plex.sim.run(until=5.0)
    assert spool.turnaround.n == 10
    assert spool.turnaround.mean > 0


def test_batch_runs_beneath_online_priority():
    """Initiators consume CPU at discretionary priority: an online burst
    on the same engine is served ahead of batch slices."""
    plex, spool, members = make_jes(n=1, initiators={"A": 1})
    node = plex.nodes[0]
    jobs = [BatchJob(job_id=1, cpu_seconds=0.5, io_count=0)]
    submit_jobs(plex, members[0], jobs)
    plex.sim.run(until=0.1)  # batch is mid-burn
    online_done = []

    def online():
        yield from node.cpu.consume(0.005)  # priority 1 (default NORMAL)
        online_done.append(plex.sim.now)

    t0 = plex.sim.now
    plex.sim.process(online())
    plex.sim.run(until=t0 + 0.1)
    # the online request got the engine within a couple of batch slices
    assert online_done and online_done[0] - t0 < 0.01
