"""Calibration cross-checks: the analytic models agree with what the
simulation measures (the guides' rule: no optimization or calibration
claims without measurement)."""

import pytest

from repro.config import CpuConfig, SysplexConfig
from repro.experiments.common import scaled_config
from repro.runner import run_oltp


def test_mp_effect_analytic_matches_measured():
    """Measured ITR of an n-way TCMP tracks the analytic effective-engine
    curve within a few percent."""
    base = run_oltp(
        scaled_config(1, 1, data_sharing=False),
        duration=0.4, warmup=0.3,
    )
    base_itr = base.throughput / base.mean_utilization
    for n in (2, 6):
        cfg = scaled_config(1, n, data_sharing=False)
        r = run_oltp(cfg, duration=0.4, warmup=0.3)
        measured = (r.throughput / r.mean_utilization) / base_itr
        analytic = CpuConfig(n_cpus=n).effective_engines()
        assert measured == pytest.approx(analytic, rel=0.08), (
            f"{n}-way: measured {measured:.2f} vs analytic {analytic:.2f}"
        )


def test_data_sharing_tax_in_band():
    """The §4 headline emerges from the cost model in the calibrated
    band (DESIGN.md §4): 1->2 systems costs 15-25% CPU per transaction."""
    base = run_oltp(
        scaled_config(1, 1, data_sharing=False),
        duration=0.4, warmup=0.3,
    )
    ds = run_oltp(scaled_config(2, 1), duration=0.4, warmup=0.3)
    cpu_base = base.mean_utilization * base.duration / base.completed
    cpu_ds = 2 * ds.mean_utilization * ds.duration / ds.completed
    tax = cpu_ds / cpu_base - 1
    assert 0.15 < tax < 0.25, f"data-sharing tax {tax:.3f} out of band"


def test_sync_command_cost_formula():
    """A sync lock command's latency decomposes into its configured
    parts: issue CPU + 2x link latency + transfer + CF service."""
    from repro.cf import CfPort, CouplingFacility, LockMode, LockStructure
    from repro.config import CfConfig, LinkConfig
    from repro.hardware import LinkSet, SystemNode
    from repro.simkernel import Simulator

    sim = Simulator()
    cf_cfg = CfConfig()
    link_cfg = LinkConfig()
    node = SystemNode(sim, SysplexConfig(n_systems=1), 0)
    cf = CouplingFacility(sim, cf_cfg)
    port = CfPort(node, cf, LinkSet(sim, link_cfg), cf_cfg)
    st = LockStructure("L", 1 << 10)
    cf.allocate(st)
    conn = st.connect("SYS00")
    t = []

    def work():
        t0 = sim.now
        yield from port.sync(lambda: st.request(conn, "r", LockMode.SHR))
        t.append(sim.now - t0)

    sim.process(work())
    sim.run()
    expected = (
        cf_cfg.sync_issue_cpu
        + 2 * link_cfg.latency
        + link_cfg.transfer_time(128)
        + cf_cfg.cmd_service
    )
    assert t[0] == pytest.approx(expected, rel=1e-9)


def test_effective_engines_bounds():
    cfg = CpuConfig()
    for n in range(1, 11):
        eff = cfg.effective_engines(n)
        assert 1 <= eff <= n or n == 1
        assert eff <= n
