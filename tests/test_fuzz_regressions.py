"""Fuzzer-emitted fixtures are a regression corpus: every committed
scenario under ``tests/fixtures/fuzz/`` must stay a *clean* run — no
crash, no invariant violation — exactly as it was when the fuzzer
admitted it.  A fixture turning red means a simulator change broke a
scenario the fuzzer once certified (the shrunk repro is the file
itself: ``python -m repro.fuzz --replay <path>``).

New fixtures come from nightly campaigns via
``python -m repro.fuzz --emit-fixtures tests/fixtures/fuzz/``.
"""

from pathlib import Path

import pytest

from repro.fuzz import outcome_key
from repro.runspec import RunSpec

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "fuzz"
FIXTURES = sorted(FIXTURE_DIR.glob("*.json"))


def test_fixture_corpus_is_committed():
    # the glob below silently parametrizes to nothing on an empty
    # directory — catch an accidentally deleted corpus loudly instead
    assert FIXTURES, f"no fuzz fixtures found under {FIXTURE_DIR}"


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_stays_clean(path):
    spec = RunSpec.from_json(path.read_text())
    key, _payload, detail = outcome_key(spec)
    assert key is None, f"{path.name} regressed: {key}: {detail}"
