"""Fuzzer: feature map, mutation/shrink determinism, oracles, CLI."""

import random
from dataclasses import replace as dc_replace
from types import SimpleNamespace

import pytest

import repro.experiments.__main__ as exp_main
from repro.adversaries import adversary_spec, base_spec, edit_config
from repro.fuzz import (
    DIMENSIONS,
    GEOMETRY,
    _bucket,
    features,
    fuzz,
    main,
    mutate,
    outcome_key,
    replay,
    seed_specs,
    shrink,
)
from repro.invariants import InvariantChecker
from repro.runspec import RunSpec


# ------------------------------------------------ feature map ----
def test_bucket_edges():
    assert _bucket(0.0) == "b0"
    assert _bucket(0.05) == "b1"
    assert _bucket(1.0) == "b4"  # bisect_right: the edge itself rounds up
    assert _bucket(10_000) == "b10"


def test_bucket_monotonic():
    values = [0.0, 0.01, 0.2, 0.7, 1.5, 3.0, 7.0, 20.0, 60.0, 500.0, 2000.0]
    buckets = [int(_bucket(v)[1:]) for v in values]
    assert buckets == sorted(buckets)


def _payload():
    return {
        "invariants": {"branches": {"retained:none": 3}, "violations": []},
        "degraded": [[0.5, "cf-request-timeout:CF00"]],
        "outcomes": [
            [1.2, "crash:SYS00", "fired"],
            [1.4, "sick:SYS01", "skipped"],
        ],
        "summary": {
            "completed": 100,
            "lost": 0,
            "rebuilds_started": 1,
            "pathology": {
                "lock_waits": 50,
                "deadlocks": 0,
                "xi_signals": 200,
                "false_contention_rate": 0.0,
                "castout_backlog": 0,
                "cache_full": 0,
                "retained_locks": 0,
                "sick_systems": 1,
                "partitioned": 0,
            },
        },
    }


def test_features_cover_branches_events_and_buckets():
    f = features(_payload())
    assert "branch:retained:none" in f
    assert "degraded:cf-request-timeout" in f
    assert "chaos:crash:fired" in f
    assert "chaos:sick:skipped" in f
    assert "waits:" + _bucket(0.5) in f  # 50 waits / 100 txns
    assert "xi:" + _bucket(2.0) in f
    assert "sick:1" in f


def test_violations_become_features():
    p = _payload()
    p["invariants"]["violations"] = [{"name": "lock-safety", "detail": "x"}]
    assert "violation:lock-safety" in features(p)


# ------------------------------------------------ dimensions + mutation ----
def test_dimensions_get_set_roundtrip():
    spec = base_spec(seed=1, **GEOMETRY)
    for dim in DIMENSIONS:
        value = next(c for c in dim.choices if c != dim.get(spec))
        changed = dim.set(spec, value)
        assert dim.get(changed) == value, dim.name
        assert changed.content_hash() != spec.content_hash(), dim.name


def test_mutate_is_deterministic_in_the_rng():
    spec = base_spec(seed=1, **GEOMETRY)
    a, ops_a = mutate(spec, random.Random(7))
    b, ops_b = mutate(spec, random.Random(7))
    assert ops_a == ops_b
    assert a.content_hash() == b.content_hash()
    assert ops_a  # at least one op applied


def test_seed_specs_distinct():
    specs = seed_specs(seed=0)
    assert len(specs) == 9  # base + 7 adversaries + chaos soak
    assert len({s.content_hash() for s in specs}) == len(specs)


# ------------------------------------------------ campaign determinism ----
def test_campaign_is_a_pure_function_of_budget_and_seed():
    seeds = [base_spec(seed=1, **GEOMETRY)]
    a = fuzz(budget=2, seed=0, quiet=True, seeds=seeds)
    b = fuzz(budget=2, seed=0, quiet=True, seeds=seeds)
    assert a.to_dict() == b.to_dict()
    assert a.ok
    assert a.stats["corpus"] >= 1


# ------------------------------------------------ planted bug -> shrink ----
def _plant_bug(monkeypatch):
    """Weaken the checker: coarse lock tables become an invariant bug."""
    real = InvariantChecker._check_lock_safety

    def planted(self):
        real(self)
        if self.plex.config.cf.lock_table_entries < 1024:
            self._record("planted-bug", "coarse lock table (planted)")

    monkeypatch.setattr(InvariantChecker, "_check_lock_safety", planted)


def test_planted_bug_is_found_shrunk_and_replayable(tmp_path, monkeypatch):
    _plant_bug(monkeypatch)
    seeds = [adversary_spec("false_contention", seed=1, **GEOMETRY)]
    result = fuzz(budget=0, seed=0, out=tmp_path, quiet=True, seeds=seeds)
    assert not result.ok
    [failure] = result.failures
    assert failure["key"] == "invariant:planted-bug"

    # shrunk to the single guilty dimension: everything else is base
    minimal = RunSpec.from_dict(failure["spec"])
    base = base_spec(seed=1, **GEOMETRY)
    diffs = [d.name for d in DIMENSIONS if d.get(minimal) != d.get(base)]
    assert diffs == ["cf.lock_table_entries"]
    assert minimal.config.cf.lock_table_entries == 64

    # the repro file on disk is a loadable spec and still trips the oracle
    assert (tmp_path / "corpus.json").is_file()
    assert (tmp_path / "coverage.json").is_file()
    [path] = sorted((tmp_path / "failures").glob("*.json"))
    spec = RunSpec.from_json(path.read_text())
    assert spec.content_hash() == failure["spec_hash"]
    assert replay(path, quiet=True) == 0


def test_shrinker_is_deterministic(monkeypatch):
    _plant_bug(monkeypatch)
    spec = adversary_spec("false_contention", seed=1, **GEOMETRY)
    spec = edit_config(spec, db={"n_pages": 600})
    spec = spec.replace(config=dc_replace(spec.config, n_dasd=16))
    m1, r1 = shrink(spec, "invariant:planted-bug", seed=0)
    m2, r2 = shrink(spec, "invariant:planted-bug", seed=0)
    assert m1.to_dict() == m2.to_dict()
    assert r1 == r2
    key, _payload, _detail = outcome_key(m1)
    assert key == "invariant:planted-bug"  # the minimal spec still fails


# ------------------------------------------------ replay CLI ----
def test_replay_cli_on_a_clean_bare_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(base_spec(seed=1, **GEOMETRY).to_json())
    assert main(["--replay", str(path), "--quiet"]) == 0


# ------------------------------------------------ --expect-no-misses ----
# the CI warm-cache assertion (experiments-smoke) the workflows rely on


def _fake_experiment(miss):
    def main(quick, seed, execution):
        if miss:
            execution.cache.misses += 1

    return SimpleNamespace(__name__="repro.experiments.exp_fake", main=main)


def test_expect_no_misses_passes_on_warm_cache(tmp_path, monkeypatch):
    monkeypatch.setattr(exp_main, "ALL", (_fake_experiment(miss=False),))
    exp_main.main(
        ["--filter", "fake", "--cache-dir", str(tmp_path), "--expect-no-misses"]
    )


def test_expect_no_misses_fails_on_a_cold_cache(tmp_path, monkeypatch):
    monkeypatch.setattr(exp_main, "ALL", (_fake_experiment(miss=True),))
    with pytest.raises(SystemExit, match="cache missed"):
        exp_main.main(
            [
                "--filter",
                "fake",
                "--cache-dir",
                str(tmp_path),
                "--expect-no-misses",
            ]
        )


def test_expect_no_misses_requires_the_cache():
    with pytest.raises(SystemExit, match="needs the cache"):
        exp_main.main(["--filter", "tab1", "--no-cache", "--expect-no-misses"])


# ------------------------------------------------ kernel execution axes ----
def test_scheduler_and_collapse_are_fuzz_dimensions():
    names = {d.name for d in DIMENSIONS}
    assert "options.scheduler" in names
    assert "options.collapse" in names


def test_cross_backend_determinism():
    """The byte-determinism contract holds *across* calendar backends:
    the same spec run on heap and on calendar produces identical
    canonical payloads (collapse on and off alike)."""
    from repro.runspec import canonical_json

    spec = base_spec(seed=3, **GEOMETRY)
    for collapse in (False, True):
        heap = spec.replace(scheduler="heap", collapse=collapse).run()
        cal = spec.replace(scheduler="calendar", collapse=collapse).run()
        assert canonical_json(heap) == canonical_json(cal), collapse
