"""Edge-case failure tests: fail-stop of zombies, CPU purge, link
outages, CF death mid-command."""


from repro import RunOptions
from repro.config import DatabaseConfig, SysplexConfig
from repro.hardware import LinkDownError, SystemNode
from repro.hardware.cpu import SystemDown
from repro.runner import build_loaded_sysplex
from repro.simkernel import Simulator


def small_cfg(n=3, **kw):
    return SysplexConfig(
        n_systems=n,
        db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000),
        **kw,
    )


# ------------------------------------------------------ SFM fail-stop ----
def test_sfm_terminates_zombie_system():
    """A system that stops heartbeating while still 'running' is
    fail-stopped by SFM (the paper's flaky-processor scenario)."""
    plex, gen = build_loaded_sysplex(small_cfg(3), options=RunOptions(terminals_per_system=2))
    victim = plex.nodes[1]
    # break ONLY the heartbeat: the node stays alive (zombie-ish)
    plex.sim.call_at(1.0, lambda: setattr(victim, "_zombie", True))
    original_loop_interval = plex.config.xcf.heartbeat_interval

    # monkey-patch: CDS updates from the victim stop landing
    orig_update = plex.cds.update

    def filtered_update(holder, key, value):
        if getattr(victim, "_zombie", False) and holder == victim.name:
            yield plex.sim.timeout(0)  # write lost
            return
        yield from orig_update(holder, key, value)

    plex.cds.update = filtered_update
    plex.sim.run(until=6.0)
    # the detector terminated and fenced the zombie
    assert not victim.alive
    assert victim.fenced
    assert plex.monitor.detections == 1


def test_cpu_purge_fails_queued_work():
    sim = Simulator()
    node = SystemNode(sim, SysplexConfig(n_systems=1), 0)
    outcomes = []

    def worker(tag):
        try:
            yield from node.cpu.consume(0.5)
            outcomes.append((tag, "done"))
        except SystemDown:
            outcomes.append((tag, "killed"))

    sim.process(worker("running"))   # gets the engine
    sim.process(worker("queued"))    # waits behind it

    def killer():
        yield sim.timeout(0.1)
        node.fail()

    sim.process(killer())
    sim.run(until=2.0)
    states = dict(outcomes)
    # the queued request was failed immediately by the purge
    assert states["queued"] == "killed"
    # the running one burned out its grant but its completion is moot
    assert "running" in states


def test_purge_counts():
    sim = Simulator()
    node = SystemNode(sim, SysplexConfig(n_systems=1), 0)

    def worker():
        try:
            yield from node.cpu.consume(1.0)
        except SystemDown:
            pass

    for _ in range(4):
        sim.process(worker())
    sim.run(until=0.01)
    assert node.cpu.engines.in_use == 1
    purged = node.cpu.purge_queued()
    assert purged == 3
    sim.run(until=2)


# ------------------------------------------------------ link outages ----
def test_all_links_down_fails_cf_commands():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    inst = plex.instances["SYS00"]
    links = inst.node.cf_links["CF01"]
    for i in range(len(links.links)):
        links.fail_link(i)
    failed = []

    def work():
        try:
            yield from inst.buffers.get_page(1)
        except LinkDownError:
            failed.append(True)
        except Exception as exc:  # lock path raises before buffers
            failed.append(type(exc).__name__)

    def locked():
        from repro.cf import LockMode

        try:
            yield from inst.lockmgr.lock(("SYS00", 1), 5, LockMode.SHR)
        except LinkDownError:
            failed.append("lock-down")

    plex.sim.process(locked())
    plex.sim.run(until=1.0)
    assert "lock-down" in failed


def test_single_link_failure_is_transparent():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=3))
    inst = plex.instances["SYS00"]
    inst.node.cf_links["CF01"].fail_link(0)
    plex.sim.run(until=1.0)
    # work continues over the surviving link
    assert inst.tm.completed > 0
    assert plex.metrics.counter("txn.failed").count == 0


def test_cf_death_mid_run_without_backup_fails_txns():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=3))
    plex.sim.run(until=0.3)
    done_before = plex.metrics.counter("txn.completed").count
    plex.cfs[0].fail()
    plex.sim.run(until=1.0)
    assert plex.metrics.counter("txn.failed").count > 0
    # software lock state was cleaned by abandon: nothing leaks
    for name, r in plex.lock_space._resources.items():
        assert not r.waiters or r.holders


# ------------------------------------------------------ chaos-found edges ----
def test_rolling_maintenance_with_zero_gap():
    """gap=0 makes each restart coincide with the next crash; exactly one
    system is ever down and the plex survives the whole roll."""
    plex, gen = build_loaded_sysplex(
        small_cfg(3), options=RunOptions(terminals_per_system=2))
    down_watch = []

    def census():
        while True:
            yield plex.sim.timeout(0.05)
            down_watch.append(sum(1 for n in plex.nodes if not n.alive))

    plex.sim.process(census())
    plex.injector.rolling_maintenance(plex.nodes, start=1.0, outage=0.5,
                                      gap=0.0)
    plex.sim.run(until=1.0 + 3 * 0.5 + 2.0)
    assert all(n.alive for n in plex.nodes)
    assert max(down_watch) == 1  # never two down at once, even at gap=0
    labels = [label for _, label in plex.injector.log_events()]
    assert labels.count("crash:SYS00") == 1
    assert sum(1 for la in labels if la.startswith("crash")) == 3
    assert sum(1 for la in labels if la.startswith("restart")) == 3
    assert plex.metrics.counter("txn.completed").count > 0


def test_contributor_crash_mid_rebuild_does_not_hang_recovery():
    """A system dying while contributing to a structure rebuild must not
    hang the recovery every other system is waiting on."""
    plex, gen = build_loaded_sysplex(
        small_cfg(3, n_cfs=2), options=RunOptions(terminals_per_system=0))
    victim = plex.nodes[2]
    plex.injector.fail_cf(plex.cfs[0], at=0.5)
    # prewarmed buffer pools make the cache contribution ~1ms of CF
    # service, so +0.5ms lands mid-rebuild with contributions in flight
    plex.injector.crash_system(victim, at=0.5005)
    plex.sim.run(until=4.0)
    started = plex.metrics.counter("cf.rebuilds_started").count
    finished = plex.metrics.counter("cf.rebuilds").count
    abandoned = sum(1 for _t, la in plex.degraded_events
                    if la.startswith("rebuild-abandoned"))
    assert started >= 1
    assert finished + abandoned == started  # terminated, not hung
    # the survivors reconnected to the rebuilt structures
    for name in ("SYS00", "SYS01"):
        inst = plex.instances[name]
        assert not inst.xes_lock.structure.lost
        assert inst.xes_lock.structure.facility is plex.cfs[1]


def test_contributor_link_loss_mid_rebuild_is_recorded():
    """A contributor whose CF connectivity dies mid-contribution is
    recorded in contributor_failures; the rebuild completes without it."""
    plex, gen = build_loaded_sysplex(
        small_cfg(3, n_cfs=2), options=RunOptions(terminals_per_system=0))
    victim = plex.nodes[2]
    plex.injector.fail_cf(plex.cfs[0], at=0.5)
    # sever the victim's path to the rebuild target while its ~1ms cache
    # contribution is in flight: the command dies with an interface
    # control check
    links = victim.cf_links[plex.cfs[1].name]
    for i in range(len(links.links)):
        plex.injector.fail_link(links, at=0.5005, index=i)
    plex.sim.run(until=2.0)
    assert plex.metrics.counter("cf.rebuilds").count == 1
    rows = plex.xes.contributor_failures
    assert any(r[1] == victim.name for r in rows), rows


def test_dasd_path_repair_races_peer_recovery():
    """Losing DASD paths under the failed system's log, then repairing
    them while peer recovery reads that log, must not wedge recovery."""
    from repro.config import ArmConfig, XcfConfig

    plex, gen = build_loaded_sysplex(
        small_cfg(3,
                  arm=ArmConfig(restart_time=0.5, log_replay_time=0.3),
                  xcf=XcfConfig(heartbeat_interval=0.25)),
        options=RunOptions(terminals_per_system=2))
    victim = plex.instances["SYS02"]
    log_dev = victim.db.log.device
    # degrade the log device before the crash, repair mid-recovery
    plex.injector.fail_dasd_path(log_dev, at=0.4)
    plex.injector.fail_dasd_path(log_dev, at=0.45)
    plex.injector.crash_system(victim.node, at=0.5)
    plex.injector.repair_dasd_path(log_dev, at=1.3)
    plex.injector.repair_dasd_path(log_dev, at=1.5)
    plex.injector.restart_system(victim.node, at=3.0)
    done_mid = None

    def snapshot():
        yield plex.sim.timeout(4.0)
        nonlocal done_mid
        done_mid = plex.metrics.counter("txn.completed").count

    plex.sim.process(snapshot())
    plex.sim.run(until=6.0)
    assert plex.recovery.recoveries, "peer recovery never completed"
    assert not any(s == "SYS02" for s, _m in plex.lock_space.retained.values())
    assert log_dev.available_paths == log_dev.config.paths
    assert all(n.alive for n in plex.nodes)  # restarted and rejoined
    # service continued after recovery + repair
    assert plex.metrics.counter("txn.completed").count > done_mid


# ------------------------------------------------------ shape checkers ----
def test_fig3_shape_checker_catches_bad_curves():
    from repro.experiments.fig3_scalability import check_shape

    good = {
        "tcmp": [
            {"physical": 1, "itr_effective": 1.0, "itr_efficiency": 1.0},
            {"physical": 4, "itr_effective": 3.5, "itr_efficiency": 0.875},
            {"physical": 10, "itr_effective": 7.4, "itr_efficiency": 0.74},
        ],
        "sysplex": [
            {"physical": 2, "itr_effective": 1.7, "itr_efficiency": 0.85},
            {"physical": 32, "itr_effective": 26.0, "itr_efficiency": 0.81},
        ],
    }
    assert check_shape(good) == []
    bad = {
        "tcmp": good["tcmp"],
        "sysplex": [
            {"physical": 2, "itr_effective": 1.7, "itr_efficiency": 0.85},
            {"physical": 32, "itr_effective": 16.0, "itr_efficiency": 0.50},
        ],
    }
    assert check_shape(bad)  # drooping sysplex must be flagged


def test_coherency_shape_checker():
    from repro.experiments.exp_coherency import check_shape

    good = [
        {"systems": 2, "cf_cpu_ms": 3.0, "bcast_cpu_ms": 3.4,
         "cf_tput": 600, "bcast_tput": 500},
        {"systems": 12, "cf_cpu_ms": 3.1, "bcast_cpu_ms": 8.0,
         "cf_tput": 3000, "bcast_tput": 1400},
    ]
    assert check_shape(good) == []
    bad = [
        {"systems": 2, "cf_cpu_ms": 3.0, "bcast_cpu_ms": 3.4,
         "cf_tput": 600, "bcast_tput": 500},
        {"systems": 12, "cf_cpu_ms": 5.0, "bcast_cpu_ms": 3.4,
         "cf_tput": 1000, "bcast_tput": 1400},
    ]
    assert check_shape(bad)


def test_dss_shape_checker():
    from repro.experiments.exp_dss import check_shape

    good = [
        {"parallelism": 1, "speedup": 1.0, "efficiency": 1.0},
        {"parallelism": 4, "speedup": 3.5, "efficiency": 0.875},
        {"parallelism": 16, "speedup": 10.0, "efficiency": 0.625},
    ]
    assert check_shape(good) == []
    bad = [
        {"parallelism": 1, "speedup": 1.0, "efficiency": 1.0},
        {"parallelism": 4, "speedup": 1.2, "efficiency": 0.3},
        {"parallelism": 16, "speedup": 1.3, "efficiency": 0.08},
    ]
    assert check_shape(bad)
