"""Edge-case failure tests: fail-stop of zombies, CPU purge, link
outages, CF death mid-command."""


from repro import RunOptions
from repro.config import DatabaseConfig, SysplexConfig
from repro.hardware import LinkDownError, SystemNode
from repro.hardware.cpu import SystemDown
from repro.runner import build_loaded_sysplex
from repro.simkernel import Simulator


def small_cfg(n=3, **kw):
    return SysplexConfig(
        n_systems=n,
        db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000),
        **kw,
    )


# ------------------------------------------------------ SFM fail-stop ----
def test_sfm_terminates_zombie_system():
    """A system that stops heartbeating while still 'running' is
    fail-stopped by SFM (the paper's flaky-processor scenario)."""
    plex, gen = build_loaded_sysplex(small_cfg(3), options=RunOptions(terminals_per_system=2))
    victim = plex.nodes[1]
    # break ONLY the heartbeat: the node stays alive (zombie-ish)
    plex.sim.call_at(1.0, lambda: setattr(victim, "_zombie", True))
    original_loop_interval = plex.config.xcf.heartbeat_interval

    # monkey-patch: CDS updates from the victim stop landing
    orig_update = plex.cds.update

    def filtered_update(holder, key, value):
        if getattr(victim, "_zombie", False) and holder == victim.name:
            yield plex.sim.timeout(0)  # write lost
            return
        yield from orig_update(holder, key, value)

    plex.cds.update = filtered_update
    plex.sim.run(until=6.0)
    # the detector terminated and fenced the zombie
    assert not victim.alive
    assert victim.fenced
    assert plex.monitor.detections == 1


def test_cpu_purge_fails_queued_work():
    sim = Simulator()
    node = SystemNode(sim, SysplexConfig(n_systems=1), 0)
    outcomes = []

    def worker(tag):
        try:
            yield from node.cpu.consume(0.5)
            outcomes.append((tag, "done"))
        except SystemDown:
            outcomes.append((tag, "killed"))

    sim.process(worker("running"))   # gets the engine
    sim.process(worker("queued"))    # waits behind it

    def killer():
        yield sim.timeout(0.1)
        node.fail()

    sim.process(killer())
    sim.run(until=2.0)
    states = dict(outcomes)
    # the queued request was failed immediately by the purge
    assert states["queued"] == "killed"
    # the running one burned out its grant but its completion is moot
    assert "running" in states


def test_purge_counts():
    sim = Simulator()
    node = SystemNode(sim, SysplexConfig(n_systems=1), 0)

    def worker():
        try:
            yield from node.cpu.consume(1.0)
        except SystemDown:
            pass

    for _ in range(4):
        sim.process(worker())
    sim.run(until=0.01)
    assert node.cpu.engines.in_use == 1
    purged = node.cpu.purge_queued()
    assert purged == 3
    sim.run(until=2)


# ------------------------------------------------------ link outages ----
def test_all_links_down_fails_cf_commands():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    inst = plex.instances["SYS00"]
    links = inst.node.cf_links["CF01"]
    for i in range(len(links.links)):
        links.fail_link(i)
    failed = []

    def work():
        try:
            yield from inst.buffers.get_page(1)
        except LinkDownError:
            failed.append(True)
        except Exception as exc:  # lock path raises before buffers
            failed.append(type(exc).__name__)

    def locked():
        from repro.cf import LockMode

        try:
            yield from inst.lockmgr.lock(("SYS00", 1), 5, LockMode.SHR)
        except LinkDownError:
            failed.append("lock-down")

    plex.sim.process(locked())
    plex.sim.run(until=1.0)
    assert "lock-down" in failed


def test_single_link_failure_is_transparent():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=3))
    inst = plex.instances["SYS00"]
    inst.node.cf_links["CF01"].fail_link(0)
    plex.sim.run(until=1.0)
    # work continues over the surviving link
    assert inst.tm.completed > 0
    assert plex.metrics.counter("txn.failed").count == 0


def test_cf_death_mid_run_without_backup_fails_txns():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=3))
    plex.sim.run(until=0.3)
    done_before = plex.metrics.counter("txn.completed").count
    plex.cfs[0].fail()
    plex.sim.run(until=1.0)
    assert plex.metrics.counter("txn.failed").count > 0
    # software lock state was cleaned by abandon: nothing leaks
    for name, r in plex.lock_space._resources.items():
        assert not r.waiters or r.holders


# ------------------------------------------------------ shape checkers ----
def test_fig3_shape_checker_catches_bad_curves():
    from repro.experiments.fig3_scalability import check_shape

    good = {
        "tcmp": [
            {"physical": 1, "itr_effective": 1.0, "itr_efficiency": 1.0},
            {"physical": 4, "itr_effective": 3.5, "itr_efficiency": 0.875},
            {"physical": 10, "itr_effective": 7.4, "itr_efficiency": 0.74},
        ],
        "sysplex": [
            {"physical": 2, "itr_effective": 1.7, "itr_efficiency": 0.85},
            {"physical": 32, "itr_effective": 26.0, "itr_efficiency": 0.81},
        ],
    }
    assert check_shape(good) == []
    bad = {
        "tcmp": good["tcmp"],
        "sysplex": [
            {"physical": 2, "itr_effective": 1.7, "itr_efficiency": 0.85},
            {"physical": 32, "itr_effective": 16.0, "itr_efficiency": 0.50},
        ],
    }
    assert check_shape(bad)  # drooping sysplex must be flagged


def test_coherency_shape_checker():
    from repro.experiments.exp_coherency import check_shape

    good = [
        {"systems": 2, "cf_cpu_ms": 3.0, "bcast_cpu_ms": 3.4,
         "cf_tput": 600, "bcast_tput": 500},
        {"systems": 12, "cf_cpu_ms": 3.1, "bcast_cpu_ms": 8.0,
         "cf_tput": 3000, "bcast_tput": 1400},
    ]
    assert check_shape(good) == []
    bad = [
        {"systems": 2, "cf_cpu_ms": 3.0, "bcast_cpu_ms": 3.4,
         "cf_tput": 600, "bcast_tput": 500},
        {"systems": 12, "cf_cpu_ms": 5.0, "bcast_cpu_ms": 3.4,
         "cf_tput": 1000, "bcast_tput": 1400},
    ]
    assert check_shape(bad)


def test_dss_shape_checker():
    from repro.experiments.exp_dss import check_shape

    good = [
        {"parallelism": 1, "speedup": 1.0, "efficiency": 1.0},
        {"parallelism": 4, "speedup": 3.5, "efficiency": 0.875},
        {"parallelism": 16, "speedup": 10.0, "efficiency": 0.625},
    ]
    assert check_shape(good) == []
    bad = [
        {"parallelism": 1, "speedup": 1.0, "efficiency": 1.0},
        {"parallelism": 4, "speedup": 1.2, "efficiency": 0.3},
        {"parallelism": 16, "speedup": 1.3, "efficiency": 0.08},
    ]
    assert check_shape(bad)
