"""Every example script parses and exposes a main() (smoke check; the
examples' full runs are exercised manually / in the docs)."""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    src = path.read_text()
    tree = ast.parse(src, filename=str(path))
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert names, "example defines no functions"
    assert '__main__' in src  # runnable as a script
    # docstring present and mentions how to run it
    doc = ast.get_docstring(tree)
    assert doc and "Run:" in doc


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Compile and execute only the import statements."""
    tree = ast.parse(path.read_text(), filename=str(path))
    imports = [n for n in tree.body
               if isinstance(n, (ast.Import, ast.ImportFrom))]
    module = ast.Module(body=imports, type_ignores=[])
    exec(compile(module, str(path), "exec"), {})
