"""Tests for the CF cache structure and buffer coherency (paper §3.3.2)."""

import pytest

from repro.cf import CacheFullError, CacheStructure, LocalVector


@pytest.fixture
def cache():
    return CacheStructure("CACHE1", data_elements=8, directory_entries=32)


@pytest.fixture
def conns(cache):
    return [cache.connect(f"SYS{i:02d}") for i in range(3)]


def test_capacity_required():
    with pytest.raises(ValueError):
        CacheStructure("BAD", data_elements=0, directory_entries=1)


def test_first_read_is_miss(cache, conns):
    a = conns[0]
    status, version = cache.register_and_read(a, "pg1", bit_index=0)
    assert status == "miss" and version == 0
    assert cache.vector_of(a).test(0) is True  # registered + valid


def test_read_after_write_hits_cf_cache(cache, conns):
    """Second-level cache role: peer refresh from CF memory, not DASD."""
    a, b, _ = conns
    cache.register_and_read(a, "pg1", 0)
    cache.write_and_invalidate(a, "pg1")
    status, version = cache.register_and_read(b, "pg1", 5)
    assert status == "hit" and version == 1


def test_write_invalidates_other_registrants_only(cache, conns):
    a, b, c = conns
    cache.register_and_read(a, "pg1", 0)
    cache.register_and_read(b, "pg1", 1)
    cache.register_and_read(c, "pg1", 2)
    n = cache.write_and_invalidate(b, "pg1")
    assert n == 2  # a and c, not the writer
    assert cache.vector_of(a).test(0) is False
    assert cache.vector_of(b).test(1) is True  # writer's own copy stays valid
    assert cache.vector_of(c).test(2) is False


def test_invalidated_reader_reregisters_and_sees_latest(cache, conns):
    a, b, _ = conns
    cache.register_and_read(a, "pg1", 0)
    cache.write_and_invalidate(b, "pg1")
    assert cache.vector_of(a).test(0) is False
    status, version = cache.register_and_read(a, "pg1", 0)
    assert version == cache.version_of("pg1")
    cache.check_coherency()


def test_unregistered_writer_sends_no_signal_to_self(cache, conns):
    a = conns[0]
    n = cache.write_and_invalidate(a, "pgX")
    assert n == 0
    assert cache.version_of("pgX") == 1


def test_versions_monotonic(cache, conns):
    a = conns[0]
    for i in range(5):
        cache.write_and_invalidate(a, "pg1")
    assert cache.version_of("pg1") == 5


def test_unregister_stops_invalidation(cache, conns):
    a, b, _ = conns
    cache.register_and_read(a, "pg1", 0)
    cache.unregister(a, "pg1")
    n = cache.write_and_invalidate(b, "pg1")
    assert n == 0


def test_coherency_invariant_random_ops(cache, conns):
    """After any interleaving, no valid bit refers to a stale version."""
    a, b, c = conns
    pages = ["p0", "p1", "p2"]
    ops = [
        (cache.register_and_read, a, "p0", 0),
        (cache.register_and_read, b, "p0", 0),
        (cache.write_and_invalidate, c, "p0"),
        (cache.register_and_read, c, "p1", 1),
        (cache.write_and_invalidate, a, "p1"),
        (cache.write_and_invalidate, b, "p0"),
        (cache.register_and_read, a, "p2", 2),
        (cache.write_and_invalidate, c, "p2"),
    ]
    for op, conn, page, *rest in ops:
        if op.__name__ == "register_and_read":
            op(conn, page, rest[0])
        else:
            op(conn, page)
        cache.check_coherency()


def test_lru_eviction_prefers_unchanged():
    cache = CacheStructure("C", data_elements=2, directory_entries=100)
    a = cache.connect("SYS00")
    cache.write_and_invalidate(a, "dirty", changed=True)
    cache.write_and_invalidate(a, "clean", changed=False)
    cache.write_and_invalidate(a, "new", changed=False)  # forces eviction
    assert cache.data_in_use == 2
    # the changed block must still be there (cannot be lost before castout)
    assert cache.castout("dirty") == 1


def test_cache_full_when_everything_changed():
    cache = CacheStructure("C", data_elements=2, directory_entries=100)
    a = cache.connect("SYS00")
    cache.write_and_invalidate(a, "d1", changed=True)
    cache.write_and_invalidate(a, "d2", changed=True)
    with pytest.raises(CacheFullError):
        cache.write_and_invalidate(a, "d3", changed=True)


def test_castout_cycle(cache, conns):
    a = conns[0]
    cache.write_and_invalidate(a, "pg1", changed=True)
    version = cache.castout("pg1")
    assert version == 1
    cache.castout_complete("pg1", version)
    assert cache.castout("pg1") is None  # no longer changed
    assert cache.castouts == 1


def test_castout_respects_intervening_write(cache, conns):
    """A write between castout-read and completion keeps the block dirty."""
    a = conns[0]
    cache.write_and_invalidate(a, "pg1", changed=True)
    version = cache.castout("pg1")
    cache.write_and_invalidate(a, "pg1", changed=True)  # newer version
    cache.castout_complete("pg1", version)
    assert cache.castout("pg1") == 2  # still changed at the new version


def test_changed_blocks_listing(cache, conns):
    a = conns[0]
    cache.write_and_invalidate(a, "x", changed=True)
    cache.write_and_invalidate(a, "y", changed=False)
    cache.write_and_invalidate(a, "z", changed=True)
    assert set(cache.changed_blocks()) == {"x", "z"}


def test_directory_reclaim_invalidates_registrants():
    cache = CacheStructure("C", data_elements=4, directory_entries=2)
    a = cache.connect("SYS00")
    cache.register_and_read(a, "p1", 0)  # dataless directory entry
    cache.register_and_read(a, "p2", 1)
    cache.register_and_read(a, "p3", 2)  # forces reclaim of p1
    assert cache.reclaims == 1
    assert cache.vector_of(a).test(0) is False  # p1's bit invalidated
    assert cache.vector_of(a).test(2) is True


def test_purge_connector_removes_registrations(cache, conns):
    a, b, _ = conns
    cache.register_and_read(a, "pg1", 0)
    cache.disconnect(a)
    assert cache.write_and_invalidate(b, "pg1") == 0  # nobody left to XI


def test_local_vector_counts():
    v = LocalVector()
    v.set_valid(3)
    assert v.test(3) is True
    v.invalidate(3)
    assert v.invalidations == 1
    assert v.test(3) is False
    assert v.tests == 2


def test_hit_rate_statistics(cache, conns):
    a, b, _ = conns
    cache.register_and_read(a, "p", 0)          # miss
    cache.write_and_invalidate(a, "p")
    cache.register_and_read(b, "p", 0)          # hit
    assert cache.reads == 2 and cache.read_hits == 1
