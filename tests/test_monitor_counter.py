"""Regression tests for Counter's time-indexed lookups (bisect, not scan)."""

import time

import pytest

from repro.simkernel.monitor import Counter


def brute_force_value_at(marks, t):
    value = 0
    for mark_t, count in marks:
        if mark_t <= t:
            value = count
        else:
            break
    return value


def build_counter(n_marks):
    """One event per simulated millisecond, checkpointed after each."""
    counter = Counter("txns")
    for i in range(n_marks):
        counter.add()
        counter.mark(i * 0.001)
    return counter


def test_value_at_matches_brute_force():
    counter = build_counter(500)
    marks = counter._marks
    probes = [-1.0, 0.0, 1e-9, 0.0005, 0.1234, 0.25, 0.4995, 0.499,
              0.5, 10.0]
    probes += [m[0] for m in marks[::37]]  # exact mark times
    for t in probes:
        assert counter._value_at(t) == brute_force_value_at(marks, t), t


def test_rate_over_windows():
    counter = build_counter(1000)  # one event per ms for 1 s
    # steady stream: any interior window sees ~1000 events/s
    assert counter.rate(0.1, 0.9) == pytest.approx(1000.0, rel=0.01)
    assert counter.rate(0.0, 1.0) == pytest.approx(1000.0, rel=0.01)
    # empty and degenerate windows
    assert counter.rate(0.5, 0.5) == 0.0
    assert counter.rate(2.0, 3.0) == 0.0


def test_rate_scales_to_many_marks():
    """The O(n^2) scan made per-window rate() quadratic in marks; with
    bisect each call is O(log n) and a dense sweep stays fast."""
    counter = build_counter(20_000)
    t0 = time.perf_counter()
    for i in range(2_000):
        counter.rate(i * 1e-5, i * 1e-5 + 0.01)
    elapsed = time.perf_counter() - t0
    # generous bound: quadratic rescans took tens of seconds here
    assert elapsed < 2.0
