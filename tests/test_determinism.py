"""End-to-end determinism: identical configuration + seed => identical
results, and different seeds => different (but statistically similar)
results.  The benchmark harness depends on this for common-random-number
comparisons across architectures."""

import pytest

from repro import RunOptions
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import run_oltp


def cfg(seed):
    return SysplexConfig(
        n_systems=2,
        db=DatabaseConfig(n_pages=10_000, buffer_pages=3_000),
        seed=seed,
    )


def test_same_seed_same_result():
    a = run_oltp(cfg(7), duration=0.3, warmup=0.2, options=RunOptions(terminals_per_system=6))
    b = run_oltp(cfg(7), duration=0.3, warmup=0.2, options=RunOptions(terminals_per_system=6))
    assert a.completed == b.completed
    assert a.throughput == b.throughput
    assert a.response_mean == b.response_mean
    assert a.cpu_utilization == b.cpu_utilization


def test_different_seed_different_trajectory():
    a = run_oltp(cfg(7), duration=0.3, warmup=0.2, options=RunOptions(terminals_per_system=6))
    b = run_oltp(cfg(8), duration=0.3, warmup=0.2, options=RunOptions(terminals_per_system=6))
    # same order of magnitude (same physics; short windows are noisy) ...
    assert b.throughput == pytest.approx(a.throughput, rel=1.0)
    # ... but not the identical sample path
    assert a.response_mean != b.response_mean


def test_random_streams_isolated_by_name():
    """Drawing more from one stream must not shift another stream."""
    from repro.simkernel import RandomStreams

    rs1 = RandomStreams(3)
    a_first = rs1.stream("a").random(5).tolist()
    _ = rs1.stream("b").random(100)
    a_more = rs1.stream("a").random(5).tolist()

    rs2 = RandomStreams(3)
    b_burn = rs2.stream("b").random(1)  # different draw count on b
    a2_first = rs2.stream("a").random(5).tolist()
    a2_more = rs2.stream("a").random(5).tolist()

    assert a_first == a2_first
    assert a_more == a2_more
