"""Tests for CF failover: automatic structure rebuild into the alternate
CF (paper §3.3: "Multiple CF's can be connected for availability")."""


from repro import RunOptions
from repro.cf import LockMode
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import build_loaded_sysplex


def dual_cf_cfg(n_systems=3):
    return SysplexConfig(
        n_systems=n_systems,
        n_cfs=2,
        db=DatabaseConfig(n_pages=12_000, buffer_pages=4_000),
    )


def test_cf_failure_triggers_automatic_rebuild():
    plex, gen = build_loaded_sysplex(dual_cf_cfg(), options=RunOptions(terminals_per_system=4))
    plex.sim.run(until=0.3)
    old_lock = plex.xes.find("IRLMLOCK1")
    failing_cf = old_lock.facility
    surviving = next(c for c in plex.cfs if c is not failing_cf)
    failing_cf.fail()
    plex.sim.run(until=1.5)

    assert plex.metrics.counter("cf.failures").count == 1
    assert plex.metrics.counter("cf.rebuilds").count == 1
    for name in ("IRLMLOCK1", "GBP0", "WORKQ1"):
        st = plex.xes.find(name)
        assert st is not None and not st.lost
        assert st.facility is surviving
    # every instance was switched to the new connections
    for inst in plex.instances.values():
        assert inst.xes_lock.structure.facility is surviving
        assert inst.xes_lock.operational
        assert inst.buffers.xes is inst.xes_cache


def test_throughput_survives_cf_failover():
    plex, gen = build_loaded_sysplex(dual_cf_cfg(), options=RunOptions(terminals_per_system=4))
    plex.sim.run(until=0.5)
    c0 = plex.metrics.counter("txn.completed").count
    plex.xes.find("IRLMLOCK1").facility.fail()
    plex.sim.run(until=1.0)
    mid = plex.metrics.counter("txn.completed").count
    plex.sim.run(until=2.5)
    c2 = plex.metrics.counter("txn.completed").count
    # work continued after the failover (some in-flight work was lost)
    assert c2 > mid > c0
    late_rate = (c2 - mid) / 1.5
    early_rate = c0 / 0.5
    assert late_rate > 0.5 * early_rate
    # no stuck software locks: the lock space eventually drains
    assert not plex.lock_space.retained


def test_rebuild_preserves_lock_interest():
    plex, gen = build_loaded_sysplex(dual_cf_cfg(2), options=RunOptions(terminals_per_system=0))
    inst = plex.instances["SYS00"]
    held_done = []

    def holder():
        yield from inst.lockmgr.lock(("SYS00", 1), 777, LockMode.EXCL)
        held_done.append(True)
        yield plex.sim.timeout(1.0)  # keep holding across the failover

    plex.sim.process(holder())
    plex.sim.run(until=0.1)
    assert held_done
    plex.xes.find("IRLMLOCK1").facility.fail()
    plex.sim.run(until=0.8)
    new = plex.xes.find("IRLMLOCK1")
    conn = inst.lockmgr.xes.connector
    assert new is inst.lockmgr.xes.structure
    # the rebuilt structure carries the held EXCL interest + record data
    assert (777, LockMode.EXCL) in new.interest_of(conn)
    assert 777 in new.records_of(conn.conn_id)


def test_rebuild_keeps_stale_buffers_invalid():
    plex, gen = build_loaded_sysplex(dual_cf_cfg(2), options=RunOptions(terminals_per_system=0))
    a, b = plex.instances["SYS00"], plex.instances["SYS01"]
    results = []

    def scenario():
        yield from a.buffers.get_page(55)       # a caches page 55
        yield from b.buffers.get_page(55)
        b.buffers.mark_dirty(55)
        yield from b.buffers.commit_writes([55])  # a's copy goes stale
        yield plex.sim.timeout(1e-3)
        plex.xes.find("GBP0").facility.fail()
        yield plex.sim.timeout(0.5)  # rebuild completes
        # a's stale copy must NOT have been revalidated by the rebuild
        results.append(a.buffers.is_valid(55))
        # b's current copy should still be valid
        results.append(b.buffers.is_valid(55))

    plex.sim.process(scenario())
    plex.sim.run(until=2)
    assert results == [False, True]


def test_single_cf_failure_is_fatal_for_sharing():
    """With only one CF, its loss cannot be rebuilt around; transactions
    fail until it returns (the reason installations run 2 CFs)."""
    plex, gen = build_loaded_sysplex(
        SysplexConfig(n_systems=2, n_cfs=1,
                      db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000)),
        options=RunOptions(terminals_per_system=3),
    )
    plex.sim.run(until=0.3)
    plex.cfs[0].fail()
    plex.sim.run(until=1.0)
    assert plex.metrics.counter("cf.rebuilds").count == 0
    assert plex.metrics.counter("txn.failed").count > 0
