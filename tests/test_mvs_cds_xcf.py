"""Tests for couple data sets and XCF group services."""

import numpy as np
import pytest

from repro.config import DasdConfig, SysplexConfig, XcfConfig
from repro.hardware import DasdDevice, MessageFabric, SystemNode
from repro.mvs import CdsUnavailableError, CoupleDataSet, XcfGroupServices
from repro.simkernel import Simulator


def make_cds(sim, duplex=True):
    rng = np.random.default_rng(3)
    primary = DasdDevice(sim, DasdConfig(), rng, "cds1")
    alternate = DasdDevice(sim, DasdConfig(), rng, "cds2") if duplex else None
    return CoupleDataSet(sim, primary, alternate), primary, alternate


# ------------------------------------------------------------------ CDS ----
def test_cds_update_and_read():
    sim = Simulator()
    cds, _, _ = make_cds(sim)
    result = []

    def work():
        yield from cds.update("SYS00", "k", 42)
        v = yield from cds.read("k")
        result.append((sim.now, v))

    sim.process(work())
    sim.run()
    assert result[0][1] == 42
    assert result[0][0] > 0  # the I/O took real time


def test_cds_writes_are_serialized_by_reserve():
    sim = Simulator()
    cds, primary, _ = make_cds(sim)
    order = []

    def writer(name, value):
        yield from cds.update(name, "key", value)
        order.append(value)

    sim.process(writer("SYS00", 1))
    sim.process(writer("SYS01", 2))
    sim.run()
    assert order == [1, 2]
    assert cds.peek("key") == 2
    assert cds.version("key") == 2


def test_cds_duplexing_writes_alternate():
    sim = Simulator()
    cds, primary, alternate = make_cds(sim)

    def work():
        yield from cds.update("SYS00", "k", 1)

    sim.process(work())
    sim.run()
    assert primary.io_count == 1
    assert alternate.io_count == 1


def test_cds_hot_switch_preserves_content():
    sim = Simulator()
    cds, primary, alternate = make_cds(sim)

    def work():
        yield from cds.update("SYS00", "k", 7)
        cds.hot_switch()  # primary lost; alternate takes over
        v = yield from cds.read("k")
        assert v == 7
        assert cds.primary is alternate

    sim.process(work())
    sim.run()
    assert cds.switches == 1


def test_cds_hot_switch_without_alternate_fails():
    sim = Simulator()
    cds, _, _ = make_cds(sim, duplex=False)
    with pytest.raises(CdsUnavailableError):
        cds.hot_switch()


def test_cds_stale_reserve_broken_by_timeout_logic():
    sim = Simulator()
    cds, primary, _ = make_cds(sim)
    cds.reserve_timeout = 2.0
    got = []

    def dead_system():
        ev = primary.reserve("SYS-DEAD")
        yield ev
        cds._reserve_taken_at["SYS-DEAD"] = sim.now
        # crashes while holding the reserve: never releases

    def healthy():
        yield sim.timeout(0.1)
        yield from cds.update("SYS00", "k", 1)
        got.append(sim.now)

    def sweeper():
        while not got:
            yield sim.timeout(1.0)
            cds.break_stale_reserves()

    sim.process(dead_system())
    sim.process(healthy())
    sim.process(sweeper())
    sim.run(until=30)
    assert got and got[0] >= 2.0  # blocked until timeout logic freed it


def test_cds_break_reserve_of_fenced_system():
    sim = Simulator()
    cds, primary, _ = make_cds(sim)

    def holder():
        yield primary.reserve("SYS-BAD")

    sim.process(holder())
    sim.run()
    cds.break_reserve_of("SYS-BAD")
    assert primary.reserved_by is None


# ------------------------------------------------------------------ XCF ----
def make_xcf():
    sim = Simulator()
    fabric = MessageFabric(sim, XcfConfig())
    xcf = XcfGroupServices(sim, fabric)
    nodes = [SystemNode(sim, SysplexConfig(), index=i) for i in range(3)]
    return sim, fabric, xcf, nodes


def test_join_and_members():
    sim, fabric, xcf, nodes = make_xcf()
    m0 = xcf.join("DBGRP", "IRLM0", nodes[0])
    m1 = xcf.join("DBGRP", "IRLM1", nodes[1])
    names = {m.name for m in xcf.members_of("DBGRP")}
    assert names == {"IRLM0", "IRLM1"}
    assert xcf.find("DBGRP", "IRLM0") is m0


def test_duplicate_join_rejected():
    sim, fabric, xcf, nodes = make_xcf()
    xcf.join("G", "A", nodes[0])
    with pytest.raises(ValueError):
        xcf.join("G", "A", nodes[1])


def test_join_events_notify_existing_members():
    sim, fabric, xcf, nodes = make_xcf()
    events = []
    xcf.join("G", "A", nodes[0], on_event=lambda e, m: events.append((e, m.name)))
    xcf.join("G", "B", nodes[1])
    assert events == [("join", "B")]


def test_leave_event():
    sim, fabric, xcf, nodes = make_xcf()
    events = []
    xcf.join("G", "A", nodes[0], on_event=lambda e, m: events.append((e, m.name)))
    b = xcf.join("G", "B", nodes[1])
    b.leave()
    assert ("leave", "B") in events
    assert not b.active


def test_member_signal_delivery():
    sim, fabric, xcf, nodes = make_xcf()
    a = xcf.join("G", "A", nodes[0])
    b = xcf.join("G", "B", nodes[1])
    got = []

    def receiver():
        msg = yield b.inbox.get()
        got.append((msg.kind, msg.payload["x"]))

    sim.process(receiver())
    a.send("B", "hello", {"x": 1})
    sim.run()
    assert got == [("hello", 1)]


def test_broadcast_to_group():
    sim, fabric, xcf, nodes = make_xcf()
    a = xcf.join("G", "A", nodes[0])
    xcf.join("G", "B", nodes[1])
    xcf.join("G", "C", nodes[2])
    n = a.broadcast("note", {})
    assert n == 2


def test_partition_out_fails_all_members_on_node():
    sim, fabric, xcf, nodes = make_xcf()
    events = []
    xcf.join("G1", "A", nodes[0], on_event=lambda e, m: events.append((e, m.name)))
    xcf.join("G1", "B", nodes[1])
    xcf.join("G2", "X", nodes[1])
    lost = xcf.partition_out(nodes[1])
    assert {m.name for m in lost} == {"B", "X"}
    assert ("failed", "B") in events
    # fabric endpoints removed: messages to dead members are dropped
    assert not fabric.is_registered("G1/B")


def test_signals_to_partitioned_member_dropped():
    sim, fabric, xcf, nodes = make_xcf()
    a = xcf.join("G", "A", nodes[0])
    xcf.join("G", "B", nodes[1])
    xcf.partition_out(nodes[1])
    a.send("B", "hello", {})
    sim.run()
    assert fabric.delivered == 0
