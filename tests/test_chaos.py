"""Chaos engine: seeded schedules, guardrails, serialization, determinism."""

from repro import ChaosConfig, ChaosEngine, FaultClassConfig, RunOptions
from repro.chaos import summarize_schedule
from repro.config import DatabaseConfig, SysplexConfig
from repro.metrics import RunResult
from repro.runner import build_loaded_sysplex
from repro.runspec import canonical_json


def small_cfg(n=3, **kw):
    return SysplexConfig(
        n_systems=n,
        db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000),
        **kw,
    )


def quiet_plex(cfg):
    plex, _ = build_loaded_sysplex(
        cfg, options=RunOptions(terminals_per_system=0))
    return plex


FULL_CHAOS = ChaosConfig(
    start=0.5,
    horizon=4.0,
    systems=FaultClassConfig(mtbf=2.0, mttr=0.5, max_faults=2),
    cfs=FaultClassConfig(mtbf=4.0, mttr=0.5, max_faults=1),
    links=FaultClassConfig(mtbf=10.0, mttr=0.3, max_faults=1),
    dasd=FaultClassConfig(mtbf=15.0, mttr=0.4, max_faults=1),
    min_live_systems=1,
    min_live_cfs=1,
)


# ------------------------------------------------ config serialization ----
def test_fault_class_config_round_trips():
    fc = FaultClassConfig(mtbf=3.5, mttr=0.25, max_faults=7)
    assert FaultClassConfig.from_dict(fc.to_dict()) == fc


def test_chaos_config_round_trips_through_json():
    import json

    restored = ChaosConfig.from_dict(
        json.loads(json.dumps(FULL_CHAOS.to_dict())))
    assert restored == FULL_CHAOS


def test_none_classes_survive_round_trip():
    cfg = ChaosConfig(systems=FaultClassConfig(1.0, 0.1))
    restored = ChaosConfig.from_dict(cfg.to_dict())
    assert restored.cfs is None and restored.systems == cfg.systems


# ------------------------------------------------ schedule sampling ----
def test_same_seed_same_schedule():
    a = ChaosEngine(quiet_plex(small_cfg(seed=7)), FULL_CHAOS)
    b = ChaosEngine(quiet_plex(small_cfg(seed=7)), FULL_CHAOS)
    assert a.schedule_rows() == b.schedule_rows()
    assert a.schedule_rows()  # and it is not trivially empty


def test_different_seed_different_schedule():
    a = ChaosEngine(quiet_plex(small_cfg(seed=7)), FULL_CHAOS)
    b = ChaosEngine(quiet_plex(small_cfg(seed=8)), FULL_CHAOS)
    assert a.schedule_rows() != b.schedule_rows()


def test_every_fault_has_a_repair():
    eng = ChaosEngine(quiet_plex(small_cfg(seed=3)), FULL_CHAOS)
    kinds = summarize_schedule(eng.schedule_rows())
    assert kinds.get("crash", 0) == kinds.get("restart", 0)
    assert kinds.get("cf-fail", 0) == kinds.get("cf-repair", 0)
    assert kinds.get("link-fail", 0) == kinds.get("link-repair", 0)
    assert kinds.get("path-fail", 0) == kinds.get("path-repair", 0)


def test_faults_sampled_inside_window_repairs_may_overrun():
    eng = ChaosEngine(quiet_plex(small_cfg(seed=3)), FULL_CHAOS)
    for t, label in eng.schedule_rows():
        assert t >= FULL_CHAOS.start
        if not ("repair" in label or label.startswith("restart")):
            assert t < FULL_CHAOS.horizon


def test_schedule_rows_sorted():
    eng = ChaosEngine(quiet_plex(small_cfg(seed=3)), FULL_CHAOS)
    times = [t for t, _ in eng.schedule_rows()]
    assert times == sorted(times)


# ------------------------------------------------ arming + guardrails ----
def test_arm_twice_raises():
    import pytest

    eng = ChaosEngine(quiet_plex(small_cfg()), FULL_CHAOS)
    eng.arm()
    with pytest.raises(RuntimeError):
        eng.arm()


def test_min_live_systems_floor_suppresses_crashes():
    # crashes arrive much faster than repairs complete, so the floor of
    # 2 live systems must suppress at least one sampled crash
    cfg = ChaosConfig(
        start=0.0, horizon=2.0,
        systems=FaultClassConfig(mtbf=0.2, mttr=3.0, max_faults=2),
        min_live_systems=2,
    )
    plex = quiet_plex(small_cfg(seed=5))
    eng = ChaosEngine(plex, cfg)
    assert len([r for r in eng.schedule_rows()
                if r[1].startswith("crash")]) >= 2
    eng.arm()
    plex.sim.run(until=2.0)
    labels = [label for _, label in plex.injector.log_events()]
    assert any(label.startswith("chaos-skip:crash") for label in labels)
    assert sum(1 for n in plex.nodes if n.alive) >= 2


def test_outcomes_recorded_after_run():
    plex = quiet_plex(small_cfg(seed=5))
    eng = ChaosEngine(plex, FULL_CHAOS)
    assert all(row[2] == "pending" for row in eng.outcome_rows())
    eng.arm()
    last = max(t for t, _ in eng.schedule_rows())
    plex.sim.run(until=last + 0.01)
    outcomes = {row[2] for row in eng.outcome_rows()}
    assert "pending" not in outcomes
    assert "fired" in outcomes


def test_chaos_events_share_injector_timeline():
    plex = quiet_plex(small_cfg(seed=5))
    inst = plex.instances["SYS00"]
    plex.injector.fail_link(inst.node.cf_links["CF01"], at=0.1, index=0)
    eng = ChaosEngine(plex, FULL_CHAOS)
    eng.arm()
    plex.sim.run(until=1.0)
    events = plex.injector.log_events()
    assert [0.1, "link-fail:SYS00-CF01.0"] in events  # scripted event
    times = [t for t, _ in events]
    assert times == sorted(times)  # one merged, ordered timeline


def test_summarize_schedule_counts_by_kind():
    rows = [[0.1, "crash:SYS00"], [0.2, "restart:SYS00"],
            [0.3, "chaos-skip:crash:SYS01"], [0.4, "cf-fail:CF01"]]
    assert summarize_schedule(rows) == {
        "crash": 1, "restart": 1, "skip": 1, "cf-fail": 1}


# ------------------------------------------------ RunResult round trip ----
def _result(**kw):
    return RunResult(label="x", duration=1.0, completed=10, throughput=10.0,
                     response_mean=0.01, response_p50=0.01, response_p90=0.01,
                     response_p95=0.01, response_p99=0.01, **kw)


def test_run_result_omits_empty_events():
    r = _result()
    assert "events" not in r.to_dict()
    assert RunResult.from_dict(r.to_dict()).events == []


def test_run_result_round_trips_events():
    r = _result(events=[[0.5, "crash:SYS00"], [1.0, "restart:SYS00"]])
    d = r.to_dict()
    assert d["events"] == [[0.5, "crash:SYS00"], [1.0, "restart:SYS00"]]
    assert RunResult.from_dict(d) == r


# ------------------------------------------------ payload determinism ----
def test_chaos_payload_is_deterministic():
    from repro.experiments.exp_chaos import chaos_spec, run_chaos_spec

    spec = chaos_spec(n_systems=2, seed=3, horizon=2.0, drain=1.0,
                      offered_tps_per_system=60.0)
    p1 = run_chaos_spec(spec)
    p2 = run_chaos_spec(spec)
    assert canonical_json(p1) == canonical_json(p2)
    assert p1["invariants"]["ok"], p1["invariants"]["violations"]
