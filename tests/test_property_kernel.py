"""Property-based tests on simulation-kernel invariants."""

from hypothesis import given, settings, strategies as st

from repro.simkernel import Resource, Simulator, Store, zipf_weights


@given(
    st.lists(
        st.tuples(
            st.floats(0, 10),    # start delay
            st.floats(0.001, 5)  # hold duration
        ),
        min_size=1, max_size=25,
    ),
    st.integers(1, 4),
)
@settings(max_examples=80, deadline=None)
def test_resource_capacity_invariant(jobs, capacity):
    """Whatever the arrival pattern, in_use never exceeds capacity and all
    jobs eventually complete."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    done = []

    def job(delay, hold):
        yield sim.timeout(delay)
        with res.request() as req:
            yield req
            assert res.in_use <= capacity
            yield sim.timeout(hold)
        done.append(1)

    for delay, hold in jobs:
        sim.process(job(delay, hold))
    sim.run()
    assert len(done) == len(jobs)
    assert res.in_use == 0 and res.queue_length == 0


@given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
@settings(max_examples=80, deadline=None)
def test_events_processed_in_time_order(delays):
    sim = Simulator()
    fired = []

    def waiter(d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in delays:
        sim.process(waiter(d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(0, 1000), max_size=40))
@settings(max_examples=80, deadline=None)
def test_store_is_fifo_and_lossless(items):
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for x in items:
            store.put(x)
            yield sim.timeout(0.1)

    def consumer():
        for _ in items:
            v = yield store.get()
            got.append(v)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(items)


@given(st.integers(1, 5000), st.floats(0, 2))
@settings(max_examples=100, deadline=None)
def test_zipf_weights_properties(n, theta):
    w = zipf_weights(n, theta)
    assert len(w) == n
    assert abs(w.sum() - 1.0) < 1e-9
    assert all(w > 0)
    # non-increasing by rank
    assert all(b <= a + 1e-12 for a, b in zip(w, w[1:]))
