"""Property-based tests on simulation-kernel invariants."""

from hypothesis import given, settings, strategies as st

from repro.simkernel import Resource, Simulator, Store, zipf_weights
from repro.simkernel.core import CalendarScheduler, HeapScheduler


@given(
    st.lists(
        st.tuples(
            # `when` spans twelve orders of magnitude so schedules cross
            # many calendar buckets, collide inside one, and force the
            # occupancy-driven width retune
            st.one_of(
                st.floats(0, 1e-6),
                st.floats(0, 1.0),
                st.floats(0, 1e6),
                st.just(0.0),
                st.just(float("inf")),
            ),
            st.integers(0, 1),       # priority (URGENT/NORMAL)
        ),
        min_size=0, max_size=200,
    ),
    st.integers(0, 100),
)
@settings(max_examples=120, deadline=None)
def test_calendar_scheduler_matches_heap_pop_order(items, interleave):
    """Both backends drain any schedule in the exact (when, priority,
    seq) total order — including pushes interleaved mid-drain, the
    same-instant cascade case the kernel's run loop depends on."""
    heap, cal = HeapScheduler(), CalendarScheduler()
    seq = 0
    schedule = []
    for when, prio in items:
        seq += 1
        schedule.append((when, prio, seq, object()))
    # push the first part up front, hold the rest back to inject
    # mid-drain (at the popped item's timestamp, like a real cascade)
    up_front, held = schedule[interleave:], schedule[:interleave]
    set_up_front = set(up_front)
    for item in up_front:
        heap.push(item)
        cal.push(item)
    inf = float("inf")
    popped_h, popped_c = [], []
    while True:
        h = heap.pop_until(inf)
        c = cal.pop_until(inf)
        assert h == c
        if h is None:
            break
        popped_h.append(h)
        popped_c.append(c)
        if held:
            when, prio, _s, payload = held.pop()
            seq += 1
            # never in the past: re-time the injected item to the
            # current drain instant (a same-instant cascade) or later
            item = (max(when, h[0]), prio, seq, payload)
            heap.push(item)
            cal.push(item)
    assert popped_h == popped_c
    # time never runs backwards (full (when, priority, seq) sortedness
    # only holds for the up-front pushes: an item injected mid-drain at
    # the current instant with URGENT priority pops after same-instant
    # items that drained before it existed — on both backends alike)
    whens = [i[0] for i in popped_h]
    assert whens == sorted(whens)
    up_front_popped = [i for i in popped_h if i in set_up_front]
    assert up_front_popped == sorted(up_front_popped, key=lambda i: i[:3])
    assert len(heap) == len(cal) == 0


@given(
    st.lists(
        st.tuples(
            st.floats(0, 10),    # start delay
            st.floats(0.001, 5)  # hold duration
        ),
        min_size=1, max_size=25,
    ),
    st.integers(1, 4),
)
@settings(max_examples=80, deadline=None)
def test_resource_capacity_invariant(jobs, capacity):
    """Whatever the arrival pattern, in_use never exceeds capacity and all
    jobs eventually complete."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    done = []

    def job(delay, hold):
        yield sim.timeout(delay)
        with res.request() as req:
            yield req
            assert res.in_use <= capacity
            yield sim.timeout(hold)
        done.append(1)

    for delay, hold in jobs:
        sim.process(job(delay, hold))
    sim.run()
    assert len(done) == len(jobs)
    assert res.in_use == 0 and res.queue_length == 0


@given(st.lists(st.floats(0, 100), min_size=1, max_size=30))
@settings(max_examples=80, deadline=None)
def test_events_processed_in_time_order(delays):
    sim = Simulator()
    fired = []

    def waiter(d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in delays:
        sim.process(waiter(d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(0, 1000), max_size=40))
@settings(max_examples=80, deadline=None)
def test_store_is_fifo_and_lossless(items):
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for x in items:
            store.put(x)
            yield sim.timeout(0.1)

    def consumer():
        for _ in items:
            v = yield store.get()
            got.append(v)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(items)


@given(st.integers(1, 5000), st.floats(0, 2))
@settings(max_examples=100, deadline=None)
def test_zipf_weights_properties(n, theta):
    w = zipf_weights(n, theta)
    assert len(w) == n
    assert abs(w.sum() - 1.0) < 1e-9
    assert all(w > 0)
    # non-increasing by rank
    assert all(b <= a + 1e-12 for a, b in zip(w, w[1:]))
