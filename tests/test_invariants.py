"""Invariant checker: each check trips on planted bad state, never on good."""

from repro import InvariantChecker, RunOptions, check_reconvergence
from repro.cf.lock import LockMode
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import build_loaded_sysplex


def small_cfg(n=2, **kw):
    return SysplexConfig(
        n_systems=n,
        db=DatabaseConfig(n_pages=8_000, buffer_pages=3_000),
        **kw,
    )


def loaded(n=2, terminals=2):
    return build_loaded_sysplex(
        small_cfg(n), options=RunOptions(terminals_per_system=terminals))


# ------------------------------------------------ healthy runs ----
def test_healthy_run_has_no_violations():
    plex, gen = loaded()
    checker = InvariantChecker(plex, generator=gen, interval=0.05)
    plex.sim.run(until=0.5)
    report = checker.finalize(grace=1.0)
    assert report["ok"], report["violations"]
    assert checker.scans >= 5
    assert report["finalized"]


def test_checker_is_passive_and_deterministic():
    """Running with the checker must not change simulation outcomes."""
    plex_a, _ = loaded()
    plex_a.sim.run(until=0.5)
    plex_b, gen_b = loaded()
    InvariantChecker(plex_b, generator=gen_b, interval=0.05)
    plex_b.sim.run(until=0.5)
    assert (plex_a.metrics.counter("txn.completed").count
            == plex_b.metrics.counter("txn.completed").count)


# ------------------------------------------------ lock safety ----
def test_exclusive_alongside_share_is_a_violation():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    res = plex.lock_space._res("page:42")
    res.holders[("SYS00", 1)] = LockMode.EXCL
    res.holders[("SYS01", 2)] = LockMode.SHR
    checker.scan()
    assert not checker.ok
    assert checker.violations[0].name == "lock-safety"


def test_two_sharers_are_fine():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    res = plex.lock_space._res("page:42")
    res.holders[("SYS00", 1)] = LockMode.SHR
    res.holders[("SYS01", 2)] = LockMode.SHR
    checker.scan()
    assert checker.ok


def test_persistent_violation_reported_once():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    res = plex.lock_space._res("page:42")
    res.holders[("SYS00", 1)] = LockMode.EXCL
    res.holders[("SYS01", 2)] = LockMode.EXCL
    checker.scan()
    checker.scan()
    checker.scan()
    assert len(checker.violations) == 1  # deduped across scans


# ------------------------------------------------ durability ----
def test_completion_without_commit_is_a_violation():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    inst = plex.instances["SYS00"]
    inst.tm.completed = inst.db.commits + 5
    checker.scan()
    assert [v.name for v in checker.violations] == ["commit-durability"]


# ------------------------------------------------ conservation ----
def test_outcomes_exceeding_submissions_is_a_violation():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    plex.metrics.counter("txn.completed").add(5)
    checker.scan()
    names = [v.name for v in checker.violations]
    assert "conservation" in names


def test_submissions_exceeding_generation_is_a_violation():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    plex.metrics.counter("txn.submitted").add(3)  # gen.generated == 0
    checker.scan()
    assert any(v.name == "conservation" and "generated" in v.detail
               for v in checker.violations)


def test_conservation_against_generator_skipped_without_one():
    plex, _ = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=None)
    plex.metrics.counter("txn.submitted").add(3)
    checker.scan()
    assert checker.ok  # no generator: only the outcome-side inequality runs


# ------------------------------------------------ rebuild termination ----
def test_hung_rebuild_is_a_violation():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    plex.metrics.counter("cf.rebuilds_started").add()
    report = checker.finalize(grace=1.0)
    assert not report["ok"]
    assert any(v["name"] == "rebuild-termination"
               for v in report["violations"])


def test_abandoned_rebuild_is_accounted_not_hung():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    plex.metrics.counter("cf.rebuilds_started").add()
    plex.degraded_events.append((0.1, "rebuild-abandoned-after:CF01:Boom"))
    report = checker.finalize(grace=1.0)
    assert report["ok"], report["violations"]


# ------------------------------------------------ retained locks ----
def test_stuck_retained_locks_flagged_after_grace():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    plex.lock_space.retained["page:7"] = ("SYS01", LockMode.EXCL)
    plex.sim.run(until=2.0)  # no injector events: last_event == 0.0
    report = checker.finalize(grace=1.0)
    assert any(v["name"] == "retained-locks" for v in report["violations"])


def test_retained_locks_excused_within_grace():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    plex.lock_space.retained["page:7"] = ("SYS01", LockMode.EXCL)
    plex.sim.run(until=0.2)
    report = checker.finalize(grace=1.0)  # 0.2s since "t=0 fault" < grace
    assert report["ok"], report["violations"]


def test_retained_locks_excused_when_recovery_failed_on_record():
    plex, gen = loaded(terminals=0)
    checker = InvariantChecker(plex, generator=gen)
    plex.lock_space.retained["page:7"] = ("SYS01", LockMode.EXCL)
    plex.degraded_events.append((0.1, "recovery-failed:SYS01:LinkDownError"))
    plex.sim.run(until=2.0)
    report = checker.finalize(grace=1.0)
    assert report["ok"], report["violations"]


# ------------------------------------------------ reconvergence ----
TIMELINE = [{"t": t / 2, "throughput": tp}
            for t, tp in [(2, 100.0), (4, 10.0), (6, 20.0),
                          (8, 90.0), (10, 95.0)]]


def test_reconvergence_passes_when_tail_recovers():
    v = check_reconvergence(TIMELINE, offered=100.0, last_repair=2.0,
                            fraction=0.5, settle=1.0)
    assert v is None  # tail windows (t>3) average 92.5 >= 50


def test_reconvergence_fails_when_tail_stays_low():
    flat = [{"t": w["t"], "throughput": 10.0} for w in TIMELINE]
    v = check_reconvergence(flat, offered=100.0, last_repair=2.0,
                            fraction=0.5, settle=1.0)
    assert v is not None and v["name"] == "reconvergence"


def test_reconvergence_excused_when_degraded():
    flat = [{"t": w["t"], "throughput": 0.0} for w in TIMELINE]
    assert check_reconvergence(flat, offered=100.0, last_repair=2.0,
                               degraded=True) is None


def test_reconvergence_inconclusive_without_settle_window():
    v = check_reconvergence(TIMELINE, offered=100.0, last_repair=5.0,
                            settle=3.0)
    assert v is None  # no window ends after t=8: inconclusive, not a failure
