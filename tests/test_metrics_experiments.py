"""Tests for the metrics module and experiment-harness helpers."""

import math

import pytest

from repro.metrics import RunResult, scalability_table
from repro.experiments.common import QUICK, print_rows, scaled_config
from repro.simkernel import Counter, MetricSet, Simulator, Tally, TimeWeighted


def make_result(**kw):
    defaults = dict(
        label="x", duration=1.0, completed=100, throughput=100.0,
        response_mean=0.01, response_p50=0.01, response_p90=0.02,
        response_p95=0.03, response_p99=0.05,
        cpu_utilization={"SYS00": 0.5, "SYS01": 0.9},
    )
    defaults.update(kw)
    return RunResult(**defaults)


# ------------------------------------------------------------- results ----
def test_runresult_mean_and_spread():
    r = make_result()
    assert r.mean_utilization == pytest.approx(0.7)
    assert r.utilization_spread == pytest.approx(0.4)


def test_runresult_empty_utilization():
    r = make_result(cpu_utilization={})
    assert r.mean_utilization == 0.0
    assert r.utilization_spread == 0.0


def test_runresult_row_renders():
    row = make_result().row()
    assert "100.0 tps" in row
    assert "p95" in row


def test_scalability_table():
    results = [
        make_result(label="a", throughput=100.0, extras={"physical": 1}),
        make_result(label="b", throughput=180.0, extras={"physical": 2}),
    ]
    rows = scalability_table(results, base_throughput=100.0)
    assert rows[0]["effective"] == pytest.approx(1.0)
    assert rows[1]["effective"] == pytest.approx(1.8)
    assert rows[1]["efficiency"] == pytest.approx(0.9)


# ------------------------------------------------------------ monitors ----
def test_counter_rate_between_marks():
    c = Counter()
    c.add(10)
    c.mark(1.0)
    c.add(20)
    c.mark(2.0)
    assert c.rate(1.0, 2.0) == pytest.approx(20.0)
    assert c.rate(2.0, 2.0) == 0.0


def test_tally_statistics():
    t = Tally()
    for v in (1.0, 2.0, 3.0, 4.0):
        t.record(v)
    assert t.n == 4
    assert t.mean == pytest.approx(2.5)
    assert t.maximum == 4.0
    assert t.percentile(50) == pytest.approx(2.5)
    t.reset()
    assert t.n == 0
    assert math.isnan(t.mean)


def test_time_weighted_mean():
    sim = Simulator()
    g = TimeWeighted(sim, initial=0.0)

    def proc():
        yield sim.timeout(1.0)
        g.update(10.0)
        yield sim.timeout(1.0)
        g.update(0.0)
        yield sim.timeout(2.0)

    sim.process(proc())
    sim.run(until=4.0)
    # 0 for 1s, 10 for 1s, 0 for 2s -> mean 2.5
    assert g.mean() == pytest.approx(2.5)
    assert g.peak == 10.0


def test_metricset_lazy_creation_and_snapshot():
    sim = Simulator()
    m = MetricSet(sim)
    m.counter("a").add(3)
    m.tally("b").record(1.5)
    m.gauge("c", initial=2.0)
    snap = m.snapshot()
    assert snap["a.count"] == 3
    assert snap["b.mean"] == 1.5
    assert snap["c.mean"] == 2.0
    assert m.counter("a") is m.counter("a")


# ---------------------------------------------------- experiment common ----
def test_scaled_config_scales_db_and_dasd():
    c2 = scaled_config(2)
    c8 = scaled_config(8)
    assert c8.db.n_pages == 4 * c2.db.n_pages
    assert c8.n_dasd == 4 * c2.n_dasd
    assert c2.data_sharing and c2.n_cfs == 1


def test_scaled_config_non_sharing():
    c = scaled_config(1, 1, data_sharing=False)
    assert not c.data_sharing
    assert c.n_cfs == 0


def test_scaled_config_overrides_pass_through():
    from repro.config import ArmConfig

    c = scaled_config(2, arm=ArmConfig(restart_time=9.0), seed=5)
    assert c.arm.restart_time == 9.0
    assert c.seed == 5


def test_print_rows_renders_table(capsys):
    print_rows("T", [{"a": 1, "b": 2.5}, {"a": 10, "b": None}], ["a", "b"])
    out = capsys.readouterr().out
    assert "== T ==" in out
    assert "2.500" in out
    assert "-" in out  # None rendering


def test_quick_settings_sane():
    assert 0 < QUICK["duration"] <= 2
    assert 0 < QUICK["warmup"] <= 2
