"""Tests for the shared-nothing and broadcast-coherency baselines."""


from repro.baselines import BroadcastCluster, PartitionedCluster
from repro.config import DatabaseConfig, SysplexConfig
from repro.workloads.oltp import OltpGenerator


def small_cfg(n_systems=2):
    return SysplexConfig(
        n_systems=n_systems,
        data_sharing=False,
        n_cfs=0,
        db=DatabaseConfig(n_pages=12_000, buffer_pages=4_000),
    )


def drive(cluster, config, seconds=0.8, tps=120.0, affinity=False):
    gen = OltpGenerator(
        cluster.sim, config.oltp, config.db.n_pages, config.n_systems,
        cluster.streams.stream("oltp"), router=cluster,
        partition_affinity=affinity,
    )
    gen.start_open_loop(tps)
    cluster.sim.run(until=seconds)
    return gen


# --------------------------------------------------------- partitioned ----
def test_partitioned_owner_map_covers_all_pages():
    cluster = PartitionedCluster(small_cfg(3))
    owners = {cluster.owner_of(p) for p in range(0, 12_000, 37)}
    assert owners == {0, 1, 2}
    assert cluster.owner_of(0) == 0
    assert cluster.owner_of(11_999) == 2


def test_partitioned_completes_transactions():
    config = small_cfg(2)
    cluster = PartitionedCluster(config)
    drive(cluster, config)
    assert cluster.completed > 30
    r = cluster.collect("p")
    assert r.throughput > 0
    assert r.response_mean > 0


def test_partitioned_pays_for_remote_access():
    """Cross-partition transactions function-ship and 2PC."""
    config = small_cfg(2)
    cluster = PartitionedCluster(config)
    drive(cluster, config)  # zipf over the whole space: many remote pages
    assert cluster.remote_calls > 0
    assert cluster.two_phase_commits > 0


def test_partitioned_affinity_workload_stays_local():
    config = small_cfg(2)
    cluster = PartitionedCluster(config)
    drive(cluster, config, affinity=True)
    # a tuned workload mostly avoids shipping (remote_fraction=0.1)
    ratio = cluster.remote_calls / max(cluster.completed, 1)
    assert ratio < 0.25 * (config.oltp.reads_per_txn
                           + config.oltp.writes_per_txn)


def test_partitioned_add_system_has_outage():
    config = small_cfg(2)
    cluster = PartitionedCluster(config)
    gen = drive(cluster, config, seconds=0.3)
    window = cluster.add_system()
    assert window > 0
    assert cluster.n_partitions == 3
    before = cluster.failed_txns
    cluster.sim.run(until=cluster.sim.now + min(window, 0.2))
    assert cluster.failed_txns > before  # arrivals during the move are lost


def test_partitioned_dead_owner_loses_its_partition():
    config = small_cfg(2)
    cluster = PartitionedCluster(config)
    cluster.nodes[0].fail()
    drive(cluster, config, seconds=0.5)
    # roughly half the arrivals target the dead partition and fail
    assert cluster.failed_txns > 0


# ------------------------------------------------------------ broadcast ----
def test_broadcast_completes_transactions():
    config = small_cfg(2)
    cluster = BroadcastCluster(config)
    drive(cluster, config)
    assert cluster.completed > 30


def test_broadcast_sends_invalidations_to_all_peers():
    config = small_cfg(4)
    cluster = BroadcastCluster(config)
    drive(cluster, config, seconds=0.5)
    # every committed write broadcasts to the 3 peers (3 writes per txn)
    assert cluster.invalidation_messages >= 3 * cluster.completed * 0.9


def test_broadcast_remote_lock_fraction_grows_with_n():
    counts = {}
    for n in (2, 4):
        config = small_cfg(n)
        cluster = BroadcastCluster(config)
        drive(cluster, config, seconds=0.4)
        total_locks = cluster.completed * (
            config.oltp.reads_per_txn + config.oltp.writes_per_txn + 1)
        counts[n] = cluster.remote_lock_requests / max(total_locks, 1)
    assert counts[4] > counts[2]  # (N-1)/N mastering probability


def test_broadcast_stale_readers_reread_dasd():
    config = small_cfg(2)
    cluster = BroadcastCluster(config)
    drive(cluster, config, seconds=0.8)
    # version-stale pool entries forced DASD rereads
    assert cluster.farm.total_ios > 0
