"""Property-based tests on LockSpace: safety and liveness of the
software lock state under random operation sequences."""

from hypothesis import given, settings, strategies as st

from repro.cf.lock import LockMode
from repro.simkernel import Simulator
from repro.subsystems.lockmgr import LockSpace, _Waiter


class _FakeMgr:
    system_name = "FAKE"


ops = st.lists(
    st.tuples(
        st.sampled_from(["grant", "release", "enqueue", "retain", "clear"]),
        st.integers(0, 5),   # owner id
        st.integers(0, 3),   # resource id
        st.sampled_from([LockMode.SHR, LockMode.EXCL]),
    ),
    max_size=80,
)


@given(ops)
@settings(max_examples=150, deadline=None)
def test_lockspace_safety_invariant(sequence):
    """No interleaving of grants/releases/dispatches produces two
    incompatible holders, and granted waiters always got compatible
    grants."""
    sim = Simulator()
    space = LockSpace(sim)
    mgr = _FakeMgr()
    held = {}   # (owner, res) -> mode actually granted
    waiters = []

    for op, o, r, mode in sequence:
        owner, res = f"O{o}", f"R{r}"
        if op == "grant":
            if space.try_grant(res, owner, mode):
                prev = held.get((owner, res))
                if prev != LockMode.EXCL:
                    held[(owner, res)] = mode
        elif op == "release":
            if (owner, res) in held:
                del held[(owner, res)]
                for w in space.release(res, owner):
                    held[(w.owner, res)] = w.mode
        elif op == "enqueue":
            if not space.try_grant(res, owner, mode):
                w = _Waiter(owner, mode, sim.event(), mgr, sim.now, res)
                space.enqueue(w, res)
                waiters.append((w, res))
            else:
                prev = held.get((owner, res))
                if prev != LockMode.EXCL:
                    held[(owner, res)] = mode
        elif op == "retain":
            space.retain_for_system(owner, {res: mode})
        elif op == "clear":
            for w in space.clear_retained(owner):
                pass
            # grants made by clear_retained's dispatch
            for w, wres in waiters:
                if w.granted and (w.owner, wres) not in held:
                    held[(w.owner, wres)] = w.mode

        # collect dispatch-granted waiters
        for w, wres in waiters:
            if w.granted and (w.owner, wres) not in held:
                held[(w.owner, wres)] = w.mode

        # SAFETY: never two incompatible holders
        space.check_invariant()
        # holders in the space match our model of granted work
        for name, rr in space._resources.items():
            for holder, hmode in rr.holders.items():
                assert (holder, name) in held, (
                    f"{holder} holds {name} without a recorded grant"
                )


@given(st.lists(st.tuples(st.integers(0, 4), st.booleans()), min_size=1,
                max_size=30))
@settings(max_examples=100, deadline=None)
def test_lockspace_fifo_liveness(plan):
    """Every enqueued waiter is eventually granted once all holders
    release (no waiter is stranded)."""
    sim = Simulator()
    space = LockSpace(sim)
    mgr = _FakeMgr()
    res = "R"
    # one initial holder
    assert space.try_grant(res, "H", LockMode.EXCL)
    waiters = []
    for i, (o, excl) in enumerate(plan):
        mode = LockMode.EXCL if excl else LockMode.SHR
        w = _Waiter(f"W{i}-{o}", mode, sim.event(), mgr, sim.now, res)
        space.enqueue(w, res)
        waiters.append(w)
    # release the holder, then drain: each granted waiter releases in turn
    granted = list(space.release(res, "H"))
    completed = set()
    guard = 0
    while len(completed) < len(waiters):
        guard += 1
        assert guard < 10_000, "liveness violated: waiters stranded"
        if not granted:
            break
        w = granted.pop(0)
        completed.add(id(w))
        granted.extend(space.release(res, w.owner))
    assert len(completed) == len(waiters)
    assert not space._resources  # all state drained
