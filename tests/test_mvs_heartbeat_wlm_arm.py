"""Tests for heartbeat/SFM detection, WLM routing, and ARM restarts."""

import numpy as np
import pytest

from repro.config import (
    ArmConfig,
    CpuConfig,
    DasdConfig,
    SysplexConfig,
    WlmConfig,
    XcfConfig,
)
from repro.hardware import DasdDevice, MessageFabric, SystemNode
from repro.mvs import (
    AutomaticRestartManager,
    CoupleDataSet,
    SysplexMonitor,
    WorkloadManager,
    XcfGroupServices,
)
from repro.simkernel import Simulator


def make_monitor(n=3):
    sim = Simulator()
    rng = np.random.default_rng(5)
    cds = CoupleDataSet(
        sim,
        DasdDevice(sim, DasdConfig(), rng, "cds1"),
        DasdDevice(sim, DasdConfig(), rng, "cds2"),
    )
    fabric = MessageFabric(sim, XcfConfig())
    xcf = XcfGroupServices(sim, fabric)
    cfg = XcfConfig()
    mon = SysplexMonitor(sim, cfg, cds, xcf)
    nodes = [SystemNode(sim, SysplexConfig(), index=i) for i in range(n)]
    for node in nodes:
        mon.add_system(node)
    return sim, mon, xcf, nodes, cds


# ----------------------------------------------------------- heartbeat ----
def test_healthy_systems_stay_in_sysplex():
    sim, mon, xcf, nodes, cds = make_monitor()
    sim.run(until=5)
    assert mon.detections == 0
    assert all(mon.in_sysplex[n.name] for n in nodes)


def test_failed_system_detected_and_partitioned():
    sim, mon, xcf, nodes, cds = make_monitor()
    partitioned = []
    mon.on_partition(lambda node: partitioned.append((sim.now, node.name)))

    def killer():
        yield sim.timeout(2.0)
        nodes[1].fail()

    sim.process(killer())
    sim.run(until=10)
    assert partitioned and partitioned[0][1] == "SYS01"
    # detection within a few heartbeat intervals of the failure
    cfg = XcfConfig()
    detect_time = partitioned[0][0] - 2.0
    assert detect_time < cfg.heartbeat_interval * (cfg.heartbeat_misses + 3)
    assert nodes[1].fenced
    assert mon.in_sysplex["SYS01"] is False


def test_partition_fails_xcf_members():
    sim, mon, xcf, nodes, cds = make_monitor()
    events = []
    xcf.join("G", "A", nodes[0], on_event=lambda e, m: events.append((e, m.name)))
    xcf.join("G", "B", nodes[1])

    def killer():
        yield sim.timeout(2.0)
        nodes[1].fail()

    sim.process(killer())
    sim.run(until=10)
    assert ("failed", "B") in events


def test_restarted_system_rejoins():
    sim, mon, xcf, nodes, cds = make_monitor()
    rejoined = []
    mon.on_rejoin(lambda node: rejoined.append(node.name))

    def script():
        yield sim.timeout(2.0)
        nodes[1].fail()
        yield sim.timeout(5.0)
        nodes[1].restart()

    sim.process(script())
    sim.run(until=15)
    assert rejoined == ["SYS01"]
    assert mon.in_sysplex["SYS01"] is True
    assert mon.detections == 1  # no double detection after rejoin


def test_planned_removal_uses_leave_not_failure():
    sim, mon, xcf, nodes, cds = make_monitor()
    events = []
    xcf.join("G", "A", nodes[0], on_event=lambda e, m: events.append((e, m.name)))
    xcf.join("G", "B", nodes[1])
    mon.remove_planned(nodes[1])
    assert ("leave", "B") in events
    assert ("failed", "B") not in events


# ------------------------------------------------------------------ WLM ----
def make_wlm(n=3, n_cpus=2):
    sim = Simulator()
    rng = np.random.default_rng(11)
    wlm = WorkloadManager(sim, WlmConfig(), rng)
    nodes = [
        SystemNode(sim, SysplexConfig(cpu=CpuConfig(n_cpus=n_cpus)), index=i)
        for i in range(n)
    ]
    for node in nodes:
        wlm.watch(node)
    return sim, wlm, nodes


def test_wlm_tracks_utilization():
    sim, wlm, nodes = make_wlm()

    def burn(node):
        while True:
            yield from node.cpu.consume(0.05)
            yield sim.timeout(0.001)

    sim.process(burn(nodes[0]))  # node 0 nearly saturated on 1 of 2 engines
    sim.run(until=3)
    assert wlm.utilization("SYS00") > 0.3
    assert wlm.utilization("SYS01") < 0.05


def test_wlm_routes_away_from_busy_system():
    sim, wlm, nodes = make_wlm()

    def burn(node):
        while True:
            yield from node.cpu.consume(0.05)

    sim.process(burn(nodes[0]))
    sim.process(burn(nodes[0]))  # saturate both engines of SYS00
    sim.run(until=3)
    picks = [wlm.select_system(nodes).name for _ in range(300)]
    share0 = picks.count("SYS00") / len(picks)
    assert share0 < 0.15  # nearly all work routed to the idle systems


def test_wlm_select_skips_dead_systems():
    sim, wlm, nodes = make_wlm()
    nodes[0].fail()
    picks = {wlm.select_system(nodes).name for _ in range(50)}
    assert "SYS00" not in picks


def test_wlm_select_raises_with_no_live_system():
    sim, wlm, nodes = make_wlm()
    for n in nodes:
        n.fail()
    with pytest.raises(RuntimeError):
        wlm.select_system(nodes)


def test_wlm_least_utilized_deterministic():
    sim, wlm, nodes = make_wlm()
    wlm._systems["SYS00"].util = 0.9
    wlm._systems["SYS01"].util = 0.2
    wlm._systems["SYS02"].util = 0.5
    assert wlm.least_utilized(nodes).name == "SYS01"


def test_service_class_performance_index():
    sim, wlm, nodes = make_wlm()
    wlm.define_service_class("FAST", response_goal=0.1)
    for rt in (0.05, 0.15):
        wlm.record_response("FAST", rt)
    assert wlm.performance_index("FAST") == pytest.approx(1.0)


def test_dead_system_utilization_pinned_high():
    sim, wlm, nodes = make_wlm()

    def killer():
        yield sim.timeout(1.0)
        nodes[0].fail()

    sim.process(killer())
    sim.run(until=3)
    assert wlm.utilization("SYS00") == 1.0


# ------------------------------------------------------------------ ARM ----
def make_arm(n=3):
    sim, wlm, nodes = make_wlm(n)
    arm = AutomaticRestartManager(sim, ArmConfig(), wlm, nodes)
    return sim, wlm, arm, nodes


def test_arm_restarts_on_least_utilized(recovered=None):
    sim, wlm, arm, nodes = make_arm()
    recovered = []

    def recovery(el, target):
        recovered.append((sim.now, el.name, target.name))
        yield sim.timeout(0.1)

    arm.register("DB2A", nodes[0], recovery)
    wlm._systems["SYS01"].util = 0.8
    wlm._systems["SYS02"].util = 0.1
    nodes[0].fail()
    arm.system_failed(nodes[0])
    sim.run(until=10)
    assert recovered
    when, name, target = recovered[0]
    assert target == "SYS02"  # least utilized
    assert when >= ArmConfig().restart_time
    assert arm.elements["DB2A"].state == "running"
    assert arm.elements["DB2A"].restarts == 1


def test_arm_affinity_group_shares_target():
    sim, wlm, arm, nodes = make_arm()
    targets = []

    def recovery(el, target):
        targets.append(target.name)
        yield sim.timeout(0)

    arm.register("CICS1", nodes[0], recovery, affinity="APPL1")
    arm.register("DB2A", nodes[0], recovery, affinity="APPL1")
    nodes[0].fail()
    arm.system_failed(nodes[0])
    sim.run(until=10)
    assert len(targets) == 2 and targets[0] == targets[1]


def test_arm_restart_sequencing_levels():
    sim, wlm, arm, nodes = make_arm()
    order = []

    def recovery(el, target):
        order.append(el.name)
        yield sim.timeout(0.5)

    arm.register("APP", nodes[0], recovery, level=1)
    arm.register("DB", nodes[0], recovery, level=0)
    nodes[0].fail()
    arm.system_failed(nodes[0])
    sim.run(until=20)
    assert order == ["DB", "APP"]  # database first, then the application


def test_arm_cascaded_failure_repicks_target():
    sim, wlm, arm, nodes = make_arm()
    landed = []

    def recovery(el, target):
        landed.append(target.name)
        yield sim.timeout(0)

    arm.register("DB2A", nodes[0], recovery)
    wlm._systems["SYS01"].util = 0.0
    wlm._systems["SYS02"].util = 0.9
    nodes[0].fail()
    arm.system_failed(nodes[0])

    def second_failure():
        # SYS01 (the chosen target) dies during the restart window
        yield sim.timeout(ArmConfig().restart_time / 2)
        nodes[1].fail()

    sim.process(second_failure())
    sim.run(until=30)
    assert landed == ["SYS02"]


def test_arm_ignores_systems_with_no_elements():
    sim, wlm, arm, nodes = make_arm()
    arm.system_failed(nodes[2])  # nothing registered there
    sim.run(until=5)
    assert arm.restart_log == []
