"""Integration tests: the fully wired sysplex end to end."""

import pytest

from repro import (
    CpuConfig,
    RunOptions,
    DatabaseConfig,
    Sysplex,
    SysplexConfig,
    build_loaded_sysplex,
    quick_sysplex,
    run_oltp,
)


def small_cfg(n_systems=2, **kw):
    # big enough that hot-page contention doesn't dominate a 4-system run
    return SysplexConfig(
        n_systems=n_systems,
        db=DatabaseConfig(n_pages=12_000, buffer_pages=4_000),
        **kw,
    )


def test_build_wires_everything():
    plex = Sysplex(small_cfg(3))
    assert len(plex.nodes) == 3
    assert len(plex.instances) == 3
    assert plex.xes.find("IRLMLOCK1") is not None
    assert plex.xes.find("GBP0") is not None
    assert plex.xes.find("WORKQ1") is not None
    inst = plex.instances["SYS00"]
    assert inst.castout is not None  # castout owner is the first system
    assert plex.instances["SYS01"].castout is None


def test_single_system_non_sharing_has_no_cf():
    plex = Sysplex(small_cfg(1, data_sharing=False, n_cfs=0))
    assert plex.cfs == []
    inst = plex.instances["SYS00"]
    assert inst.xes_cache is None
    assert not inst.buffers.data_sharing


def test_multi_system_sharing_requires_cf():
    with pytest.raises(ValueError):
        SysplexConfig(n_systems=2, n_cfs=0)


def test_config_bounds():
    with pytest.raises(ValueError):
        SysplexConfig(n_systems=33)
    with pytest.raises(ValueError):
        SysplexConfig(cpu=CpuConfig(n_cpus=11))


def test_oltp_run_completes_transactions():
    r = run_oltp(small_cfg(2), duration=0.3, warmup=0.1,
                 options=RunOptions(terminals_per_system=5))
    assert r.completed > 20
    assert r.throughput > 0
    assert 0 < r.response_mean < 1.0
    assert r.response_p95 >= r.response_p50
    assert set(r.cpu_utilization) == {"SYS00", "SYS01"}


def test_throughput_grows_with_systems():
    """Capacity scaling follows the TPC discipline: the database scales
    with the configuration (otherwise hot-page lock contention, not CPU,
    is what's being measured)."""

    def scaled(n):
        return SysplexConfig(
            n_systems=n,
            db=DatabaseConfig(n_pages=12_000 * n, buffer_pages=4_000),
            n_dasd=16 * n,
        )

    r2 = run_oltp(scaled(2), duration=0.3, warmup=0.2)
    r4 = run_oltp(scaled(4), duration=0.3, warmup=0.2)
    assert r4.throughput > 1.5 * r2.throughput


def test_data_sharing_costs_cpu_but_not_half():
    """The §4 claim at test scale: sharing costs something, far under 2x."""
    base = run_oltp(small_cfg(1, data_sharing=False, n_cfs=0),
                    duration=0.3, warmup=0.2)
    ds = run_oltp(small_cfg(2), duration=0.3, warmup=0.2)
    cpu_base = base.mean_utilization * 1 * base.duration / base.completed
    cpu_ds = ds.mean_utilization * 2 * ds.duration / ds.completed
    tax = cpu_ds / cpu_base - 1
    assert 0.02 < tax < 0.45


def test_open_loop_mode():
    r = run_oltp(small_cfg(2), duration=0.4, warmup=0.2, options=RunOptions(mode="open", offered_tps_per_system=50))
    assert r.throughput == pytest.approx(100, rel=0.35)


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        run_oltp(small_cfg(2), options=RunOptions(mode="sideways"))


def test_failover_end_to_end():
    """Kill a system mid-run: detection, fencing, ARM restart, peer
    recovery, and continued service on the survivors."""
    cfg = small_cfg(3)
    plex, gen = build_loaded_sysplex(cfg, options=RunOptions(terminals_per_system=5))
    victim = plex.nodes[1]
    plex.sim.call_at(0.5, victim.fail)
    plex.sim.run(until=6.0)

    assert not victim.alive and victim.fenced
    assert plex.monitor.detections == 1
    assert plex.metrics.counter("failures.partitioned").count == 1
    assert plex.metrics.counter("failures.recovered").count == 1
    # retained locks were eventually released
    assert not plex.lock_space.retained
    # ARM restarted the DBMS element somewhere else
    assert plex.arm.restart_log
    _, name, target = plex.arm.restart_log[0]
    assert name == "DBMS-SYS01" and target in ("SYS00", "SYS02")
    # survivors kept completing work after the failure
    after = [i.tm.completed for n, i in plex.instances.items() if n != "SYS01"]
    assert all(c > 0 for c in after)


def test_throughput_recovers_after_failure():
    cfg = small_cfg(3)
    plex, gen = build_loaded_sysplex(cfg, options=RunOptions(terminals_per_system=5))
    plex.sim.run(until=0.5)
    c_before = plex.metrics.counter("txn.completed").count
    plex.nodes[2].fail()
    plex.sim.run(until=4.5)
    mid = plex.metrics.counter("txn.completed").count
    plex.sim.run(until=6.5)
    c_after = plex.metrics.counter("txn.completed").count
    # the sysplex kept processing through failure and recovery
    assert mid > c_before
    late_rate = (c_after - mid) / 2.0
    early_rate = c_before / 0.5
    # two of three systems remain: rate should be within ~roughly 2/3
    assert late_rate > 0.35 * early_rate


def test_castout_ownership_moves_on_failure():
    cfg = small_cfg(3)
    plex, gen = build_loaded_sysplex(cfg, options=RunOptions(terminals_per_system=3))
    assert plex.instances["SYS00"].castout is not None
    plex.sim.call_at(0.3, plex.nodes[0].fail)  # after heartbeats exist
    plex.sim.run(until=4.0)
    owners = [n for n, i in plex.instances.items()
              if i.castout is not None and i.castout.active]
    assert owners and "SYS00" not in owners


def test_add_system_non_disruptive():
    """§2.4: a new system joins, work continues, the newcomer attracts
    load via WLM."""
    cfg = small_cfg(2)
    plex, gen = build_loaded_sysplex(cfg, options=RunOptions(
        mode="open", offered_tps_per_system=120, router_policy="wlm"))
    plex.sim.run(until=0.5)
    inst = plex.add_system()
    # the generator keeps producing at the same offered rate; the router
    # now includes the new system
    plex.sim.run(until=2.5)
    assert inst.tm.completed > 0  # newcomer does real work
    assert inst.node.name == "SYS02"
    assert plex.wlm.utilization("SYS02") > 0.01


def test_32_system_limit_on_growth():
    plex = Sysplex(small_cfg(2))
    plex.nodes.extend([None] * 30)  # simulate being at the limit
    with pytest.raises(RuntimeError):
        plex.add_system()


def test_sysplex_timer_attached_to_all():
    plex = Sysplex(small_cfg(3))
    assert len(plex.timer.clocks) == 3
    plex.sim.run(until=3)
    assert plex.timer.max_skew() < 1e-3


def test_quick_sysplex_helper():
    cfg = quick_sysplex(n_systems=4, n_cpus=2, seed=9)
    assert cfg.n_systems == 4
    assert cfg.cpu.n_cpus == 2
    assert cfg.seed == 9
