"""Tests for the TCP/IP single-system-image layer (Sysplex Distributor,
dynamic VIPA takeover, DNS round-robin baseline)."""


from repro import RunOptions
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import build_loaded_sysplex
from repro.simkernel import Tally
from repro.subsystems.tcpip import (
    DnsRoundRobin,
    SysplexDistributor,
    TcpStack,
    WebConfig,
    WebWorkload,
)


def make_web(n=3, scheme="sd"):
    cfg = SysplexConfig(
        n_systems=n,
        db=DatabaseConfig(n_pages=6_000, buffer_pages=2_000),
    )
    plex, gen = build_loaded_sysplex(cfg, options=RunOptions(terminals_per_system=0))
    web_cfg = WebConfig()
    stacks = [
        TcpStack(plex.sim, inst.node, plex.farm, web_cfg,
                 plex.streams.stream(f"web-{name}"), plex.metrics)
        for name, inst in plex.instances.items()
    ]
    if scheme == "sd":
        router = SysplexDistributor(plex.sim, stacks, plex.wlm, web_cfg,
                                    plex.metrics)
    else:
        router = DnsRoundRobin(plex.sim, stacks, web_cfg, plex.metrics)
    return plex, stacks, router, web_cfg


def test_connection_serves_all_requests():
    plex, stacks, router, web_cfg = make_web()
    rt = Tally()

    def client():
        yield from router.connect(rt)

    plex.sim.process(client())
    plex.sim.run(until=2.0)
    assert rt.n == web_cfg.requests_per_connection
    assert sum(s.connections_served for s in stacks) == 1
    assert all(v > 0 for v in rt.values())


def test_distributor_spreads_connections():
    plex, stacks, router, web_cfg = make_web()
    workload = WebWorkload(plex.sim, router, plex.streams.stream("gen"))
    workload.start(connections_per_second=300)
    plex.sim.run(until=2.0)
    served = [s.connections_served for s in stacks]
    assert sum(served) > 100
    assert all(c > 0 for c in served)  # everyone participates
    # routed >= served: the tail connections are still in flight
    assert router.connections_routed >= sum(served)


def test_distributor_routes_around_dead_backend():
    plex, stacks, router, web_cfg = make_web()
    workload = WebWorkload(plex.sim, router, plex.streams.stream("gen"))
    workload.start(connections_per_second=200)
    plex.sim.call_at(0.5, plex.nodes[2].fail)
    plex.sim.run(until=2.0)
    # no connection refused: new work flows to the survivors
    assert plex.metrics.counter("web.conn_refused").count == 0
    # the dead stack stopped serving right away
    dead_served_early = stacks[2].connections_served
    plex.sim.run(until=3.0)
    assert stacks[2].connections_served == dead_served_early


def test_vipa_takeover_when_distributor_dies():
    plex, stacks, router, web_cfg = make_web()
    workload = WebWorkload(plex.sim, router, plex.streams.stream("gen"))
    workload.start(connections_per_second=200)
    assert router.distributing == 0
    plex.sim.call_at(0.5, plex.nodes[0].fail)
    plex.sim.run(until=3.0)
    assert router.takeovers == 1
    assert router.distributing != 0
    # service resumed after the takeover pause
    assert stacks[1].connections_served + stacks[2].connections_served > 50


def test_dns_round_robin_fails_connections_during_ttl():
    plex, stacks, router, web_cfg = make_web(scheme="dns")
    workload = WebWorkload(plex.sim, router, plex.streams.stream("gen"))
    workload.start(connections_per_second=200)
    plex.sim.call_at(0.5, plex.nodes[1].fail)
    ttl_end = 0.5 + web_cfg.dns_ttl
    plex.sim.run(until=ttl_end)
    refused_in_ttl = plex.metrics.counter("web.conn_refused").count
    assert refused_in_ttl > 10  # stale A-record keeps being resolved
    # leave a grace window for in-flight timeouts to land, then measure
    plex.sim.run(until=ttl_end + 0.5)
    refused_grace = plex.metrics.counter("web.conn_refused").count
    plex.sim.run(until=ttl_end + 2.5)
    refused_after = plex.metrics.counter("web.conn_refused").count
    # after the TTL expires the resolver stops handing out the corpse
    rate_during = refused_in_ttl / web_cfg.dns_ttl
    rate_after = (refused_after - refused_grace) / 2.0
    assert rate_after < 0.1 * rate_during


def test_broken_connections_counted_on_mid_connection_death():
    plex, stacks, router, web_cfg = make_web()
    workload = WebWorkload(plex.sim, router, plex.streams.stream("gen"))
    workload.start(connections_per_second=400)
    plex.sim.call_at(0.5, plex.nodes[1].fail)
    plex.sim.run(until=1.5)
    assert plex.metrics.counter("web.conn_broken").count > 0
