"""Tests for the global lock manager: fast path, negotiation, deadlocks,
retained locks."""


from repro.cf import LockMode
from repro.subsystems import DeadlockAbort
from repro.subsystems.lockmgr import DeadlockDetector

from conftest import MiniPlex


def test_uncontended_lock_granted_in_microseconds(miniplex):
    mp = miniplex
    times = []

    def work():
        t0 = mp.sim.now
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "res", LockMode.EXCL)
        times.append(mp.sim.now - t0)

    mp.run(work())
    assert times[0] < 100e-6  # microseconds, the paper's headline
    assert mp.lockmgrs[0].sync_grants == 1


def test_shared_locks_concurrent_across_systems(miniplex):
    mp = miniplex
    granted = []

    def reader(i):
        yield from mp.lockmgrs[i].lock((f"SYS{i:02d}", 1), "page", LockMode.SHR)
        granted.append(i)

    mp.run(reader(0), reader(1))
    assert sorted(granted) == [0, 1]


def test_exclusive_blocks_until_release(miniplex):
    mp = miniplex
    events = []

    def holder():
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "page", LockMode.EXCL)
        events.append(("held", mp.sim.now))
        yield mp.sim.timeout(0.01)
        yield from mp.lockmgrs[0].unlock(("SYS00", 1), "page", LockMode.EXCL)

    def waiter():
        yield mp.sim.timeout(0.001)
        yield from mp.lockmgrs[1].lock(("SYS01", 2), "page", LockMode.EXCL)
        events.append(("granted", mp.sim.now))

    mp.run(holder(), waiter())
    assert events[0][0] == "held"
    assert events[1][0] == "granted"
    assert events[1][1] >= 0.01  # waited for the release


def test_no_incompatible_holders_ever(miniplex4):
    """2PL safety invariant under concurrent conflicting requests."""
    mp = miniplex4

    def txn(i, n):
        owner = (f"SYS{i:02d}", n)
        yield mp.sim.timeout(0.0001 * n)
        yield from mp.lockmgrs[i].lock(owner, "hot", LockMode.EXCL)
        mp.space.check_invariant()
        yield mp.sim.timeout(0.002)
        mp.space.check_invariant()
        yield from mp.lockmgrs[i].unlock_all(owner)

    procs = [txn(i, n) for i in range(4) for n in range(5)]
    mp.run(*procs, until=30)
    mp.space.check_invariant()
    assert not mp.space._resources  # everything released


def test_unlock_all_batches_one_command(miniplex):
    mp = miniplex
    mgr = mp.lockmgrs[0]

    def work():
        owner = ("SYS00", 1)
        for r in ("a", "b", "c", "d"):
            yield from mgr.lock(owner, r, LockMode.EXCL)
        ops_before = mgr.xes.port.sync_ops
        yield from mgr.unlock_all(owner)
        assert mgr.xes.port.sync_ops == ops_before + 1  # one batched sweep
        assert mgr.locks_of(owner) == {}

    mp.run(work())


def test_false_contention_negotiated_then_granted():
    """With a 1-entry lock table everything collides; different resources
    must still be grantable after (costly) negotiation."""
    mp = MiniPlex(lock_entries=1)
    done = []

    def a():
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "resA", LockMode.EXCL)
        done.append("a")

    def b():
        yield mp.sim.timeout(0.001)
        t0 = mp.sim.now
        yield from mp.lockmgrs[1].lock(("SYS01", 2), "resB", LockMode.EXCL)
        done.append(("b", mp.sim.now - t0))

    mp.run(a(), b())
    assert done[0] == "a"
    tag, elapsed = done[1]
    # negotiation costs messaging latency, much slower than the fast path
    assert elapsed > mp.config.xcf.message_latency
    assert mp.lockmgrs[1].negotiations >= 1
    structure = mp.xes.find("LOCK")
    assert structure.false_contention >= 1


def test_deadlock_detected_and_victim_aborted(miniplex):
    mp = miniplex
    detector = DeadlockDetector(mp.sim, mp.space, interval=0.05)
    outcomes = []

    def txn(i, first, second):
        owner = (f"SYS{i:02d}", i)
        try:
            yield from mp.lockmgrs[i].lock(owner, first, LockMode.EXCL)
            yield mp.sim.timeout(0.01)
            yield from mp.lockmgrs[i].lock(owner, second, LockMode.EXCL)
            outcomes.append((i, "completed"))
            yield from mp.lockmgrs[i].unlock_all(owner)
        except DeadlockAbort:
            outcomes.append((i, "aborted"))
            yield from mp.lockmgrs[i].unlock_all(owner)

    mp.run(txn(0, "X", "Y"), txn(1, "Y", "X"), until=5)
    assert ("0", "x") or True
    states = {o for _i, o in outcomes}
    assert states == {"completed", "aborted"}
    assert detector.victims == 1
    assert not mp.space._resources


def test_deadlock_victim_is_youngest(miniplex):
    mp = miniplex
    DeadlockDetector(mp.sim, mp.space, interval=0.05)
    aborted = []

    def txn(i, first, second, start):
        owner = (f"SYS{i:02d}", i)
        try:
            yield mp.sim.timeout(start)
            yield from mp.lockmgrs[i].lock(owner, first, LockMode.EXCL)
            yield mp.sim.timeout(0.02)
            yield from mp.lockmgrs[i].lock(owner, second, LockMode.EXCL)
            yield from mp.lockmgrs[i].unlock_all(owner)
        except DeadlockAbort:
            aborted.append(i)
            yield from mp.lockmgrs[i].unlock_all(owner)

    # txn 1 enqueues its wait later -> younger -> should be the victim
    mp.run(txn(0, "X", "Y", 0.0), txn(1, "Y", "X", 0.005), until=5)
    assert aborted == [1]


def test_retained_locks_reject_conflicting_until_recovery(miniplex):
    """Conflicting requests against retained locks are REJECTED (IMS
    U3303-style), not queued; after recovery they succeed."""
    mp = miniplex
    from repro.subsystems.lockmgr import RetainedLockReject

    rejected = []
    got = []

    def victim():
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "page", LockMode.EXCL)
        # system dies while holding the update lock

    def crash():
        yield mp.sim.timeout(0.005)
        retained = mp.lockmgrs[0].fail_instance()
        assert "page" in retained

    def requester():
        yield mp.sim.timeout(0.01)
        try:
            yield from mp.lockmgrs[1].lock(("SYS01", 2), "page", LockMode.EXCL)
        except RetainedLockReject:
            rejected.append(mp.sim.now)
        # retry after recovery
        yield mp.sim.timeout(0.2)
        yield from mp.lockmgrs[1].lock(("SYS01", 3), "page", LockMode.EXCL)
        got.append(mp.sim.now)

    def recovery():
        yield mp.sim.timeout(0.1)
        mp.space.clear_retained("SYS00")

    mp.run(victim(), crash(), requester(), recovery(), until=5)
    assert rejected and rejected[0] < 0.1  # rejected fast, not queued
    assert got and got[0] >= 0.2  # granted once recovery released it


def test_retained_locks_allow_nonconflicting_work(miniplex):
    mp = miniplex
    got = []

    def victim():
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "pageA", LockMode.EXCL)

    def crash_then_work():
        yield mp.sim.timeout(0.005)
        mp.lockmgrs[0].fail_instance()
        yield from mp.lockmgrs[1].lock(("SYS01", 2), "pageB", LockMode.EXCL)
        got.append(mp.sim.now)

    mp.run(victim(), crash_then_work(), until=5)
    assert got  # unrelated page was never blocked


def test_shr_lock_on_failed_systems_resource_not_retained(miniplex):
    """Only EXCL (update) locks are retained; read locks die with the
    system."""
    mp = miniplex
    got = []

    def victim():
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "page", LockMode.SHR)

    def crash_then_lock():
        yield mp.sim.timeout(0.005)
        mp.lockmgrs[0].fail_instance()
        yield from mp.lockmgrs[1].lock(("SYS01", 2), "page", LockMode.EXCL)
        got.append(mp.sim.now)

    mp.run(victim(), crash_then_lock(), until=5)
    assert got and got[0] < 0.1


def test_waiters_of_failed_system_resource_wait_for_recovery(miniplex):
    """A waiter queued behind a dying system's EXCL lock must NOT be
    granted at failure time — the data is unrecovered."""
    mp = miniplex
    got = []

    def victim():
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "page", LockMode.EXCL)

    def waiter():
        yield mp.sim.timeout(0.002)
        yield from mp.lockmgrs[1].lock(("SYS01", 2), "page", LockMode.EXCL)
        got.append(mp.sim.now)

    def crash():
        yield mp.sim.timeout(0.01)
        mp.lockmgrs[0].fail_instance()

    def recovery():
        yield mp.sim.timeout(0.2)
        mp.space.clear_retained("SYS00")

    mp.run(victim(), waiter(), crash(), recovery(), until=5)
    assert got and got[0] >= 0.2


def test_record_data_written_for_excl(miniplex):
    mp = miniplex

    def work():
        yield from mp.lockmgrs[0].lock(("SYS00", 1), "page", LockMode.EXCL)

    mp.run(work())
    structure = mp.xes.find("LOCK")
    conn_id = mp.lockmgrs[0].xes.connector.conn_id
    assert "page" in structure.records_of(conn_id)


def test_record_data_deleted_on_unlock(miniplex):
    mp = miniplex

    def work():
        owner = ("SYS00", 1)
        yield from mp.lockmgrs[0].lock(owner, "page", LockMode.EXCL)
        yield from mp.lockmgrs[0].unlock_all(owner)

    mp.run(work())
    structure = mp.xes.find("LOCK")
    conn_id = mp.lockmgrs[0].xes.connector.conn_id
    assert structure.records_of(conn_id) == {}
