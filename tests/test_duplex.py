"""Tests for system-managed CF structure duplexing (paper §3.3 / §2.5).

The duplexed-write protocol, the SFM switch-vs-rebuild policy, the
background re-duplex loop, and the failover determinism contract: a
duplexed chaos run is byte-identical across every executor backend, and
a duplex switch recovers measurably faster than a structure rebuild of
the same failure.
"""

from pathlib import Path

from repro import RunOptions
from repro.config import CfConfig, DatabaseConfig, SfmConfig, SysplexConfig
from repro.executor import LocalPoolBackend, WorkQueueBackend, execute
from repro.experiments.exp_chaos import chaos_spec
from repro.experiments.exp_duplex import duplex_spec, run_duplex_spec
from repro.invariants import InvariantChecker
from repro.runner import build_loaded_sysplex
from repro.runspec import canonical_json

ROOT = Path(__file__).resolve().parent.parent

STRUCTURES = ("IRLMLOCK1", "GBP0", "WORKQ1")


def duplex_cfg(n_systems=3, duplex="all", **kw):
    return SysplexConfig(
        n_systems=n_systems,
        n_cfs=2,
        cf=CfConfig(duplex=duplex),
        db=DatabaseConfig(n_pages=12_000, buffer_pages=4_000),
        **kw,
    )


def loaded(duplex="all", terminals=4, **kw):
    return build_loaded_sysplex(
        duplex_cfg(duplex=duplex, **kw),
        options=RunOptions(terminals_per_system=terminals),
    )


# ------------------------------------------------------------- wiring ----
def test_duplex_none_builds_no_pairs():
    plex, gen = loaded(duplex="none")
    assert plex.xes.duplex_pairs == {}
    for inst in plex.instances.values():
        for xes in (inst.xes_lock, inst.xes_cache, inst.xes_list):
            assert getattr(xes, "pair", None) is None


def test_duplex_all_wires_secondary_instances():
    plex, gen = loaded()
    assert sorted(plex.xes.duplex_pairs) == sorted(STRUCTURES)
    for pair in plex.xes.duplex_pairs.values():
        assert pair.active
        assert pair.secondary.facility is not pair.primary.facility
        for conn in pair.connections:
            # conn_id parity keeps the shared vector wiring identical
            assert conn.connector.conn_id == conn.sec_connector.conn_id


def test_partial_policy_duplexes_only_that_class():
    plex, gen = loaded(duplex="lock")
    assert list(plex.xes.duplex_pairs) == ["IRLMLOCK1"]


# ------------------------------------------------- duplexed writes ----
def test_mutations_keep_instances_byte_identical():
    plex, gen = loaded()
    plex.sim.run(until=0.5)
    compared = 0
    for pair in plex.xes.duplex_pairs.values():
        if pair.inflight:
            continue  # mid-protocol at the stop instant: not comparable
        assert pair.primary.duplex_state() == pair.secondary.duplex_state()
        compared += 1
    assert compared, "every pair was mid-flight at the stop instant"


def test_invariant_checker_covers_duplex_branches():
    plex, gen = loaded()
    checker = InvariantChecker(plex, interval=0.05)
    plex.sim.run(until=0.5)
    assert checker.branches.get("duplex:consistent", 0) > 0
    assert checker.ok, checker.violations


# ------------------------------------------------ break and re-duplex ----
def test_drop_secondary_breaks_cleanly_and_reduplexes():
    plex, gen = loaded()
    plex.sim.run(until=0.3)
    pair = plex.xes.duplex_pairs["IRLMLOCK1"]
    c0 = plex.metrics.counter("txn.completed").count
    pair.drop_secondary("test")
    assert pair.secondary is None and not pair.active
    plex.sim.run(until=0.6)
    # work kept completing simplex and the break hit the record
    assert plex.metrics.counter("txn.completed").count > c0
    assert plex.metrics.counter("duplex.breaks").count == 1
    assert any(label.startswith("duplex-simplex:IRLMLOCK1")
               for _t, label in plex.degraded_events)
    # the background loop re-established a fresh secondary
    plex.sim.run(until=1.5)
    assert pair.secondary is not None and pair.active
    assert plex.metrics.counter("duplex.reestablished").count == 1
    assert pair.primary.duplex_state() == pair.secondary.duplex_state()


# ------------------------------------------------------- switch path ----
def test_cf_failure_takes_the_switch_path():
    plex, gen = loaded()
    plex.sim.run(until=0.3)
    failing = plex.xes.duplex_pairs["IRLMLOCK1"].primary.facility
    surviving = next(c for c in plex.cfs if c is not failing)
    c0 = plex.metrics.counter("txn.completed").count
    failing.fail()
    plex.sim.run(until=1.5)

    assert plex.metrics.counter("cf.switches").count == len(STRUCTURES)
    assert plex.metrics.counter("cf.rebuilds_started").count == 0
    for name in STRUCTURES:
        st = plex.xes.find(name)
        assert st is not None and not st.lost
        assert st.facility is surviving
    assert plex.metrics.counter("txn.completed").count > c0
    # the castout engine survived the switch (a fresh drainer exists)
    assert any(inst.castout is not None and inst.castout.active
               for inst in plex.instances.values())
    incidents = plex.sfm.incidents
    switch_rows = [i for i in incidents if i["kind"] == "switch"]
    assert sorted(i["structure"] for i in switch_rows) == sorted(STRUCTURES)
    for row in switch_rows:
        assert row["detected_at"] >= row["failed_at"]
        assert row["resumed_at"] >= row["detected_at"]
        assert row["recovery_ms"] >= 0.0 and row["slo_ms"] > 0


def test_simplex_pair_falls_back_to_rebuild():
    plex, gen = loaded(sfm=SfmConfig(reestablish_delay=30.0))
    plex.sim.run(until=0.3)
    for pair in plex.xes.duplex_pairs.values():
        pair.drop_secondary("test")
    failing = plex.xes.find("IRLMLOCK1").facility
    surviving = next(c for c in plex.cfs if c is not failing)
    failing.fail()
    plex.sim.run(until=1.5)

    # both instances were gone: every structure took the rebuild path
    # and stopped being duplexed for the rest of the run
    assert plex.xes.duplex_pairs == {}
    assert plex.metrics.counter("cf.switches").count == 0
    assert plex.metrics.counter("cf.rebuilds").count == len(STRUCTURES)
    for name in STRUCTURES:
        st = plex.xes.find(name)
        assert st is not None and not st.lost
        assert st.facility is surviving
    kinds = {i["kind"] for i in plex.sfm.incidents if i["kind"] != "reestablish"}
    assert kinds == {"rebuild"}


# ---------------------------------------------------- the MTTR claim ----
def test_switch_recovers_faster_than_rebuild():
    """The identical CF failure, simplex vs. duplexed: the duplex switch
    must beat the structure rebuild on measured recovery time."""
    simplex = run_duplex_spec(duplex_spec(duplex="none"))["summary"]
    duplexed = run_duplex_spec(duplex_spec(duplex="all"))["summary"]
    assert simplex["rebuilds"] >= 1 and simplex["switches"] == 0
    assert duplexed["switches"] == len(STRUCTURES)
    assert duplexed["rebuilds"] == 0
    assert duplexed["recovery_ms_max"] > 0.0
    assert duplexed["recovery_ms_max"] < simplex["recovery_ms_max"]
    # the duplexed plex also keeps serving after the failure
    assert duplexed["post_tput"] > 0.5 * simplex["post_tput"]


# ------------------------------------------- failover determinism ----
def test_duplexed_chaos_is_byte_identical_across_backends():
    """The determinism contract under duplexing: the same duplexed chaos
    run in-process, across a local pool, and through the work-queue
    server agrees to the byte."""
    spec = chaos_spec(seed=5, duplex="all",
                      horizon=1.5, drain=1.0, window=0.5)
    serial = execute([spec], jobs=1)
    pooled = execute([spec], backend=LocalPoolBackend(jobs=2))
    queued = execute(
        [spec],
        backend=WorkQueueBackend(workers=2, pythonpath=[ROOT],
                                 startup_timeout=30.0),
    )
    a, b, c = serial[0], pooled[0], queued[0]
    assert canonical_json(a) == canonical_json(b) == canonical_json(c)
    assert a["invariants"]["violations"] == []
    assert a["summary"]["pathology"]["duplex_pairs"] == len(STRUCTURES)
