"""Tests for the campaign driver: grids, manifest resume, triage."""

import json

import pytest

from repro.campaign import (
    GRIDS,
    MANIFEST_NAME,
    SUMMARY_NAME,
    Manifest,
    build_grid,
    main,
    run_campaign,
    triage,
)
from repro.runspec import RunSpec

RUNNER = "tests.test_campaign:tiny_runner"
BOOM = "tests.test_campaign:sometimes_boom_runner"


def tiny_runner(spec):
    return {"label": spec.label, "n": spec.params["n"]}


def sometimes_boom_runner(spec):
    if spec.params.get("boom"):
        raise ValueError("boom")
    return {"n": spec.params["n"]}


def tiny_specs(n, boom=()):
    return [RunSpec(runner=BOOM, label=f"t{i}",
                    params={"n": i, "boom": i in boom})
            for i in range(n)]


# ------------------------------------------------------------- grids ----
def test_grids_are_deterministic():
    for grid in GRIDS:
        a = [s.content_hash() for s in build_grid(grid, 9, seed=3)]
        b = [s.content_hash() for s in build_grid(grid, 9, seed=3)]
        assert a == b, grid
        assert len(a) == 9, grid


def test_grids_differ_by_seed():
    a = {s.content_hash() for s in build_grid("fuzz", 8, seed=0)}
    b = {s.content_hash() for s in build_grid("fuzz", 8, seed=1)}
    assert a != b


def test_unknown_grid_rejected():
    with pytest.raises(ValueError, match="unknown grid"):
        build_grid("nope", 5)
    with pytest.raises(ValueError, match="points"):
        build_grid("micro", 0)


# ----------------------------------------------------------- manifest ----
def test_manifest_round_trip(tmp_path):
    m = Manifest(tmp_path / MANIFEST_NAME)
    m.mark("aa" * 16, "done", 1.5, label="p0")
    m.mark("bb" * 16, "failed", 0.2, label="p1", error="ValueError: x")
    m.mark("bb" * 16, "done", 0.3, label="p1")  # retry wins

    again = Manifest(tmp_path / MANIFEST_NAME)
    assert again.status_of("aa" * 16) == "done"
    assert again.status_of("bb" * 16) == "done"
    assert again.counts() == {"done": 2}


def test_manifest_tolerates_torn_tail(tmp_path):
    path = tmp_path / MANIFEST_NAME
    m = Manifest(path)
    m.mark("cc" * 16, "done", 1.0)
    with path.open("a") as fh:
        fh.write('{"hash": "dd", "status": "do')  # killed mid-write
    again = Manifest(path)
    assert again.counts() == {"done": 1}
    assert again.status_of("dd") is None


def test_triage_groups_by_first_line():
    recs = [{"hash": "a", "label": "x", "error": "ValueError: boom\n..."},
            {"hash": "b", "label": "y", "error": "ValueError: boom"},
            {"hash": "c", "label": "z", "error": "KeyError: 'q'"}]
    groups = triage(recs)
    assert [g["count"] for g in groups] == [2, 1]
    assert groups[0]["error"].startswith("ValueError: boom")


# ------------------------------------------------------------ driver ----
def test_campaign_runs_and_resumes(tmp_path):
    specs = tiny_specs(5)
    root = tmp_path / "camp"
    summary = run_campaign(specs, root, jobs=1,
                           cache=str(tmp_path / "cache"), stream=None)
    assert summary["complete"] is True
    assert summary["done_this_run"] == 5
    assert summary["failed_this_run"] == 0
    assert (root / MANIFEST_NAME).exists()
    assert json.loads((root / SUMMARY_NAME).read_text())["complete"] is True

    # resume: nothing to do, nothing recomputed
    again = run_campaign(specs, root, jobs=1,
                         cache=str(tmp_path / "cache"), stream=None)
    assert again["skipped_from_manifest"] == 5
    assert again["ran"] == 0
    assert again["complete"] is True


def test_campaign_partial_manifest_resumes_without_recompute(tmp_path):
    """Killing the driver mid-run must lose and duplicate nothing."""
    specs = tiny_specs(6)
    root = tmp_path / "camp"
    # simulate a killed run: half the points already in the manifest
    m = Manifest(root / MANIFEST_NAME)
    for spec in specs[:3]:
        m.mark(spec.content_hash(), "done", 0.1, label=spec.label)

    summary = run_campaign(specs, root, jobs=1,
                           cache=str(tmp_path / "cache"), stream=None)
    assert summary["skipped_from_manifest"] == 3
    assert summary["ran"] == 3
    assert summary["complete"] is True
    # every hash appears exactly once as done — no duplicated points
    done = [r for r in Manifest(root / MANIFEST_NAME).records.values()
            if r["status"] == "done"]
    assert len(done) == 6


def test_campaign_failures_yield_triage_and_retry(tmp_path):
    specs = tiny_specs(4, boom={1, 3})
    root = tmp_path / "camp"
    summary = run_campaign(specs, root, jobs=1,
                           cache=str(tmp_path / "cache"), stream=None)
    assert summary["complete"] is False
    assert summary["done_this_run"] == 2
    assert summary["failed_this_run"] == 2
    assert summary["triage"][0]["count"] == 2
    assert "ValueError: boom" in summary["triage"][0]["error"]

    # failed points are skipped when retries are off...
    skip = run_campaign(specs, root, jobs=1, retry_failed=False,
                        cache=str(tmp_path / "cache"), stream=None)
    assert skip["ran"] == 0
    assert skip["skipped_from_manifest"] == 4
    # ...and retried (failing again, deterministically) by default
    retry = run_campaign(specs, root, jobs=1,
                         cache=str(tmp_path / "cache"), stream=None)
    assert retry["ran"] == 2
    assert retry["failed_this_run"] == 2


def test_campaign_dedups_repeated_points(tmp_path):
    spec = tiny_specs(1)[0]
    summary = run_campaign([spec, spec, spec], tmp_path / "camp", jobs=1,
                           cache=str(tmp_path / "cache"), stream=None)
    assert summary["points"] == 3
    assert summary["unique_points"] == 1
    assert summary["ran"] == 1
    assert summary["complete"] is True


def test_campaign_fresh_discards_manifest(tmp_path):
    specs = tiny_specs(2)
    root = tmp_path / "camp"
    run_campaign(specs, root, jobs=1, cache=str(tmp_path / "cache"),
                 stream=None)
    redo = run_campaign(specs, root, jobs=1, fresh=True,
                        cache=str(tmp_path / "cache"), stream=None)
    assert redo["skipped_from_manifest"] == 0
    assert redo["ran"] == 2
    assert redo["cache_hits"] == 2, "fresh manifest still reuses the cache"


# --------------------------------------------------------------- CLI ----
def test_cli_micro_grid_and_status(tmp_path, capsys):
    root = tmp_path / "camp"
    rc = main(["--grid", "micro", "--points", "2", "--dir", str(root),
               "--cache", str(tmp_path / "cache"), "--no-progress"])
    assert rc == 0
    assert (root / SUMMARY_NAME).exists()

    rc = main(["--grid", "micro", "--points", "2", "--dir", str(root),
               "--status"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2 done" in out
