"""Tests for the database manager's transaction path and work routing."""

import pytest

from repro import RunOptions
from repro.cf import LockMode
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import build_loaded_sysplex
from repro.subsystems.txn import ListQueueRouter
from repro.workloads.oltp import Transaction


def small_cfg(n_systems=2, **kw):
    return SysplexConfig(
        n_systems=n_systems,
        db=DatabaseConfig(n_pages=6_000, buffer_pages=2_000),
        **kw,
    )


def make_plex(n=2, **kw):
    plex, gen = build_loaded_sysplex(small_cfg(n, **kw), options=RunOptions(terminals_per_system=0))
    return plex


def txn(txn_id, reads, writes, home=0):
    return Transaction(txn_id=txn_id, arrival=0.0, home=home,
                       reads=reads, writes=writes)


# ------------------------------------------------------------ database ----
def test_execute_commits_and_releases_everything():
    plex = make_plex()
    inst = plex.instances["SYS00"]
    done = []

    def work():
        yield from inst.db.execute(1, reads=[10, 20], writes=[30])
        done.append(plex.sim.now)

    plex.sim.process(work())
    plex.sim.run(until=2)
    assert done
    assert inst.db.commits == 1
    owner = ("SYS00", 1)
    assert inst.lockmgr.locks_of(owner) == {}
    assert not plex.lock_space.holders_of(30)
    assert owner not in inst.log.in_flight
    # the committed page went to the CF (force-at-commit, data sharing)
    assert inst.buffers.pages_written == 1
    cache = plex.xes.find("GBP0")
    assert cache.version_of(30) == 1


def test_execute_holds_locks_until_commit():
    """Strict 2PL: a conflicting transaction on another system waits for
    the first one's commit."""
    plex = make_plex()
    a, b = plex.instances["SYS00"], plex.instances["SYS01"]
    order = []

    def first():
        yield from a.db.execute(1, reads=[], writes=[5])
        order.append(("a-done", plex.sim.now))

    def second():
        yield plex.sim.timeout(1e-4)
        yield from b.db.execute(2, reads=[5], writes=[])
        order.append(("b-done", plex.sim.now))

    plex.sim.process(first())
    plex.sim.process(second())
    plex.sim.run(until=2)
    assert [o[0] for o in order] == ["a-done", "b-done"]
    assert order[1][1] >= order[0][1]


def test_abort_undoes_and_releases():
    plex = make_plex()
    inst = plex.instances["SYS00"]

    def work():
        owner = ("SYS00", 7)
        yield from inst.lockmgr.lock(owner, 42, LockMode.EXCL)
        yield from inst.buffers.get_page(42)
        inst.buffers.mark_dirty(42)
        inst.log.log_update(owner, 42)
        yield from inst.db.abort(7)

    plex.sim.process(work())
    plex.sim.run(until=2)
    assert inst.db.aborts == 1
    assert not plex.lock_space.holders_of(42)
    assert ("SYS00", 7) not in inst.log.in_flight


def test_reads_in_write_set_locked_once_exclusively():
    plex = make_plex()
    inst = plex.instances["SYS00"]

    def work():
        yield from inst.db.execute(1, reads=[5, 6], writes=[5])

    plex.sim.process(work())
    plex.sim.run(until=2)
    assert inst.db.commits == 1  # no self-deadlock on page 5


def test_peer_sees_committed_version():
    plex = make_plex()
    a, b = plex.instances["SYS00"], plex.instances["SYS01"]
    sources = []

    def scenario():
        yield from b.db.execute(1, reads=[9], writes=[])  # b caches page 9
        yield from a.db.execute(2, reads=[], writes=[9])  # a updates it
        src = yield from b.buffers.get_page(9)            # b re-reads
        sources.append(src)

    plex.sim.process(scenario())
    plex.sim.run(until=2)
    assert sources == ["cf"]  # refreshed from the CF, at the new version


# ---------------------------------------------------------------- router ----
def test_local_policy_routes_home():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(
        terminals_per_system=0, router_policy="local"))
    plex.router.route(txn(1, [1], [2], home=1))
    plex.sim.run(until=1)
    assert plex.instances["SYS01"].tm.completed == 1
    assert plex.instances["SYS00"].tm.completed == 0
    assert plex.router.shipped == 0


def test_dead_home_rerouted():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(
        terminals_per_system=0, router_policy="local"))
    plex.nodes[1].fail()
    plex.router.route(txn(1, [1], [2], home=1))
    plex.sim.run(until=1)
    assert plex.instances["SYS00"].tm.completed == 1


def test_shipped_work_counted_and_charged():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(
        terminals_per_system=0, router_policy="wlm"))
    # make home look saturated so WLM steers away
    plex.wlm._systems["SYS00"].util = 0.99
    plex.wlm._systems["SYS01"].util = 0.01
    for i in range(10):
        plex.router.route(txn(i, [i], [100 + i], home=0))
    plex.sim.run(until=2)
    assert plex.router.shipped > 0
    assert plex.instances["SYS01"].tm.completed > 5


def test_router_rejects_unknown_policy():
    with pytest.raises(ValueError):
        build_loaded_sysplex(small_cfg(2), options=RunOptions(
            router_policy="chaos", terminals_per_system=0))


# ------------------------------------------------------- list-queue router ----
def test_list_queue_router_distributes_from_one_entry_point():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    connections = {
        name: inst.xes_list for name, inst in plex.instances.items()
    }
    router = ListQueueRouter(
        plex.sim, [i.tm for i in plex.instances.values()], connections
    )
    for i in range(30):
        router.route(txn(i, [i], [500 + i], home=0))
    plex.sim.run(until=3)
    done = {n: i.tm.completed for n, i in plex.instances.items()}
    assert sum(done.values()) == 30
    assert all(v > 0 for v in done.values())  # both systems served
    assert router.pushed == 30


def test_list_queue_survives_server_death():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    connections = {
        name: inst.xes_list for name, inst in plex.instances.items()
    }
    router = ListQueueRouter(
        plex.sim, [i.tm for i in plex.instances.values()], connections
    )
    plex.sim.call_at(0.05, plex.nodes[1].fail)
    for i in range(20):
        router.route(txn(i, [i], [700 + i], home=0))
    plex.sim.run(until=5)
    # SYS00 drains everything SYS01 didn't manage before dying
    total = sum(i.tm.completed + i.tm.failed_txns
                for i in plex.instances.values())
    assert plex.instances["SYS00"].tm.completed > 0
    assert total <= 20  # nothing duplicated
