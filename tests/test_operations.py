"""Tests for the operations console: status display, graceful VARY
OFFLINE/ONLINE, rolling upgrade (paper §2.1 single point of control,
§2.5 planned outages)."""


from repro import RunOptions
from repro.config import DatabaseConfig, SysplexConfig
from repro.runner import build_loaded_sysplex


def small_cfg(n_systems=3):
    return SysplexConfig(
        n_systems=n_systems,
        db=DatabaseConfig(n_pages=10_000, buffer_pages=3_000),
    )


def test_display_status_covers_all_systems():
    plex, gen = build_loaded_sysplex(small_cfg(3), options=RunOptions(terminals_per_system=3))
    plex.sim.run(until=0.5)
    status = plex.console.display_status()
    assert set(status) == {"SYS00", "SYS01", "SYS02"}
    assert all(s["state"] == "ACTIVE" for s in status.values())
    assert all(s["completed"] > 0 for s in status.values())
    cf = plex.console.display_cf()
    assert cf[0]["state"] == "ACTIVE"
    assert "IRLMLOCK1" in cf[0]["structures"]


def test_vary_offline_is_graceful():
    """A planned removal loses zero transactions."""
    plex, gen = build_loaded_sysplex(small_cfg(3), options=RunOptions(terminals_per_system=4))
    plex.sim.run(until=0.4)
    drained = []

    def operate():
        ok = yield from plex.console.vary_offline(plex.nodes[2])
        drained.append(ok)

    plex.sim.process(operate())
    plex.sim.run(until=3.0)
    assert drained == [True]
    node = plex.nodes[2]
    assert not node.alive
    # SFM never "detected" anything: this was planned
    assert plex.monitor.detections == 0
    assert plex.metrics.counter("failures.partitioned").count == 0
    # zero transactions lost
    assert plex.metrics.counter("txn.failed").count == 0
    # no retained locks: everything committed before departure
    assert not plex.lock_space.retained
    # survivors keep working
    before = plex.metrics.counter("txn.completed").count
    plex.sim.run(until=4.0)
    assert plex.metrics.counter("txn.completed").count > before


def test_vary_offline_quiesces_routing_immediately():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))
    inst = plex.instances["SYS01"]
    inst.tm.quiesced = True
    assert not inst.tm.available
    from repro.workloads.oltp import Transaction

    plex.router.route(Transaction(txn_id=1, arrival=0.0, home=1,
                                  reads=[1], writes=[2]))
    plex.sim.run(until=1.0)
    assert plex.instances["SYS00"].tm.completed == 1
    assert inst.tm.completed == 0


def test_vary_online_rejoins_with_fresh_instance():
    plex, gen = build_loaded_sysplex(small_cfg(3), options=RunOptions(terminals_per_system=3))
    plex.sim.run(until=0.4)
    old_inst = plex.instances["SYS02"]

    def operate():
        yield from plex.console.vary_offline(plex.nodes[2])
        yield plex.sim.timeout(1.0)
        plex.console.vary_online(plex.nodes[2])

    plex.sim.process(operate())
    plex.sim.run(until=5.0)
    new_inst = plex.instances["SYS02"]
    assert new_inst is not old_inst
    assert new_inst.tm.available
    assert plex.nodes[2].alive
    # the rejoined system does real work again
    assert new_inst.tm.completed > 0
    assert plex.metrics.counter("systems.rejoined").count == 1


def test_rolling_upgrade_loses_nothing():
    """§2.5: new software release levels rolled through one system at a
    time with continuous application availability.

    Uses a capacity-scaled database (see DESIGN.md §5): at test-sized
    page counts, 96 concurrent tasks lock a two-digit percentage of the
    whole page space and 2PL convoys — not the planned-outage machinery —
    dominate the measurement."""
    from repro.experiments.common import scaled_config

    plex, gen = build_loaded_sysplex(scaled_config(3), options=RunOptions(
        mode="open", offered_tps_per_system=120, router_policy="wlm"))
    plex.sim.run(until=0.5)

    done = []

    def operate():
        yield from plex.console.rolling_upgrade(outage=0.8, gap=0.5)
        done.append(plex.sim.now)

    plex.sim.process(operate())
    plex.sim.run(until=30.0)
    assert done
    assert all(n.alive for n in plex.nodes)
    # planned path: nothing detected, nothing lost, no retained locks
    assert plex.monitor.detections == 0
    assert plex.metrics.counter("txn.failed").count == 0
    assert not plex.lock_space.retained
    # the console logged six VARY commands (3 off + 3 on)
    assert len(plex.console.command_log) == 6
    # work flowed throughout
    assert plex.metrics.counter("txn.completed").count > 1000


def test_command_log_records_operator_actions():
    plex, gen = build_loaded_sysplex(small_cfg(2), options=RunOptions(terminals_per_system=0))

    def operate():
        yield from plex.console.vary_offline(plex.nodes[1])
        plex.console.vary_online(plex.nodes[1])

    plex.sim.process(operate())
    plex.sim.run(until=2.0)
    cmds = [c for _t, c in plex.console.command_log]
    assert cmds == ["VARY SYS01,OFFLINE", "VARY SYS01,ONLINE"]
