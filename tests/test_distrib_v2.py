"""Protocol v2, launcher, and fleet-robustness tests for repro.distrib.

Complements ``test_distrib.py`` (which pins the v1-era behavior and the
byte-determinism contract) with the version-2 surface: malformed-input
handling, compression negotiation, pipelining depths, clean SIGTERM
departure, spec deduplication, and the launcher layer.
"""

import io
import signal
import subprocess
import sys
import time
import zlib
from pathlib import Path

import pytest

from repro.distrib import (
    CommandLauncher,
    ProtocolError,
    SshLauncher,
    SweepServer,
    parse_worker_spec,
)
from repro.distrib.launcher import LocalLauncher, _Supervised, worker_env
from repro.distrib.protocol import (
    MAX_FRAME,
    connect,
    recv_message,
    send_message,
)
from repro.executor import ResultCache, WorkQueueBackend, execute
from repro.runspec import RunSpec, canonical_json

ROOT = Path(__file__).resolve().parent.parent

RUNNER = "tests.test_distrib_v2:double_runner"
SLOW = "tests.test_distrib_v2:slow_runner"
COUNTING = "tests.test_distrib_v2:counting_runner"


def double_runner(spec):
    return {"label": spec.label, "n": spec.params["n"] * 2}


def slow_runner(spec):
    time.sleep(spec.params.get("delay", 0.2))
    return {"n": spec.params["n"]}


def counting_runner(spec):
    # one marker file per *execution* — dedup tests count them
    marker_dir = Path(spec.params["marker_dir"])
    marker_dir.mkdir(exist_ok=True)
    stamp = f"{spec.params['n']}-{time.monotonic_ns()}"
    (marker_dir / stamp).write_text("ran")
    return {"n": spec.params["n"]}


def probe_specs(n=4):
    return [RunSpec(runner=RUNNER, label=f"p{i}", params={"n": i})
            for i in range(n)]


def wq(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("pythonpath", [ROOT])
    kw.setdefault("startup_timeout", 30.0)
    return WorkQueueBackend(**kw)


def frame(message, compress=False):
    buf = io.BytesIO()
    send_message(buf, message, compress=compress)
    return buf.getvalue()


# --------------------------------------------------- malformed frames ----
def test_plain_frame_round_trips():
    msg = {"op": "task", "id": 3, "spec": {"x": [1, 2, 3]}}
    assert recv_message(io.BytesIO(frame(msg))) == msg


def test_compressed_frame_round_trips():
    msg = {"op": "result", "payload": {"rows": list(range(200))}}
    data = frame(msg, compress=True)
    assert data[:1] == b"z"
    assert recv_message(io.BytesIO(data)) == msg


def test_compression_shrinks_real_payloads():
    msg = {"payload": {"rows": [{"tps": 812.5, "label": "sys"}] * 100}}
    assert len(frame(msg, compress=True)) < len(frame(msg)) / 3


def test_eof_is_none():
    assert recv_message(io.BytesIO(b"")) is None


def test_truncated_plain_frame():
    with pytest.raises(ProtocolError, match="truncated"):
        recv_message(io.BytesIO(b'{"op": "task"'))  # EOF, no newline


def test_oversized_line():
    blob = b'{"junk": "' + b"x" * 4096 + b'"}\n'
    with pytest.raises(ProtocolError, match="oversized"):
        recv_message(io.BytesIO(blob), max_frame=1024)


def test_non_json_garbage():
    with pytest.raises(ProtocolError, match="not JSON"):
        recv_message(io.BytesIO(b"GET / HTTP/1.1\r\n"))


def test_bad_compressed_header():
    with pytest.raises(ProtocolError, match="header"):
        recv_message(io.BytesIO(b"zoinks\n"))


def test_truncated_compressed_frame():
    good = frame({"op": "x"}, compress=True)
    with pytest.raises(ProtocolError, match="truncated"):
        recv_message(io.BytesIO(good[:-2]))


def test_undecompressable_blob():
    with pytest.raises(ProtocolError, match="bad compressed"):
        recv_message(io.BytesIO(b"z4\n\xde\xad\xbe\xef"))


def test_compressed_frame_declared_too_large():
    with pytest.raises(ProtocolError, match="oversized"):
        recv_message(io.BytesIO(b"z%d\nxxxx" % (MAX_FRAME + 1)))


def test_zip_bomb_is_rejected():
    blob = zlib.compress(b'{"a": "' + b"y" * 100_000 + b'"}', 9)
    with pytest.raises(ProtocolError, match="inflates past"):
        recv_message(io.BytesIO(b"z%d\n" % len(blob) + blob),
                     max_frame=1024)


# ------------------------------------------- negotiation, server-side ----
def _handshake(address, hello):
    sock = connect(address, timeout=10)
    rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
    send_message(wfile, hello)
    welcome = recv_message(rfile)
    return sock, rfile, wfile, welcome


def _server(n=2, **kw):
    specs = probe_specs(n)
    server = SweepServer([(i, s.to_dict()) for i, s in enumerate(specs)],
                         **kw)
    return server, server.start("127.0.0.1:0")


def test_negotiation_v2_with_compression():
    server, addr = _server()
    try:
        sock, rfile, _w, welcome = _handshake(
            addr, {"op": "hello", "worker": "t", "proto": 2,
                   "compress": True})
        assert welcome["proto"] == 2
        assert welcome["compress"] is True
        assert welcome["depth"] >= 1
        sock.close()
    finally:
        server.close()


def test_negotiation_v1_worker_gets_v1_no_compression():
    server, addr = _server()
    try:
        # a v1 hello has no proto/compress fields at all
        sock, rfile, _w, welcome = _handshake(
            addr, {"op": "hello", "worker": "old"})
        assert welcome["proto"] == 1
        assert welcome["compress"] is False
        # pipelined dispatch still speaks v1: single task frames only
        first = recv_message(rfile)
        assert first["op"] == "task"
        sock.close()
    finally:
        server.close()


def test_server_can_refuse_compression():
    server, addr = _server(compress=False)
    try:
        sock, _r, _w, welcome = _handshake(
            addr, {"op": "hello", "worker": "t", "proto": 2,
                   "compress": True})
        assert welcome["compress"] is False
        sock.close()
    finally:
        server.close()


def test_garbage_connection_does_not_sink_the_server():
    """A peer speaking garbage loses its connection; tasks still finish."""
    server, addr = _server(3)
    try:
        sock = connect(addr, timeout=10)
        sock.sendall(b"\x00\xffnot a frame at all\n")
        time.sleep(0.1)

        sock2, r2, w2, welcome = _handshake(
            addr, {"op": "hello", "worker": "rude", "proto": 2})
        send_message(w2, {"op": "what-even-is-this"})
        time.sleep(0.1)

        # after both bad peers, a real worker drains everything
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.distrib.worker",
             "--connect", addr, "--name", "good"],
            env=worker_env([ROOT]))
        got = sorted(d.index for d in server.results(
            procs=[proc], startup_timeout=30))
        assert got == [0, 1, 2]
        sock.close()
        sock2.close()
    finally:
        server.close()


# ---------------------------------------------------- end-to-end paths ----
def _payload_bytes(results):
    return [canonical_json(r) for r in results]


def test_depth_one_and_compression_paths_are_byte_identical(tmp_path):
    specs = probe_specs(6)
    baseline = execute(specs, jobs=1, cache=tmp_path / "base")

    variants = {
        "depth1": wq(depth=1),
        "depth8-compressed": wq(depth=8, compress=True),
        "uncompressed": wq(compress=False),
    }
    for name, backend in variants.items():
        got = execute(specs, backend=backend,
                      cache=tmp_path / f"c-{name}")
        assert _payload_bytes(got) == _payload_bytes(baseline), name


def test_protocol_cache_read_through(tmp_path):
    """Workers with no filesystem view of the cache still get warm hits."""
    specs = probe_specs(5)
    cache = ResultCache(tmp_path / "shared")
    execute(specs, jobs=1, cache=cache)  # warm it

    backend = wq(spawn=LocalLauncher(count=2, pythonpath=[ROOT],
                                     cache_mode="proto"))
    tasks = [(i, s) for i, s in enumerate(specs)]
    dones = list(backend.run(tasks, cache=cache))
    assert sorted(d.index for d in dones) == list(range(5))
    assert all(d.cached for d in dones), "proto read-through missed"


def test_sigterm_mid_run_is_a_clean_departure(tmp_path):
    """SIGTERM'd worker finishes its task, hands back the rest, exits 0.

    ``max_resubmits=0`` is the teeth: if the departure were treated as
    a crash, the requeue would blow the resubmission cap and the sweep
    would report failures instead of completing.
    """
    specs = [RunSpec(runner=SLOW, label=f"s{i}",
                     params={"n": i, "delay": 0.25})
             for i in range(8)]
    server = SweepServer([(i, s.to_dict()) for i, s in enumerate(specs)],
                         max_resubmits=0, depth=4)
    addr = server.start("127.0.0.1:0")
    env = worker_env([ROOT])
    procs = [subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker",
         "--connect", addr, "--name", f"w{i}"], env=env)
        for i in range(2)]
    got = []
    try:
        for done in server.results(procs=procs, startup_timeout=30):
            got.append(done)
            if len(got) == 1:
                procs[0].send_signal(signal.SIGTERM)
    finally:
        server.close()
        for p in procs:
            if p.poll() is None:
                p.terminate()
    assert sorted(d.index for d in got) == list(range(8))
    assert all(d.error is None for d in got)
    assert procs[0].wait(timeout=10) == 0, "clean departure exits 0"


# -------------------------------------------------------------- dedup ----
def test_duplicate_specs_computed_once(tmp_path):
    spec = RunSpec(runner=COUNTING, label="dup",
                   params={"n": 7, "marker_dir": str(tmp_path / "m")})
    other = RunSpec(runner=COUNTING, label="other",
                    params={"n": 9, "marker_dir": str(tmp_path / "m")})
    results = execute([spec, other, spec, spec], jobs=1,
                      cache=tmp_path / "cache")
    assert [r["n"] for r in results] == [7, 9, 7, 7]
    markers = list((tmp_path / "m").iterdir())
    assert len(markers) == 2, "each unique spec simulates exactly once"


def test_duplicate_specs_dedup_on_workqueue_too(tmp_path):
    spec = RunSpec(runner=COUNTING, label="dup",
                   params={"n": 3, "marker_dir": str(tmp_path / "m")})
    results = execute([spec] * 6, backend=wq(),
                      cache=tmp_path / "cache")
    assert [r["n"] for r in results] == [3] * 6
    assert len(list((tmp_path / "m").iterdir())) == 1


# ----------------------------------------------------------- launchers ----
def test_parse_worker_spec_count_and_hosts():
    assert parse_worker_spec("4") == 4
    fleet = parse_worker_spec("host1:4,host2:8")
    assert isinstance(fleet, SshLauncher)
    assert fleet.count == 12
    assert fleet.hosts == [("host1", 4), ("host2", 8)]
    solo = parse_worker_spec("gpu-box")
    assert isinstance(solo, SshLauncher)
    assert solo.count == 1


def test_parse_worker_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_worker_spec(":4")
    with pytest.raises(ValueError):
        parse_worker_spec("")


def test_ssh_launcher_remote_command_shape():
    fleet = SshLauncher("db-host:2", python="python3.11",
                        remote_cwd="/srv/repro",
                        remote_pythonpath="src",
                        connect_host="submitter.local")
    cmd = fleet._remote_command("submitter.local:4567", "db-host-0")
    assert cmd.startswith("cd /srv/repro &&")
    assert "PYTHONPATH=src" in cmd
    assert "--connect submitter.local:4567" in cmd
    assert "--cache-mode proto" in cmd
    assert fleet._rewrite("0.0.0.0:4567") == "submitter.local:4567"
    assert fleet._rewrite("unix:/tmp/x.sock") == "unix:/tmp/x.sock"


def test_command_launcher_runs_the_sweep(tmp_path):
    backend = wq(spawn=CommandLauncher(
        "{python} -m repro.distrib.worker --connect {address} "
        "--name {name}", count=2, pythonpath=[ROOT]))
    specs = probe_specs(5)
    got = execute(specs, backend=backend, cache=tmp_path / "c")
    want = execute(specs, jobs=1, cache=tmp_path / "base")
    assert _payload_bytes(got) == _payload_bytes(want)


def test_supervised_handle_restarts_with_backoff():
    calls = []

    def spawn():
        calls.append(time.monotonic())
        return subprocess.Popen(["sh", "-c", "exit 3"])

    handle = _Supervised(spawn, label="t", max_restarts=2, backoff=0.01)
    rc = handle.wait(timeout=30)
    assert rc == 3
    assert len(calls) == 3  # initial + two restarts
    assert handle.poll() == 3


def test_supervised_handle_stops_on_terminate():
    def spawn():
        return subprocess.Popen(["sh", "-c", "sleep 30"])

    handle = _Supervised(spawn, label="t", max_restarts=5, backoff=0.01)
    time.sleep(0.2)
    assert handle.poll() is None
    handle.terminate()
    handle.wait(timeout=10)
    assert handle.poll() is not None
