"""Tests for the CF command port: sync/async cost semantics, CF failure."""

import pytest

from repro.cf import CfFailedError, CfPort, CouplingFacility, LockMode, LockStructure
from repro.config import CfConfig, LinkConfig, SysplexConfig
from repro.hardware import LinkSet, SystemNode
from repro.hardware.system import SystemDown
from repro.simkernel import Simulator


def make_port(n_cpus=1, cf_cpus=2):
    sim = Simulator()
    from repro.config import CpuConfig

    syscfg = SysplexConfig(n_systems=1, cpu=CpuConfig(n_cpus=n_cpus))
    node = SystemNode(sim, syscfg, index=0)
    cfcfg = CfConfig(n_cpus=cf_cpus)
    cf = CouplingFacility(sim, cfcfg)
    links = LinkSet(sim, LinkConfig(), name="SYS00-CF01")
    port = CfPort(node, cf, links, cfcfg)
    return sim, node, cf, port


def test_sync_command_microsecond_round_trip():
    """The headline claim: sync CF commands complete in microseconds."""
    sim, node, cf, port = make_port()
    done = []

    def work():
        result = yield from port.sync(lambda: "ok")
        done.append((sim.now, result))

    sim.process(work())
    sim.run()
    when, result = done[0]
    assert result == "ok"
    assert 5e-6 < when < 50e-6  # microseconds, not milliseconds


def test_sync_holds_cpu_engine_for_round_trip():
    """A 1-cpu system cannot do anything else while a sync command spins."""
    sim, node, cf, port = make_port(n_cpus=1)
    order = []

    def issuer():
        yield from port.sync(lambda: None)
        order.append(("cf-done", sim.now))

    def competitor():
        yield from node.cpu.consume(1e-6)
        order.append(("cpu-done", sim.now))

    sim.process(issuer())
    sim.process(competitor())
    sim.run()
    # competitor queued behind the spinning engine
    assert order[0][0] == "cf-done"
    assert order[1][1] > order[0][1]


def test_async_frees_cpu_during_trip():
    sim, node, cf, port = make_port(n_cpus=1)
    order = []

    def issuer():
        yield from port.async_(lambda: None)
        order.append(("cf-done", sim.now))

    def competitor():
        yield from node.cpu.consume(1e-6)
        order.append(("cpu-done", sim.now))

    sim.process(issuer())
    sim.process(competitor())
    sim.run()
    # competitor ran during the link round trip
    assert order[0][0] == "cpu-done"


def test_async_charges_more_cpu_than_sync():
    """The paper's rationale for sync execution: avoided task-switch cost."""
    sim_s, node_s, _, port_s = make_port()
    sim_a, node_a, _, port_a = make_port()

    def s():
        yield from port_s.sync(lambda: None)

    def a():
        yield from port_a.async_(lambda: None)

    sim_s.process(s())
    sim_s.run()
    sim_a.process(a())
    sim_a.run()
    assert node_a.cpu.busy_seconds > node_s.cpu.busy_seconds


def test_mutation_executes_at_cf(port_factory=make_port):
    sim, node, cf, port = port_factory()
    lock = LockStructure("L", 1 << 10)
    cf.allocate(lock)
    conn = lock.connect(node.name)
    results = []

    def work():
        r = yield from port.sync(lambda: lock.request(conn, "res", LockMode.EXCL))
        results.append(r)

    sim.process(work())
    sim.run()
    assert results[0].granted
    assert cf.commands_executed == 1


def test_cf_processor_queueing_serializes_commands():
    sim, node, cf, port = make_port(n_cpus=2, cf_cpus=1)
    finish = []

    def work(tag):
        yield from port.sync(lambda: None)
        finish.append((tag, sim.now))

    sim.process(work("a"))
    sim.process(work("b"))
    sim.run()
    # both complete but the second is delayed by CF processor contention
    assert finish[1][1] > finish[0][1]


def test_signal_wait_extends_command():
    sim1, _, _, p1 = make_port()
    sim2, _, _, p2 = make_port()
    t = []

    def w(sim, port, flag):
        def run():
            yield from port.sync(lambda: None, signal_wait=flag)
            t.append(sim.now)

        return run

    sim1.process(w(sim1, p1, False)())
    sim1.run()
    sim2.process(w(sim2, p2, True)())
    sim2.run()
    assert t[1] == pytest.approx(t[0] + CfConfig().signal_latency)


def test_failed_cf_raises():
    sim, node, cf, port = make_port()
    cf.fail()
    failed = []

    def work():
        try:
            yield from port.sync(lambda: None)
        except CfFailedError:
            failed.append(True)

    sim.process(work())
    sim.run()
    assert failed == [True]
    assert not port.operational


def test_dead_system_cannot_issue():
    sim, node, cf, port = make_port()
    node.fail()

    def work():
        with pytest.raises(SystemDown):
            yield from port.sync(lambda: None)
        yield sim.timeout(0)

    sim.process(work())
    sim.run()


def test_structure_allocation_registry():
    sim, node, cf, port = make_port()
    lock = LockStructure("L", 16)
    cf.allocate(lock)
    assert cf.structure("L") is lock
    from repro.cf import StructureExistsError

    with pytest.raises(StructureExistsError):
        cf.allocate(LockStructure("L", 16))
    cf.deallocate("L")
    assert cf.structure("L") is None


def test_cf_failure_notifies_structures():
    sim, node, cf, port = make_port()
    lock = LockStructure("L", 16)
    cf.allocate(lock)
    lost = []
    lock.connect("SYS00", on_loss=lambda: lost.append(True))
    cf.fail()
    assert lost == [True]
