"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.simkernel import Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1.5]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3, "c"))
    sim.process(waiter(1, "a"))
    sim.process(waiter(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo_by_schedule_order():
    sim = Simulator()
    order = []

    def w(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        sim.process(w(tag))
    sim.run()
    assert order == list("abcd")


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(10)

    sim.process(forever())
    sim.run(until=25)
    assert sim.now == 25


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2)
        return 42

    p = sim.process(proc())
    assert sim.run(until=p) == 42
    assert sim.now == 2


def test_run_until_past_raises():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)

    sim.process(proc())
    sim.run(until=5)
    with pytest.raises(ValueError):
        sim.run(until=1)


def test_process_return_value_via_yield():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(1)
        return "done"

    def parent():
        r = yield sim.process(child())
        results.append(r)

    sim.process(parent())
    sim.run()
    assert results == ["done"]


def test_waiting_on_finished_process_returns_immediately():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(1)
        return 7

    def parent(p):
        yield sim.timeout(5)  # child long finished
        r = yield p
        results.append((sim.now, r))

    p = sim.process(child())
    sim.process(parent(p))
    sim.run()
    assert results == [(5, 7)]


def test_exception_in_process_propagates_to_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("boom")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_exception_propagates_to_waiting_parent():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1)
        raise ValueError("child failed")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["child failed"]


def test_interrupt_resumes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    def interrupter(victim):
        yield sim.timeout(3)
        victim.interrupt("wake up")

    v = sim.process(sleeper())
    sim.process(interrupter(v))
    sim.run()
    assert log == [(3, "wake up")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run(until=2)
    p.interrupt("late")  # must not raise
    sim.run()


def test_interrupted_process_stops_receiving_original_event():
    """After an interrupt, the original timeout firing must not re-resume."""
    sim = Simulator()
    resumed = []

    def sleeper():
        try:
            yield sim.timeout(10)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
            yield sim.timeout(100)  # keep living past t=10

    def interrupter(victim):
        yield sim.timeout(5)
        victim.interrupt()

    v = sim.process(sleeper())
    sim.process(interrupter(v))
    sim.run(until=50)
    assert resumed == ["interrupt"]


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    def trigger():
        yield sim.timeout(4)
        ev.succeed("fired")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == [(4, "fired")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_without_waiter_raises_at_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_defused_failed_event_does_not_raise():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("handled")).defused()
    sim.run()  # no exception


def test_any_of_fires_on_first():
    sim = Simulator()
    got = []

    def proc():
        t1 = sim.timeout(5, value="slow")
        t2 = sim.timeout(2, value="fast")
        results = yield sim.any_of([t1, t2])
        got.append((sim.now, list(results.values())))

    sim.process(proc())
    sim.run()
    assert got == [(2, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    got = []

    def proc():
        evs = [sim.timeout(d, value=d) for d in (1, 4, 2)]
        results = yield sim.all_of(evs)
        got.append((sim.now, sorted(results.values())))

    sim.process(proc())
    sim.run()
    assert got == [(4, [1, 2, 4])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    got = []

    def proc():
        yield sim.all_of([])
        got.append(sim.now)

    sim.process(proc())
    sim.run()
    assert got == [0.0]


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_non_event_fails_even_if_caught():
    # A generator that catches the SimulationError and yields again used
    # to be silently dropped, leaving its process pending forever.  The
    # process must fail instead.
    sim = Simulator()

    def stubborn():
        try:
            yield "not an event"
        except SimulationError:
            yield sim.timeout(1.0)  # try to carry on regardless

    proc = sim.process(stubborn())
    with pytest.raises(SimulationError):
        sim.run()
    assert proc.processed
    assert not proc.ok
    assert isinstance(proc._value, SimulationError)


def test_yield_non_event_failure_wakes_waiter():
    # A parent waiting on the bad process sees the failure as a normal
    # process failure rather than the kernel blowing up.
    sim = Simulator()
    caught = []

    def stubborn():
        try:
            yield 42
        except SimulationError:
            yield sim.timeout(1.0)

    def parent():
        try:
            yield sim.process(stubborn())
        except SimulationError as exc:
            caught.append(exc)

    sim.process(parent())
    sim.run()
    assert len(caught) == 1


def test_call_at_runs_callable():
    sim = Simulator()
    fired = []
    sim.call_at(7.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [7.0]


def test_schedule_relative():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(2)
        sim.schedule(3, lambda: fired.append(sim.now))

    sim.process(proc())
    sim.run()
    assert fired == [5.0]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(9)
    assert sim.peek() == 9


def test_peek_empty_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_nested_process_chain():
    sim = Simulator()
    trace = []

    def level3():
        yield sim.timeout(1)
        trace.append("L3")
        return 3

    def level2():
        v = yield sim.process(level3())
        trace.append("L2")
        return v + 10

    def level1():
        v = yield sim.process(level2())
        trace.append("L1")
        return v + 100

    p = sim.process(level1())
    assert sim.run(until=p) == 113
    assert trace == ["L3", "L2", "L1"]


def test_deterministic_replay():
    """Two identical simulations produce identical event orderings."""

    def build():
        sim = Simulator()
        order = []

        def w(tag, d):
            yield sim.timeout(d)
            order.append((tag, sim.now))

        for i in range(20):
            sim.process(w(i, (i * 7) % 5))
        sim.run()
        return order

    assert build() == build()


# -------------------------------------------------- terminal-event elision ----
def test_elide_done_skips_terminal_event_when_unwatched():
    """With _elide_done set, a finishing process nobody waits on is
    marked processed directly — no terminal calendar event."""

    def fire_and_forget(sim):
        yield sim.timeout(1.0)

    baseline = Simulator()
    baseline.process(fire_and_forget(baseline), name="p")
    baseline.run()
    elided = Simulator()
    elided._elide_done = True
    proc = elided.process(fire_and_forget(elided), name="p")
    elided.run()
    assert elided.events_processed == baseline.events_processed - 1
    assert proc.processed


def test_elide_done_keeps_terminal_for_waiters():
    """A watched process still delivers its value through the calendar."""
    sim = Simulator()
    sim._elide_done = True
    got = []

    def child():
        yield sim.timeout(1.0)
        return "answer"

    def parent():
        value = yield sim.process(child(), name="c")
        got.append((sim.now, value))

    sim.process(parent(), name="p")
    sim.run()
    assert got == [(1.0, "answer")]


def test_elide_done_late_waiter_sees_value():
    """Yielding an already-elided process feeds its value straight back."""
    sim = Simulator()
    sim._elide_done = True

    def child():
        yield sim.timeout(1.0)
        return 42

    proc = sim.process(child(), name="c")
    got = []

    def late_parent():
        yield sim.timeout(5.0)  # child finished (and was elided) long ago
        value = yield proc
        got.append((sim.now, value))

    sim.process(late_parent(), name="p")
    sim.run()
    assert got == [(5.0, 42)]


def test_elide_done_failures_still_surface():
    """Elision only applies to clean exits: an unwatched failure must
    still raise out of run() exactly as the golden kernel does."""
    sim = Simulator()
    sim._elide_done = True

    def boom():
        yield sim.timeout(1.0)
        raise RuntimeError("kept")

    sim.process(boom(), name="b")
    with pytest.raises(RuntimeError, match="kept"):
        sim.run()
