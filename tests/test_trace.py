"""Tests for the transaction-level tracing facility and its attribution."""

import math

import pytest

from repro import RunOptions
from repro.config import CpuConfig, DatabaseConfig, SysplexConfig
from repro.runner import run_oltp
from repro.simkernel import Simulator
from repro.sysplex import Sysplex
from repro.trace import STAGES, Tracer
from repro.trace_analysis import (
    CATEGORIES,
    attribute,
    attribution_delta,
    attribution_extras,
    format_attribution,
)


def small_cfg(n_systems=2, data_sharing=True, seed=11):
    return SysplexConfig(
        n_systems=n_systems,
        cpu=CpuConfig(n_cpus=1),
        data_sharing=data_sharing,
        n_cfs=1 if data_sharing else 0,
        db=DatabaseConfig(n_pages=20_000, buffer_pages=4_000),
        seed=seed,
    )


def traced_run(plex, seconds=0.5):
    plex.sim.run(until=0.2)
    plex.reset_measurement()
    plex.sim.run(until=0.2 + seconds)


# ------------------------------------------------------------- mechanics ----
def test_spans_nest_under_the_active_process():
    sim = Simulator()
    tr = Tracer(sim)

    def inner():
        idx = tr.begin("cf.sync")
        yield sim.timeout(0.25)
        tr.end(idx)

    def body():
        tr.bind(42, "SYS01")
        outer = tr.begin("lock")
        yield sim.timeout(0.5)
        yield from inner()
        tr.end(outer)
        tr.unbind()

    sim.process(body())
    sim.run()

    assert tr.n_spans == 2
    lock, cf = tr.spans
    assert lock.category == "lock" and cf.category == "cf.sync"
    assert cf.parent == 0 and lock.parent == -1
    assert cf.depth == 1 and lock.depth == 0
    # the child's interval is contained in the parent's
    assert lock.start <= cf.start and cf.end <= lock.end
    assert lock.duration == pytest.approx(0.75)
    assert cf.duration == pytest.approx(0.25)
    # transaction context was inherited by both spans
    assert {s.txn_id for s in tr.spans} == {42}
    assert {s.system for s in tr.spans} == {"SYS01"}


def test_concurrent_processes_trace_independently():
    sim = Simulator()
    tr = Tracer(sim)

    def body(txn_id, delay):
        tr.bind(txn_id, "S")
        idx = tr.begin("lock")
        yield sim.timeout(delay)
        tr.end(idx)
        tr.unbind()

    sim.process(body(1, 0.3))
    sim.process(body(2, 0.7))
    sim.run()

    one, two = tr.spans_of(1), tr.spans_of(2)
    assert len(one) == 1 and len(two) == 1
    # interleaved processes must not nest under each other
    assert one[0].parent == -1 and two[0].parent == -1
    assert one[0].duration == pytest.approx(0.3)
    assert two[0].duration == pytest.approx(0.7)


def test_process_death_closes_dangling_spans():
    sim = Simulator()
    tr = Tracer(sim)

    def body():
        tr.begin("lock")
        yield sim.timeout(0.5)
        raise RuntimeError("killed mid-span")

    p = sim.process(body())
    p.defused()
    sim.run()

    assert tr.open_spans() == []
    assert tr.spans[0].end == pytest.approx(0.5)


def test_disabled_tracing_creates_no_tracer_and_no_watchers():
    plex = Sysplex(small_cfg())
    assert plex.tracer is None
    assert plex.sim._process_watchers == []
    # every instrumented component got trace=None
    for inst in plex.instances.values():
        assert inst.tm.trace is None
        assert inst.db.trace is None
        assert inst.lockmgr.trace is None
        assert inst.buffers.trace is None
    for cf in plex.cfs:
        assert cf.trace is None


def test_enabled_tracing_records_spans_for_every_stage():
    plex = Sysplex(small_cfg(), tracing=True)
    from repro.workloads.oltp import OltpGenerator

    gen = OltpGenerator(
        plex.sim, plex.config.oltp, plex.config.db.n_pages,
        plex.config.n_systems, plex.streams.stream("oltp"),
        router=plex.router, tracer=plex.tracer,
    )
    gen.start_closed_loop(8)
    traced_run(plex)

    tr = plex.tracer
    assert tr.n_spans > 0
    assert tr.counts["txn.generated"] == gen.generated
    seen = {s.category for s in tr.spans}
    for stage in ("dispatch", "lock", "coherency", "commit", "cpu"):
        assert stage in seen, f"no {stage} spans recorded"
    assert "cf.sync" in seen  # data sharing => CF round trips
    # at steady state no span leaks open past its transaction
    finished = {t[0] for t in tr.completed}
    assert all(s.end is not None
               for s in tr.spans if s.txn_id in finished)


# ----------------------------------------------------------- attribution ----
def test_attribution_sums_to_mean_response_time():
    result = run_oltp(small_cfg(), duration=0.5, warmup=0.2, options=RunOptions(tracing=True))
    ex = result.extras
    assert ex["trace.txns"] > 50
    pct_sum = sum(ex[f"trace.{c}_pct"] for c in CATEGORIES)
    assert pct_sum == pytest.approx(100.0, abs=2.0)
    us_sum = sum(ex[f"trace.{c}_us"] for c in CATEGORIES)
    assert us_sum == pytest.approx(ex["trace.rt_us"], rel=0.02)
    # residual (retry backoff, abort processing) stays a sliver
    assert abs(ex["trace.residual_us"]) < 0.02 * ex["trace.rt_us"]


def test_tracing_does_not_change_simulation_results():
    cfg = small_cfg(seed=23)
    off = run_oltp(cfg, duration=0.4, warmup=0.2)
    on = run_oltp(small_cfg(seed=23), duration=0.4, warmup=0.2, options=RunOptions(tracing=True))
    assert on.completed == off.completed
    assert on.response_mean == pytest.approx(off.response_mean, abs=1e-12)
    assert on.throughput == pytest.approx(off.throughput, abs=1e-9)


def test_attribution_empty_window():
    sim = Simulator()
    tr = Tracer(sim)
    a = attribute(tr)
    assert a.n_txns == 0
    assert math.isnan(a.response_mean)
    assert set(a.per_txn) == set(CATEGORIES)


def test_attribution_delta_and_formatting():
    base = run_oltp(
        small_cfg(1, data_sharing=False), duration=0.4, warmup=0.2,
        options=RunOptions(tracing=True),
    )
    two = run_oltp(small_cfg(2), duration=0.4, warmup=0.2, options=RunOptions(tracing=True))
    delta = attribution_delta(base.extras, two.extras)
    assert set(delta) == set(CATEGORIES) | {"total"}
    assert delta["total"] == pytest.approx(
        sum(delta[c] for c in CATEGORIES))
    # data sharing introduces coherency traffic where there was none
    assert delta["coherency"] > 0
    assert two.extras["trace.cf_ops_per_txn"] > 0
    assert base.extras["trace.cf_ops_per_txn"] == 0

    # the plain-text renderer mentions every category
    plex = Sysplex(small_cfg(), tracing=True)
    text = format_attribution(attribute(plex.tracer), label="empty")
    for c in CATEGORIES:
        assert c in text


def test_attribution_extras_keys_are_floats():
    result = run_oltp(small_cfg(), duration=0.3, warmup=0.2, options=RunOptions(tracing=True))
    for key, value in result.extras.items():
        if key.startswith("trace."):
            assert isinstance(value, float), key


def test_stage_categories_match_analysis_contract():
    # the analysis folds "cpu" into "other"; everything else is 1:1
    assert set(STAGES) - {"cpu"} == set(CATEGORIES) - {"other"}


def test_attribution_extras_window_filters_warmup():
    plex = Sysplex(small_cfg(), tracing=True)
    from repro.workloads.oltp import OltpGenerator

    gen = OltpGenerator(
        plex.sim, plex.config.oltp, plex.config.db.n_pages,
        plex.config.n_systems, plex.streams.stream("oltp"),
        router=plex.router, tracer=plex.tracer,
    )
    gen.start_closed_loop(8)
    traced_run(plex, seconds=0.4)

    windowed = attribution_extras(plex.tracer, start=0.2, end=plex.sim.now)
    everything = attribution_extras(plex.tracer, start=0.0, end=plex.sim.now)
    assert windowed["trace.txns"] < everything["trace.txns"]
    assert windowed["trace.txns"] > 0
