"""Tests for DASD, coupling links, message fabric, sysplex timer, failures."""

import numpy as np
import pytest

from repro.config import CpuConfig, DasdConfig, LinkConfig, XcfConfig
from repro.hardware import (
    CpuComplex,
    DasdDevice,
    DasdFarm,
    FailureInjector,
    LinkDownError,
    LinkSet,
    MessageFabric,
    SysplexTimer,
    SystemNode,
)
from repro.config import SysplexConfig
from repro.simkernel import Simulator


def rng():
    return np.random.default_rng(7)


# ---------------------------------------------------------------- DASD ----
def test_dasd_io_takes_positive_time():
    sim = Simulator()
    dev = DasdDevice(sim, DasdConfig(), rng())
    done = []

    def work():
        yield from dev.io()
        done.append(sim.now)

    sim.process(work())
    sim.run()
    assert done[0] > 0
    assert dev.io_count == 1


def test_dasd_service_mean_close_to_config():
    sim = Simulator()
    cfg = DasdConfig()
    dev = DasdDevice(sim, cfg, rng())
    times = [dev.service_time() for _ in range(4000)]
    assert np.mean(times) == pytest.approx(cfg.service_mean, rel=0.05)


def test_dasd_paths_limit_concurrency():
    sim = Simulator()
    cfg = DasdConfig(paths=2, service_sigma=1e-9)
    dev = DasdDevice(sim, cfg, rng())
    finish = []

    def work(tag):
        yield from dev.io()
        finish.append(tag)

    for t in range(4):
        sim.process(work(t))
    sim.run()
    assert dev.paths.capacity == 2
    assert len(finish) == 4


def test_dasd_path_failure_and_repair():
    sim = Simulator()
    dev = DasdDevice(sim, DasdConfig(paths=4), rng())
    dev.fail_path()
    assert dev.available_paths == 3
    dev.repair_path()
    assert dev.available_paths == 4


def test_dasd_keeps_last_path():
    """Automatic reconfiguration never loses the last path."""
    sim = Simulator()
    dev = DasdDevice(sim, DasdConfig(paths=2), rng())
    dev.fail_path()
    dev.fail_path()
    dev.fail_path()
    assert dev.available_paths == 1


def test_dasd_reserve_release_fifo():
    sim = Simulator()
    dev = DasdDevice(sim, DasdConfig(), rng())
    order = []

    def user(tag):
        ev = dev.reserve(tag)
        yield ev
        order.append(tag)
        yield sim.timeout(1)
        dev.release(tag)

    for t in "abc":
        sim.process(user(t))
    sim.run()
    assert order == ["a", "b", "c"]
    assert dev.reserved_by is None


def test_dasd_break_reserve_frees_queue():
    sim = Simulator()
    dev = DasdDevice(sim, DasdConfig(), rng())
    got = []

    def holder():
        yield dev.reserve("dead-system")
        # never releases: simulates a failed processor holding the reserve

    def waiter():
        ev = dev.reserve("healthy")
        yield ev
        got.append(sim.now)

    sim.process(holder())
    sim.process(waiter())

    def timeout_logic():
        yield sim.timeout(5)
        dev.break_reserve("dead-system")

    sim.process(timeout_logic())
    sim.run()
    assert got == [5]


def test_farm_stripes_pages_over_devices():
    sim = Simulator()
    farm = DasdFarm(sim, DasdConfig(), rng(), n_devices=4)
    assert farm.device_for(0) is farm.devices[0]
    assert farm.device_for(5) is farm.devices[1]
    assert farm.device_for(7) is farm.devices[3]


def test_farm_requires_device():
    sim = Simulator()
    with pytest.raises(ValueError):
        DasdFarm(sim, DasdConfig(), rng(), n_devices=0)


# ------------------------------------------------------------ coupling links
def test_linkset_round_trip_time():
    sim = Simulator()
    cfg = LinkConfig(latency=5e-6, bandwidth=100e6)
    ls = LinkSet(sim, cfg)
    rt = []

    def noop_service():
        yield sim.timeout(4e-6)

    def work():
        link = ls.pick()
        dur = yield sim.process(link.occupy(256, 64, noop_service()))
        rt.append(dur)

    sim.process(work())
    sim.run()
    expected = 2 * 5e-6 + (256 + 64) / 100e6 + 4e-6
    assert rt[0] == pytest.approx(expected)


def test_linkset_picks_least_busy():
    sim = Simulator()
    ls = LinkSet(sim, LinkConfig(links_per_system=2, subchannels=1))
    first = ls.pick()
    # occupy first link's subchannel
    first.subchannels.request()
    assert ls.pick() is not first


def test_linkset_failover_and_outage():
    sim = Simulator()
    ls = LinkSet(sim, LinkConfig(links_per_system=2))
    ls.fail_link(0)
    assert ls.pick() is ls.links[1]
    ls.fail_link(1)
    assert not ls.operational
    with pytest.raises(LinkDownError):
        ls.pick()
    ls.repair_link(0)
    assert ls.operational


def test_link_bandwidth_affects_transfer():
    slow = LinkConfig(bandwidth=50e6)
    fast = LinkConfig(bandwidth=100e6)
    assert slow.transfer_time(4096) == pytest.approx(2 * fast.transfer_time(4096))


# ------------------------------------------------------------- message fabric
def _make_cpu(sim):
    return CpuComplex(sim, CpuConfig(n_cpus=1))


def test_fabric_delivers_with_latency_and_cpu():
    sim = Simulator()
    xcfg = XcfConfig(message_latency=400e-6, message_cpu=60e-6)
    fab = MessageFabric(sim, xcfg)
    cpu_a, cpu_b = _make_cpu(sim), _make_cpu(sim)
    fab.register("A", cpu_a)
    inbox_b = fab.register("B", cpu_b)
    got = []

    def receiver():
        msg = yield inbox_b.get()
        got.append((sim.now, msg.kind, msg.sender))

    sim.process(receiver())
    fab.send("A", "B", "ping", {})
    sim.run()
    when, kind, sender = got[0]
    assert kind == "ping" and sender == "A"
    assert when == pytest.approx(400e-6 + 2 * 60e-6)
    assert fab.delivered == 1


def test_fabric_drops_to_deregistered():
    sim = Simulator()
    fab = MessageFabric(sim, XcfConfig())
    cpu = _make_cpu(sim)
    fab.register("A", cpu)
    fab.register("B", cpu)
    fab.deregister("B")
    fab.send("A", "B", "ping", {})
    sim.run()
    assert fab.delivered == 0


def test_fabric_broadcast_excludes_sender():
    sim = Simulator()
    fab = MessageFabric(sim, XcfConfig())
    cpu = _make_cpu(sim)
    for n in ("A", "B", "C"):
        fab.register(n, cpu)
    n = fab.broadcast("A", "note", {})
    assert n == 2
    sim.run()
    assert fab.delivered == 2


# ----------------------------------------------------------------- timer ----
def test_tod_clock_monotonic_with_negative_drift():
    sim = Simulator()
    timer = SysplexTimer(sim, sync_interval=1.0)
    clock = timer.attach(drift_ppm=-50.0)
    reads = []

    def reader():
        for _ in range(30):
            yield sim.timeout(0.1)
            reads.append(clock.read())

    sim.process(reader())
    sim.run(until=5)
    assert all(b >= a for a, b in zip(reads, reads[1:]))


def test_timer_bounds_cross_system_skew():
    sim = Simulator()
    timer = SysplexTimer(sim, sync_interval=0.5)
    timer.attach(drift_ppm=100.0)
    timer.attach(drift_ppm=-100.0)

    sim.run(until=10)
    # worst-case divergence is 200ppm over one 0.5s sync interval
    assert timer.max_skew() <= 200e-6 * 0.5 + 1e-12


def test_unsynced_clocks_would_diverge():
    """Sanity: without steering, the same drift produces much larger skew."""
    sim = Simulator()
    timer = SysplexTimer(sim, sync_interval=1e9)  # effectively never
    a = timer.attach(drift_ppm=100.0)
    b = timer.attach(drift_ppm=-100.0)

    sim.run(until=100)
    assert timer.max_skew() == pytest.approx(200e-6 * 100, rel=1e-6)


# -------------------------------------------------------------- system node --
def test_system_node_failure_hooks_fire_in_order():
    sim = Simulator()
    node = SystemNode(sim, SysplexConfig(), index=1)
    calls = []
    node.on_failure(lambda n: calls.append("first"))
    node.on_failure(lambda n: calls.append("second"))
    node.fail()
    assert calls == ["first", "second"]
    assert not node.alive
    node.fail()  # idempotent
    assert calls == ["first", "second"]


def test_system_node_restart_hooks():
    sim = Simulator()
    node = SystemNode(sim, SysplexConfig(), index=2)
    calls = []
    node.on_restart(lambda n: calls.append("back"))
    node.fail()
    node.fence()
    node.restart()
    assert calls == ["back"]
    assert node.alive and not node.fenced


# -------------------------------------------------------- failure injector ---
def test_injector_crash_and_restart_schedule():
    sim = Simulator()
    node = SystemNode(sim, SysplexConfig(), index=0)
    inj = FailureInjector(sim)
    inj.planned_outage(node, at=5.0, duration=3.0)
    seen = []

    def observer():
        yield sim.timeout(6)
        seen.append(node.alive)
        yield sim.timeout(3)
        seen.append(node.alive)

    sim.process(observer())
    sim.run()
    assert seen == [False, True]
    assert [l for _, l in inj.log] == ["crash:SYS00", "restart:SYS00"]


def test_injector_rolling_maintenance_one_at_a_time():
    sim = Simulator()
    nodes = [SystemNode(sim, SysplexConfig(), index=i) for i in range(3)]
    inj = FailureInjector(sim)
    inj.rolling_maintenance(nodes, start=1.0, outage=2.0, gap=1.0)
    overlap = []

    def watch():
        while sim.now < 12:
            down = sum(1 for n in nodes if not n.alive)
            overlap.append(down)
            yield sim.timeout(0.25)

    sim.process(watch())
    sim.run(until=12)
    assert max(overlap) == 1  # never two systems down at once
    assert all(n.alive for n in nodes)
