#!/usr/bin/env python
"""Decision support: splitting a big query across the sysplex (§2.3).

A single large relational scan is decomposed into sub-queries distributed
over an 8-system sysplex by WLM, run in parallel, and merged at the
coordinator — the paper's second workload class.

Run:  python examples/decision_support.py
"""

from repro import RunOptions
from repro.experiments.common import scaled_config
from repro.runner import build_loaded_sysplex
from repro.workloads.dss import Query, QuerySplitter


def main() -> None:
    config = scaled_config(8, seed=3)
    plex, _gen = build_loaded_sysplex(
        config, options=RunOptions(terminals_per_system=0))
    splitter = QuerySplitter(plex.sim, plex.nodes, plex.farm, plex.wlm,
                             config.xcf)
    scan_pages = 60_000
    print(f"one query scanning {scan_pages:,} pages on an idle "
          f"8-system sysplex\n")
    print(f"{'sub-queries':>12} {'elapsed':>9} {'speedup':>8} "
          f"{'efficiency':>11}")

    elapsed = {}

    def run_one(p, qid):
        q = Query(query_id=qid, first_page=0, n_pages=scan_pages)
        t = yield from splitter.run_query(q, parallelism=p)
        elapsed[p] = t

    base = None
    for i, p in enumerate((1, 2, 4, 8, 16, 32)):
        proc = plex.sim.process(run_one(p, i))
        plex.sim.run(until=proc)
        t = elapsed[p]
        if base is None:
            base = t
        speedup = base / t
        print(f"{p:>12} {t:>8.3f}s {speedup:>8.2f} {speedup / p:>11.2f}")

    print("\nnear-linear until the sub-queries outnumber the engines, "
          "then coordination\n(shipping + merge) flattens the curve — "
          "the expected §2.3 behaviour.")


if __name__ == "__main__":
    main()
