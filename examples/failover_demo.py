#!/usr/bin/env python
"""Failover demo: kill a system mid-run and watch the sysplex carry on.

Shows the paper's §2.5 machinery end to end: heartbeat detection, SFM
fencing, retained locks protecting in-flight updates, ARM restarting the
failed database instance on a healthy system, peer recovery releasing the
retained locks, and WLM redistributing the dead system's share of the
workload — all while transactions keep completing.

Run:  python examples/failover_demo.py
"""

from repro import RunOptions
from repro import ArmConfig, CpuConfig, SysplexConfig, XcfConfig
from repro.config import DatabaseConfig
from repro.runner import build_loaded_sysplex


def main() -> None:
    config = SysplexConfig(
        n_systems=3,
        cpu=CpuConfig(n_cpus=1),
        db=DatabaseConfig(n_pages=60_000),
        xcf=XcfConfig(heartbeat_interval=0.25),
        arm=ArmConfig(restart_time=0.5, log_replay_time=0.3),
        n_dasd=48,
        seed=7,
    )
    plex, gen = build_loaded_sysplex(
        config, options=RunOptions(mode="open", offered_tps_per_system=180.0,
                                   router_policy="wlm"),
    )
    victim = plex.nodes[2]
    fail_at = 1.0
    plex.sim.call_at(fail_at, victim.fail)

    counter = plex.metrics.counter("txn.completed")
    print(f"3-system sysplex, {victim.name} dies at t={fail_at:.1f}s\n")
    print(f"{'t':>5}  {'tput':>6}  {'alive':<18} events")
    prev = 0
    window = 0.25
    milestones = {}
    for k in range(1, 25):
        t = k * window
        plex.sim.run(until=t)
        completed = counter.count
        alive = ",".join(n.name for n in plex.nodes if n.alive)
        events = []
        if plex.monitor.detection_log and "detected" not in milestones:
            when, name = plex.monitor.detection_log[0]
            if when <= t:
                milestones["detected"] = when
                events.append(f"<- {name} status-missing, fenced (SFM)")
        if plex.arm.restart_log and "restarted" not in milestones:
            when, name, target = plex.arm.restart_log[0]
            if when <= t:
                milestones["restarted"] = when
                events.append(f"<- ARM restarted {name} on {target}")
        if plex.recovery.recoveries and "recovered" not in milestones:
            when, sysname, nlocks = plex.recovery.recoveries[0]
            if when <= t:
                milestones["recovered"] = when
                events.append(
                    f"<- peer recovery done: {nlocks} retained locks freed"
                )
        print(f"{t:5.2f}  {(completed - prev) / window:6.0f}  "
              f"{alive:<18} {' '.join(events)}")
        prev = completed

    print("\nmilestones:")
    print(f"  failure   at t={fail_at:.2f}s")
    for name in ("detected", "restarted", "recovered"):
        if name in milestones:
            print(f"  {name:<9} at t={milestones[name]:.2f}s "
                  f"(+{milestones[name] - fail_at:.2f}s)")
    lost = plex.metrics.counter("txn.failed").count
    print(f"\ntransactions lost across the whole outage: {lost}")
    print("the surviving systems absorbed the load; "
          "no restart of the workload was needed")


if __name__ == "__main__":
    main()
