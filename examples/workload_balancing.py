#!/usr/bin/env python
"""Workload balancing: data sharing vs data partitioning under a moving
demand hotspot (paper §2.3).

A four-way cluster is driven with constant total load whose *shape*
shifts: every 300ms a different user population surges.  The shared-
nothing baseline must run each surge on the one system that owns that
population's data; the Parallel Sysplex lets WLM spread the same surge
across every system.

Run:  python examples/workload_balancing.py
"""

from repro.experiments.exp_balancing import run_balancing


def main() -> None:
    print("driving a rotating demand hotspot at both architectures "
          "(equal total load)...\n")
    out = run_balancing(n_systems=4, offered_per_system=220.0,
                        spike_factor=3.0, duration=1.2, warmup=0.4)

    print(f"{'architecture':<20}{'tput':>8}{'mean rt':>10}{'p95':>10}"
          f"{'util spread':>13}")
    for r in out["rows"]:
        print(f"{r['architecture']:<20}{r['throughput']:>8.0f}"
              f"{r['mean_rt_ms']:>9.1f}m{r['p95_ms']:>9.1f}m"
              f"{r['util_spread']:>13.3f}")

    by = {r["architecture"]: r for r in out["rows"]}
    gain = by["partitioned"]["p95_ms"] / by["sysplex-wlm"]["p95_ms"]
    print(f"\nthe WLM-balanced sysplex delivers ~{gain:.1f}x better p95 "
          f"than the partitioned cluster at identical offered load —")
    print("the partitioned system saturates whichever node owns the hot "
          "data while its peers idle (its util spread above).")


if __name__ == "__main__":
    main()
