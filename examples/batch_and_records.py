#!/usr/bin/env python
"""Batch and keyed records: JES multi-access spool + VSAM record sharing.

Two of the paper's §5 exploiters in one script:

* a shared batch job queue (JES2-style checkpoint in a CF list
  structure) drained by initiators on every system, surviving a member
  failure with exactly-once job completion;
* a VSAM dataset shared with record-level locks, showing two systems
  updating different records of the same control interval concurrently.

Run:  python examples/batch_and_records.py
"""

from repro import RunOptions
from repro.cf import ListStructure
from repro.config import DatabaseConfig, SysplexConfig
from repro.hardware import DasdDevice
from repro.runner import build_loaded_sysplex
from repro.subsystems import (
    BatchJob,
    JesMember,
    JesSpool,
    LogManager,
    VsamCatalog,
    VsamRls,
)


def batch_demo() -> None:
    print("=== JES multi-access spool ===")
    cfg = SysplexConfig(n_systems=3,
                        db=DatabaseConfig(n_pages=6000, buffer_pages=2000))
    plex, _ = build_loaded_sysplex(
        cfg, options=RunOptions(terminals_per_system=0))
    spool = JesSpool(n_members=3)
    plex.xes.allocate(ListStructure("JESCKPT", n_headers=spool.n_headers))
    members = [
        JesMember(plex.sim, inst.node, plex.farm, spool,
                  plex.xes.connect(inst.node, "JESCKPT"), i,
                  {"A": 2}, plex.streams.stream(f"jes{i}"))
        for i, inst in enumerate(plex.instances.values())
    ]
    jobs = [BatchJob(job_id=i, cpu_seconds=0.08, io_count=3)
            for i in range(24)]

    def submit():
        for job in jobs:
            yield from members[0].submit(job)

    plex.sim.process(submit())
    # SYS02 dies mid-batch; a peer requeues its parked jobs
    plex.sim.call_at(0.4, plex.nodes[2].fail)

    def recover():
        yield plex.sim.timeout(0.6)
        n = yield from members[0].recover_member(dead_index=2)
        print(f"  t=1.0s: SYS02 died; {n} parked job(s) requeued by a peer")

    plex.sim.process(recover())
    plex.sim.run(until=15)
    print(f"  jobs submitted {spool.submitted}, completed {spool.completed} "
          f"(exactly once each: {all(j.runs >= 1 for j in jobs)})")
    print(f"  ran per system: "
          f"{[m.jobs_run for m in members]} — shared spool, shared work")
    print(f"  mean turnaround {spool.turnaround.mean * 1e3:.0f} ms\n")


def vsam_demo() -> None:
    print("=== VSAM record-level sharing ===")
    cfg = SysplexConfig(n_systems=2,
                        db=DatabaseConfig(n_pages=6000, buffer_pages=2000))
    plex, _ = build_loaded_sysplex(
        cfg, options=RunOptions(terminals_per_system=0))
    catalog = VsamCatalog(first_page=1_000_000)
    catalog.define("ACCOUNTS", max_cis=200, records_per_ci=20)
    rls = []
    for i, inst in enumerate(plex.instances.values()):
        dev = DasdDevice(plex.sim, cfg.dasd,
                         plex.streams.stream(f"vl{i}"), f"vl{i}")
        log = LogManager(plex.sim, inst.node, cfg.db, dev)
        rls.append(VsamRls(plex.sim, inst.node, catalog, inst.lockmgr,
                           inst.buffers, log))

    trace = []

    def scenario():
        # seed two records that land in the same control interval
        yield from rls[0].put("seed", "ACCOUNTS", 100)
        yield from rls[0].put("seed", "ACCOUNTS", 101)
        yield from rls[0].commit("seed")
        trace.append(f"  records 100,101 share CI "
                     f"{catalog.lookup('ACCOUNTS').ci_for(100)}")

        done = []

        def updater(i, key):
            yield from rls[i].put(f"t{i}", "ACCOUNTS", key)
            done.append((i, key, plex.sim.now))
            yield plex.sim.timeout(0.02)  # hold across the other's update
            yield from rls[i].commit(f"t{i}")

        p1 = plex.sim.process(updater(0, 100))
        p2 = plex.sim.process(updater(1, 101))
        yield plex.sim.all_of([p1, p2])
        t0 = next(t for i, k, t in done if k == 100)
        t1 = next(t for i, k, t in done if k == 101)
        trace.append(f"  SYS00 locked record 100 at {1e3 * t0:.2f} ms, "
                     f"SYS01 locked record 101 at {1e3 * t1:.2f} ms")
        trace.append(f"  concurrent (record locks): "
                     f"{abs(t0 - t1) < 0.015}")

    plex.sim.process(scenario())
    plex.sim.run(until=5)
    for line in trace:
        print(line)
    print("  under CI/page locking those updates would have serialized "
          "for the full transaction\n")


if __name__ == "__main__":
    batch_demo()
    vsam_demo()
