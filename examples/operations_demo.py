#!/usr/bin/env python
"""Single point of control: operating the sysplex from one console.

Paper §2.1: the sysplex "provides a single point of control to the
systems operations staff."  This script runs a loaded 3-system sysplex
and performs a planned maintenance action the way an operator would:
display status, VARY a system offline (quiesce + drain — zero lost
transactions), bring it back, and display again.

Run:  python examples/operations_demo.py
"""

from repro import RunOptions
from repro.experiments.common import scaled_config
from repro.runner import build_loaded_sysplex


def show(console, label):
    print(f"\nD XCF ({label})")
    for name, s in console.display_status().items():
        print(f"  {name}: {s['state']:<9} util={s['util']:<6} "
              f"tasks={s['active_tasks']:<3} completed={s['completed']}")


def main() -> None:
    plex, gen = build_loaded_sysplex(
        scaled_config(3, seed=11),
        options=RunOptions(mode="open", offered_tps_per_system=150,
                           router_policy="wlm"),
    )
    console = plex.console
    plex.sim.run(until=1.0)
    show(console, "steady state")

    def operate():
        print("\n> VARY SYS02,OFFLINE        (planned maintenance)")
        drained = yield from console.vary_offline(plex.nodes[2])
        print(f"  quiesced, drained cleanly: {drained} "
              f"(t={plex.sim.now:.2f}s)")
        yield plex.sim.timeout(1.5)  # ... maintenance happens ...
        print("> VARY SYS02,ONLINE")
        console.vary_online(plex.nodes[2])

    plex.sim.process(operate())
    plex.sim.run(until=3.0)
    show(console, "during outage window aftermath")
    plex.sim.run(until=6.0)
    show(console, "after rejoin")

    lost = plex.metrics.counter("txn.failed").count
    det = plex.monitor.detections
    print(f"\ntransactions lost: {lost}   SFM detections: {det} "
          f"(planned removal is not a failure)")
    print("command log:", [c for _t, c in console.command_log])


if __name__ == "__main__":
    main()
