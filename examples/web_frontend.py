#!/usr/bin/env python
"""MVS servers to the World-Wide Web (the paper's §6 future work).

A web workload hits a 4-system sysplex through the Sysplex Distributor —
one virtual IP for the whole complex — and one backend dies mid-run.
Compare with DNS round-robin, where clients keep resolving the dead
address until the TTL expires.

Run:  python examples/web_frontend.py
"""

from repro.experiments.exp_web import run_web


def main() -> None:
    print("driving ~700 connections/s at a 4-system sysplex;\n"
          "one backend dies a third of the way in...\n")
    out = run_web(duration=2.5)
    print(f"{'scheme':<22}{'req/s':>8}{'p95':>9}{'refused':>9}"
          f"{'broken':>8}{'takeovers':>11}")
    for r in out["rows"]:
        print(f"{r['scheme']:<22}{r['requests_per_s']:>8.0f}"
              f"{r['p95_ms']:>8.1f}m{r['conns_refused']:>9}"
              f"{r['conns_broken']:>8}{r['takeovers']:>11}")
    print(
        "\nDNS round-robin keeps sending users to the corpse until the TTL"
        "\nexpires; the distributor routes around it instantly, and when the"
        "\ndistributing stack itself dies, a backup takes over the virtual IP."
    )


if __name__ == "__main__":
    main()
