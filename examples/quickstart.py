#!/usr/bin/env python
"""Quickstart: build a 4-system Parallel Sysplex and run OLTP on it.

Builds the full stack — coupling facility (lock/cache/list structures),
MVS services (XCF, heartbeat, WLM, ARM), database + transaction managers —
drives a closed-loop OLTP workload to saturation, and prints what the
sysplex did.  Uses only the stable public surface (``repro.__all__``).

Run:  python examples/quickstart.py
"""

from repro import CpuConfig, DatabaseConfig, SysplexConfig, run


def main() -> None:
    # database and DASD farm sized to the engine count (the TPC
    # discipline) so the run measures the architecture, not an
    # artificially hot page
    engines = 4 * 2
    config = SysplexConfig(
        n_systems=4,                                 # four MVS images ...
        cpu=CpuConfig(n_cpus=2),                     # ... each a 2-way TCMP
        db=DatabaseConfig(n_pages=25_000 * engines),
        n_dasd=16 * engines,
        seed=42,
    )
    print("building a 4 x 2-way Parallel Sysplex and running OLTP...")
    result = run(config, duration=1.0, warmup=0.4)

    print(f"\n{result.row()}\n")
    print(f"  completed transactions : {result.completed}")
    print(f"  throughput             : {result.throughput:,.0f} tps")
    print(f"  response p50/p95/p99   : "
          f"{1e3 * result.response_p50:.1f} / "
          f"{1e3 * result.response_p95:.1f} / "
          f"{1e3 * result.response_p99:.1f} ms")
    print(f"  CF processor busy      : {100 * result.cf_utilization:.1f}%")
    print("  per-system CPU busy    : "
          + ", ".join(f"{name} {100 * u:.0f}%"
                      for name, u in sorted(result.cpu_utilization.items())))
    print(f"  lock waits / deadlocks : "
          f"{result.extras['lock_waits']:.0f} / "
          f"{result.extras['deadlocks']:.0f}")
    print(f"  false lock contention  : "
          f"{100 * result.extras['false_contention_rate']:.3f}% of "
          f"{result.extras['cf_lock_requests']:.0f} CF lock requests")


if __name__ == "__main__":
    main()
