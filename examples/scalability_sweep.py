#!/usr/bin/env python
"""A miniature Figure 3: TCMP vs Parallel Sysplex scalability.

Measures effective capacity (ITR-normalized saturated throughput) for a
tightly coupled multiprocessor growing 1->10 engines and a Parallel
Sysplex growing 1->16 single-engine systems, and draws the paper's
Figure 3 as ASCII art.

Run:  python examples/scalability_sweep.py        (~1 minute)

Uses only the stable public surface (``repro.__all__``).
"""

from repro import CpuConfig, DatabaseConfig, SysplexConfig, run


def capacity_config(n_systems: int, n_cpus: int,
                    data_sharing: bool) -> SysplexConfig:
    """Database and DASD farm scaled to the engine count (TPC discipline)."""
    engines = max(2, n_systems * n_cpus)
    return SysplexConfig(
        n_systems=n_systems,
        cpu=CpuConfig(n_cpus=n_cpus),
        db=DatabaseConfig(n_pages=25_000 * engines),
        n_dasd=16 * engines,
        data_sharing=data_sharing,
        n_cfs=1 if data_sharing else 0,
    )


def measure(points, sysplex: bool):
    rows = []
    base = None
    for p in points:
        cfg = (capacity_config(p, 1, data_sharing=p > 1)
               if sysplex else capacity_config(1, p, data_sharing=False))
        r = run(cfg, duration=0.4, warmup=0.3)
        itr = r.throughput / max(r.mean_utilization, 1e-9)
        if base is None and p == 1:
            base = itr
        rows.append((p, itr))
    return [(p, itr / base) for p, itr in rows]


def main() -> None:
    print("measuring TCMP points (1 system, n engines)...")
    tcmp = measure((1, 2, 4, 6, 8, 10), sysplex=False)
    print("measuring Parallel Sysplex points (n systems, 1 engine each)...")
    plex = measure((1, 2, 4, 8, 12, 16), sysplex=True)

    width, height = 52, 18
    max_x = 16
    max_y = 16.0
    grid = [[" "] * (width + 1) for _ in range(height + 1)]

    def plot(x, y, ch):
        col = round(x / max_x * width)
        row = height - round(min(y, max_y) / max_y * height)
        if grid[row][col] == " " or ch == "S":
            grid[row][col] = ch

    for x in range(1, max_x + 1):
        plot(x, x, ".")  # IDEAL
    for p, eff in tcmp:
        plot(p, eff, "T")
    for p, eff in plex:
        plot(p, eff, "S")

    print("\n  effective capacity (engines)      . ideal   T TCMP   S sysplex")
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * width + "-> physical capacity (engines)")

    print("\n  TCMP   :", "  ".join(f"{p}:{e:.1f}" for p, e in tcmp))
    print("  Sysplex:", "  ".join(f"{p}:{e:.1f}" for p, e in plex))
    print("\nthe TCMP curve bends (MP effect); the sysplex stays near-"
          "linear after the one-time data-sharing cost — Figure 3's shape")


if __name__ == "__main__":
    main()
