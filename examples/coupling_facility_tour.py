#!/usr/bin/env python
"""A tour of the Coupling Facility API: lock, cache, and list structures.

Uses the CF models directly (no database on top) to demonstrate the three
behaviour models of paper §3.3 and their signature mechanisms: hash-class
contention detection, cross-invalidate signals with zero target CPU, and
list-transition notification.

Run:  python examples/coupling_facility_tour.py
"""

from repro.cf import (
    CacheStructure,
    CouplingFacility,
    ListEntry,
    ListStructure,
    LockMode,
    LockStructure,
)
from repro.cf.commands import CfPort
from repro.config import CfConfig, LinkConfig, SysplexConfig
from repro.hardware import LinkSet, SystemNode
from repro.simkernel import Simulator


def main() -> None:
    sim = Simulator()
    cf_cfg = CfConfig()
    cf = CouplingFacility(sim, cf_cfg, "CF01")

    # two systems with coupling links to the CF
    nodes, ports = [], []
    for i in range(2):
        node = SystemNode(sim, SysplexConfig(n_systems=1), i)
        links = LinkSet(sim, LinkConfig(), name=f"{node.name}-CF01")
        nodes.append(node)
        ports.append(CfPort(node, cf, links, cf_cfg))

    # ---- lock structure -------------------------------------------------
    lock = LockStructure("DEMOLOCK", n_entries=1 << 16)
    cf.allocate(lock)
    conns = [lock.connect(n.name) for n in nodes]

    def lock_demo():
        r = yield from ports[0].sync(
            lambda: lock.request(conns[0], "accounts:4711", LockMode.EXCL))
        print(f"[lock] SYS00 EXCL accounts:4711 -> granted={r.granted} "
              f"(sync, t={1e6 * sim.now:.1f}us)")
        r = yield from ports[1].sync(
            lambda: lock.request(conns[1], "accounts:4711", LockMode.SHR))
        print(f"[lock] SYS01 SHR same resource  -> granted={r.granted}, "
              f"holders={r.holders}, real_conflict={r.real_conflict}")
        yield from ports[0].sync(
            lambda: lock.release(conns[0], "accounts:4711", LockMode.EXCL))
        r = yield from ports[1].sync(
            lambda: lock.request(conns[1], "accounts:4711", LockMode.SHR))
        print(f"[lock] after release, SHR       -> granted={r.granted}")

    # ---- cache structure --------------------------------------------------
    cache = CacheStructure("DEMOCACHE", data_elements=64,
                           directory_entries=256)
    cf.allocate(cache)
    cconns = [cache.connect(n.name) for n in nodes]

    def cache_demo():
        status, v = yield from ports[0].sync(
            lambda: cache.register_and_read(cconns[0], "page:99", 0),
        )
        print(f"\n[cache] SYS00 registers page:99 -> {status} v{v}")
        n = yield from ports[1].sync(
            lambda: cache.write_and_invalidate(cconns[1], "page:99"),
            out_bytes=4096, data=True, signal_wait=True,
        )
        print(f"[cache] SYS01 writes page:99    -> {n} cross-invalidate "
              f"signal(s) sent")
        valid = cache.vector_of(cconns[0]).test(0)
        print(f"[cache] SYS00 local bit test    -> valid={valid} "
              f"(no CF trip, no interrupt was taken)")
        status, v = yield from ports[0].sync(
            lambda: cache.register_and_read(cconns[0], "page:99", 0),
            in_bytes=4096, data=True,
        )
        print(f"[cache] SYS00 refreshes         -> {status} v{v} "
              f"(from CF storage, not DASD)")

    # ---- list structure ----------------------------------------------------
    wq = ListStructure("DEMOQ", n_headers=2, n_locks=1)
    cf.allocate(wq)
    lconns = [wq.connect(n.name) for n in nodes]

    def list_demo():
        wq.register_monitor(lconns[1], 0, bit_index=0)
        print(f"\n[list] SYS01 monitors header 0; bit="
              f"{wq.vector_of(lconns[1]).test(0)}")
        yield from ports[0].sync(
            lambda: wq.push(lconns[0], 0, ListEntry(data='work-item-1')))
        yield sim.timeout(50e-6)  # let the transition signal land
        print(f"[list] SYS00 pushes an entry; SYS01's transition bit="
              f"{wq.vector_of(lconns[1]).test(0)} (set by CF signal)")
        entry = yield from ports[1].sync(lambda: wq.pop(lconns[1], 0))
        print(f"[list] SYS01 pops -> {entry.data!r}")
        got = wq.lock_get(lconns[0], 0)
        print(f"[list] SYS00 takes the serialized-list lock: {got}; "
              f"conditional mainline commands now get rejected")

    def tour():
        yield from lock_demo()
        yield from cache_demo()
        yield from list_demo()

    sim.process(tour())
    sim.run(until=1.0)
    print(f"\nCF executed {cf.commands_executed} commands and sent "
          f"{cf.signals_sent} signals in {1e3 * sim.now:.3f}ms simulated")


if __name__ == "__main__":
    main()
