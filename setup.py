"""Legacy shim: the environment's setuptools (65.x, no `wheel`) cannot do
PEP-660 editable installs, so `pip install -e .` falls back to this."""
from setuptools import setup

setup()
