"""EXP-COHER — §3.3: CF coherency vs message-broadcast coherency."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_coherency import check_shape, run_coherency


def test_cf_vs_broadcast_coherency(benchmark):
    out = run_once(benchmark, run_coherency,
                   sweep=(2, 4, 8, 12), duration=0.4, warmup=0.3)
    print_rows(
        "EXP-COHER — CF vs broadcast coherency",
        out["rows"],
        ["systems", "cf_cpu_ms", "bcast_cpu_ms", "cf_tput", "bcast_tput",
         "cf_p95_ms", "bcast_p95_ms", "bcast_inval_msgs"],
    )
    problems = check_shape(out["rows"])
    assert not problems, problems
    rows = {r["systems"]: r for r in out["rows"]}
    # broadcast cost per txn roughly doubles from 2 to 12 systems
    assert rows[12]["bcast_cpu_ms"] > 1.6 * rows[2]["bcast_cpu_ms"]
    # CF cost stays within ~10%
    assert rows[12]["cf_cpu_ms"] < 1.10 * rows[2]["cf_cpu_ms"]
    # at 12 systems the CF cluster out-delivers broadcast by >1.5x
    assert rows[12]["cf_tput"] > 1.5 * rows[12]["bcast_tput"]
