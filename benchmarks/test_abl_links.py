"""ABL-LINK — §3.3 ablation: coupling-link bandwidth (50 vs 100 MB/s)."""

from conftest import run_once
from repro.experiments.abl_links import run_links
from repro.experiments.common import print_rows


def test_link_bandwidth_vs_sharing_cost(benchmark):
    out = run_once(benchmark, run_links, duration=0.4, warmup=0.3)
    print_rows(
        "ABL-LINK — link bandwidth vs data-sharing cost",
        out["rows"],
        ["link_MB_per_s", "page_transfer_us", "cpu_ms_per_txn",
         "ds_tax_pct", "throughput", "p95_ms"],
    )
    by = {r["link_MB_per_s"]: r for r in out["rows"]}
    # faster links shrink the data-sharing CPU tax monotonically
    assert by[50.0]["ds_tax_pct"] > by[100.0]["ds_tax_pct"] > by[500.0]["ds_tax_pct"]
    # the 50 MB/s option costs several extra points of overhead vs 100
    assert by[50.0]["ds_tax_pct"] - by[100.0]["ds_tax_pct"] > 2.0
    # page transfer time halves exactly with doubled bandwidth
    assert abs(by[50.0]["page_transfer_us"] - 2 * by[100.0]["page_transfer_us"]) < 1e-6
