"""EXP-AVAIL — §2.5: continuous availability across unplanned and planned
outages."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_availability import (
    run_availability,
    run_rolling_maintenance,
)


def test_unplanned_outage_continuity(benchmark):
    out = run_once(benchmark, run_availability, window=0.4)
    print_rows(
        "EXP-AVAIL — unplanned outage (1 of 4 systems)",
        out["timeline"],
        ["t", "throughput", "lost", "phase"],
    )
    s = out["summary"]
    print(f"\nsummary: {s}")
    # the failure was detected and recovered automatically
    assert s["detected_at"] is not None
    assert s["recovered_at"] is not None
    assert s["retained_after"] == 0
    assert s["restarts"] >= 1
    # service continued: post-recovery steady state carries the offered
    # load (survivors have 1/N spare capacity)
    assert s["post_recovery_tput"] > 0.8 * s["pre_failure_tput"]
    # no total blackout: every window after the failure saw completions
    post = [w for w in out["timeline"] if w["phase"] == "post-failure"]
    assert sum(1 for w in post if w["throughput"] == 0) <= 1


def test_rolling_maintenance_continuity(benchmark):
    out = run_once(benchmark, run_rolling_maintenance, outage=1.2)
    print_rows(
        "EXP-AVAIL — rolling maintenance",
        out["timeline"],
        ["t", "throughput", "down"],
    )
    assert out["summary"]["zero_throughput_windows"] == 0
    assert out["summary"]["all_back"]
