"""EXP-BAL — §2.3: dynamic balancing vs data partitioning under shifting
demand hotspots."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_balancing import run_balancing


def test_balancing_under_hotspots(benchmark):
    out = run_once(benchmark, run_balancing, duration=0.9, warmup=0.3)
    print_rows(
        "EXP-BAL — rotating demand hotspot",
        out["rows"],
        ["architecture", "throughput", "mean_rt_ms", "p95_ms",
         "util_spread", "failed"],
    )
    by = {r["architecture"]: r for r in out["rows"]}
    part = by["partitioned"]
    wlm = by["sysplex-wlm"]
    # the balanced sysplex beats the partitioned baseline on response time
    assert wlm["p95_ms"] < 0.5 * part["p95_ms"]
    assert wlm["mean_rt_ms"] < 0.6 * part["mean_rt_ms"]
    # ... and on how evenly the machines are used
    assert wlm["util_spread"] < part["util_spread"]
    # balancing actually did something vs. no-balancing sysplex
    assert wlm["p95_ms"] < by["sysplex-local"]["p95_ms"]
