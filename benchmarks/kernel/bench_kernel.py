#!/usr/bin/env python
"""Simkernel microbenchmarks: the perf smoke for the event-loop hot path.

Unlike the experiment benchmarks (which regenerate the paper's figures),
these time the *kernel mechanics* the whole reproduction sits on: raw
event churn through the calendar, timeout scheduling storms, resource
dispatch under contention, and one end-to-end Figure-3 quick point as the
integrated check.  Every sweep in the repo pays these costs per event, so
a regression here multiplies across all experiments.

Run:

    PYTHONPATH=src python benchmarks/kernel/bench_kernel.py
    PYTHONPATH=src python benchmarks/kernel/bench_kernel.py \
        --out BENCH_kernel.json --check benchmarks/kernel/baseline.json
    PYTHONPATH=src python benchmarks/kernel/bench_kernel.py \
        --scheduler calendar --out BENCH_kernel_calendar.json

``--check`` compares against committed baseline wall times and fails
(exit 1) when a gated benchmark regresses beyond its tolerance; CI runs
it on every push under both scheduler backends (see the
``kernel-bench`` job).  ``--update-baseline`` rewrites the baseline
file from this machine's numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# Allow running as a plain script from the repo root without PYTHONPATH.
sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.simkernel import Resource, Simulator  # noqa: E402
from repro.simkernel.core import (  # noqa: E402
    CalendarScheduler,
    HeapScheduler,
    SCHEDULERS,
)

#: Bumped when benchmark workloads change, so stale baselines and
#: BENCH_kernel.json artifacts cannot be compared across definitions.
#: v2: pluggable-scheduler refactor — every workload takes a
#: ``scheduler`` backend, ``scheduler_churn`` added, and ``fig3_quick``
#: runs under the new sweep-profile default (collapsed events).
SCHEMA_VERSION = 2

#: Regression gates: fraction of slowdown vs. baseline that fails the
#: check.  Only the pure-kernel benchmarks gate CI (the end-to-end point
#: has real model variance on shared runners, so it is report-only).
#: Each scheduler backend gates against its own baseline file (the
#: ``scheduler`` field must match or the gate is skipped): the calendar
#: queue is at parity with heapq at model queue depths, but its
#: constant bucket costs are visible on micro shapes like
#: ``timeout_storm`` that never hold more than a couple of events.
GATES = {
    "event_churn": 0.25,
    "timeout_storm": 0.25,
    "resource_contention": 0.25,
    "scheduler_churn": 0.25,
}


# -- workloads --------------------------------------------------------------

def bench_event_churn(n_processes: int = 200, n_rounds: int = 500,
                      scheduler: str = "heap") -> dict:
    """Ping-pong event churn: processes waiting on each other's events.

    Exercises the dominant kernel cycle — event trigger, calendar
    push/pop, callback dispatch, process resume — with no model code at
    all.
    """
    sim = Simulator(scheduler=scheduler)
    events = 0

    def churner(i: int):
        nonlocal events
        for r in range(n_rounds):
            ev = sim.event()
            ev.succeed(r)
            yield ev
            yield sim.timeout(1e-6)
            events += 2

    for i in range(n_processes):
        sim.process(churner(i), name=f"churn-{i}")
    t0 = time.perf_counter()
    sim.run()
    seconds = time.perf_counter() - t0
    return {"seconds": seconds, "events": events,
            "events_per_sec": events / seconds}


def bench_timeout_storm(n_timeouts: int = 300_000,
                        scheduler: str = "heap") -> dict:
    """Raw calendar stress: a flood of timeouts at interleaving times."""
    sim = Simulator(scheduler=scheduler)
    fired = 0

    def storm():
        nonlocal fired
        for i in range(n_timeouts):
            # alternate short/long delays so the heap actually reorders
            yield sim.timeout(1e-6 if i % 2 else 5e-6)
            fired += 1

    sim.process(storm(), name="storm")
    t0 = time.perf_counter()
    sim.run()
    seconds = time.perf_counter() - t0
    return {"seconds": seconds, "events": fired,
            "events_per_sec": fired / seconds}


def bench_resource_contention(n_tasks: int = 400, n_acquires: int = 250,
                              capacity: int = 8,
                              scheduler: str = "heap") -> dict:
    """Resource dispatch under heavy queueing (CPU-engine contention)."""
    sim = Simulator(scheduler=scheduler)
    engines = Resource(sim, capacity=capacity)
    grants = 0

    def worker(i: int):
        nonlocal grants
        for _ in range(n_acquires):
            req = engines.request()
            yield req
            yield sim.timeout(1e-5)
            req.cancel()
            grants += 1

    for i in range(n_tasks):
        sim.process(worker(i), name=f"w{i}")
    t0 = time.perf_counter()
    sim.run()
    seconds = time.perf_counter() - t0
    return {"seconds": seconds, "events": grants,
            "events_per_sec": grants / seconds}


def bench_scheduler_churn(n_items: int = 120_000,
                          scheduler: str = "heap") -> dict:
    """Pluggable-scheduler A/B: one schedule drained by both backends.

    Pure data-structure churn through the :class:`Scheduler` interface —
    no Simulator, no model code — on a sweep-shaped mix of horizons:
    bands of exact same-instant collisions (collapsed cascades), short
    service times, and sparse long timers, with half the items injected
    mid-drain at the popped instant the way triggered events arrive.
    Reports both backends side by side so the calendar queue's parity
    with the C-accelerated heapq is visible in every artifact; the gated
    ``seconds`` is whichever backend ``--scheduler`` selected.
    """

    def make_schedule():
        # deterministic LCG so both backends drain the identical schedule
        state = 12345
        items = []
        for seq in range(n_items):
            state = (state * 1103515245 + 12345) % (1 << 31)
            r = state / float(1 << 31)
            if r < 0.6:
                when = (seq // 8) * 1e-5   # same-instant cascade bands
            elif r < 0.9:
                when = r * 1e-3            # short service times
            else:
                when = r * 10.0            # long timers
            items.append((when, seq & 1, seq, None))
        return items

    inf = float("inf")
    results = {}
    for name, factory in (("heap", HeapScheduler),
                          ("calendar", CalendarScheduler)):
        sched = factory()
        items = make_schedule()
        half = n_items // 2
        feed = items[half:]
        seq = n_items
        t0 = time.perf_counter()
        for item in items[:half]:
            sched.push(item)
        while True:
            popped = sched.pop_until(inf)
            if popped is None:
                break
            if feed:
                when, prio, _s, payload = feed.pop()
                seq += 1
                sched.push((max(when, popped[0]), prio, seq, payload))
        results[name] = time.perf_counter() - t0

    seconds = results[scheduler]
    return {"seconds": seconds, "events": n_items,
            "events_per_sec": n_items / seconds,
            "heap_seconds": results["heap"],
            "calendar_seconds": results["calendar"],
            "calendar_vs_heap": results["calendar"] / results["heap"]}


def bench_fig3_quick(scheduler: str = "heap") -> dict:
    """End-to-end integrated point: one Figure-3 quick run (4-way plex).

    The kernel share of this number is what the micro-benchmarks above
    isolate; reported (not gated) so kernel wins show up end to end.
    Runs under the default sweep profile (collapsed events) with only
    the scheduler backend pinned by ``--scheduler``.
    """
    from repro import RunOptions, run
    from repro.experiments.common import QUICK, scaled_config

    t0 = time.perf_counter()
    result = run(scaled_config(4, 1, seed=1),
                 options=RunOptions(scheduler=scheduler),
                 duration=QUICK["duration"], warmup=QUICK["warmup"],
                 label="kernel-bench-fig3")
    seconds = time.perf_counter() - t0
    return {"seconds": seconds, "events": result.completed,
            "events_per_sec": result.completed / seconds,
            "throughput": result.throughput}


BENCHMARKS = {
    "event_churn": bench_event_churn,
    "timeout_storm": bench_timeout_storm,
    "resource_contention": bench_resource_contention,
    "scheduler_churn": bench_scheduler_churn,
    "fig3_quick": bench_fig3_quick,
}


# -- harness ----------------------------------------------------------------

def run_benchmarks(repeat: int = 3, only=None,
                   scheduler: str = "heap") -> dict:
    """Run each benchmark ``repeat`` times; keep the fastest round.

    Min-of-N is the stable statistic for wall-clock microbenchmarks: noise
    (GC, scheduler) only ever adds time.
    """
    out = {}
    for name, fn in BENCHMARKS.items():
        if only and name not in only:
            continue
        best = None
        for _ in range(repeat):
            sample = fn(scheduler=scheduler)
            if best is None or sample["seconds"] < best["seconds"]:
                best = sample
        best["rounds"] = repeat
        out[name] = best
        print(f"  {name:<22s} {best['seconds']:8.3f} s   "
              f"{best['events_per_sec']:>12,.0f} events/s")
    return out


def check_baseline(results: dict, baseline: dict) -> list:
    """Gated benchmarks must stay within tolerance of the baseline."""
    problems = []
    base = baseline.get("benchmarks", {})
    for name, tolerance in GATES.items():
        if name not in results or name not in base:
            continue
        now = results[name]["seconds"]
        ref = base[name]["seconds"]
        if ref > 0 and now > ref * (1.0 + tolerance):
            problems.append(
                f"{name}: {now:.3f}s vs baseline {ref:.3f}s "
                f"(+{100 * (now / ref - 1):.0f}%, tolerance "
                f"{100 * tolerance:.0f}%)"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--out", type=Path, default=Path("BENCH_kernel.json"),
                    help="where to write the results JSON")
    ap.add_argument("--check", type=Path, default=None,
                    help="baseline JSON to gate against (exit 1 on regression)")
    ap.add_argument("--update-baseline", type=Path, default=None,
                    help="rewrite this baseline file from the fresh numbers")
    ap.add_argument("--repeat", type=int, default=3,
                    help="rounds per benchmark; fastest round is kept")
    ap.add_argument("--only", nargs="*", default=None,
                    help=f"subset of benchmarks ({', '.join(BENCHMARKS)})")
    ap.add_argument("--scheduler", choices=sorted(SCHEDULERS),
                    default="heap",
                    help="calendar backend every workload runs under "
                    "(default: heap); gate against the matching "
                    "baseline file — baseline.json for heap, "
                    "baseline_calendar.json for calendar")
    args = ap.parse_args(argv)

    print(f"simkernel microbenchmarks (best of {args.repeat} rounds, "
          f"scheduler={args.scheduler}):")
    results = run_benchmarks(repeat=args.repeat, only=args.only,
                             scheduler=args.scheduler)
    doc = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "scheduler": args.scheduler,
        "benchmarks": results,
    }
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.update_baseline is not None:
        args.update_baseline.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"updated baseline {args.update_baseline}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        if baseline.get("schema") != SCHEMA_VERSION:
            print(f"baseline schema {baseline.get('schema')} != "
                  f"{SCHEMA_VERSION}; skipping gate (update the baseline)")
            return 0
        if baseline.get("scheduler", "heap") != args.scheduler:
            print(f"baseline scheduler {baseline.get('scheduler', 'heap')!r} "
                  f"!= {args.scheduler!r}; skipping gate (each backend "
                  "gates against its own baseline file)")
            return 0
        problems = check_baseline(results, baseline)
        if problems:
            print("PERF REGRESSION:")
            for p in problems:
                print(f"  {p}")
            return 1
        print("baseline check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
