"""EXP-GROW — §2.4: non-disruptive growth vs repartitioning outage."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_growth import run_growth


def test_growth_non_disruptive(benchmark):
    out = run_once(benchmark, run_growth, window=0.3)
    print_rows(
        "EXP-GROW — adding a system mid-run",
        out["timeline"],
        ["t", "sysplex_tput", "newcomer_util", "partitioned_tput"],
    )
    s = out["summary"]
    print(f"\nsummary: {s}")
    # the sysplex never stops serving while the system joins
    assert s["sysplex_min_tput"] > 0
    # the newcomer is pulling real load by the end (WLM ramp, §2.4)
    assert s["newcomer_final_util"] is not None
    assert s["newcomer_final_util"] > 0.2
    # the partitioned baseline pays a repartitioning outage and loses work
    assert s["repartition_window_s"] > 0
    assert s["partitioned_lost_txns"] > 0
    # during/after the move, the partitioned cluster dips far below the
    # sysplex's worst window
    assert s["partitioned_min_tput_after_add"] < 0.7 * s["sysplex_min_tput"]
