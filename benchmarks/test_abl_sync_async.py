"""ABL-SYNC — §3.3 ablation: sync vs async CF command execution."""

from conftest import run_once
from repro.experiments.abl_sync_async import run_sync_async
from repro.experiments.common import print_rows


def test_sync_vs_async_commands(benchmark):
    out = run_once(benchmark, run_sync_async)
    print_rows(
        "ABL-SYNC — sync vs async CF commands",
        out["rows"],
        ["mode", "link_latency_us", "cpu_us_per_op", "latency_us"],
    )
    rows = out["rows"]

    def get(mode, lat_us):
        return next(r for r in rows
                    if r["mode"] == mode and r["link_latency_us"] == lat_us)

    # at microsecond link latency (the product's), sync wins on BOTH cpu
    # and latency — the paper's design rationale
    assert get("sync", 2.0)["cpu_us_per_op"] < get("async", 2.0)["cpu_us_per_op"]
    assert get("sync", 2.0)["latency_us"] < get("async", 2.0)["latency_us"]
    # async CPU is flat in link latency; sync CPU grows with it (spinning)
    assert (get("async", 200.0)["cpu_us_per_op"]
            == get("async", 2.0)["cpu_us_per_op"])
    assert (get("sync", 200.0)["cpu_us_per_op"]
            > 5 * get("sync", 2.0)["cpu_us_per_op"])
    # there IS a crossover: on slow links async burns less CPU
    assert out["summary"]["async_wins_at_us"] is not None
