"""ABL-GRAN — §3.3.1/§5.2: record-level sharing vs CI-level locking."""

from conftest import run_once
from repro.experiments.abl_granularity import run_granularity
from repro.experiments.common import print_rows


def test_record_vs_ci_granularity(benchmark):
    out = run_once(benchmark, run_granularity, duration=0.8)
    print_rows(
        "ABL-GRAN — record vs CI lock granularity",
        out["rows"],
        ["granularity", "systems", "throughput", "mean_rt_ms", "p95_ms",
         "lock_waits", "deadlocks"],
    )
    by = {r["granularity"]: r for r in out["rows"]}
    # the fine grain is what makes shared VSAM viable: an order of
    # magnitude (or more) of throughput on hot keyed updates
    assert by["record"]["throughput"] > 10 * by["ci"]["throughput"]
    assert by["record"]["mean_rt_ms"] < by["ci"]["mean_rt_ms"]
