"""EXP-LOCK — §3.3.1: false contention vs table size; microsecond grants."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_locktable import (
    run_grant_latency,
    run_locktable_sweep,
)


def test_false_contention_vs_table_size(benchmark):
    out = run_once(benchmark, run_locktable_sweep,
                   duration=0.4, warmup=0.3)
    print_rows(
        "EXP-LOCK — false contention vs lock-table size",
        out["rows"],
        ["lock_table_entries", "requests", "false_pct", "real_pct",
         "throughput", "p95_ms"],
    )
    rows = out["rows"]
    # false contention falls monotonically (weakly) with table size ...
    falses = [r["false_pct"] for r in rows]
    assert all(b <= a + 0.2 for a, b in zip(falses, falses[1:])), falses
    # ... from double digits at 256 entries to ~zero at the product size
    assert falses[0] > 5.0
    assert falses[-1] < 0.1
    # real contention is a property of the workload, not the table
    reals = [r["real_pct"] for r in rows]
    assert max(reals) - min(reals) < 2.0


def test_sync_grant_latency_is_microseconds(benchmark):
    out = run_once(benchmark, run_grant_latency)
    s = out["summary"]
    print(f"\ngrant latency: {s}")
    assert s["n"] > 100
    assert s["mean_us"] < 100.0  # "measured in micro-seconds"
    assert s["all_microseconds"]
