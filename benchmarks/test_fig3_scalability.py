"""FIG3 — Figure 3: effective vs physical capacity (IDEAL / TCMP / Sysplex)."""

from conftest import run_once
from repro.experiments.fig3_scalability import check_shape, run_fig3
from repro.experiments.common import print_rows


def test_fig3_scalability(benchmark):
    series = run_once(
        benchmark, run_fig3,
        tcmp_points=(1, 2, 4, 6, 8, 10),
        plex_points=(1, 2, 4, 8, 16, 24, 32),
        duration=0.4, warmup=0.3,
    )
    for name in ("tcmp", "sysplex"):
        print_rows(
            f"Figure 3 — {name.upper()}", series[name],
            ["physical", "effective", "efficiency", "itr_effective",
             "itr_efficiency", "throughput", "util"],
        )
    problems = check_shape(series)
    assert not problems, problems

    tcmp = {r["physical"]: r for r in series["tcmp"]}
    plex = {r["physical"]: r for r in series["sysplex"]}
    # the TCMP tops out around 7-8 effective engines at 10-way
    assert 6.0 <= tcmp[10]["itr_effective"] <= 8.5
    # the 32-way sysplex delivers over 3x the largest TCMP
    assert plex[32]["itr_effective"] > 3 * tcmp[10]["itr_effective"]
    # near-linear: 32-way ITR efficiency within 12 points of the 2-way's
    assert plex[32]["itr_efficiency"] > plex[2]["itr_efficiency"] - 0.12
