"""EXP-CFFAIL — §3.3: CF failover via structure rebuild."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_cf_failover import run_cf_failover


def test_cf_failover_continuity(benchmark):
    out = run_once(benchmark, run_cf_failover, window=0.3)
    print_rows(
        "EXP-CFFAIL — losing 1 of 2 CFs mid-run",
        out["timeline"],
        ["t", "throughput", "lost", "phase"],
    )
    s = out["summary"]
    print(f"\nsummary: {s}")
    assert s["rebuilds"] == 1
    # the workload survives the CF loss at near-full throughput
    assert s["post_tput"] > 0.8 * s["pre_tput"]
    # only in-flight work at the instant of failure is lost
    assert s["lost_total"] < 200
