"""EXP-GR — §5.3: VTAM generic resources session balancing."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_generic_resources import run_generic_resources


def test_generic_resources_balance(benchmark):
    out = run_once(benchmark, run_generic_resources)
    columns = ["policy"] + sorted(
        k for k in out["rows"][0] if k.startswith("SYS")
    ) + ["load_spread"]
    print_rows("EXP-GR — session bind distribution", out["rows"], columns)
    s = out["summary"]
    print(f"\nsummary: {s}")
    by = {r["policy"]: r for r in out["rows"]}
    # GR equalizes projected load far better than static assignment
    assert (by["generic-resources"]["load_spread"]
            < 0.7 * by["static-assignment"]["load_spread"])
    # GR deliberately sends few sessions to the busy system
    assert by["generic-resources"]["SYS00"] < by["generic-resources"]["SYS03"]
    assert s["binds"] == 400
    # failure handling: orphaned sessions were rebound
    assert s["orphans_rebound"] > 0
