"""TAB1 — §4's measured claims: <18% sharing transition, <0.5%/system."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.tab1_overhead import print_attribution, run_tab1


def test_tab1_data_sharing_overhead(benchmark):
    out = run_once(benchmark, run_tab1,
                   sweep=(2, 4, 8, 16, 24, 32), duration=0.4, warmup=0.3)
    print_rows(
        "Table 1 — cost of data sharing",
        out["rows"],
        ["systems", "sharing", "cpu_ms_per_txn", "overhead_vs_base_pct",
         "incremental_pct_per_system", "throughput"],
    )
    s = out["summary"]
    print(
        f"\n1->2 transition {s['transition_cost_pct']:.1f}% (paper <18%); "
        f"per-system {s['mean_incremental_pct_per_system']:.2f}% "
        f"(paper <0.5%)"
    )
    # the transition cost is a one-time, sub-linear hit: same order as the
    # paper's <18% (we accept up to 25% — our workload profile is close to
    # but not identical to the unpublished CICS/DBCTL testbed)
    assert 5.0 < s["transition_cost_pct"] < 25.0
    # incremental cost per added system is well under 1%
    assert abs(s["mean_incremental_pct_per_system"]) < 1.0
    # and the 32-way's total overhead stays close to the 2-way's
    by_n = {r["systems"]: r for r in out["rows"]}
    assert (by_n[32]["overhead_vs_base_pct"]
            < by_n[2]["overhead_vs_base_pct"] + 10.0)
    # overhead attribution (traced base + 2-way): the transition cost
    # shows up as CF-coupled categories, not as unattributed time
    print_attribution(out["attribution"])
    att = out["attribution"]
    assert att is not None
    assert att["delta_us"]["coherency"] > 0  # sharing adds coherency work
    assert att["two_way"]["trace.cf_ops_per_txn"] > 0
    assert att["base"]["trace.cf_ops_per_txn"] == 0  # no CF in the base
