"""EXP-WEB — §6 future work: TCP/IP single system image (Sysplex
Distributor) vs DNS round-robin under a backend loss."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_web import run_web


def test_web_single_system_image(benchmark):
    out = run_once(benchmark, run_web, duration=1.8)
    print_rows(
        "EXP-WEB — connection placement under a backend loss",
        out["rows"],
        ["scheme", "killed", "requests_per_s", "p95_ms", "conns_refused",
         "conns_broken", "takeovers"],
    )
    by = {r["scheme"]: r for r in out["rows"]}
    dns = by["dns-round-robin"]
    sd = by["sysplex-distributor"]
    dk = by["distributor-killed"]
    # DNS keeps handing out the dead address until the TTL expires
    assert dns["conns_refused"] > 50
    # the distributor routes around the dead backend instantly
    assert sd["conns_refused"] == 0
    assert sd["requests_per_s"] > dns["requests_per_s"]
    # killing the distributor itself triggers exactly one VIPA takeover
    # and service continues
    assert dk["takeovers"] == 1
    assert dk["conns_refused"] == 0
    assert dk["requests_per_s"] > 0.6 * sd["requests_per_s"]
