"""ABL-DSS — §2.3: decision-support query decomposition speedup."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_dss import check_shape, run_dss


def test_dss_parallel_speedup(benchmark):
    out = run_once(benchmark, run_dss, scan_pages=30_000)
    print_rows(
        "ABL-DSS — parallel query speedup",
        out["rows"],
        ["parallelism", "elapsed_s", "speedup", "efficiency"],
    )
    problems = check_shape(out["rows"])
    assert not problems, problems
    by = {r["parallelism"]: r for r in out["rows"]}
    # near-linear in the early region
    assert by[2]["speedup"] > 1.8
    assert by[8]["speedup"] > 5.0
    # coordination overhead shows: efficiency declines by 32-way split
    assert by[32]["efficiency"] < by[2]["efficiency"]
