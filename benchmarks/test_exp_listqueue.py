"""EXP-LIST — §3.3.3: shared CF work queue vs static assignment."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_listqueue import run_listqueue


def test_shared_list_work_queue(benchmark):
    out = run_once(benchmark, run_listqueue, duration=0.4, warmup=0.3)
    print_rows(
        "EXP-LIST — shared CF work queue vs static assignment",
        out["rows"],
        ["distribution", "throughput", "mean_rt_ms", "p95_ms",
         "util_spread", "transitions_signalled"],
    )
    by = {r["distribution"]: r for r in out["rows"]}
    shared, static = by["shared-cf-list"], by["static-local"]
    # with one front-end, static assignment strands three systems
    assert static["util_spread"] > 0.6
    assert shared["util_spread"] < 0.4
    # the shared queue delivers at least double the throughput ...
    assert shared["throughput"] > 2 * static["throughput"]
    # ... at a fraction of the response time
    assert shared["p95_ms"] < 0.5 * static["p95_ms"]
    # and the list-transition machinery was actually exercised
    assert shared["transitions_signalled"] > 0
