"""EXP-GOAL — §2.1/§5.1: WLM goal protection under mixed workloads."""

from conftest import run_once
from repro.experiments.common import print_rows
from repro.experiments.exp_goal_mode import run_goal_mode


def test_wlm_goal_protection(benchmark):
    out = run_once(benchmark, run_goal_mode, duration=1.0)
    print_rows(
        "EXP-GOAL — WLM goal protection",
        out["rows"],
        ["case", "oltp_tput", "oltp_p95_ms", "oltp_pi", "queries_done",
         "query_s"],
    )
    by = {r["case"]: r for r in out["rows"]}
    alone = by["oltp-alone"]
    equal = by["batch-equal-priority"]
    goal = by["batch-wlm-goal-mode"]
    # unmanaged batch hurts the OLTP goal badly
    assert equal["oltp_pi"] > 1.3
    # goal mode restores OLTP throughput to (near) solo level ...
    assert goal["oltp_tput"] > 0.95 * alone["oltp_tput"]
    # ... and recovers most of the response-time damage
    assert goal["oltp_p95_ms"] < 0.8 * equal["oltp_p95_ms"]
    assert goal["oltp_pi"] < equal["oltp_pi"]
    # while the queries still make progress on leftover capacity
    assert goal["queries_done"] >= 1
