#!/usr/bin/env python
"""Macro benchmarks: whole-experiment wall time for the headline sweeps.

The kernel microbenchmarks (``benchmarks/kernel``) time the event loop in
isolation; these time what a user actually waits for — complete Figure-3
and Table-1 quick points through :func:`repro.run`, warmup included.
Every layer shows up in the number: command fast paths, buffer-manager
hits, lock-manager grants, castout scans, calendar churn.

Besides wall seconds, each point reports ``events_per_committed_txn``
(:attr:`repro.metrics.RunResult.events_per_committed_txn`): kernel events
processed per committed transaction in the measured window.  Wall time
factors into events/txn (how much machinery one transaction costs) times
seconds/event (kernel speed); the first factor is deterministic for a
fixed seed, so it gates tightly even on noisy CI runners where raw wall
time cannot.

Run:

    PYTHONPATH=src python benchmarks/macro/bench_macro.py
    PYTHONPATH=src python benchmarks/macro/bench_macro.py \
        --out BENCH_macro.json --check benchmarks/macro/baseline.json

``--check`` compares against the committed baseline and fails (exit 1)
on regression beyond tolerance; CI runs it on every push (the
``macro-bench`` job).  ``--update-baseline`` rewrites the baseline from
this machine's numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# Allow running as a plain script from the repo root without PYTHONPATH.
sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro import RunOptions, run  # noqa: E402
from repro.experiments.common import QUICK, scaled_config  # noqa: E402

#: Bumped when benchmark workloads change, so stale baselines and
#: BENCH_macro.json artifacts cannot be compared across definitions.
#: v2: points run under the new default sweep profile (calendar-queue
#: scheduler + collapsed events), so wall times and events/txn dropped
#: a definition step, not a perf step.
SCHEMA_VERSION = 2

#: Wall-time regression gates: fraction of slowdown vs. baseline that
#: fails the check.  Generous because shared CI runners are noisy; the
#: deterministic events/txn gate below catches subtler machinery bloat.
#: ``tab1_base1`` is wall-report-only: at ~0.1 s the point is so short
#: that scheduler noise alone is a double-digit percentage.
GATES = {
    "fig3_plex8": 0.25,
    "fig3_plex16": 0.25,
}

#: events_per_committed_txn tolerance, applied to *every* point.  The
#: count is exact for a fixed seed (zero run-to-run variance), so any
#: growth is a real change in per-transaction event machinery — gate it
#: tightly.
EVENTS_GATE = 0.10


# -- macro points ------------------------------------------------------------

def _point(config, label: str) -> dict:
    t0 = time.perf_counter()
    result = run(config, options=RunOptions(),
                 duration=QUICK["duration"], warmup=QUICK["warmup"],
                 label=label)
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "completed": result.completed,
        "throughput": result.throughput,
        "sim_events": result.sim_events,
        "events_per_committed_txn": result.events_per_committed_txn,
    }


def bench_fig3_plex8() -> dict:
    """Figure-3 quick point: 8-system data-sharing parallel sysplex."""
    return _point(scaled_config(8, 1, seed=1), "macro-fig3-plex8")


def bench_fig3_plex16() -> dict:
    """Figure-3 quick point: 16-system sysplex (the headline macro)."""
    return _point(scaled_config(16, 1, seed=1), "macro-fig3-plex16")


def bench_tab1_base1() -> dict:
    """Table-1 base case: 1 system, no data sharing (no CF commands at
    all — isolates the non-sharing buffer/lock fast paths)."""
    return _point(scaled_config(1, 1, data_sharing=False, seed=1),
                  "macro-tab1-base1")


BENCHMARKS = {
    "fig3_plex8": bench_fig3_plex8,
    "fig3_plex16": bench_fig3_plex16,
    "tab1_base1": bench_tab1_base1,
}


# -- harness ----------------------------------------------------------------

def run_benchmarks(repeat: int = 3, only=None) -> dict:
    """Run each point ``repeat`` times; keep the fastest round.

    Min-of-N is the stable statistic for wall-clock benchmarks: noise
    (GC, scheduler) only ever adds time.  The deterministic fields
    (completed, events/txn) are identical across rounds by construction.
    """
    out = {}
    for name, fn in BENCHMARKS.items():
        if only and name not in only:
            continue
        best = None
        for _ in range(repeat):
            sample = fn()
            if best is None or sample["seconds"] < best["seconds"]:
                best = sample
        best["rounds"] = repeat
        out[name] = best
        print(f"  {name:<14s} {best['seconds']:8.3f} s   "
              f"{best['throughput']:>9.1f} tps   "
              f"{best['events_per_committed_txn']:>8.1f} events/txn")
    return out


def check_baseline(results: dict, baseline: dict) -> list:
    """Wall time within GATES tolerance; events/txn within EVENTS_GATE
    on every point (deterministic, so it gates even where wall cannot)."""
    problems = []
    base = baseline.get("benchmarks", {})
    for name in results:
        if name not in base:
            continue
        tolerance = GATES.get(name)
        now = results[name]["seconds"]
        ref = base[name]["seconds"]
        if tolerance is not None and ref > 0 and now > ref * (1.0 + tolerance):
            problems.append(
                f"{name}: {now:.3f}s vs baseline {ref:.3f}s "
                f"(+{100 * (now / ref - 1):.0f}%, tolerance "
                f"{100 * tolerance:.0f}%)"
            )
        now_ept = results[name].get("events_per_committed_txn", 0.0)
        ref_ept = base[name].get("events_per_committed_txn", 0.0)
        if ref_ept > 0 and now_ept > ref_ept * (1.0 + EVENTS_GATE):
            problems.append(
                f"{name}: {now_ept:.1f} events/txn vs baseline "
                f"{ref_ept:.1f} (+{100 * (now_ept / ref_ept - 1):.0f}%, "
                f"tolerance {100 * EVENTS_GATE:.0f}%)"
            )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--out", type=Path, default=Path("BENCH_macro.json"),
                    help="where to write the results JSON")
    ap.add_argument("--check", type=Path, default=None,
                    help="baseline JSON to gate against (exit 1 on regression)")
    ap.add_argument("--update-baseline", type=Path, default=None,
                    help="rewrite this baseline file from the fresh numbers")
    ap.add_argument("--repeat", type=int, default=3,
                    help="rounds per point; fastest round is kept")
    ap.add_argument("--only", nargs="*", default=None,
                    help=f"subset of points ({', '.join(BENCHMARKS)})")
    args = ap.parse_args(argv)

    print(f"macro benchmarks (best of {args.repeat} rounds):")
    results = run_benchmarks(repeat=args.repeat, only=args.only)
    doc = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "benchmarks": results,
    }
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")

    if args.update_baseline is not None:
        args.update_baseline.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"updated baseline {args.update_baseline}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        if baseline.get("schema") != SCHEMA_VERSION:
            print(f"baseline schema {baseline.get('schema')} != "
                  f"{SCHEMA_VERSION}; skipping gate (update the baseline)")
            return 0
        problems = check_baseline(results, baseline)
        if problems:
            print("PERF REGRESSION:")
            for p in problems:
                print(f"  {p}")
            return 1
        print("baseline check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
