"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures/claims (see
DESIGN.md's experiment index) through ``benchmark.pedantic(rounds=1)`` —
these are simulation *experiments*, not micro-benchmarks, so one round is
the meaningful unit and the printed tables (run with ``-s``) are the
primary output.  Assertions encode the paper's qualitative shape: who
wins, what bends, what stays flat.
"""



def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
