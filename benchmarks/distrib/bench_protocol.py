#!/usr/bin/env python
"""Work-queue protocol throughput: tasks/sec with a no-op runner.

The simulator is deliberately absent here — each task returns a small
canned payload instantly, so the number measures pure protocol cost:
frame encode/decode, dispatch, pipelining, and (de)compression.  The
matrix is pipeline depth 1 (the v1 strict request/reply behavior) vs 4
vs 16, compression on vs off.  The clock starts at the *first* result,
so fleet spin-up (interpreter start + imports, ~0.3 s per worker) never
pollutes the steady-state number.

Pipelining exists to hide wire latency, so on a bare loopback socket
(RTT ≈ 0) depth barely matters; ``--latency-ms`` inserts a TCP relay
that delays every hop, emulating the LAN/WAN round trip an
SSH-launched fleet actually pays.  At depth 1 every task then costs a
full RTT of idle worker time; at depth 4+ the next task is already in
the worker's local queue and the RTT vanishes from the wall clock.

Run:

    python benchmarks/distrib/bench_protocol.py
    python benchmarks/distrib/bench_protocol.py \
        --tasks 500 --workers 4 --latency-ms 5 --out BENCH_distrib.json

Report-only: CI uploads ``BENCH_distrib.json`` as an artifact but never
gates on it — socket throughput on a shared runner is weather, not
signal.  The schema version stamps the workload definition so numbers
are only ever compared within one definition.
"""

from __future__ import annotations

import argparse
import json
import platform
import socket
import threading
import time
from pathlib import Path
import sys

# Allow running as a plain script from the repo root without PYTHONPATH.
sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.distrib.launcher import LocalLauncher  # noqa: E402
from repro.distrib.server import SweepServer  # noqa: E402
from repro.runspec import RunSpec  # noqa: E402

HERE = Path(__file__).resolve().parent

#: Bumped when the benchmark workload changes (payload shape, matrix,
#: timing method), so BENCH_distrib.json artifacts are never compared
#: across definitions.
SCHEMA_VERSION = 1

#: Resolved by the workers, which get this directory on PYTHONPATH.
NOOP = "bench_protocol:noop_runner"

#: (depth, compress) matrix — depth 1 is the pre-pipelining baseline.
MATRIX = [(1, False), (1, True), (4, False), (4, True),
          (16, False), (16, True)]


def noop_runner(spec):
    """Instant, deterministic, a few KB of JSON — a protocol-shaped load."""
    i = spec.params["i"]
    return {
        "i": i,
        "rows": [
            {"point": i, "col": j, "value": (i * 31 + j) % 997}
            for j in range(40)
        ],
    }


def bench_specs(n):
    return [RunSpec(runner=NOOP, label=f"noop-{i}", params={"i": i})
            for i in range(n)]


class LatencyRelay:
    """TCP relay adding a fixed one-way delay to every chunk, each hop."""

    def __init__(self, target: str, delay: float):
        host, _, port = target.rpartition(":")
        self._target = (host, int(port))
        self._delay = delay
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(32)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._closing = False
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self):
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            up = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                up.connect(self._target)
            except OSError:
                conn.close()
                continue
            for src, dst in ((conn, up), (up, conn)):
                threading.Thread(target=self._pump, args=(src, dst),
                                 daemon=True).start()

    def _pump(self, src, dst):
        try:
            while True:
                chunk = src.recv(65536)
                if not chunk:
                    break
                time.sleep(self._delay)
                dst.sendall(chunk)
        except OSError:
            pass
        for s in (src, dst):
            try:
                s.close()
            except OSError:
                pass

    def close(self):
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass


def run_point(specs, workers, depth, compress, latency_ms):
    tasks = [(i, s.to_dict()) for i, s in enumerate(specs)]
    server = SweepServer(tasks, depth=depth, compress=compress)
    addr = server.start("127.0.0.1:0")
    relay = None
    connect = addr
    if latency_ms > 0:
        relay = LatencyRelay(addr, latency_ms / 1000.0)
        connect = relay.address
    launcher = LocalLauncher(count=workers, pythonpath=[HERE],
                             cache_mode="off")
    t_first = None
    n = 0
    try:
        handles = launcher.launch(connect)
        for _done in server.results(procs=handles, startup_timeout=120.0):
            if t_first is None:
                t_first = time.perf_counter()
            n += 1
        wall = time.perf_counter() - t_first
    finally:
        server.close()
        launcher.stop()
        if relay is not None:
            relay.close()
    assert n == len(specs)
    # steady-state rate: the clock starts at the first result, so the
    # fleet's interpreter spin-up is excluded by construction
    return {
        "wall_seconds": round(wall, 4),
        "tasks_per_second": round((n - 1) / wall, 1) if wall > 0 else None,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tasks", type=int, default=200,
                    help="tasks per matrix point (default: 200)")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker processes (default: 4)")
    ap.add_argument("--latency-ms", type=float, default=0.0,
                    help="emulated one-way wire latency per hop "
                    "(default: 0 = bare loopback)")
    ap.add_argument("--out", type=Path, default=Path("BENCH_distrib.json"),
                    help="where to write the JSON report")
    args = ap.parse_args(argv)

    specs = bench_specs(args.tasks)
    results = {}
    for depth, compress in MATRIX:
        name = f"depth{depth}-{'z' if compress else 'plain'}"
        print(f"{name}: {args.tasks} tasks over {args.workers} worker(s)"
              + (f", {args.latency_ms:g}ms wire" if args.latency_ms else "")
              + "...", flush=True)
        point = run_point(specs, args.workers, depth, compress,
                          args.latency_ms)
        results[name] = point
        print(f"  {point['tasks_per_second']:>8.1f} tasks/s "
              f"({point['wall_seconds']:.2f}s)")

    doc = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "tasks": args.tasks,
        "workers": args.workers,
        "latency_ms": args.latency_ms,
        "results": results,
    }
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"report written to {args.out}")

    base = results.get("depth1-plain")
    best = max(results.values(), key=lambda r: r["tasks_per_second"])
    if base and base["tasks_per_second"]:
        print(f"best matrix point vs depth-1 uncompressed: "
              f"{best['tasks_per_second'] / base['tasks_per_second']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
