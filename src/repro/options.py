"""Drive options: how a sysplex run is loaded, routed, and observed.

:class:`RunOptions` is the frozen bundle of workload-drive parameters
that used to travel as loose keyword arguments through
:func:`repro.runner.run_oltp` and :func:`repro.runner.build_loaded_sysplex`
(``mode=``, ``router_policy=``, ``tracing=``, ...).  Bundling them gives
the public API one typed, hashable, JSON-serializable object that

* :func:`repro.run` and the runner entry points accept directly,
* :class:`repro.runspec.RunSpec` embeds verbatim, so the drive options
  participate in the spec's content hash (and therefore in the result
  cache's identity rule).

The old loose-kwarg style still works on the runner entry points but
raises :class:`DeprecationWarning`; see :mod:`repro.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

__all__ = ["RunOptions", "OPTION_FIELDS"]

#: The two workload drive modes (see OltpGenerator): ``closed`` keeps a
#: fixed terminal population in think/submit loops; ``open`` offers an
#: arrival stream at a fixed rate regardless of completions.
_MODES = ("closed", "open")


@dataclass(frozen=True)
class RunOptions:
    """How to drive one simulation run (everything but *what* to build).

    All fields are plain data so the bundle serializes losslessly into
    :meth:`RunSpec.to_dict <repro.runspec.RunSpec.to_dict>` and hashes
    into ``RunSpec.content_hash``.
    """

    #: ``"closed"`` (terminals with think time) or ``"open"`` (Poisson
    #: offered load).
    mode: str = "closed"
    #: Work routing policy: ``"local"``, ``"threshold"`` (the paper's
    #: stay-local-unless-overloaded), or ``"wlm"``.
    router_policy: str = "threshold"
    #: Attach the heartbeat/SFM monitor to every system.
    monitoring: bool = True
    #: Attach the transaction-level span tracer (overhead attribution).
    tracing: bool = False
    #: Closed-loop terminal count per system; ``None`` derives it from
    #: the config (``terminals_per_cpu * n_cpus``).
    terminals_per_system: Optional[int] = None
    #: Open-loop offered transactions/second per system.
    offered_tps_per_system: float = 200.0

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown drive mode {self.mode!r} (expected one of {_MODES})"
            )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "router_policy": self.router_policy,
            "monitoring": self.monitoring,
            "tracing": self.tracing,
            "terminals_per_system": self.terminals_per_system,
            "offered_tps_per_system": self.offered_tps_per_system,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunOptions":
        return cls(**data)

    def replace(self, **changes) -> "RunOptions":
        """A copy with ``changes`` applied (frozen-dataclass friendly)."""
        return replace(self, **changes)


#: Field names of :class:`RunOptions` — the keys the deprecation shims
#: and :meth:`RunSpec.replace` recognize as drive options.
OPTION_FIELDS = frozenset(f.name for f in fields(RunOptions))
