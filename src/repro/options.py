"""Drive options: how a sysplex run is loaded, routed, and observed.

:class:`RunOptions` is the frozen bundle of workload-drive parameters
that used to travel as loose keyword arguments through
:func:`repro.runner.run_oltp` and :func:`repro.runner.build_loaded_sysplex`
(``mode=``, ``router_policy=``, ``tracing=``, ...).  Bundling them gives
the public API one typed, hashable, JSON-serializable object that

* :func:`repro.run` and the runner entry points accept directly,
* :class:`repro.runspec.RunSpec` embeds verbatim, so the drive options
  participate in the spec's content hash (and therefore in the result
  cache's identity rule).

Execution profiles
------------------

``profile`` selects how much the kernel is allowed to optimize a run:

* ``"sweep"`` (the default) — the fast configuration: the calendar-queue
  scheduler plus the event-collapsed CF command path.  Statistically
  indistinguishable from the golden path (and still perfectly
  deterministic per spec hash), but *not* byte-identical to it at
  saturation.  Experiments, fuzzing and chaos runs use this.
* ``"verify"`` — the golden configuration: heapq scheduler, no event
  collapsing.  Byte-identical to the historical results; use it to
  (re)generate golden fixtures or to double-check a sweep result.

``scheduler`` and ``collapse`` override the profile's choice per knob
(``None`` means "whatever the profile says"); see
:meth:`RunOptions.resolved_scheduler` / :meth:`RunOptions.resolved_collapse`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

__all__ = ["RunOptions", "OPTION_FIELDS", "PROFILES"]

#: The two workload drive modes (see OltpGenerator): ``closed`` keeps a
#: fixed terminal population in think/submit loops; ``open`` offers an
#: arrival stream at a fixed rate regardless of completions.
_MODES = ("closed", "open")

#: Execution profiles and the (scheduler, collapse) defaults they imply.
PROFILES = {
    "sweep": ("calendar", True),
    "verify": ("heap", False),
}

_SCHEDULERS = (None, "heap", "calendar")


@dataclass(frozen=True)
class RunOptions:
    """How to drive one simulation run (everything but *what* to build).

    All fields are plain data so the bundle serializes losslessly into
    :meth:`RunSpec.to_dict <repro.runspec.RunSpec.to_dict>` and hashes
    into ``RunSpec.content_hash``.
    """

    #: ``"closed"`` (terminals with think time) or ``"open"`` (Poisson
    #: offered load).
    mode: str = "closed"
    #: Work routing policy: ``"local"``, ``"threshold"`` (the paper's
    #: stay-local-unless-overloaded), or ``"wlm"``.
    router_policy: str = "threshold"
    #: Attach the heartbeat/SFM monitor to every system.
    monitoring: bool = True
    #: Attach the transaction-level span tracer (overhead attribution).
    tracing: bool = False
    #: Closed-loop terminal count per system; ``None`` derives it from
    #: the config (``terminals_per_cpu * n_cpus``).
    terminals_per_system: Optional[int] = None
    #: Open-loop offered transactions/second per system.
    offered_tps_per_system: float = 200.0
    #: Execution profile: ``"sweep"`` (fast; the default) or ``"verify"``
    #: (golden, byte-identical to historical results).  See the module
    #: docstring.
    profile: str = "sweep"
    #: Kernel calendar backend override: ``"heap"``, ``"calendar"``, or
    #: ``None`` to take the profile's choice.  Both backends produce
    #: bit-identical results; this knob exists for benchmarking and for
    #: the fuzzer's cross-backend determinism oracle.
    scheduler: Optional[str] = None
    #: CF-command event-collapse override: ``True``/``False``, or
    #: ``None`` to take the profile's choice.  Collapsed runs are
    #: statistically neutral but not byte-identical to golden ones.
    collapse: Optional[bool] = None

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown drive mode {self.mode!r} (expected one of {_MODES})"
            )
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r} "
                f"(expected one of {tuple(PROFILES)})"
            )
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r} "
                f"(expected one of {_SCHEDULERS})"
            )

    # -- profile resolution ------------------------------------------------
    def resolved_scheduler(self) -> str:
        """The kernel scheduler this run should use."""
        if self.scheduler is not None:
            return self.scheduler
        return PROFILES[self.profile][0]

    def resolved_collapse(self) -> bool:
        """Whether the CF command path may collapse events."""
        if self.collapse is not None:
            return self.collapse
        return PROFILES[self.profile][1]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "router_policy": self.router_policy,
            "monitoring": self.monitoring,
            "tracing": self.tracing,
            "terminals_per_system": self.terminals_per_system,
            "offered_tps_per_system": self.offered_tps_per_system,
            "profile": self.profile,
            "scheduler": self.scheduler,
            "collapse": self.collapse,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunOptions":
        return cls(**data)

    def replace(self, **changes) -> "RunOptions":
        """A copy with ``changes`` applied (frozen-dataclass friendly)."""
        return replace(self, **changes)


#: Field names of :class:`RunOptions` — the keys
#: :meth:`RunSpec.replace <repro.runspec.RunSpec.replace>` routes into
#: the nested options bundle.
OPTION_FIELDS = frozenset(f.name for f in fields(RunOptions))
