"""EXP-LIST — shared work queues via the CF list structure (paper §3.3.3).

Workload distribution through a shared CF list (every system pops from
one queue, woken by list-transition signals) versus static per-system
assignment, under imbalanced arrivals (all work enters through one
system's network endpoint — a common SNA front-end pattern).

With static assignment the receiving system queues everything locally and
peers idle; with the shared list the first free server anywhere takes the
next item.  Reported: throughput, p95, utilization spread, and the list
structure's signalling counters.
"""

from __future__ import annotations

from typing import Dict, List

from ..runner import build_loaded_sysplex
from ..subsystems.txn import ListQueueRouter
from .common import QUICK, print_rows, scaled_config

__all__ = ["run_listqueue", "main"]


def _drive(plex, gen, offered_total, duration, warmup):
    # all arrivals enter via system 0 (single front-end): the generator's
    # per-home rate concentrates on home 0
    plex.sim.run(until=warmup)
    plex.reset_measurement()
    plex.sim.run(until=warmup + duration)


def run_listqueue(n_systems: int = 4,
                  offered_total: float = 900.0,
                  duration: float = QUICK["duration"],
                  warmup: float = QUICK["warmup"],
                  seed: int = 1) -> Dict:
    rows: List[dict] = []

    for mode in ("static-local", "shared-cf-list"):
        config = scaled_config(n_systems, seed=seed)
        plex, gen = build_loaded_sysplex(
            config, mode="open", offered_tps_per_system=0.0,
            router_policy="local",
        )
        if mode == "shared-cf-list":
            connections = {
                name: inst.xes_list
                for name, inst in plex.instances.items()
            }
            router = ListQueueRouter(
                plex.sim,
                [inst.tm for inst in plex.instances.values()],
                connections,
            )
            gen.router = router
        # concentrated arrivals: everything lands on home 0
        plex.sim.process(gen._arrivals(0, offered_total), name="front-end")
        _drive(plex, gen, offered_total, duration, warmup)
        r = plex.collect(mode)
        st = plex.xes.find("WORKQ1")
        rows.append(
            {
                "distribution": mode,
                "throughput": r.throughput,
                "mean_rt_ms": 1e3 * r.response_mean,
                "p95_ms": 1e3 * r.response_p95,
                "util_spread": round(r.utilization_spread, 3),
                "transitions_signalled": st.transitions_signalled,
            }
        )
    return {"rows": rows}


def main(quick: bool = True) -> Dict:
    kw = QUICK if quick else {"duration": 1.2, "warmup": 0.6}
    out = run_listqueue(duration=kw["duration"], warmup=kw["warmup"])
    print_rows(
        "EXP-LIST — shared CF work queue vs static assignment "
        "(single front-end)",
        out["rows"],
        ["distribution", "throughput", "mean_rt_ms", "p95_ms",
         "util_spread", "transitions_signalled"],
    )
    return out


if __name__ == "__main__":
    main(quick=False)
