"""EXP-LIST — shared work queues via the CF list structure (paper §3.3.3).

Workload distribution through a shared CF list (every system pops from
one queue, woken by list-transition signals) versus static per-system
assignment, under imbalanced arrivals (all work enters through one
system's network endpoint — a common SNA front-end pattern).

With static assignment the receiving system queues everything locally and
peers idle; with the shared list the first free server anywhere takes the
next item.  Reported: throughput, p95, utilization spread, and the list
structure's signalling counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..options import RunOptions
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..subsystems.txn import ListQueueRouter
from .common import QUICK, Execution, print_rows, scaled_config, sweep

__all__ = ["run_listqueue", "listqueue_specs", "main"]

CASE_RUNNER = "repro.experiments.exp_listqueue:run_case_spec"


def listqueue_specs(n_systems: int = 4,
                    offered_total: float = 900.0,
                    duration: float = QUICK["duration"],
                    warmup: float = QUICK["warmup"],
                    seed: int = 1) -> List[RunSpec]:
    """Declare the two work-distribution cases."""
    return [
        RunSpec(
            runner=CASE_RUNNER,
            config=scaled_config(n_systems, seed=seed),
            duration=duration, warmup=warmup,
            options=RunOptions(mode="open", router_policy="local"),
            label=mode,
            params={"mode": mode, "offered_total": offered_total},
        )
        for mode in ("static-local", "shared-cf-list")
    ]


def run_case_spec(spec: RunSpec) -> dict:
    """Scenario runner: one distribution scheme under one front-end."""
    mode = spec.params["mode"]
    offered_total = spec.params["offered_total"]
    plex, gen = build_loaded_sysplex(
        spec.config,
        options=spec.options.replace(offered_tps_per_system=0.0))
    if mode == "shared-cf-list":
        connections = {
            name: inst.xes_list
            for name, inst in plex.instances.items()
        }
        router = ListQueueRouter(
            plex.sim,
            [inst.tm for inst in plex.instances.values()],
            connections,
        )
        gen.router = router
    # concentrated arrivals: everything lands on home 0
    plex.sim.process(gen._arrivals(0, offered_total), name="front-end")
    plex.sim.run(until=spec.warmup)
    plex.reset_measurement()
    plex.sim.run(until=spec.warmup + spec.duration)
    r = plex.collect(mode)
    st = plex.xes.find("WORKQ1")
    return {
        "distribution": mode,
        "throughput": r.throughput,
        "mean_rt_ms": 1e3 * r.response_mean,
        "p95_ms": 1e3 * r.response_p95,
        "util_spread": round(r.utilization_spread, 3),
        "transitions_signalled": st.transitions_signalled,
    }


def run_listqueue(n_systems: int = 4,
                  offered_total: float = 900.0,
                  duration: float = QUICK["duration"],
                  warmup: float = QUICK["warmup"],
                  seed: int = 1,
                  execution: Optional[Execution] = None) -> Dict:
    rows = sweep(listqueue_specs(n_systems, offered_total, duration,
                                 warmup, seed), execution=execution)
    return {"rows": rows}


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    kw = QUICK if quick else {"duration": 1.2, "warmup": 0.6}
    out = run_listqueue(duration=kw["duration"], warmup=kw["warmup"],
                        seed=seed, execution=execution)
    print_rows(
        "EXP-LIST — shared CF work queue vs static assignment "
        "(single front-end)",
        out["rows"],
        ["distribution", "throughput", "mean_rt_ms", "p95_ms",
         "util_spread", "transitions_signalled"],
        execution=execution,
    )
    return out


if __name__ == "__main__":
    main(quick=False)
