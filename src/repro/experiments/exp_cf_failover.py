"""EXP-CFFAIL — Coupling Facility failover (paper §3.3).

"Multiple CF's can be connected for availability, performance, and
capacity reasons."  A dual-CF sysplex loses the facility holding all its
structures mid-run; XES rebuilds the lock, cache, and list structures
into the survivor from the connectors' local state (lock interest and
record data replayed from the lock managers, valid buffer registrations
from the pools) and the workload continues.

Reported: the throughput timeline around the CF loss, rebuild duration,
and how much in-flight work was lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_cf_failover", "cf_failover_spec", "main"]

CASE_RUNNER = "repro.experiments.exp_cf_failover:run_cf_failover_spec"


def cf_failover_spec(n_systems: int = 4,
                     window: float = 0.3,
                     seed: int = 1) -> RunSpec:
    """Declare the dual-CF loss scenario."""
    return RunSpec(
        runner=CASE_RUNNER,
        config=scaled_config(n_systems, seed=seed, n_cfs=2),
        label=f"cf-failover-{n_systems}", params={"window": window},
    )


def run_cf_failover_spec(spec: RunSpec) -> Dict:
    """Scenario runner: lose 1 of 2 CFs mid-run, watch the rebuild."""
    config = spec.config
    window = spec.params["window"]
    plex, gen = build_loaded_sysplex(config, options=spec.options)
    fail_at = 4 * window
    plex.sim.call_at(fail_at,
                     lambda: plex.xes.find("IRLMLOCK1").facility.fail())

    counter = plex.metrics.counter("txn.completed")
    failed = plex.metrics.counter("txn.failed")
    timeline: List[dict] = []
    prev = prev_f = 0
    for k in range(1, 23):
        plex.sim.run(until=k * window)
        c, f = counter.count, failed.count
        timeline.append(
            {
                "t": round(k * window, 2),
                "throughput": (c - prev) / window,
                "lost": f - prev_f,
                "phase": "pre" if k * window <= fail_at else "post",
            }
        )
        prev, prev_f = c, f

    pre = [w["throughput"] for w in timeline if w["phase"] == "pre"]
    # steady state after the post-failover transient (the rebuilt group
    # buffer pool starts empty, so there is a re-population dip first)
    post = [w["throughput"] for w in timeline[-5:]]
    return {
        "timeline": timeline,
        "summary": {
            "fail_at": fail_at,
            "rebuilds": plex.metrics.counter("cf.rebuilds").count,
            "pre_tput": sum(pre) / len(pre),
            "post_tput": sum(post) / len(post),
            "lost_total": failed.count,
            "surviving_cf": plex.xes.find("IRLMLOCK1").facility.name,
        },
    }


def run_cf_failover(n_systems: int = 4,
                    window: float = 0.3,
                    seed: int = 1,
                    execution: Optional[Execution] = None) -> Dict:
    return sweep([cf_failover_spec(n_systems, window, seed)],
                 execution=execution)[0]


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_cf_failover(window=0.3 if quick else 0.5, seed=seed,
                          execution=execution)
    print_rows(
        "EXP-CFFAIL — losing 1 of 2 Coupling Facilities mid-run",
        out["timeline"],
        ["t", "throughput", "lost", "phase"],
        execution=execution,
    )
    s = out["summary"]
    print(
        f"\nCF failed at t={s['fail_at']:.1f}s; structures rebuilt into "
        f"{s['surviving_cf']} ({s['rebuilds']} rebuild); "
        f"{s['lost_total']} transactions lost; throughput "
        f"{s['pre_tput']:.0f} -> {s['post_tput']:.0f} tps"
    )
    return out


if __name__ == "__main__":
    main(quick=False)
