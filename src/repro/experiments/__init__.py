"""Experiment harness: one module per paper figure/claim (see DESIGN.md).

Each module declares its sweep as a list of
:class:`~repro.runspec.RunSpec` (the ``*_specs`` functions), exposes
``run_*`` functions returning plain row data, and a
``main(quick=..., seed=...)`` that prints the table the paper's reader
would want.  The benchmark suite under ``benchmarks/`` drives these
through pytest-benchmark; they are also runnable directly::

    python -m repro.experiments.fig3_scalability
    python -m repro.experiments --filter fig3 --jobs 4
"""

from . import (
    abl_granularity,
    abl_links,
    abl_sync_async,
    common,
    exp_availability,
    exp_balancing,
    exp_cf_failover,
    exp_chaos,
    exp_coherency,
    exp_dss,
    exp_duplex,
    exp_generic_resources,
    exp_goal_mode,
    exp_growth,
    exp_listqueue,
    exp_locktable,
    exp_web,
    fig3_scalability,
    tab1_overhead,
)

__all__ = [
    "abl_granularity",
    "abl_links",
    "abl_sync_async",
    "common",
    "exp_availability",
    "exp_balancing",
    "exp_cf_failover",
    "exp_chaos",
    "exp_coherency",
    "exp_dss",
    "exp_duplex",
    "exp_generic_resources",
    "exp_goal_mode",
    "exp_growth",
    "exp_listqueue",
    "exp_locktable",
    "exp_web",
    "fig3_scalability",
    "tab1_overhead",
]
