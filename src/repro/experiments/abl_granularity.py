"""ABL-GRAN — lock granularity: record-level sharing vs CI/page locks.

Paper §3.3.1 credits the lock structure with "high-performance,
finely-grained lock resource management, maximizing concurrency", and
§5.2 announces VSAM data sharing (which shipped as *record-level*
sharing).  This ablation shows why the fine grain matters: the same
keyed-update workload runs against the same datasets under

* **record** locks (VSAM RLS proper): two transactions updating
  different records of one control interval proceed concurrently;
* **ci** locks (the pre-RLS granularity): they serialize for the full
  transaction.

With a small hot key range (records clustered into few CIs), CI locking
collapses into a convoy while record locking keeps scaling.
"""

from __future__ import annotations

from typing import Dict, List, Optional


from ..hardware.dasd import DasdDevice
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..simkernel import Tally
from ..subsystems.logmgr import LogManager
from ..subsystems.vsam import VsamCatalog, VsamRls
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_granularity", "granularity_specs", "main"]

CASE_RUNNER = "repro.experiments.abl_granularity:run_case_spec"


def granularity_specs(n_systems: int = 4, hot_records: int = 800,
                      duration: float = 0.8, warmup: float = 0.3,
                      seed: int = 1) -> List[RunSpec]:
    """Declare the two lock-granularity cases over the same workload."""
    return [
        RunSpec(
            runner=CASE_RUNNER,
            config=scaled_config(n_systems, seed=seed),
            duration=duration, warmup=warmup, label=granularity,
            params={"granularity": granularity, "hot_records": hot_records},
        )
        for granularity in ("record", "ci")
    ]


def run_case_spec(spec: RunSpec) -> dict:
    """Scenario runner: hot keyed updates at one lock granularity."""
    granularity = spec.params["granularity"]
    hot_records = spec.params["hot_records"]
    config = spec.config
    duration, warmup = spec.duration, spec.warmup
    plex, gen = build_loaded_sysplex(
        config, options=spec.options.replace(terminals_per_system=0))
    catalog = VsamCatalog(first_page=10_000_000)
    catalog.define("HOT", max_cis=2_000, records_per_ci=20)

    instances = list(plex.instances.values())
    rlss: List[VsamRls] = []
    for i, inst in enumerate(instances):
        dev = DasdDevice(plex.sim, config.dasd,
                         plex.streams.stream(f"vlog{i}"), f"vlog{i}")
        log = LogManager(plex.sim, inst.node, config.db, dev)
        rlss.append(
            VsamRls(plex.sim, inst.node, catalog, inst.lockmgr,
                    inst.buffers, log, lock_granularity=granularity)
        )

    # seed the hot records (they cluster into hot_records/20 CIs)
    def seed_data():
        for k in range(hot_records):
            yield from rlss[0].put(("seed", k), "HOT", k)
            yield from rlss[0].commit(("seed", k))

    p = plex.sim.process(seed_data())
    plex.sim.run(until=p)

    rt = Tally("rt")
    done = [0]

    def terminal(i, rls, rng):
        txn_seq = 0
        while True:
            txn_seq += 1
            txn = (i, txn_seq)
            t0 = plex.sim.now
            try:
                for _ in range(2):
                    key = int(rng.integers(hot_records))
                    yield from rls.get(txn, "HOT", key)
                for _ in range(2):
                    key = int(rng.integers(hot_records))
                    yield from rls.put(txn, "HOT", key)
                yield from rls.commit(txn)
            except Exception:
                yield from rls.backout(txn)
                continue
            rt.record(plex.sim.now - t0)
            done[0] += 1

    for i, rls in enumerate(rlss):
        rng = plex.streams.stream(f"vsam-term-{i}")
        for j in range(6):
            plex.sim.process(terminal((i, j), rls, rng),
                             name=f"vterm-{i}.{j}")

    start = plex.sim.now
    plex.sim.run(until=start + warmup)
    rt.reset()
    base = done[0]
    plex.sim.run(until=start + warmup + duration)
    completed = done[0] - base
    return {
        "granularity": granularity,
        "systems": config.n_systems,
        "throughput": completed / duration,
        "mean_rt_ms": 1e3 * rt.mean,
        "p95_ms": 1e3 * rt.percentile(95),
        "lock_waits": plex.lock_space.waits,
        "deadlocks": plex.lock_space.deadlocks,
    }


def run_granularity(n_systems: int = 4, hot_records: int = 800,
                    duration: float = 0.8, warmup: float = 0.3,
                    seed: int = 1,
                    execution: Optional[Execution] = None) -> Dict:
    rows = sweep(granularity_specs(n_systems, hot_records, duration,
                                   warmup, seed), execution=execution)
    return {"rows": rows}


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_granularity(duration=0.8 if quick else 2.0, seed=seed,
                          execution=execution)
    print_rows(
        "ABL-GRAN — record-level vs CI-level locking (hot keyed updates)",
        out["rows"],
        ["granularity", "systems", "throughput", "mean_rt_ms", "p95_ms",
         "lock_waits", "deadlocks"],
        execution=execution,
    )
    return out


if __name__ == "__main__":
    main(quick=False)
