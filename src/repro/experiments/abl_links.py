"""ABL-LINK — ablation: 50 vs 100 MB/s coupling links (§3.3).

"The coupling links are fiber-optic channels providing either 50
MegaBytes/second or 100 MB/second data transfer rates."  Link bandwidth
matters most for data-carrying commands (4K page writes to the group
buffer pool, CF refresh reads) whose transfer time the issuing CPU spins
through.  We run the OLTP workload at both speeds, plus a hypothetical
500 MB/s point, and report the data-sharing CPU tax at each.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import LinkConfig
from ..runspec import RunSpec
from .common import QUICK, Execution, print_rows, scaled_config, sweep

__all__ = ["run_links", "links_specs", "main"]

BANDWIDTHS = (50e6, 100e6, 500e6)


def links_specs(bandwidths=BANDWIDTHS,
                duration: float = QUICK["duration"],
                warmup: float = QUICK["warmup"],
                seed: int = 1) -> List[RunSpec]:
    """Declare the link sweep: the non-sharing base, then each speed."""
    specs = [RunSpec(
        config=scaled_config(1, 1, data_sharing=False, seed=seed),
        duration=duration, warmup=warmup, label="base-noDS",
    )]
    specs += [
        RunSpec(
            config=scaled_config(2, seed=seed,
                                 link=LinkConfig(bandwidth=bw)),
            duration=duration, warmup=warmup, label=f"{bw / 1e6:.0f}MBs",
        )
        for bw in bandwidths
    ]
    return specs


def run_links(bandwidths=BANDWIDTHS,
              duration: float = QUICK["duration"],
              warmup: float = QUICK["warmup"],
              seed: int = 1,
              execution: Optional[Execution] = None) -> Dict:
    results = sweep(links_specs(bandwidths, duration, warmup, seed),
                    execution=execution)
    base = results[0]
    base_cpu = base.mean_utilization * base.duration / max(base.completed, 1)
    rows: List[dict] = []
    for bw, r in zip(bandwidths, results[1:]):
        cpu = r.mean_utilization * 2 * r.duration / max(r.completed, 1)
        rows.append(
            {
                "link_MB_per_s": bw / 1e6,
                "page_transfer_us": 1e6 * 4096 / bw,
                "cpu_ms_per_txn": 1e3 * cpu,
                "ds_tax_pct": 100 * (cpu / base_cpu - 1),
                "throughput": r.throughput,
                "p95_ms": 1e3 * r.response_p95,
            }
        )
    return {"rows": rows}


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    kw = QUICK if quick else {"duration": 1.0, "warmup": 0.5}
    out = run_links(duration=kw["duration"], warmup=kw["warmup"],
                    seed=seed, execution=execution)
    print_rows(
        "ABL-LINK — coupling link bandwidth vs data-sharing cost (2-way)",
        out["rows"],
        ["link_MB_per_s", "page_transfer_us", "cpu_ms_per_txn",
         "ds_tax_pct", "throughput", "p95_ms"],
        execution=execution,
    )
    return out


if __name__ == "__main__":
    main(quick=False)
