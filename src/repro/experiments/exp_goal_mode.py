"""EXP-GOAL — WLM policy-driven resource management (paper §2.1 / §5.1).

"The ability to dynamically and automatically manage system resources is
a key objective" and WLM "provides policy-driven system resource
management for customer workloads."

A sysplex runs its OLTP service class (response-time goal, importance 1)
while a stream of big decision-support scans arrives continuously
(discretionary work, importance 5).  Compared:

* **no policy** — queries dispatch at the same priority as transactions;
* **WLM goal mode** — queries run at the discretionary dispatch priority
  WLM assigns their class, in dispatchable slices, so OLTP keeps its
  response-time goal while queries soak up the leftover capacity.

Reported: OLTP p95 + performance index and query elapsed time under each
policy (and with no batch at all, as the reference).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..options import RunOptions
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..workloads.dss import Query, QuerySplitter
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_goal_mode", "goal_mode_specs", "main"]

CASE_RUNNER = "repro.experiments.exp_goal_mode:run_case_spec"


def goal_mode_specs(duration: float = 1.2, seed: int = 1) -> List[RunSpec]:
    """Declare the three mixed-workload policy cases."""
    cases = [
        ("oltp-alone", False, False),
        ("batch-equal-priority", True, False),
        ("batch-wlm-goal-mode", True, True),
    ]
    return [
        RunSpec(
            runner=CASE_RUNNER, config=scaled_config(4, seed=seed),
            duration=duration, warmup=0.4,
            options=RunOptions(mode="open", offered_tps_per_system=230.0,
                               router_policy="wlm"),
            label=label,
            params={"with_batch": with_batch, "use_policy": use_policy},
        )
        for label, with_batch, use_policy in cases
    ]


def run_case_spec(spec: RunSpec) -> dict:
    """Scenario runner: OLTP + query stream under one dispatch policy."""
    label = spec.label
    with_batch = spec.params["with_batch"]
    use_policy = spec.params["use_policy"]
    plex, gen = build_loaded_sysplex(spec.config, options=spec.options)
    wlm = plex.wlm
    wlm.define_service_class("QUERY", response_goal=5.0, importance=5)
    splitter = QuerySplitter(plex.sim, plex.nodes, plex.farm, wlm,
                             spec.config.xcf)
    query_times: List[float] = []

    def query_stream():
        qid = 0
        while True:
            qid += 1
            prio = wlm.dispatch_priority("QUERY") if use_policy else 1
            q = Query(query_id=qid, first_page=0, n_pages=30_000)
            t = yield from splitter.run_query(q, parallelism=8,
                                              priority=prio)
            query_times.append(t)
            wlm.record_response("QUERY", t)

    if with_batch:
        plex.sim.process(query_stream(), name="query-stream")

    plex.sim.run(until=spec.warmup)
    plex.reset_measurement()
    plex.sim.run(until=spec.warmup + spec.duration)
    r = plex.collect(label)
    return {
        "case": label,
        "oltp_tput": r.throughput,
        "oltp_p95_ms": 1e3 * r.response_p95,
        "oltp_pi": round(wlm.performance_index("OLTP"), 2),
        "queries_done": len(query_times),
        "query_s": (sum(query_times) / len(query_times)
                    if query_times else None),
    }


def run_goal_mode(duration: float = 1.2, seed: int = 1,
                  execution: Optional[Execution] = None) -> Dict:
    rows = sweep(goal_mode_specs(duration, seed), execution=execution)
    return {"rows": rows}


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_goal_mode(duration=1.0 if quick else 2.4, seed=seed,
                        execution=execution)
    print_rows(
        "EXP-GOAL — WLM goal protection under mixed OLTP + query load",
        out["rows"],
        ["case", "oltp_tput", "oltp_p95_ms", "oltp_pi", "queries_done",
         "query_s"],
        execution=execution,
    )
    return out


if __name__ == "__main__":
    main(quick=False)
