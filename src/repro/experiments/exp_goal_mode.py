"""EXP-GOAL — WLM policy-driven resource management (paper §2.1 / §5.1).

"The ability to dynamically and automatically manage system resources is
a key objective" and WLM "provides policy-driven system resource
management for customer workloads."

A sysplex runs its OLTP service class (response-time goal, importance 1)
while a stream of big decision-support scans arrives continuously
(discretionary work, importance 5).  Compared:

* **no policy** — queries dispatch at the same priority as transactions;
* **WLM goal mode** — queries run at the discretionary dispatch priority
  WLM assigns their class, in dispatchable slices, so OLTP keeps its
  response-time goal while queries soak up the leftover capacity.

Reported: OLTP p95 + performance index and query elapsed time under each
policy (and with no batch at all, as the reference).
"""

from __future__ import annotations

from typing import Dict, List

from ..runner import build_loaded_sysplex
from ..workloads.dss import Query, QuerySplitter
from .common import print_rows, scaled_config

__all__ = ["run_goal_mode", "main"]


def _run_case(label: str, with_batch: bool, use_policy: bool,
              duration: float, seed: int) -> dict:
    config = scaled_config(4, seed=seed)
    plex, gen = build_loaded_sysplex(config, mode="open",
                                     offered_tps_per_system=230.0,
                                     router_policy="wlm")
    wlm = plex.wlm
    wlm.define_service_class("QUERY", response_goal=5.0, importance=5)
    splitter = QuerySplitter(plex.sim, plex.nodes, plex.farm, wlm,
                             config.xcf)
    query_times: List[float] = []

    def query_stream():
        qid = 0
        while True:
            qid += 1
            prio = wlm.dispatch_priority("QUERY") if use_policy else 1
            q = Query(query_id=qid, first_page=0, n_pages=30_000)
            t = yield from splitter.run_query(q, parallelism=8,
                                              priority=prio)
            query_times.append(t)
            wlm.record_response("QUERY", t)

    if with_batch:
        plex.sim.process(query_stream(), name="query-stream")

    plex.sim.run(until=0.4)
    plex.reset_measurement()
    plex.sim.run(until=0.4 + duration)
    r = plex.collect(label)
    return {
        "case": label,
        "oltp_tput": r.throughput,
        "oltp_p95_ms": 1e3 * r.response_p95,
        "oltp_pi": round(wlm.performance_index("OLTP"), 2),
        "queries_done": len(query_times),
        "query_s": (sum(query_times) / len(query_times)
                    if query_times else None),
    }


def run_goal_mode(duration: float = 1.2, seed: int = 1) -> Dict:
    rows = [
        _run_case("oltp-alone", False, False, duration, seed),
        _run_case("batch-equal-priority", True, False, duration, seed),
        _run_case("batch-wlm-goal-mode", True, True, duration, seed),
    ]
    return {"rows": rows}


def main(quick: bool = True) -> Dict:
    out = run_goal_mode(duration=1.0 if quick else 2.4)
    print_rows(
        "EXP-GOAL — WLM goal protection under mixed OLTP + query load",
        out["rows"],
        ["case", "oltp_tput", "oltp_p95_ms", "oltp_pi", "queries_done",
         "query_s"],
    )
    return out


if __name__ == "__main__":
    main(quick=False)
