"""Experiment driver CLI.

    python -m repro.experiments                      # everything, quick
    python -m repro.experiments --full               # longer runs
    python -m repro.experiments --list               # show experiment names
    python -m repro.experiments --filter fig3        # substring match
    python -m repro.experiments --jobs 4             # parallel sweeps
    python -m repro.experiments --no-cache           # always re-simulate
    python -m repro.experiments --verify             # golden (byte-identical) profile
    python -m repro.experiments --backend workqueue --workers 4
                                                     # distributed sweeps

Sweeps inside each experiment fan out over ``--jobs`` worker processes
(or, with ``--backend workqueue``, over worker *clients* pulling tasks
from a work-queue server) and memoise results in a content-addressed
on-disk cache (default ``.runcache/``); a re-run with identical specs
replays from the cache in seconds.  Results are numerically identical
for any ``--jobs`` value, any backend, and for cache hits — every path
round-trips through the same canonical JSON.

The CLI builds one frozen :class:`~repro.experiments.common.Execution`
from its flags and threads it explicitly through every experiment's
``main(...)`` — there is no module-global execution state.
"""

from __future__ import annotations

import argparse
import os
import time

from ..executor import DEFAULT_CACHE_DIR, ResultCache, WorkQueueBackend
from . import (
    abl_granularity,
    abl_links,
    abl_sync_async,
    exp_availability,
    exp_balancing,
    exp_cf_failover,
    exp_chaos,
    exp_coherency,
    exp_dss,
    exp_generic_resources,
    exp_goal_mode,
    exp_growth,
    exp_listqueue,
    exp_locktable,
    exp_web,
    fig3_scalability,
    tab1_overhead,
)
from .common import Execution

ALL = (
    fig3_scalability,
    tab1_overhead,
    exp_balancing,
    exp_availability,
    exp_cf_failover,
    exp_chaos,
    exp_locktable,
    exp_coherency,
    exp_growth,
    exp_listqueue,
    exp_generic_resources,
    exp_goal_mode,
    exp_web,
    abl_sync_async,
    abl_links,
    abl_granularity,
    exp_dss,
)


def _short_name(mod) -> str:
    return mod.__name__.rsplit(".", 1)[-1]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the S/390 Parallel Sysplex reproduction "
        "experiments.",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="longer, lower-variance runs (default: quick settings)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_only",
        help="list experiment names and exit",
    )
    parser.add_argument(
        "--filter", default="", metavar="SUBSTR",
        help="only run experiments whose name contains SUBSTR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per sweep (0 = one per CPU; default 1, "
        "in-process)",
    )
    parser.add_argument(
        "--backend", choices=("local", "workqueue"), default="local",
        help="sweep executor backend: 'local' (process pool, the "
        "default) or 'workqueue' (work-queue server + spawned worker "
        "clients over a socket)",
    )
    parser.add_argument(
        "--workers", default="2", metavar="SPEC",
        help="worker clients for --backend workqueue: a count ('4', 0 = "
        "one per CPU) or ssh host specs ('host1:4,host2:8'; remote "
        "hosts read the cache over the protocol; default 2)",
    )
    parser.add_argument(
        "--worker-cmd", default=None, metavar="TEMPLATE",
        help="launch each workqueue worker via this sh -c template "
        "({address}/{name}/{python} substituted) instead of local "
        "subprocesses",
    )
    parser.add_argument(
        "--depth", type=int, default=4, metavar="N",
        help="workqueue pipelining: tasks kept in flight per worker "
        "(default 4; 1 = strict request/reply)",
    )
    parser.add_argument(
        "--no-compress", action="store_true",
        help="disable zlib frame compression on the workqueue protocol",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--expect-no-misses", action="store_true",
        help="exit nonzero if any sweep missed the result cache (CI "
        "warm-cache assertion; requires the cache to be enabled)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="master random seed for every experiment (default: 1)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run every sweep under the golden verify profile (heapq "
        "scheduler, no event collapsing; byte-identical to historical "
        "results) instead of the fast sweep profile",
    )
    parser.add_argument(
        "--csv-dir", default=None, metavar="DIR",
        help="also write each printed table to DIR as CSV",
    )
    parser.add_argument(
        "--profile", nargs="?", const=True, default=None, metavar="PATH",
        help="profile the run under cProfile and print the top 25 "
        "functions by cumulative time; with PATH, also dump raw pstats "
        "there (implies --jobs 1 and --no-cache so the profile sees the "
        "simulation, not the worker pool or cache)",
    )
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)

    selected = [m for m in ALL if args.filter in _short_name(m)]
    if args.list_only:
        for mod in ALL:
            print(_short_name(mod))
        return
    if not selected:
        names = ", ".join(_short_name(m) for m in ALL)
        raise SystemExit(
            f"--filter {args.filter!r} matches no experiment (have: {names})"
        )

    if args.profile is not None:
        # profile the actual simulation: in-process, cache off — a pool
        # of workers or a cache replay would leave the profile empty
        args.jobs, args.no_cache, args.backend = 1, True, "local"
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.expect_no_misses and cache is None:
        raise SystemExit("--expect-no-misses needs the cache "
                         "(drop --no-cache)")
    backend = None
    if args.backend == "workqueue":
        from ..distrib.launcher import CommandLauncher, parse_worker_spec

        spec = parse_worker_spec(args.workers)
        if isinstance(spec, int):
            workers = spec if spec > 0 else (os.cpu_count() or 1)
            spawn = (CommandLauncher(args.worker_cmd, count=workers)
                     if args.worker_cmd else True)
        else:
            workers = spec.count
            spawn = (CommandLauncher(args.worker_cmd, count=workers)
                     if args.worker_cmd else spec)
        backend = WorkQueueBackend(workers=workers, spawn=spawn,
                                   depth=args.depth,
                                   compress=not args.no_compress)
    execution = Execution(jobs=jobs, backend=backend, cache=cache,
                          csv_dir=args.csv_dir, progress=True,
                          profile="verify" if args.verify else None)

    quick = not args.full
    t0 = time.time()

    def run_selected() -> None:
        for mod in selected:
            print("\n" + "#" * 72)
            print("#", mod.__name__)
            print("#" * 72)
            mod.main(quick=quick, seed=args.seed, execution=execution)

    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            run_selected()
        finally:
            profiler.disable()
            print("\n" + "=" * 72)
            print("cProfile: top 25 by cumulative time")
            print("=" * 72)
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(25)
            if args.profile is not True:
                stats.dump_stats(args.profile)
                print(f"pstats dump written to {args.profile} "
                      "(inspect with: python -m pstats)")
    else:
        run_selected()
    how = (f"workqueue x{backend.parallelism()}" if backend is not None
           else f"jobs={jobs}")
    line = (
        f"\n{len(selected)}/{len(ALL)} experiments done in "
        f"{time.time() - t0:.0f}s "
        f"({'quick' if quick else 'full'} settings, {how}"
    )
    if cache is not None:
        line += f", cache {cache.hits} hits / {cache.misses} misses"
    print(line + ")")
    if args.expect_no_misses and cache is not None and cache.misses:
        raise SystemExit(
            f"--expect-no-misses: cache missed {cache.misses} time(s) — "
            "a re-run with identical specs should replay entirely from "
            "the cache"
        )


if __name__ == "__main__":
    main()
