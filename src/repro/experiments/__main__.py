"""Run every experiment and print every table:

    python -m repro.experiments            # quick settings (~10 min)
    python -m repro.experiments --full     # longer, lower-variance runs
"""

from __future__ import annotations

import sys
import time

from . import (
    abl_granularity,
    abl_links,
    abl_sync_async,
    exp_availability,
    exp_balancing,
    exp_cf_failover,
    exp_coherency,
    exp_dss,
    exp_generic_resources,
    exp_goal_mode,
    exp_growth,
    exp_listqueue,
    exp_locktable,
    exp_web,
    fig3_scalability,
    tab1_overhead,
)

ALL = (
    fig3_scalability,
    tab1_overhead,
    exp_balancing,
    exp_availability,
    exp_cf_failover,
    exp_locktable,
    exp_coherency,
    exp_growth,
    exp_listqueue,
    exp_generic_resources,
    exp_goal_mode,
    exp_web,
    abl_sync_async,
    abl_links,
    abl_granularity,
    exp_dss,
)


def main() -> None:
    quick = "--full" not in sys.argv
    t0 = time.time()
    for mod in ALL:
        print("\n" + "#" * 72)
        print("#", mod.__name__)
        print("#" * 72)
        mod.main(quick=quick)
    print(f"\nall {len(ALL)} experiments done in {time.time() - t0:.0f}s "
          f"({'quick' if quick else 'full'} settings)")


if __name__ == "__main__":
    main()
