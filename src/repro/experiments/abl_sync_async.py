"""ABL-SYNC — ablation: synchronous vs asynchronous CF commands (§3.3).

The paper's design choice: "Commands to the CF can be executed
synchronously or asynchronously, with cpu-synchronous command completion
times measured in micro-seconds, thereby avoiding the asynchronous
execution overheads associated with task switching and processor cache
disruptions."

We issue the same lock-request stream both ways and compare requester CPU
per operation and end-to-end latency, then sweep link latency to find the
crossover where async starts to pay (long links make spinning expensive —
the trade the real product exposes as a heuristic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cf.commands import CfPort
from ..cf.facility import CouplingFacility
from ..cf.lock import LockMode, LockStructure
from ..config import CfConfig, LinkConfig, SysplexConfig
from ..hardware.links import LinkSet
from ..hardware.system import SystemNode
from ..runspec import RunSpec
from ..simkernel import Simulator, Tally
from .common import Execution, print_rows, sweep

__all__ = ["run_sync_async", "sync_async_specs", "main"]

CASE_RUNNER = "repro.experiments.abl_sync_async:run_case_spec"

LATENCIES = (2e-6, 10e-6, 50e-6, 200e-6)


def sync_async_specs(latencies: Sequence[float] = LATENCIES,
                     n_ops: int = 300) -> List[RunSpec]:
    """Declare a (sync, async) measurement pair per link latency.

    These probes build their own bare Simulator + CF, so the specs carry
    no SysplexConfig — everything lives in ``params``.
    """
    return [
        RunSpec(
            runner=CASE_RUNNER, config=None,
            label=f"{mode}-{1e6 * lat:.0f}us",
            params={"mode": mode, "link_latency": lat, "n_ops": n_ops},
        )
        for lat in latencies
        for mode in ("sync", "async")
    ]


def run_case_spec(spec: RunSpec) -> dict:
    """Scenario runner: one command mode at one link latency."""
    mode = spec.params["mode"]
    link_latency = spec.params["link_latency"]
    n_ops = spec.params["n_ops"]
    sim = Simulator()
    config = SysplexConfig(n_systems=1)
    node = SystemNode(sim, config, 0)
    cf_cfg = CfConfig()
    cf = CouplingFacility(sim, cf_cfg)
    links = LinkSet(sim, LinkConfig(latency=link_latency))
    port = CfPort(node, cf, links, cf_cfg)
    structure = LockStructure("L", 1 << 16)
    cf.allocate(structure)
    conn = structure.connect(node.name)
    latency = Tally("lat")

    def driver():
        for i in range(n_ops):
            t0 = sim.now
            def fn(i=i):
                return structure.request(conn, f"r{i}", LockMode.EXCL)
            if mode == "sync":
                yield from port.sync(fn)
            else:
                yield from port.async_(fn)
            latency.record(sim.now - t0)

    sim.process(driver())
    sim.run(until=60)
    return {
        "mode": mode,
        "link_latency_us": 1e6 * link_latency,
        "cpu_us_per_op": 1e6 * node.cpu.busy_seconds / n_ops,
        "latency_us": 1e6 * latency.mean,
    }


def run_sync_async(latencies: Sequence[float] = LATENCIES,
                   execution: Optional[Execution] = None) -> Dict:
    rows = sweep(sync_async_specs(latencies), execution=execution)
    # find the crossover: smallest latency where async burns less CPU
    crossover = None
    for lat in latencies:
        s = next(r for r in rows if r["mode"] == "sync"
                 and r["link_latency_us"] == 1e6 * lat)
        a = next(r for r in rows if r["mode"] == "async"
                 and r["link_latency_us"] == 1e6 * lat)
        if a["cpu_us_per_op"] < s["cpu_us_per_op"] and crossover is None:
            crossover = 1e6 * lat
    return {"rows": rows, "summary": {"async_wins_at_us": crossover}}


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_sync_async(execution=execution)
    print_rows(
        "ABL-SYNC — sync vs async CF command execution",
        out["rows"],
        ["mode", "link_latency_us", "cpu_us_per_op", "latency_us"],
        execution=execution,
    )
    c = out["summary"]["async_wins_at_us"]
    print(f"\nasync first wins on CPU at link latency: "
          f"{c if c is not None else '>200'} us "
          f"(paper: sync is right for microsecond links)")
    return out


if __name__ == "__main__":
    main(quick=False)
