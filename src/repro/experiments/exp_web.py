"""EXP-WEB — TCP/IP single system image (paper §6 future work).

"Single system image for native TCP/IP networks, MVS servers to the
World-Wide Web" — implemented here as the Sysplex Distributor that
shipped for exactly this.  A web workload (persistent connections, mixed
cached/uncached content) drives a 4-system sysplex under three
connection-placement schemes, and one backend system dies mid-run:

* **dns-round-robin** — clients pin to an address; the dead address keeps
  being resolved until the TTL expires (connections fail meanwhile);
* **sysplex-distributor** — the VIPA owner routes every new connection by
  WLM weight and around dead stacks instantly;
* **distributor-killed** — the distributing stack itself dies: a backup
  takes the VIPA over and service resumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..subsystems.tcpip import (
    DnsRoundRobin,
    SysplexDistributor,
    TcpStack,
    WebConfig,
    WebWorkload,
)
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_web", "web_specs", "main"]

CASE_RUNNER = "repro.experiments.exp_web:run_case_spec"

CASES = (
    ("dns-round-robin", 2),
    ("sysplex-distributor", 2),
    ("distributor-killed", 0),
)


def web_specs(n_systems: int = 4, rate: float = 700.0,
              duration: float = 1.8, warmup: float = 0.4,
              seed: int = 1) -> List[RunSpec]:
    """Declare the three connection-placement schemes."""
    return [
        RunSpec(
            runner=CASE_RUNNER,
            config=scaled_config(n_systems, seed=seed),
            duration=duration, warmup=warmup, label=scheme,
            params={"scheme": scheme, "kill_index": kill_index,
                    "rate": rate},
        )
        for scheme, kill_index in CASES
    ]


def run_case_spec(spec: RunSpec) -> dict:
    """Scenario runner: one placement scheme under a backend loss."""
    scheme = spec.params["scheme"]
    kill_index = spec.params["kill_index"]
    rate = spec.params["rate"]
    duration, warmup = spec.duration, spec.warmup
    plex, gen = build_loaded_sysplex(
        spec.config, options=spec.options.replace(terminals_per_system=0))
    web_cfg = WebConfig()
    stacks = [
        TcpStack(plex.sim, inst.node, plex.farm, web_cfg,
                 plex.streams.stream(f"web-{name}"), plex.metrics)
        for name, inst in plex.instances.items()
    ]
    if scheme == "dns-round-robin":
        router = DnsRoundRobin(plex.sim, stacks, web_cfg, plex.metrics)
    else:
        router = SysplexDistributor(plex.sim, stacks, plex.wlm, web_cfg,
                                    plex.metrics)
    workload = WebWorkload(plex.sim, router, plex.streams.stream("webgen"))
    workload.start(rate)

    kill_at = warmup + duration / 3
    plex.sim.call_at(kill_at, plex.nodes[kill_index].fail)

    plex.sim.run(until=warmup)
    workload.responses.reset()
    served0 = plex.metrics.counter("web.requests").count
    refused0 = plex.metrics.counter("web.conn_refused").count
    broken0 = plex.metrics.counter("web.conn_broken").count
    plex.sim.run(until=warmup + duration)

    served = plex.metrics.counter("web.requests").count - served0
    refused = plex.metrics.counter("web.conn_refused").count - refused0
    broken = plex.metrics.counter("web.conn_broken").count - broken0
    rt = workload.responses
    return {
        "scheme": scheme,
        "killed": plex.nodes[kill_index].name
        + (" (distributor)" if scheme == "distributor-killed" else ""),
        "requests_per_s": served / duration,
        "p95_ms": 1e3 * rt.percentile(95),
        "conns_refused": refused,
        "conns_broken": broken,
        "takeovers": getattr(router, "takeovers", 0),
    }


def run_web(n_systems: int = 4, rate: float = 700.0,
            duration: float = 1.8, warmup: float = 0.4,
            seed: int = 1,
            execution: Optional[Execution] = None) -> Dict:
    rows = sweep(web_specs(n_systems, rate, duration, warmup, seed),
                 execution=execution)
    return {"rows": rows}


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_web(duration=1.8 if quick else 4.0, seed=seed,
                  execution=execution)
    print_rows(
        "EXP-WEB — web serving: connection placement under a backend loss",
        out["rows"],
        ["scheme", "killed", "requests_per_s", "p95_ms", "conns_refused",
         "conns_broken", "takeovers"],
        execution=execution,
    )
    return out


if __name__ == "__main__":
    main(quick=False)
