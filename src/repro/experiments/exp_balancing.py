"""EXP-BAL — dynamic workload balancing (paper §2.3).

Drives the data-sharing sysplex and the data-partitioning baseline with
the *same* tuned workload and the same rotating demand-hotspot trace:

* the workload has **partition affinity** — stream *i* predominantly
  touches the *i*-th data segment, exactly how a shared-nothing system
  is tuned ("match each system node's processing capacity to the
  projected workload demand for access to data owned by that given
  system");
* the trace holds total offered load constant but rotates which stream
  surges ("significant fluctuations in the demand ... spikes and troughs").

The partitioned cluster must run stream *i*'s surge on the one system
owning segment *i*; the sysplex spreads the same surge across everyone.
Reported: throughput, mean/p95 response, utilization spread (max−min;
small = balanced), and lost transactions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..baselines.partitioned import PartitionedCluster
from ..options import RunOptions
from ..runspec import RunSpec
from ..sysplex import Sysplex
from ..workloads.oltp import OltpGenerator
from ..workloads.traces import rotating_hotspot_trace
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_balancing", "balancing_specs", "main"]

#: Dotted runner path for one architecture-under-hotspot case.
CASE_RUNNER = "repro.experiments.exp_balancing:run_case_spec"


def _make_generator(sim_owner, config, trace, router):
    return OltpGenerator(
        sim_owner.sim, config.oltp, config.db.n_pages, config.n_systems,
        sim_owner.streams.stream("oltp"), router=router, trace=trace,
        partition_affinity=True,
    )


def _prewarm_partitioned(cluster, gen, config):
    for i, stack in enumerate(cluster._stacks):
        offset, seg_sampler = gen._segments[i]
        hot = [offset + p for p in seg_sampler.hottest(config.db.buffer_pages)]
        stack["buffers"].prewarm(hot)


def _prewarm_sysplex(plex, gen, config):
    per_seg = config.db.buffer_pages // len(gen._segments)
    hot = [
        offset + p
        for offset, seg in gen._segments
        for p in seg.hottest(per_seg)
    ]
    for inst in plex.instances.values():
        inst.buffers.prewarm(hot)


def _measure(owner, gen, offered, duration, warmup, label):
    gen.start_open_loop(offered)
    owner.sim.run(until=warmup)
    owner.reset_measurement()
    owner.sim.run(until=warmup + duration)
    return owner.collect(label)


def run_case_spec(spec: RunSpec):
    """Scenario runner: one architecture under the rotating hotspot.

    ``spec.params["case"]`` selects ``"partitioned"`` or a sysplex router
    policy; the demand trace is rebuilt from the spec so every case sees
    the same spikes-and-troughs schedule.
    """
    case = spec.params["case"]
    spike_factor = spec.params["spike_factor"]
    config = spec.config
    step = 0.3
    n_steps = int((spec.duration + spec.warmup) / step) + 2
    trace = rotating_hotspot_trace(config.n_systems, step, n_steps,
                                   spike_factor)
    if case == "partitioned":
        owner = PartitionedCluster(config)
        gen = _make_generator(owner, config, trace, owner)
        _prewarm_partitioned(owner, gen, config)
    else:
        owner = Sysplex(config, router_policy=case)
        gen = _make_generator(owner, config, trace, owner.router)
        _prewarm_sysplex(owner, gen, config)
    return _measure(owner, gen, spec.offered_tps_per_system, spec.duration,
                    spec.warmup, spec.label)


def balancing_specs(n_systems: int = 4,
                    offered_per_system: float = 220.0,
                    spike_factor: float = 3.0,
                    duration: float = 1.2,
                    warmup: float = 0.4,
                    seed: int = 1) -> List[RunSpec]:
    """Declare the four architecture cases as one sweep."""
    specs = [RunSpec(
        runner=CASE_RUNNER,
        config=scaled_config(n_systems, data_sharing=False, seed=seed),
        duration=duration, warmup=warmup,
        options=RunOptions(offered_tps_per_system=offered_per_system),
        label="partitioned",
        params={"case": "partitioned", "spike_factor": spike_factor},
    )]
    specs += [
        RunSpec(
            runner=CASE_RUNNER,
            config=scaled_config(n_systems, seed=seed),
            duration=duration, warmup=warmup,
            options=RunOptions(offered_tps_per_system=offered_per_system),
            label=f"sysplex-{policy}",
            params={"case": policy, "spike_factor": spike_factor},
        )
        for policy in ("local", "threshold", "wlm")
    ]
    return specs


def run_balancing(n_systems: int = 4,
                  offered_per_system: float = 220.0,
                  spike_factor: float = 3.0,
                  duration: float = 1.2,
                  warmup: float = 0.4,
                  seed: int = 1,
                  execution: Optional[Execution] = None) -> Dict:
    """Compare architectures under the same skewed, shifting demand."""
    results = sweep(balancing_specs(n_systems, offered_per_system,
                                    spike_factor, duration, warmup, seed),
                    execution=execution)
    rows = [
        {
            "architecture": r.label,
            "throughput": r.throughput,
            "mean_rt_ms": 1e3 * r.response_mean,
            "p95_ms": 1e3 * r.response_p95,
            "util_spread": round(r.utilization_spread, 3),
            "failed": r.extras.get("failed", 0.0),
        }
        for r in results
    ]
    return {"rows": rows}


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_balancing(
        duration=0.9 if quick else 2.4, warmup=0.3 if quick else 0.8,
        seed=seed, execution=execution,
    )
    print_rows(
        "EXP-BAL — balancing under a rotating demand hotspot",
        out["rows"],
        ["architecture", "throughput", "mean_rt_ms", "p95_ms",
         "util_spread", "failed"],
        execution=execution,
    )
    return out


if __name__ == "__main__":
    main(quick=False)
