"""ABL-DSS — decision-support query parallelism (paper §2.3).

"Parallelism can be attained by breaking up complex queries into smaller
sub-queries, and distributing the component queries across multiple
processors (cpu) within a single system or across multiple systems in a
parallel sysplex."

One large scan query is decomposed at parallelism 1..K, each point on an
idle 8-system sysplex; we report elapsed time, speedup, and efficiency —
the expected near-linear region followed by the coordination-bound tail.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..workloads.dss import Query, QuerySplitter
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_dss", "dss_specs", "main"]

PARALLELISM = (1, 2, 4, 8, 16, 32)

CASE_RUNNER = "repro.experiments.exp_dss:run_case_spec"


def dss_specs(n_systems: int = 8,
              scan_pages: int = 60_000,
              parallelism: Sequence[int] = PARALLELISM,
              seed: int = 1) -> List[RunSpec]:
    """Declare one decomposition measurement per parallelism degree."""
    return [
        RunSpec(
            runner=CASE_RUNNER,
            config=scaled_config(n_systems, seed=seed),
            label=f"dss-p{p}",
            params={"parallelism": p, "scan_pages": scan_pages},
        )
        for p in parallelism
    ]


def run_case_spec(spec: RunSpec) -> dict:
    """Scenario runner: one scan query at one decomposition degree."""
    p = spec.params["parallelism"]
    scan_pages = spec.params["scan_pages"]
    config = spec.config
    plex, gen = build_loaded_sysplex(
        config, options=spec.options.replace(terminals_per_system=0))
    splitter = QuerySplitter(plex.sim, plex.nodes, plex.farm, plex.wlm,
                             config.xcf)
    elapsed: List[float] = []

    def run_one():
        q = Query(query_id=p, first_page=0, n_pages=scan_pages)
        t = yield from splitter.run_query(q, parallelism=p)
        elapsed.append(t)

    proc = plex.sim.process(run_one())
    plex.sim.run(until=proc)
    return {"parallelism": p, "elapsed_s": elapsed[-1]}


def run_dss(n_systems: int = 8,
            scan_pages: int = 60_000,
            parallelism: Sequence[int] = PARALLELISM,
            seed: int = 1,
            execution: Optional[Execution] = None) -> Dict:
    points = sweep(dss_specs(n_systems, scan_pages, parallelism, seed),
                   execution=execution)
    t_base = points[0]["elapsed_s"]
    rows: List[dict] = []
    for point in points:
        t = point["elapsed_s"]
        speedup = t_base / t if t else 0.0
        rows.append(
            {
                "parallelism": point["parallelism"],
                "elapsed_s": t,
                "speedup": round(speedup, 2),
                "efficiency": round(speedup / point["parallelism"], 3),
            }
        )
    return {"rows": rows}


def check_shape(rows: List[dict]) -> List[str]:
    problems = []
    speedups = [r["speedup"] for r in rows]
    if not all(b >= a for a, b in zip(speedups, speedups[1:])):
        # allow the very last point to flatten, but never regress early
        if any(b < a * 0.95 for a, b in zip(speedups[:-1], speedups[1:-1])):
            problems.append(f"speedup regresses: {speedups}")
    if speedups[-1] < 3.0:
        problems.append(f"no meaningful parallel speedup: {speedups}")
    effs = [r["efficiency"] for r in rows]
    if not all(b <= a + 0.02 for a, b in zip(effs, effs[1:])):
        problems.append(f"efficiency should decline with parallelism: {effs}")
    return problems


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_dss(scan_pages=30_000 if quick else 120_000, seed=seed,
                  execution=execution)
    print_rows(
        "ABL-DSS — parallel query decomposition speedup (8 systems)",
        out["rows"],
        ["parallelism", "elapsed_s", "speedup", "efficiency"],
        execution=execution,
    )
    problems = check_shape(out["rows"])
    print("\nshape check:", "OK" if not problems else problems)
    return out


if __name__ == "__main__":
    main(quick=False)
