"""TAB1 — the cost of data sharing (paper §4's two measured claims).

(a) "the initial data-sharing cost associated with the transition from a
single-system non-data-sharing configuration to a two-system data-sharing
configuration was measured at less than 18%"

(b) "an incremental overhead cost of less than half a percent for each
system added to the configuration"

We measure CPU-seconds per committed transaction (the ITR view the
measurements in [8,9] used) at each configuration size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..options import RunOptions
from ..runspec import RunSpec
from ..trace_analysis import CATEGORIES, attribution_delta
from .common import QUICK, Execution, print_rows, scaled_config
from .common import sweep as _sweep

__all__ = ["run_tab1", "tab1_specs", "main"]

SWEEP = (2, 4, 8, 16, 24, 32)


def tab1_specs(sweep_points: Sequence[int] = SWEEP,
               duration: float = QUICK["duration"],
               warmup: float = QUICK["warmup"],
               seed: int = 1,
               tracing: bool = True) -> List[RunSpec]:
    """Declare the §4 sweep: the non-sharing base, then each DS size."""
    specs = [RunSpec(
        config=scaled_config(1, 1, data_sharing=False, seed=seed),
        duration=duration, warmup=warmup, label="1-system no-DS",
        options=RunOptions(tracing=tracing),
    )]
    specs += [
        RunSpec(
            config=scaled_config(n, 1, seed=seed),
            duration=duration, warmup=warmup, label=f"{n}-system DS",
            options=RunOptions(tracing=tracing and n == 2),
        )
        for n in sweep_points
    ]
    return specs


def cpu_per_txn(result, engines: int) -> float:
    if result.completed == 0:
        return float("nan")
    return result.mean_utilization * engines * result.duration / result.completed


def run_tab1(sweep: Sequence[int] = SWEEP,
             duration: float = QUICK["duration"],
             warmup: float = QUICK["warmup"],
             seed: int = 1,
             tracing: bool = True,
             execution: Optional[Execution] = None) -> Dict:
    """Measure the §4 data-sharing cost sweep.

    With ``tracing`` on (the default), the 1-system base and the 2-system
    point run with the span tracer attached, and the result carries an
    ``attribution`` section: where the 1→2 transition cost lands across
    the transaction lifecycle (dispatch / lock / coherency / io / commit
    / other).  The tracer is passive, so traced runs produce the same
    numbers as untraced ones.
    """
    results = _sweep(tab1_specs(sweep, duration, warmup, seed, tracing),
                     execution=execution)
    base, sweep_results = results[0], results[1:]
    base_cpu = cpu_per_txn(base, 1)
    rows = [
        {
            "systems": 1,
            "sharing": "no",
            "cpu_ms_per_txn": 1e3 * base_cpu,
            "overhead_vs_base_pct": 0.0,
            "throughput": base.throughput,
        }
    ]
    prev_cpu = None
    prev_n = None
    increments: List[float] = []
    two_way_extras: Optional[Dict[str, float]] = None
    for n, r in zip(sweep, sweep_results):
        if n == 2:
            two_way_extras = r.extras
        cpu = cpu_per_txn(r, n)
        row = {
            "systems": n,
            "sharing": "yes",
            "cpu_ms_per_txn": 1e3 * cpu,
            "overhead_vs_base_pct": 100 * (cpu / base_cpu - 1),
            "throughput": r.throughput,
        }
        if prev_cpu is not None:
            per_system = 100 * (cpu / prev_cpu - 1) / (n - prev_n)
            row["incremental_pct_per_system"] = per_system
            increments.append(per_system)
        rows.append(row)
        prev_cpu, prev_n = cpu, n

    two_way = next(r for r in rows if r["systems"] == 2)
    summary = {
        "transition_cost_pct": two_way["overhead_vs_base_pct"],
        "paper_transition_claim_pct": 18.0,
        "mean_incremental_pct_per_system": (
            sum(increments) / len(increments) if increments else 0.0
        ),
        "paper_incremental_claim_pct": 0.5,
    }
    attribution = None
    if tracing and two_way_extras is not None:
        attribution = {
            "base": _trace_keys(base.extras),
            "two_way": _trace_keys(two_way_extras),
            "delta_us": attribution_delta(base.extras, two_way_extras),
        }
    return {"rows": rows, "summary": summary, "attribution": attribution}


def _trace_keys(extras: Dict[str, float]) -> Dict[str, float]:
    return {k: v for k, v in extras.items() if k.startswith("trace.")}


def print_attribution(attribution: Optional[Dict]) -> None:
    """Render the 1→2 transition attribution as a per-category table."""
    if not attribution:
        return
    base = attribution["base"]
    two = attribution["two_way"]
    delta = attribution["delta_us"]
    print("\nWhere the 1->2 response time goes (per-txn, µs):")
    print(f"  {'category':<10} {'1-sys':>9} {'2-sys':>9} "
          f"{'delta':>9} {'2-sys %':>8}")
    for cat in CATEGORIES:
        print(
            f"  {cat:<10}"
            f" {base.get(f'trace.{cat}_us', 0.0):>9.1f}"
            f" {two.get(f'trace.{cat}_us', 0.0):>9.1f}"
            f" {delta.get(cat, 0.0):>+9.1f}"
            f" {two.get(f'trace.{cat}_pct', 0.0):>7.1f}%"
        )
    print(
        f"  {'total':<10}"
        f" {base.get('trace.rt_us', 0.0):>9.1f}"
        f" {two.get('trace.rt_us', 0.0):>9.1f}"
        f" {delta.get('total', 0.0):>+9.1f}"
    )
    print(
        f"  CF ops/txn: {base.get('trace.cf_ops_per_txn', 0.0):.1f} -> "
        f"{two.get('trace.cf_ops_per_txn', 0.0):.1f}"
        f"  (CF time {two.get('trace.cf_us', 0.0):.1f} µs/txn)"
    )


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    kw = QUICK if quick else {"duration": 1.2, "warmup": 0.6}
    out = run_tab1(duration=kw["duration"], warmup=kw["warmup"],
                   seed=seed, execution=execution)
    print_rows(
        "Table 1 — cost of data sharing (CPU per transaction)",
        out["rows"],
        ["systems", "sharing", "cpu_ms_per_txn", "overhead_vs_base_pct",
         "incremental_pct_per_system", "throughput"],
        execution=execution,
    )
    s = out["summary"]
    print(
        f"\n1->2 transition: {s['transition_cost_pct']:.1f}% "
        f"(paper: <{s['paper_transition_claim_pct']:.0f}%)\n"
        f"per-added-system: {s['mean_incremental_pct_per_system']:.2f}% "
        f"(paper: <{s['paper_incremental_claim_pct']}%)"
    )
    print_attribution(out["attribution"])
    return out


if __name__ == "__main__":
    main(quick=False)
