"""TAB1 — the cost of data sharing (paper §4's two measured claims).

(a) "the initial data-sharing cost associated with the transition from a
single-system non-data-sharing configuration to a two-system data-sharing
configuration was measured at less than 18%"

(b) "an incremental overhead cost of less than half a percent for each
system added to the configuration"

We measure CPU-seconds per committed transaction (the ITR view the
measurements in [8,9] used) at each configuration size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..runner import run_oltp
from .common import QUICK, print_rows, scaled_config

__all__ = ["run_tab1", "main"]

SWEEP = (2, 4, 8, 16, 24, 32)


def cpu_per_txn(result, engines: int) -> float:
    if result.completed == 0:
        return float("nan")
    return result.mean_utilization * engines * result.duration / result.completed


def run_tab1(sweep: Sequence[int] = SWEEP,
             duration: float = QUICK["duration"],
             warmup: float = QUICK["warmup"],
             seed: int = 1) -> Dict:
    base = run_oltp(
        scaled_config(1, 1, data_sharing=False, seed=seed),
        duration=duration, warmup=warmup, label="1-system no-DS",
    )
    base_cpu = cpu_per_txn(base, 1)
    rows = [
        {
            "systems": 1,
            "sharing": "no",
            "cpu_ms_per_txn": 1e3 * base_cpu,
            "overhead_vs_base_pct": 0.0,
            "throughput": base.throughput,
        }
    ]
    prev_cpu = None
    prev_n = None
    increments: List[float] = []
    for n in sweep:
        r = run_oltp(
            scaled_config(n, 1, seed=seed),
            duration=duration, warmup=warmup, label=f"{n}-system DS",
        )
        cpu = cpu_per_txn(r, n)
        row = {
            "systems": n,
            "sharing": "yes",
            "cpu_ms_per_txn": 1e3 * cpu,
            "overhead_vs_base_pct": 100 * (cpu / base_cpu - 1),
            "throughput": r.throughput,
        }
        if prev_cpu is not None:
            per_system = 100 * (cpu / prev_cpu - 1) / (n - prev_n)
            row["incremental_pct_per_system"] = per_system
            increments.append(per_system)
        rows.append(row)
        prev_cpu, prev_n = cpu, n

    two_way = next(r for r in rows if r["systems"] == 2)
    summary = {
        "transition_cost_pct": two_way["overhead_vs_base_pct"],
        "paper_transition_claim_pct": 18.0,
        "mean_incremental_pct_per_system": (
            sum(increments) / len(increments) if increments else 0.0
        ),
        "paper_incremental_claim_pct": 0.5,
    }
    return {"rows": rows, "summary": summary}


def main(quick: bool = True) -> Dict:
    kw = QUICK if quick else {"duration": 1.2, "warmup": 0.6}
    out = run_tab1(duration=kw["duration"], warmup=kw["warmup"])
    print_rows(
        "Table 1 — cost of data sharing (CPU per transaction)",
        out["rows"],
        ["systems", "sharing", "cpu_ms_per_txn", "overhead_vs_base_pct",
         "incremental_pct_per_system", "throughput"],
    )
    s = out["summary"]
    print(
        f"\n1->2 transition: {s['transition_cost_pct']:.1f}% "
        f"(paper: <{s['paper_transition_claim_pct']:.0f}%)\n"
        f"per-added-system: {s['mean_incremental_pct_per_system']:.2f}% "
        f"(paper: <{s['paper_incremental_claim_pct']}%)"
    )
    return out


if __name__ == "__main__":
    main(quick=False)
