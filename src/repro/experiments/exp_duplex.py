"""EXP-DUPLEX — structure duplexing: steady-state cost vs. recovery time.

Paper §2.5/§3.3: a CF failure forces every structure it hosted through
recovery.  Simplex structures take the *rebuild* path — reconstruct a
fresh instance from the connectors' local state, seconds of outage for
the lock/cache/list users.  System-managed duplexing buys that time
back: every mutating command also runs against a secondary instance in
a second CF (extra link + service time on the write path), so the same
failure becomes a *duplex switch* — promote the surviving secondary in
place, no state replay.

This experiment runs the identical dual-CF failure scenario as
EXP-CFFAIL under ``duplex="none"`` and ``duplex="all"`` and reports both
sides of the trade-off:

* **overhead** — steady-state throughput before the failure (the
  duplexed-write protocol taxes every commit);
* **MTTR** — the SFM incident log's measured per-structure recovery
  times (switch vs. rebuild), plus lost work and the throughput dip.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import CfConfig
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_duplex", "duplex_spec", "duplex_specs", "main"]

CASE_RUNNER = "repro.experiments.exp_duplex:run_duplex_spec"


def duplex_spec(n_systems: int = 4,
                window: float = 0.3,
                seed: int = 1,
                duplex: str = "none") -> RunSpec:
    """Declare one dual-CF loss scenario under a duplexing policy."""
    return RunSpec(
        runner=CASE_RUNNER,
        config=scaled_config(n_systems, seed=seed, n_cfs=2,
                             cf=CfConfig(duplex=duplex)),
        label=f"duplex-{duplex}-{n_systems}sys",
        params={"window": window},
    )


def duplex_specs(n_systems: int = 4, window: float = 0.3,
                 seed: int = 1) -> List[RunSpec]:
    """The trade-off curve: the same failure under every duplex policy.

    Partial policies (just the lock / cache / list class) pay the
    duplexed-write tax only on that class's commands and switch only
    that structure — the rest still rebuild.
    """
    return [
        duplex_spec(n_systems, window, seed, duplex=policy)
        for policy in ("none", "lock", "cache", "list", "all")
    ]


def run_duplex_spec(spec: RunSpec) -> Dict:
    """Scenario runner: lose the primary CF mid-run, watch recovery.

    Identical shape to EXP-CFFAIL's runner (same fail time, same 22
    windows) so the two policies differ *only* in the recovery path the
    failure takes; the SFM incident log carries the measured recovery
    times either way.
    """
    config = spec.config
    window = spec.params["window"]
    plex, gen = build_loaded_sysplex(config, options=spec.options)
    fail_at = 4 * window
    # with duplexing on, every primary lives in the first CF, so failing
    # the lock structure's facility hits all primaries at once — the
    # exact scenario EXP-CFFAIL rebuilds its way out of
    plex.sim.call_at(fail_at,
                     lambda: plex.xes.find("IRLMLOCK1").facility.fail())

    counter = plex.metrics.counter("txn.completed")
    failed = plex.metrics.counter("txn.failed")
    timeline: List[dict] = []
    prev = prev_f = 0
    for k in range(1, 23):
        plex.sim.run(until=k * window)
        c, f = counter.count, failed.count
        timeline.append(
            {
                "t": round(k * window, 2),
                "throughput": (c - prev) / window,
                "lost": f - prev_f,
                "phase": "pre" if k * window <= fail_at else "post",
            }
        )
        prev, prev_f = c, f

    pre = [w["throughput"] for w in timeline if w["phase"] == "pre"]
    post = [w["throughput"] for w in timeline[-5:]]
    sfm = plex.sfm.report()
    recoveries = [i for i in sfm["incidents"]
                  if i["kind"] in ("switch", "rebuild")]
    return {
        "timeline": timeline,
        "sfm": sfm,
        "summary": {
            "duplex": config.cf.duplex,
            "fail_at": fail_at,
            "switches": plex.metrics.counter("cf.switches").count,
            "rebuilds": plex.metrics.counter("cf.rebuilds").count,
            "reestablished": (
                plex.metrics.counter("duplex.reestablished").count
            ),
            "pre_tput": sum(pre) / len(pre),
            "post_tput": sum(post) / len(post),
            "lost_total": failed.count,
            "recovery_ms_max": max(
                (i["recovery_ms"] for i in recoveries), default=0.0
            ),
            "slo_met": all(i["slo_met"] for i in recoveries),
        },
    }


def run_duplex(n_systems: int = 4, window: float = 0.3, seed: int = 1,
               execution: Optional[Execution] = None) -> List[Dict]:
    return sweep(duplex_specs(n_systems, window, seed),
                 execution=execution)


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    outs = run_duplex(window=0.3 if quick else 0.5, seed=seed,
                      execution=execution)
    rows = []
    for out in outs:
        s = out["summary"]
        rows.append(
            {
                "duplex": s["duplex"],
                "pre_tput": round(s["pre_tput"], 1),
                "post_tput": round(s["post_tput"], 1),
                "lost": s["lost_total"],
                "switches": s["switches"],
                "rebuilds": s["rebuilds"],
                "recovery_ms": round(s["recovery_ms_max"], 2),
                "slo_met": s["slo_met"],
            }
        )
    print_rows(
        "EXP-DUPLEX — CF loss: duplex switch vs. structure rebuild",
        rows,
        ["duplex", "pre_tput", "post_tput", "lost", "switches",
         "rebuilds", "recovery_ms", "slo_met"],
        execution=execution,
    )
    simplex, duplexed = outs[0]["summary"], outs[-1]["summary"]
    overhead = 1.0 - (duplexed["pre_tput"] / simplex["pre_tput"]
                      if simplex["pre_tput"] else 1.0)
    speedup = (simplex["recovery_ms_max"] / duplexed["recovery_ms_max"]
               if duplexed["recovery_ms_max"] else float("inf"))
    print(
        f"\nduplexing costs {overhead:.1%} steady-state throughput and "
        f"recovers {speedup:.0f}x faster "
        f"({simplex['recovery_ms_max']:.0f} ms rebuild -> "
        f"{duplexed['recovery_ms_max']:.2f} ms switch)"
    )
    return {"rows": rows, "runs": outs}


if __name__ == "__main__":
    main(quick=False)
