"""EXP-GROW — granular, non-disruptive growth (paper §2.4).

Both architectures run at steady load, then a system is added mid-run:

* **Sysplex** — the new member joins non-disruptively; WLM drives work to
  it "at an increased rate ... until its utilization has reached
  steady-state".  No repartitioning, no outage.
* **Partitioned** — the database must be re-balanced across N+1 owners:
  an offline window proportional to the data moved, exactly the
  "considerable costs to re-partition the databases" the paper cites.

Reported: throughput timeline across the addition, the newcomer's
utilization ramp, and the partitioned baseline's outage window.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..baselines.partitioned import PartitionedCluster
from ..options import RunOptions
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..workloads.oltp import OltpGenerator
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_growth", "growth_specs", "main"]

SYSPLEX_RUNNER = "repro.experiments.exp_growth:run_sysplex_spec"
PARTITIONED_RUNNER = "repro.experiments.exp_growth:run_partitioned_spec"

N_WINDOWS = 16


def growth_specs(n_initial: int = 3,
                 offered_per_system: float = 250.0,
                 window: float = 0.4,
                 seed: int = 1) -> List[RunSpec]:
    """Declare the two architectures' mid-run-growth scenarios."""
    params = {"n_initial": n_initial, "window": window}
    return [
        RunSpec(
            runner=SYSPLEX_RUNNER,
            config=scaled_config(n_initial, seed=seed),
            options=RunOptions(mode="open",
                               offered_tps_per_system=offered_per_system,
                               router_policy="wlm"),
            label="growth-sysplex", params=params,
        ),
        RunSpec(
            runner=PARTITIONED_RUNNER,
            config=scaled_config(n_initial, data_sharing=False, seed=seed),
            options=RunOptions(mode="open",
                               offered_tps_per_system=offered_per_system),
            label="growth-partitioned", params=params,
        ),
    ]


def run_sysplex_spec(spec: RunSpec) -> Dict:
    """Scenario runner: a system joins the sysplex non-disruptively."""
    n_initial = spec.params["n_initial"]
    window = spec.params["window"]
    add_at = 4 * window
    plex, gen = build_loaded_sysplex(spec.config, options=spec.options)
    counter = plex.metrics.counter("txn.completed")
    timeline: List[dict] = []
    prev = 0
    new_inst = None
    for k in range(1, N_WINDOWS + 1):
        plex.sim.run(until=k * window)
        if new_inst is None and k * window >= add_at:
            new_inst = plex.add_system()
            # offered load rises with the new capacity (more users arrive)
            gen.n_systems = n_initial  # arrivals stay on original streams
        c = counter.count
        timeline.append(
            {
                "t": round(k * window, 2),
                "sysplex_tput": (c - prev) / window,
                "newcomer_util": (
                    round(plex.wlm.utilization(new_inst.node.name), 3)
                    if new_inst is not None else None
                ),
            }
        )
        prev = c
    return {"timeline": timeline, "add_at": add_at}


def run_partitioned_spec(spec: RunSpec) -> Dict:
    """Scenario runner: the shared-nothing cluster repartitions to grow."""
    n_initial = spec.params["n_initial"]
    window = spec.params["window"]
    add_at = 4 * window
    pconfig = spec.config
    cluster = PartitionedCluster(pconfig)
    pgen = OltpGenerator(
        cluster.sim, pconfig.oltp, pconfig.db.n_pages, n_initial,
        cluster.streams.stream("oltp"), router=cluster,
    )
    hot = pgen.sampler.hottest(pconfig.db.buffer_pages)
    for stack in cluster._stacks:
        stack["buffers"].prewarm(hot)
    pgen.start_open_loop(spec.offered_tps_per_system)
    pcounter = cluster.metrics.counter("txn.completed")
    timeline: List[dict] = []
    prev = 0
    outage = None
    for k in range(1, N_WINDOWS + 1):
        cluster.sim.run(until=k * window)
        if outage is None and k * window >= add_at:
            outage = cluster.add_system()
        c = pcounter.count
        timeline.append(
            {
                "t": round(k * window, 2),
                "partitioned_tput": (c - prev) / window,
            }
        )
        prev = c
    return {
        "timeline": timeline,
        "repartition_window_s": outage,
        "lost_txns": cluster.failed_txns,
    }


def run_growth(n_initial: int = 3,
               offered_per_system: float = 250.0,
               window: float = 0.4,
               seed: int = 1,
               execution: Optional[Execution] = None) -> Dict:
    add_at = 4 * window
    plex_out, part_out = sweep(
        growth_specs(n_initial, offered_per_system, window, seed),
        execution=execution,
    )
    plex_timeline = plex_out["timeline"]
    part_timeline = part_out["timeline"]
    sysplex_min = min(w["sysplex_tput"] for w in plex_timeline)
    timeline = [
        {**a, "partitioned_tput": b["partitioned_tput"]}
        for a, b in zip(plex_timeline, part_timeline)
    ]
    part_min = min(w["partitioned_tput"] for w in part_timeline
                   if w["t"] > add_at)
    return {
        "timeline": timeline,
        "summary": {
            "add_at": add_at,
            "sysplex_min_tput": sysplex_min,
            "partitioned_min_tput_after_add": part_min,
            "repartition_window_s": part_out["repartition_window_s"],
            "partitioned_lost_txns": part_out["lost_txns"],
            "newcomer_final_util": plex_timeline[-1]["newcomer_util"],
        },
    }


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_growth(window=0.3 if quick else 0.5, seed=seed,
                     execution=execution)
    print_rows(
        "EXP-GROW — adding a system mid-run (sysplex vs partitioned)",
        out["timeline"],
        ["t", "sysplex_tput", "newcomer_util", "partitioned_tput"],
        execution=execution,
    )
    s = out["summary"]
    print(
        f"\nsysplex min tput {s['sysplex_min_tput']:.0f}; partitioned "
        f"repartition window {s['repartition_window_s']:.2f}s losing "
        f"{s['partitioned_lost_txns']:.0f} transactions "
        f"(min tput after add {s['partitioned_min_tput_after_add']:.0f})"
    )
    return out


if __name__ == "__main__":
    main(quick=False)
