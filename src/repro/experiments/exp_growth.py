"""EXP-GROW — granular, non-disruptive growth (paper §2.4).

Both architectures run at steady load, then a system is added mid-run:

* **Sysplex** — the new member joins non-disruptively; WLM drives work to
  it "at an increased rate ... until its utilization has reached
  steady-state".  No repartitioning, no outage.
* **Partitioned** — the database must be re-balanced across N+1 owners:
  an offline window proportional to the data moved, exactly the
  "considerable costs to re-partition the databases" the paper cites.

Reported: throughput timeline across the addition, the newcomer's
utilization ramp, and the partitioned baseline's outage window.
"""

from __future__ import annotations

from typing import Dict, List

from ..baselines.partitioned import PartitionedCluster
from ..runner import build_loaded_sysplex
from ..workloads.oltp import OltpGenerator
from .common import print_rows, scaled_config

__all__ = ["run_growth", "main"]


def run_growth(n_initial: int = 3,
               offered_per_system: float = 250.0,
               window: float = 0.4,
               seed: int = 1) -> Dict:
    add_at = 4 * window
    n_windows = 16

    # --- sysplex ----------------------------------------------------------
    config = scaled_config(n_initial, seed=seed)
    plex, gen = build_loaded_sysplex(
        config, mode="open", offered_tps_per_system=offered_per_system,
        router_policy="wlm",
    )
    counter = plex.metrics.counter("txn.completed")
    plex_timeline: List[dict] = []
    prev = 0
    new_inst = None
    newcomer_util: List[float] = []
    for k in range(1, n_windows + 1):
        plex.sim.run(until=k * window)
        if new_inst is None and k * window >= add_at:
            new_inst = plex.add_system()
            # offered load rises with the new capacity (more users arrive)
            gen.n_systems = n_initial  # arrivals stay on original streams
        c = counter.count
        plex_timeline.append(
            {
                "t": round(k * window, 2),
                "sysplex_tput": (c - prev) / window,
                "newcomer_util": (
                    round(plex.wlm.utilization(new_inst.node.name), 3)
                    if new_inst is not None else None
                ),
            }
        )
        prev = c
    sysplex_min = min(w["sysplex_tput"] for w in plex_timeline)

    # --- partitioned ----------------------------------------------------------
    pconfig = scaled_config(n_initial, data_sharing=False, seed=seed)
    cluster = PartitionedCluster(pconfig)
    pgen = OltpGenerator(
        cluster.sim, pconfig.oltp, pconfig.db.n_pages, n_initial,
        cluster.streams.stream("oltp"), router=cluster,
    )
    hot = pgen.sampler.hottest(pconfig.db.buffer_pages)
    for stack in cluster._stacks:
        stack["buffers"].prewarm(hot)
    pgen.start_open_loop(offered_per_system)
    pcounter = cluster.metrics.counter("txn.completed")
    part_timeline: List[dict] = []
    prev = 0
    outage = None
    for k in range(1, n_windows + 1):
        cluster.sim.run(until=k * window)
        if outage is None and k * window >= add_at:
            outage = cluster.add_system()
        c = pcounter.count
        part_timeline.append(
            {
                "t": round(k * window, 2),
                "partitioned_tput": (c - prev) / window,
            }
        )
        prev = c

    timeline = [
        {**a, "partitioned_tput": b["partitioned_tput"]}
        for a, b in zip(plex_timeline, part_timeline)
    ]
    part_min = min(w["partitioned_tput"] for w in part_timeline
                   if w["t"] > add_at)
    return {
        "timeline": timeline,
        "summary": {
            "add_at": add_at,
            "sysplex_min_tput": sysplex_min,
            "partitioned_min_tput_after_add": part_min,
            "repartition_window_s": outage,
            "partitioned_lost_txns": cluster.failed_txns,
            "newcomer_final_util": plex_timeline[-1]["newcomer_util"],
        },
    }


def main(quick: bool = True) -> Dict:
    out = run_growth(window=0.3 if quick else 0.5)
    print_rows(
        "EXP-GROW — adding a system mid-run (sysplex vs partitioned)",
        out["timeline"],
        ["t", "sysplex_tput", "newcomer_util", "partitioned_tput"],
    )
    s = out["summary"]
    print(
        f"\nsysplex min tput {s['sysplex_min_tput']:.0f}; partitioned "
        f"repartition window {s['repartition_window_s']:.2f}s losing "
        f"{s['partitioned_lost_txns']:.0f} transactions "
        f"(min tput after add {s['partitioned_min_tput_after_add']:.0f})"
    )
    return out


if __name__ == "__main__":
    main(quick=False)
