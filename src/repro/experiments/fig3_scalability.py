"""FIG3 — effective vs. physical capacity (paper Figure 3).

Three series:

* **IDEAL** — effective capacity = physical capacity (the 1:1 line).
* **TCMP** — one system, 1..10 engines: the curve bends as the
  multiprocessor effect inflates every CPU-second.
* **Parallel Sysplex** — 1..32 single-engine data-sharing systems: after
  the one-time data-sharing cost the curve stays near-linear.

Effective capacity of a point is its saturated throughput normalized to
the 1-engine non-data-sharing system's throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..options import RunOptions
from ..runspec import RunSpec
from .common import QUICK, Execution, print_rows, scaled_config, sweep

__all__ = ["run_fig3", "fig3_specs", "main"]

TCMP_POINTS = (1, 2, 4, 6, 8, 10)
PLEX_POINTS = (1, 2, 4, 8, 12, 16, 24, 32)


def fig3_specs(tcmp_points: Sequence[int] = TCMP_POINTS,
               plex_points: Sequence[int] = PLEX_POINTS,
               duration: float = QUICK["duration"],
               warmup: float = QUICK["warmup"],
               seed: int = 1,
               tracing: bool = False) -> List[RunSpec]:
    """Declare the whole Figure-3 sweep: base, then TCMP, then sysplex."""
    specs = [RunSpec(
        config=scaled_config(1, 1, data_sharing=False, seed=seed),
        duration=duration, warmup=warmup, label="base-1cpu",
        options=RunOptions(tracing=tracing),
    )]
    specs += [
        RunSpec(
            config=scaled_config(1, n, data_sharing=False, seed=seed),
            duration=duration, warmup=warmup, label=f"tcmp-{n}",
            options=RunOptions(tracing=tracing),
        )
        for n in tcmp_points
    ]
    specs += [
        RunSpec(
            # a 1-system "sysplex" needs no CF traffic
            config=scaled_config(k, 1, data_sharing=k > 1, seed=seed),
            duration=duration, warmup=warmup, label=f"plex-{k}",
            options=RunOptions(tracing=tracing),
        )
        for k in plex_points
    ]
    return specs


def run_fig3(tcmp_points: Sequence[int] = TCMP_POINTS,
             plex_points: Sequence[int] = PLEX_POINTS,
             duration: float = QUICK["duration"],
             warmup: float = QUICK["warmup"],
             seed: int = 1,
             tracing: bool = False,
             execution: Optional[Execution] = None) -> Dict[str, List[dict]]:
    """Measure the three Figure-3 series; returns {series: rows}.

    ``tracing=True`` attaches the span tracer to every run so each row
    gains ``trace.*`` attribution extras; off by default because the
    sweep reaches 32 systems and the span log gets large.
    """
    results = sweep(fig3_specs(tcmp_points, plex_points, duration, warmup,
                               seed, tracing), execution=execution)
    base, tcmp_results = results[0], results[1:1 + len(tcmp_points)]
    plex_results = results[1 + len(tcmp_points):]
    base_tput = base.throughput
    # ITR (internal throughput rate) = completions per CPU-busy second —
    # the normalization IBM's sysplex measurements [8,9] report, which
    # factors out points that didn't reach identical saturation.
    base_itr = base.throughput / max(base.mean_utilization, 1e-9)

    def row(physical: float, result) -> dict:
        effective = result.throughput / base_tput if base_tput else 0.0
        itr = result.throughput / max(result.mean_utilization, 1e-9)
        itr_effective = itr / base_itr
        out = {
            "physical": physical,
            "effective": round(effective, 2),
            "efficiency": round(effective / physical, 3) if physical else 0,
            "itr_effective": round(itr_effective, 2),
            "itr_efficiency": (
                round(itr_effective / physical, 3) if physical else 0
            ),
            "throughput": result.throughput,
            "util": round(result.mean_utilization, 3),
        }
        if tracing:
            out.update(
                (k, v) for k, v in result.extras.items()
                if k.startswith("trace.")
            )
        return out

    tcmp_rows = [row(n, r) for n, r in zip(tcmp_points, tcmp_results)]
    plex_rows = [row(k, r) for k, r in zip(plex_points, plex_results)]

    ideal_rows = [
        {"physical": p, "effective": float(p), "efficiency": 1.0}
        for p in sorted(set(tcmp_points) | set(plex_points))
    ]
    return {"ideal": ideal_rows, "tcmp": tcmp_rows, "sysplex": plex_rows}


def check_shape(series: Dict[str, List[dict]]) -> List[str]:
    """Assertions on the paper's qualitative shape; returns violations."""
    problems = []
    tcmp = series["tcmp"]
    plex = series["sysplex"]
    # TCMP: ITR efficiency strictly degrades as engines are added
    effs = [r["itr_efficiency"] for r in tcmp]
    if not all(b < a for a, b in zip(effs, effs[1:])):
        problems.append(f"TCMP efficiency not monotonically degrading: {effs}")
    # Sysplex: stays near-linear — efficiency at the top point within a
    # few points of the 2-way efficiency (the one-time sharing cost)
    by_k = {r["physical"]: r for r in plex}
    if 2 in by_k and max(by_k) > 2:
        top = by_k[max(by_k)]
        if top["itr_efficiency"] < by_k[2]["itr_efficiency"] - 0.12:
            problems.append(
                f"sysplex efficiency droops: 2-way "
                f"{by_k[2]['itr_efficiency']} vs {max(by_k)}-way "
                f"{top['itr_efficiency']}"
            )
    # Crossover: a big sysplex outscales the biggest TCMP
    if plex and tcmp:
        if (max(r["itr_effective"] for r in plex)
                <= max(r["itr_effective"] for r in tcmp)):
            problems.append("sysplex never exceeds TCMP capacity")
    return problems


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict[str, List[dict]]:
    kw = QUICK if quick else {"duration": 1.0, "warmup": 0.6}
    series = run_fig3(duration=kw["duration"], warmup=kw["warmup"],
                      seed=seed, execution=execution)
    for name in ("ideal", "tcmp", "sysplex"):
        cols = ["physical", "effective", "efficiency"]
        if name != "ideal":
            cols += ["itr_effective", "itr_efficiency", "throughput", "util"]
        print_rows(f"Figure 3 — {name.upper()}", series[name], cols,
                   execution=execution)
    problems = check_shape(series)
    print("\nshape check:", "OK" if not problems else problems)
    return series


if __name__ == "__main__":
    main(quick=False)
