"""EXP-CHAOS — stochastic fault soak with invariant checking.

The availability experiments script *one* outage and inspect the
timeline.  This experiment instead turns the :class:`~repro.chaos.
ChaosEngine` loose on a running sysplex: systems crash and re-IPL,
coupling facilities die and come back empty, individual coupling links
drop mid-command, DASD paths bounce — all from seeded fault processes,
overlapping however the draws land.  Request-level robustness
(``CfConfig.request_timeout``) is enabled so in-flight CF commands
survive link loss by redriving on surviving links.

Throughout the run an :class:`~repro.invariants.InvariantChecker`
asserts the §2.5/§3.3 promises — lock safety, commit durability,
transaction conservation, rebuild termination, retained-lock release —
and the payload carries its full report plus the sampled fault schedule,
the fired-event timeline, and windowed throughput.

The **soak harness** sweeps many seeds (the CI ``chaos-soak`` job runs
``python -m repro.experiments.exp_chaos --seeds 20``) and fails loudly
if any seed records a violation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..chaos import (
    ChaosConfig,
    ChaosEngine,
    FaultClassConfig,
    summarize_schedule,
)
from ..config import MILLI, CfConfig
from ..invariants import InvariantChecker, check_reconvergence
from ..options import RunOptions
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from .common import Execution, print_rows, scaled_config, sweep

__all__ = [
    "chaos_spec",
    "soak_specs",
    "run_chaos",
    "run_chaos_spec",
    "run_soak",
    "main",
]

CHAOS_RUNNER = "repro.experiments.exp_chaos:run_chaos_spec"


def chaos_spec(n_systems: int = 3,
               seed: int = 1,
               horizon: float = 6.0,
               drain: float = 2.0,
               offered_tps_per_system: float = 120.0,
               intensity: float = 1.0,
               window: float = 0.5,
               duplex: str = "none") -> RunSpec:
    """Declare one chaos soak run.

    ``intensity`` scales fault frequency (2.0 = twice as many expected
    faults).  The sysplex gets two CFs (so rebuilds have a target) and
    request-level robustness enabled; the chaos parameters ride in
    ``params["chaos"]`` so the content hash covers the exact fault
    distributions.  ``duplex`` turns on system-managed structure
    duplexing for the named structure class (``"all"`` = every class) —
    CF failures then take the duplex-switch path instead of rebuilds.
    """
    from ..config import ArmConfig, XcfConfig

    config = scaled_config(
        n_systems, seed=seed, n_cfs=2,
        cf=CfConfig(request_timeout=20 * MILLI, request_retries=4,
                    duplex=duplex),
        arm=ArmConfig(restart_time=0.5, log_replay_time=0.3),
        xcf=XcfConfig(heartbeat_interval=0.25),
    )
    k = max(intensity, 1e-9)
    chaos = ChaosConfig(
        start=1.0,
        horizon=horizon,
        systems=FaultClassConfig(mtbf=6.0 / k, mttr=1.2, max_faults=2),
        cfs=FaultClassConfig(mtbf=10.0 / k, mttr=1.5, max_faults=1),
        links=FaultClassConfig(mtbf=30.0 / k, mttr=0.6, max_faults=2),
        dasd=FaultClassConfig(mtbf=60.0 / k, mttr=0.8, max_faults=1),
        min_live_systems=1,
        min_live_cfs=1,
    )
    return RunSpec(
        runner=CHAOS_RUNNER, config=config,
        options=RunOptions(
            mode="open", router_policy="wlm",
            offered_tps_per_system=offered_tps_per_system,
        ),
        label=(f"chaos-{n_systems}sys-seed{seed}"
               + (f"-duplex-{duplex}" if duplex != "none" else "")),
        params={
            "chaos": chaos.to_dict(),
            "window": window,
            "drain": drain,
            "grace": 3.0,
            "check_interval": 0.1,
            "reconverge_fraction": 0.5,
        },
    )


def run_chaos_spec(spec: RunSpec) -> Dict:
    """Scenario runner: chaos + invariants over one seeded sysplex."""
    chaos_cfg = ChaosConfig.from_dict(spec.params["chaos"])
    window = spec.params["window"]
    total = chaos_cfg.horizon + spec.params["drain"]

    plex, gen = build_loaded_sysplex(spec.config, options=spec.options)
    engine = ChaosEngine(plex, chaos_cfg)
    engine.arm()
    checker = InvariantChecker(
        plex, generator=gen, interval=spec.params["check_interval"]
    )

    counter = plex.metrics.counter("txn.completed")
    failed_counter = plex.metrics.counter("txn.failed")
    timeline: List[dict] = []
    prev = prev_failed = 0
    k = 0
    while k * window < total:
        k += 1
        plex.sim.run(until=k * window)
        c, f = counter.count, failed_counter.count
        timeline.append(
            {
                "t": round(k * window, 3),
                "throughput": (c - prev) / window,
                "failed": f - prev_failed,
                "down": ",".join(
                    n.name for n in plex.nodes if not n.alive) or "-",
                "cfs_down": ",".join(
                    cf.name for cf in plex.cfs if cf.failed) or "-",
            }
        )
        prev, prev_failed = c, f

    report = checker.finalize(grace=spec.params["grace"])

    # availability promise: throughput reconverges to the offered load
    # once the last state-changing fault/repair has settled
    state_changes = [
        t for t, label in plex.injector.log
        if not label.startswith("chaos-skip:")
    ]
    offered_total = spec.options.offered_tps_per_system * spec.config.n_systems
    v = check_reconvergence(
        timeline, offered_total,
        last_repair=max(state_changes, default=0.0),
        fraction=spec.params["reconverge_fraction"],
        degraded=bool(plex.degraded_events),
    )
    if v is not None:
        report["violations"].append(v)
        report["ok"] = False

    ports = _live_ports(plex)
    summary = {
        "pathology": _pathology_observables(plex),
        "generated": gen.generated,
        "completed": counter.count,
        "failed": failed_counter.count,
        "lost": plex.router.lost,
        "submitted": plex.metrics.counter("txn.submitted").count,
        "rebuilds_started": plex.metrics.counter("cf.rebuilds_started").count,
        "rebuilds_finished": plex.metrics.counter("cf.rebuilds").count,
        "recoveries": len(plex.recovery.recoveries),
        "degraded_events": len(plex.degraded_events),
        "cf_timeouts": sum(p.timeouts for p in ports),
        "cf_iccs": sum(p.iccs for p in ports),
        "cf_retries": sum(p.retries for p in ports),
        "schedule_by_kind": summarize_schedule(engine.schedule_rows()),
        "ok": report["ok"],
    }
    return {
        "schedule": engine.schedule_rows(),
        "outcomes": engine.outcome_rows(),
        "events": plex.injector.log_events(),
        "degraded": [[t, label] for t, label in plex.degraded_events],
        "timeline": timeline,
        "invariants": report,
        "sfm": plex.sfm.report(),
        "summary": summary,
    }


def _pathology_observables(plex) -> Dict:
    """Quantified sysplex pathologies, read from the live plex at end of run.

    These are the observables the adversarial scenario library asserts
    against and the fuzzer's coverage map buckets: lock convoys show up as
    waits/deadlocks, coarse hashing as false contention, coherency storms
    as cross-invalidate signals, and castout laggards as an undrained
    changed-block backlog.  Structure counters reflect the *current*
    structure (a rebuild starts them fresh); per-system completions count
    the current incarnation of each instance.
    """
    from ..sysplex import CACHE_STRUCTURE, LOCK_STRUCTURE

    lock = plex.xes.find(LOCK_STRUCTURE) if plex.cfs else None
    cache = plex.xes.find(CACHE_STRUCTURE) if plex.cfs else None
    rt = plex.metrics.tally("txn.response")
    p50, p95, p99 = rt.percentiles((50, 95, 99))
    out = {
        "lock_waits": plex.lock_space.waits,
        "deadlocks": plex.lock_space.deadlocks,
        "retained_locks": len(plex.lock_space.retained),
        "partitioned": plex.metrics.counter("failures.partitioned").count,
        "cache_full": plex.metrics.counter("txn.cache_full").count,
        "response_p50": p50,
        "response_p95": p95,
        "response_p99": p99,
        "sick_systems": sum(1 for n in plex.nodes if n.cpu.degraded),
        "sick_names": sorted(n.name for n in plex.nodes if n.cpu.degraded),
        "per_system_completed": {
            name: inst.tm.completed for name, inst in plex.instances.items()
        },
        "duplex_pairs": len(getattr(plex.xes, "duplex_pairs", {})),
        "duplex_breaks": plex.metrics.counter("duplex.breaks").count,
        "duplex_switches": plex.metrics.counter("cf.switches").count,
        "duplex_reestablished": (
            plex.metrics.counter("duplex.reestablished").count
        ),
    }
    if lock is not None:
        out["false_contention_rate"] = lock.false_contention_rate()
        out["cf_lock_requests"] = lock.requests
    if cache is not None:
        out["xi_signals"] = cache.xi_signals
        out["cache_reclaims"] = cache.reclaims
        out["castouts"] = cache.castouts
        out["castout_backlog"] = len(cache._changed)
    return out


def _live_ports(plex) -> List:
    """Every current CfPort (robustness counters live on the ports)."""
    ports = []
    for inst in plex.instances.values():
        for xes in (inst.xes_lock, inst.xes_cache, inst.xes_list):
            port = getattr(xes, "port", None)
            if port is not None:
                ports.append(port)
    return ports


def run_chaos(n_systems: int = 3, seed: int = 1,
              execution: Optional[Execution] = None, **kw) -> Dict:
    """One chaos run (library entry point)."""
    return sweep([chaos_spec(n_systems, seed, **kw)],
                 execution=execution)[0]


def soak_specs(n_seeds: int = 20, seed0: int = 1, **kw) -> List[RunSpec]:
    """The soak sweep: one chaos spec per seed."""
    return [chaos_spec(seed=seed0 + i, **kw) for i in range(n_seeds)]


def run_soak(n_seeds: int = 20, seed0: int = 1,
             execution: Optional[Execution] = None, **kw) -> Dict:
    """Run the soak and aggregate the per-seed invariant reports."""
    specs = soak_specs(n_seeds, seed0, **kw)
    payloads = sweep(specs, execution=execution)
    rows = []
    violations = []
    for spec, payload in zip(specs, payloads):
        s = payload["summary"]
        rows.append(
            {
                "label": spec.label,
                "completed": s["completed"],
                "failed": s["failed"],
                "lost": s["lost"],
                "rebuilds": (
                    f"{s['rebuilds_finished']}/{s['rebuilds_started']}"
                ),
                "iccs": s["cf_iccs"],
                "retries": s["cf_retries"],
                "degraded": s["degraded_events"],
                "ok": s["ok"],
            }
        )
        for v in payload["invariants"]["violations"]:
            violations.append({"label": spec.label, **v})
    return {
        "rows": rows,
        "violations": violations,
        "seeds": n_seeds,
        "ok": not violations,
    }


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    n_seeds = 3 if quick else 8
    out = run_soak(
        n_seeds=n_seeds, seed0=seed,
        execution=execution,
        horizon=4.0 if quick else 8.0,
        drain=2.0 if quick else 3.0,
    )
    print_rows(
        f"EXP-CHAOS — {n_seeds}-seed fault soak with invariant checking",
        out["rows"],
        ["label", "completed", "failed", "lost", "rebuilds", "iccs",
         "retries", "degraded", "ok"],
        execution=execution,
    )
    if out["violations"]:
        print(f"\nINVARIANT VIOLATIONS ({len(out['violations'])}):")
        for v in out["violations"]:
            print(f"  {v['label']} t={v['time']:.2f} {v['name']}: "
                  f"{v['detail']}")
    else:
        print(f"\nall {n_seeds} seeds clean: no invariant violations")
    return out


def _cli(argv: Optional[List[str]] = None) -> int:
    """The CI soak entry point: nonzero exit on any violation."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.exp_chaos",
        description="Seeded chaos soak with sysplex invariant checking.",
    )
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeds to soak (default: 20)")
    parser.add_argument("--seed0", type=int, default=1,
                        help="first seed (default: 1)")
    parser.add_argument("--horizon", type=float, default=6.0,
                        help="chaos window in simulated seconds")
    parser.add_argument("--duplex", default="none",
                        choices=("none", "lock", "cache", "list", "all"),
                        help="structure-duplexing policy for every seed "
                             "(default: none)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (0 = one per CPU)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache directory")
    parser.add_argument("--csv-dir", default=None, metavar="DIR",
                        help="archive printed tables as CSV under DIR")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the violation report as JSON to PATH")
    args = parser.parse_args(argv)

    import os

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    execution = Execution(jobs=jobs, progress=True, cache=args.cache_dir,
                          csv_dir=args.csv_dir)
    out = run_soak(n_seeds=args.seeds, seed0=args.seed0,
                   horizon=args.horizon, duplex=args.duplex,
                   execution=execution)
    print_rows(
        f"chaos soak — {args.seeds} seeds",
        out["rows"],
        ["label", "completed", "failed", "lost", "rebuilds", "iccs",
         "retries", "degraded", "ok"],
        execution=execution,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(out, fh, indent=2, sort_keys=True)
        print(f"report written to {args.report}")
    if out["violations"]:
        print(f"\nFAIL: {len(out['violations'])} invariant violation(s)")
        for v in out["violations"]:
            print(f"  {v['label']} t={v['time']:.2f} {v['name']}: "
                  f"{v['detail']}")
        return 1
    print(f"\nOK: all {args.seeds} seeds clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(_cli())
