"""EXP-GR — VTAM generic resources: single image to the network (§5.3).

Users "logon to 'CICS'" and VTAM binds the session to a system chosen by
WLM, recording the binding in a CF list structure.  The baseline is the
pre-sysplex practice: each user hard-wired to a specific application
instance (round-robin at provisioning time, which drifts as populations
shift).

We log a population on, skewing which users are *active*, then compare
the balance of session placement and the response times the sessions
see.  A failure rebind test shows orphaned sessions re-logging on to
surviving systems.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..subsystems.vtam import GenericResources
from .common import Execution, print_rows, scaled_config, sweep

__all__ = ["run_generic_resources", "generic_resources_spec", "main"]

CASE_RUNNER = "repro.experiments.exp_generic_resources:run_gr_spec"


def generic_resources_spec(n_systems: int = 4,
                           n_users: int = 400,
                           seed: int = 1) -> RunSpec:
    """Declare the session-placement scenario."""
    return RunSpec(
        runner=CASE_RUNNER, config=scaled_config(n_systems, seed=seed),
        label=f"generic-resources-{n_systems}",
        params={"n_users": n_users, "seed": seed},
    )


def run_gr_spec(spec: RunSpec) -> Dict:
    """Scenario runner: GR vs static session placement + failure rebind."""
    config = spec.config
    n_systems = config.n_systems
    n_users = spec.params["n_users"]
    seed = spec.params["seed"]
    plex, gen = build_loaded_sysplex(
        config, options=spec.options.replace(terminals_per_system=0))
    connections = {
        name: inst.xes_list for name, inst in plex.instances.items()
    }
    gr = GenericResources(plex.sim, "CICS", plex.wlm, plex.nodes, connections)
    rng = np.random.default_rng(seed)

    # background load imbalance: systems 0..k get synthetic busy work so
    # WLM steers new sessions away from them
    def busy(node, fraction):
        while True:
            yield from node.cpu.consume(0.01 * fraction)
            yield self_sim.timeout(0.01 * (1 - fraction))

    self_sim = plex.sim
    plex.sim.process(busy(plex.nodes[0], 0.9), name="bg0")
    plex.sim.process(busy(plex.nodes[1], 0.5), name="bg1")

    logged = []

    def logons():
        for u in range(n_users):
            entry = plex.nodes[int(rng.integers(n_systems))]
            target = yield from gr.logon(f"user{u}", entry_node=entry)
            logged.append(target.name)
            yield plex.sim.timeout(0.002)

    plex.sim.process(logons())
    plex.sim.run(until=2.0)

    gr_counts = gr.session_counts()
    gr_balance = gr.balance_index()

    # static baseline: users pinned round-robin regardless of load
    static_counts = {
        plex.nodes[u % n_systems].name: 0 for u in range(n_systems)
    }
    for u in range(n_users):
        static_counts[plex.nodes[u % n_systems].name] += 1
    # projected total utilization per system = background busy fraction +
    # the CPU its sessions will demand; good placement equalizes THIS, not
    # raw session counts (which is why GR deliberately unbalances counts)
    busy_frac = {plex.nodes[0].name: 0.9, plex.nodes[1].name: 0.5}
    session_load = 2.0 / n_users  # the population demands ~2 engines total
    gr_load = {
        name: busy_frac.get(name, 0.0) + count * session_load
        for name, count in gr_counts.items()
    }
    static_load = {
        name: busy_frac.get(name, 0.0) + count * session_load
        for name, count in static_counts.items()
    }

    def spread(d):
        vals = list(d.values())
        return max(vals) - min(vals)

    # failure rebind
    plex.nodes[2].fail()
    orphans = gr.rebind_orphans("SYS02")

    rows = [
        {
            "policy": "generic-resources",
            **{k: v for k, v in sorted(gr_counts.items())},
            "load_spread": round(spread(gr_load), 3),
        },
        {
            "policy": "static-assignment",
            **{k: v for k, v in sorted(static_counts.items())},
            "load_spread": round(spread(static_load), 3),
        },
    ]
    return {
        "rows": rows,
        "summary": {
            "gr_balance_index": gr_balance,
            "binds": gr.binds,
            "orphans_rebound": len(orphans),
            "cf_list_entries_used": True,
        },
    }


def run_generic_resources(n_systems: int = 4,
                          n_users: int = 400,
                          seed: int = 1,
                          execution: Optional[Execution] = None) -> Dict:
    return sweep([generic_resources_spec(n_systems, n_users, seed)],
                 execution=execution)[0]


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    out = run_generic_resources(seed=seed, execution=execution)
    columns = ["policy"] + sorted(
        k for k in out["rows"][0] if k.startswith("SYS")
    ) + ["load_spread"]
    print_rows("EXP-GR — session bind distribution", out["rows"], columns,
               execution=execution)
    s = out["summary"]
    print(
        f"\nGR balance index {s['gr_balance_index']:.2f} over {s['binds']} "
        f"binds; {s['orphans_rebound']} sessions rebound after failure"
    )
    return out


if __name__ == "__main__":
    main(quick=False)
