"""EXP-AVAIL — continuous availability (paper §2.5).

An N-system sysplex is driven open-loop at (N−1)/N of its capacity — the
paper's "1/N spare system capacity" rule — and one system is killed
mid-run.  We report the throughput timeline in windows around the
failure: the dip while in-flight work is lost and retained locks block,
the detection + fencing + ARM restart + peer recovery milestones, and
the post-recovery steady state (which must match the pre-failure offered
load, since the survivors have the headroom to absorb it).

A second scenario runs a **planned rolling outage** (one system at a time,
paper §2.5's release-migration story) and verifies service continuity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..options import RunOptions
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from .common import Execution, print_rows, scaled_config, sweep

__all__ = [
    "run_availability",
    "run_rolling_maintenance",
    "availability_spec",
    "rolling_spec",
    "main",
]

UNPLANNED_RUNNER = "repro.experiments.exp_availability:run_unplanned_spec"
ROLLING_RUNNER = "repro.experiments.exp_availability:run_rolling_spec"


def availability_spec(n_systems: int = 4,
                      offered_fraction: float = 0.5,
                      window: float = 0.5,
                      seed: int = 1) -> RunSpec:
    """Declare the unplanned-outage scenario."""
    from ..config import ArmConfig, XcfConfig

    # an availability-tuned sysplex: aggressive SFM detection interval and
    # a fast restart policy (the knobs real installations tune for exactly
    # this scenario)
    config = scaled_config(
        n_systems, seed=seed,
        arm=ArmConfig(restart_time=0.5, log_replay_time=0.3),
        xcf=XcfConfig(heartbeat_interval=0.25),
    )
    return RunSpec(
        runner=UNPLANNED_RUNNER, config=config,
        options=RunOptions(mode="open", router_policy="wlm"),
        label=f"avail-unplanned-{n_systems}",
        params={"offered_fraction": offered_fraction, "window": window},
    )


def run_unplanned_spec(spec: RunSpec) -> Dict:
    """Scenario runner: kill one of N systems, report the timeline."""
    config = spec.config
    n_systems = config.n_systems
    window = spec.params["window"]
    # per-system capacity at ~360tps/engine; offered at fraction of total
    per_system_capacity = 330.0
    offered = per_system_capacity * spec.params["offered_fraction"]
    plex, gen = build_loaded_sysplex(
        config, options=spec.options.replace(offered_tps_per_system=offered))
    fail_at = 3 * window
    victim = plex.nodes[n_systems - 1]
    plex.injector.crash_system(victim, at=fail_at)

    counter = plex.metrics.counter("txn.completed")
    failed_counter = plex.metrics.counter("txn.failed")
    timeline: List[dict] = []
    n_windows = 24
    prev = prev_failed = 0
    for k in range(1, n_windows + 1):
        plex.sim.run(until=k * window)
        c, f = counter.count, failed_counter.count
        timeline.append(
            {
                "t": round(k * window, 2),
                "throughput": (c - prev) / window,
                "lost": f - prev_failed,
                "phase": ("pre-failure" if k * window <= fail_at
                          else "post-failure"),
            }
        )
        prev, prev_failed = c, f

    pre = [w["throughput"] for w in timeline if w["phase"] == "pre-failure"]
    post = [w["throughput"] for w in timeline[-6:]]
    recovery_times = [t for t, _s, _n in plex.recovery.recoveries]
    summary = {
        "offered_total": offered * n_systems,
        "pre_failure_tput": sum(pre) / len(pre),
        "post_recovery_tput": sum(post) / len(post),
        "continuity_ratio": (sum(post) / len(post)) / (sum(pre) / len(pre)),
        "failure_at": fail_at,
        "detected_at": (
            plex.monitor.detection_log[0][0]
            if plex.monitor.detection_log else None
        ),
        "recovered_at": recovery_times[0] if recovery_times else None,
        "retained_after": len(plex.lock_space.retained),
        "restarts": len(plex.arm.restart_log),
    }
    return {"timeline": timeline, "summary": summary,
            "events": plex.injector.log_events()}


def run_availability(n_systems: int = 4,
                     offered_fraction: float = 0.5,
                     window: float = 0.5,
                     seed: int = 1,
                     execution: Optional[Execution] = None) -> Dict:
    """Kill one of N systems; report the throughput timeline."""
    return sweep([availability_spec(n_systems, offered_fraction, window,
                                    seed)], execution=execution)[0]


def rolling_spec(n_systems: int = 3,
                 outage: float = 2.0,
                 seed: int = 1) -> RunSpec:
    """Declare the planned rolling-maintenance scenario."""
    return RunSpec(
        runner=ROLLING_RUNNER, config=scaled_config(n_systems, seed=seed),
        options=RunOptions(mode="open", offered_tps_per_system=180.0,
                           router_policy="wlm"),
        label=f"avail-rolling-{n_systems}", params={"outage": outage},
    )


def run_rolling_spec(spec: RunSpec) -> Dict:
    """Scenario runner: outages rolled one system at a time (§2.5)."""
    config = spec.config
    n_systems = config.n_systems
    outage = spec.params["outage"]
    plex, gen = build_loaded_sysplex(config, options=spec.options)
    plex.injector.rolling_maintenance(plex.nodes, start=1.0, outage=outage,
                                      gap=1.5)
    total = 1.0 + n_systems * (outage + 1.5) + 1.0
    counter = plex.metrics.counter("txn.completed")
    window = 0.5
    timeline = []
    prev = 0
    k = 0
    while k * window < total:
        k += 1
        plex.sim.run(until=k * window)
        c = counter.count
        down = [n.name for n in plex.nodes if not n.alive]
        timeline.append(
            {
                "t": round(k * window, 2),
                "throughput": (c - prev) / window,
                "down": ",".join(down) or "-",
            }
        )
        prev = c
    zero_windows = sum(1 for w in timeline if w["throughput"] == 0)
    return {
        "timeline": timeline,
        "summary": {
            "zero_throughput_windows": zero_windows,
            "all_back": all(n.alive for n in plex.nodes),
        },
        "events": plex.injector.log_events(),
    }


def run_rolling_maintenance(n_systems: int = 3,
                            outage: float = 2.0,
                            seed: int = 1,
                            execution: Optional[Execution] = None) -> Dict:
    """Planned outages rolled one system at a time (§2.5)."""
    return sweep([rolling_spec(n_systems, outage, seed)],
                 execution=execution)[0]


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    # both scenarios are independent: declare them together so a parallel
    # executor overlaps them
    out, roll = sweep([
        availability_spec(window=0.4 if quick else 0.6, seed=seed),
        rolling_spec(outage=1.2 if quick else 2.0, seed=seed),
    ], execution=execution)
    print_rows(
        "EXP-AVAIL — unplanned outage of 1 of 4 systems",
        out["timeline"],
        ["t", "throughput", "lost", "phase"],
        execution=execution,
    )
    s = out["summary"]
    print(
        f"\npre-failure {s['pre_failure_tput']:.0f} tps -> post-recovery "
        f"{s['post_recovery_tput']:.0f} tps "
        f"(continuity {100 * s['continuity_ratio']:.1f}%), "
        f"recovered at t={s['recovered_at']}"
    )
    print_rows(
        "EXP-AVAIL — planned rolling maintenance (3 systems)",
        roll["timeline"],
        ["t", "throughput", "down"],
        execution=execution,
    )
    print(f"\nzero-throughput windows: "
          f"{roll['summary']['zero_throughput_windows']}")
    return {"unplanned": out, "rolling": roll}


if __name__ == "__main__":
    main(quick=False)
