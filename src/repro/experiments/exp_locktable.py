"""EXP-LOCK — lock structure behaviour (paper §3.3.1).

Two measurements:

* **False contention vs. lock-table size.**  "Through use of efficient
  hashing algorithms and granular serialization scope, false lock
  resource contention is kept to a minimum."  We sweep the table from
  2^8 to 2^20 entries under the same OLTP run and report the false- and
  real-contention rates — small tables collide, the product-sized table
  makes false contention negligible.

* **Synchronous grant latency.**  "The majority of requests for locks
  [are] granted cpu-synchronously ... measured in micro-seconds": the
  latency distribution of uncontended lock requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


from ..cf.lock import LockMode
from ..runner import build_loaded_sysplex
from ..runspec import RunSpec
from ..simkernel import Tally
from .common import QUICK, Execution, print_rows, scaled_config, sweep

__all__ = [
    "run_locktable_sweep",
    "run_grant_latency",
    "locktable_specs",
    "grant_latency_spec",
    "main",
]

TABLE_SIZES = (1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 20)

TABLE_RUNNER = "repro.experiments.exp_locktable:run_table_spec"
LATENCY_RUNNER = "repro.experiments.exp_locktable:run_latency_spec"


def locktable_specs(sizes: Sequence[int] = TABLE_SIZES,
                    n_systems: int = 4,
                    duration: float = QUICK["duration"],
                    warmup: float = QUICK["warmup"],
                    seed: int = 1) -> List[RunSpec]:
    """Declare one contention measurement per lock-table size."""
    specs = []
    for size in sizes:
        config = scaled_config(n_systems, seed=seed)
        config.cf.lock_table_entries = size
        specs.append(RunSpec(
            runner=TABLE_RUNNER, config=config,
            duration=duration, warmup=warmup, label=f"table-{size}",
        ))
    return specs


def run_table_spec(spec: RunSpec) -> dict:
    """Scenario runner: contention rates at one lock-table size."""
    size = spec.config.cf.lock_table_entries
    plex, gen = build_loaded_sysplex(spec.config, options=spec.options)
    plex.sim.run(until=spec.warmup)
    structure = plex.xes.find("IRLMLOCK1")
    req0 = structure.requests
    false0, real0 = structure.false_contention, structure.real_contention
    plex.reset_measurement()
    plex.sim.run(until=spec.warmup + spec.duration)
    result = plex.collect(spec.label or f"table-{size}")
    req = structure.requests - req0
    return {
        "lock_table_entries": size,
        "requests": req,
        "false_pct": 100 * (structure.false_contention - false0)
        / max(req, 1),
        "real_pct": 100 * (structure.real_contention - real0)
        / max(req, 1),
        "throughput": result.throughput,
        "p95_ms": 1e3 * result.response_p95,
    }


def run_locktable_sweep(sizes: Sequence[int] = TABLE_SIZES,
                        n_systems: int = 4,
                        duration: float = QUICK["duration"],
                        warmup: float = QUICK["warmup"],
                        seed: int = 1,
                        execution: Optional[Execution] = None) -> Dict:
    rows = sweep(locktable_specs(sizes, n_systems, duration, warmup, seed),
                 execution=execution)
    return {"rows": rows}


def grant_latency_spec(n_samples: int = 400, seed: int = 1) -> RunSpec:
    """Declare the uncontended sync-grant latency probe."""
    return RunSpec(
        runner=LATENCY_RUNNER, config=scaled_config(2, seed=seed),
        label="grant-latency", params={"n_samples": n_samples},
    )


def run_latency_spec(spec: RunSpec) -> Dict:
    """Scenario runner: uncontended sync lock grants on an idle sysplex."""
    n_samples = spec.params["n_samples"]
    plex, gen = build_loaded_sysplex(
        spec.config, options=spec.options.replace(terminals_per_system=0))
    mgr = plex.instances["SYS00"].lockmgr
    tally = Tally("grant")

    def sampler():
        for i in range(n_samples):
            t0 = plex.sim.now
            yield from mgr.lock(("SYS00", f"probe{i}"), f"probe-res-{i}",
                                LockMode.EXCL)
            tally.record(plex.sim.now - t0)
            yield from mgr.unlock_all(("SYS00", f"probe{i}"))

    plex.sim.process(sampler())
    plex.sim.run(until=1.0)
    return {
        "summary": {
            "n": tally.n,
            "mean_us": 1e6 * tally.mean,
            "p95_us": 1e6 * tally.percentile(95),
            "max_us": 1e6 * tally.maximum,
            "all_microseconds": bool(tally.maximum < 1e-3),
        }
    }


def run_grant_latency(n_samples: int = 400, seed: int = 1,
                      execution: Optional[Execution] = None) -> Dict:
    """Latency of uncontended sync lock requests on an idle sysplex."""
    return sweep([grant_latency_spec(n_samples, seed)],
                 execution=execution)[0]


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    kw = QUICK if quick else {"duration": 1.0, "warmup": 0.5}
    # the size sweep and the latency probe are independent: one sweep call
    specs = locktable_specs(duration=kw["duration"], warmup=kw["warmup"],
                            seed=seed)
    results = sweep(specs + [grant_latency_spec(seed=seed)],
                    execution=execution)
    table = {"rows": results[:len(specs)]}
    lat = results[len(specs)]
    print_rows(
        "EXP-LOCK — false contention vs lock-table size (4 systems)",
        table["rows"],
        ["lock_table_entries", "requests", "false_pct", "real_pct",
         "throughput", "p95_ms"],
        execution=execution,
    )
    s = lat["summary"]
    print(
        f"\nsync grant latency: mean {s['mean_us']:.1f}us, "
        f"p95 {s['p95_us']:.1f}us, max {s['max_us']:.1f}us "
        f"(microseconds: {s['all_microseconds']})"
    )
    return {"sweep": table, "latency": lat}


if __name__ == "__main__":
    main(quick=False)
