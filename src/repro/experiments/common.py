"""Shared experiment infrastructure.

All experiments follow the TPC discipline for capacity runs: the database
(and the DASD farm behind it) scales with the configuration under test,
so the curves measure the architecture, not a fixed hot spot.  Every
experiment function returns plain data (lists of dict rows) plus offers a
``print_rows`` rendering so the benchmark harness output reads like the
paper's tables.
"""

from __future__ import annotations

from typing import List

from ..config import (
    CpuConfig,
    DatabaseConfig,
    SysplexConfig,
)

__all__ = ["scaled_config", "print_rows", "QUICK", "FULL"]

#: quick settings: used by the pytest-benchmark harness (CI-sized)
QUICK = {"duration": 0.4, "warmup": 0.3}
#: full settings: for the standalone scripts
FULL = {"duration": 1.5, "warmup": 0.8}


def scaled_config(n_systems: int, n_cpus: int = 1,
                  data_sharing: bool = True,
                  pages_per_engine: int = 25_000,
                  dasd_per_engine: int = 16,
                  seed: int = 1,
                  **overrides) -> SysplexConfig:
    """A capacity-run configuration scaled to its engine count."""
    engines = max(2, n_systems * n_cpus)
    n_cfs = overrides.pop("n_cfs", 1 if data_sharing else 0)
    return SysplexConfig(
        n_systems=n_systems,
        cpu=CpuConfig(n_cpus=n_cpus),
        db=DatabaseConfig(n_pages=pages_per_engine * engines),
        n_dasd=dasd_per_engine * engines,
        data_sharing=data_sharing,
        n_cfs=n_cfs,
        seed=seed,
        **overrides,
    )


def print_rows(title: str, rows: List[dict], columns: List[str]) -> None:
    """Render rows as a fixed-width table (the bench harness output)."""
    print(f"\n== {title} ==")
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for r in rows:
        print("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)
