"""Shared experiment infrastructure.

All experiments follow the TPC discipline for capacity runs: the database
(and the DASD farm behind it) scales with the configuration under test,
so the curves measure the architecture, not a fixed hot spot.  Every
experiment function returns plain data (lists of dict rows) plus offers a
``print_rows`` rendering so the benchmark harness output reads like the
paper's tables.

Experiments *declare* their sweep as a list of
:class:`~repro.runspec.RunSpec` and hand it to :func:`sweep`, which
forwards to :func:`repro.executor.execute` using the session-wide
execution options (process-pool width, result cache) that the
``python -m repro.experiments`` CLI configures via :func:`set_execution`.
Called directly — as the pytest-benchmark harness does — the defaults
are ``jobs=1`` and no cache, i.e. plain in-process runs.
"""

from __future__ import annotations

import csv
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..config import (
    CpuConfig,
    DatabaseConfig,
    SysplexConfig,
)
from ..executor import ResultCache, execute
from ..runspec import RunSpec

__all__ = [
    "scaled_config",
    "print_rows",
    "write_csv",
    "sweep",
    "set_execution",
    "QUICK",
    "FULL",
]

#: quick settings: used by the pytest-benchmark harness (CI-sized)
QUICK = {"duration": 0.4, "warmup": 0.3}
#: full settings: for the standalone scripts
FULL = {"duration": 1.5, "warmup": 0.8}

#: Session-wide execution options, set once by the CLI.  ``jobs=1`` and
#: ``cache=None`` keep library/benchmark callers on the exact
#: pre-executor in-process behavior.
EXECUTION: Dict[str, Any] = {
    "jobs": 1,
    "cache": None,
    "csv_dir": None,
    "progress": False,
    "profile": None,
}

_UNSET = object()


def set_execution(jobs: Optional[int] = None,
                  cache: Union[None, str, Path, ResultCache,
                               object] = _UNSET,
                  csv_dir: Union[None, str, Path, object] = _UNSET,
                  progress: Optional[bool] = None,
                  profile: Union[None, str, object] = _UNSET) -> None:
    """Configure how :func:`sweep` executes (the CLI calls this once).

    ``profile`` forces every sweep spec onto one execution profile
    (``"verify"`` for the golden byte-identical configuration); ``None``
    leaves each spec's own ``options.profile`` in charge.
    """
    if jobs is not None:
        EXECUTION["jobs"] = max(1, int(jobs))
    if cache is not _UNSET:
        EXECUTION["cache"] = cache
    if csv_dir is not _UNSET:
        EXECUTION["csv_dir"] = Path(csv_dir) if csv_dir else None
    if progress is not None:
        EXECUTION["progress"] = progress
    if profile is not _UNSET:
        EXECUTION["profile"] = profile


def sweep(specs: Sequence[RunSpec],
          jobs: Optional[int] = None,
          cache: Union[None, str, Path, ResultCache, object] = _UNSET
          ) -> List[Any]:
    """Execute a declared sweep under the session execution options.

    Results come back in spec order; each is a
    :class:`~repro.metrics.RunResult` or the scenario runner's plain-data
    payload.  Explicit ``jobs``/``cache`` override the session options
    (pass ``cache=None`` to force a cache-off run).
    """
    jobs = EXECUTION["jobs"] if jobs is None else jobs
    cache = EXECUTION["cache"] if cache is _UNSET else cache
    on_result = _progress_line if EXECUTION["progress"] else None
    forced = EXECUTION["profile"]
    if forced is not None:
        specs = [s.replace(profile=forced) for s in specs]
    return execute(specs, jobs=jobs, cache=cache, on_result=on_result)


def _progress_line(index: int, spec: RunSpec, result: Any,
                   cached: bool, seconds: float) -> None:
    label = spec.label or spec.runner
    note = "cache" if cached else f"{seconds:5.1f}s"
    print(f"  [{note}] {label}", file=sys.stderr, flush=True)


def scaled_config(n_systems: int, n_cpus: int = 1,
                  data_sharing: bool = True,
                  pages_per_engine: int = 25_000,
                  dasd_per_engine: int = 16,
                  seed: int = 1,
                  **overrides) -> SysplexConfig:
    """A capacity-run configuration scaled to its engine count."""
    engines = max(2, n_systems * n_cpus)
    n_cfs = overrides.pop("n_cfs", 1 if data_sharing else 0)
    return SysplexConfig(
        n_systems=n_systems,
        cpu=CpuConfig(n_cpus=n_cpus),
        db=DatabaseConfig(n_pages=pages_per_engine * engines),
        n_dasd=dasd_per_engine * engines,
        data_sharing=data_sharing,
        n_cfs=n_cfs,
        seed=seed,
        **overrides,
    )


def print_rows(title: str, rows: List[dict], columns: List[str],
               csv_path: Union[None, str, Path] = None) -> None:
    """Render rows as a fixed-width table (the bench harness output).

    ``csv_path`` additionally archives the table as a CSV artifact; when
    the CLI sets a session ``csv_dir``, every printed table is archived
    there under a slug of its title.
    """
    print(f"\n== {title} ==")
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for r in rows:
        print("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    if csv_path is None and EXECUTION["csv_dir"] is not None:
        csv_path = EXECUTION["csv_dir"] / f"{_slug(title)}.csv"
    if csv_path is not None:
        write_csv(csv_path, rows, columns)


def write_csv(path: Union[str, Path], rows: List[dict],
              columns: List[str]) -> Path:
    """Archive sweep rows as a CSV file (parents created as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore",
                                restval="")
        writer.writeheader()
        for r in rows:
            writer.writerow({c: r.get(c, "") for c in columns})
    return path


def _slug(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    return slug[:80] or "table"


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)
