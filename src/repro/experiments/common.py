"""Shared experiment infrastructure.

All experiments follow the TPC discipline for capacity runs: the database
(and the DASD farm behind it) scales with the configuration under test,
so the curves measure the architecture, not a fixed hot spot.  Every
experiment function returns plain data (lists of dict rows) plus offers a
``print_rows`` rendering so the benchmark harness output reads like the
paper's tables.

Experiments *declare* their sweep as a list of
:class:`~repro.runspec.RunSpec` and hand it to :func:`sweep` together
with an :class:`Execution` — a frozen value object describing *how* to
run it (backend, pool width, result cache, progress reporting, CSV
archiving, forced execution profile).  The ``python -m
repro.experiments`` CLI builds one Execution from its flags and threads
it explicitly through every experiment's ``main(...)``; called directly
— as the pytest-benchmark harness does — ``execution=None`` means the
defaults: in-process runs, no cache, no progress.

The pre-redesign module-global session state (``set_execution``) still
exists as a deprecated shim for one release; it rebinds the fallback
Execution that ``sweep``/``print_rows`` use when none is passed.
"""

from __future__ import annotations

import csv
import re
import sys
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..config import (
    CpuConfig,
    DatabaseConfig,
    SysplexConfig,
)
from ..executor import (
    ExecutorBackend,
    Progress,
    ResultCache,
    execute,
)
from ..runspec import RunSpec

__all__ = [
    "Execution",
    "scaled_config",
    "print_rows",
    "write_csv",
    "sweep",
    "set_execution",
    "QUICK",
    "FULL",
]

#: quick settings: used by the pytest-benchmark harness (CI-sized)
QUICK = {"duration": 0.4, "warmup": 0.3}
#: full settings: for the standalone scripts
FULL = {"duration": 1.5, "warmup": 0.8}


@dataclass(frozen=True)
class Execution:
    """How a sweep executes — a frozen config threaded through explicitly.

    * ``jobs`` — width of the default local pool (1 = in-process);
    * ``backend`` — an :class:`~repro.executor.ExecutorBackend` overriding
      the local pool (e.g. a :class:`~repro.executor.WorkQueueBackend`);
    * ``cache`` — a :class:`~repro.executor.ResultCache`, a directory
      path, or None;
    * ``csv_dir`` — when set, every :func:`print_rows` table is archived
      there as CSV;
    * ``progress`` — stream per-point progress/ETA lines to stderr;
    * ``profile`` — force every sweep spec onto one execution profile
      (``"verify"`` for the golden byte-identical configuration); None
      leaves each spec's own ``options.profile`` in charge.

    Being frozen, an Execution can be shared, compared, and defaulted
    without action-at-a-distance: whoever holds one knows exactly how
    their sweep will run.
    """

    jobs: int = 1
    backend: Optional[ExecutorBackend] = field(default=None, compare=False)
    cache: Union[None, str, Path, ResultCache] = field(default=None,
                                                       compare=False)
    csv_dir: Optional[Path] = None
    progress: bool = False
    profile: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "jobs", max(1, int(self.jobs)))
        if self.csv_dir is not None:
            object.__setattr__(self, "csv_dir", Path(self.csv_dir))

    def replace(self, **changes) -> "Execution":
        """A copy with ``changes`` applied (frozen-dataclass friendly)."""
        return replace(self, **changes)

    def parallelism(self) -> int:
        if self.backend is not None:
            return self.backend.parallelism()
        return self.jobs


#: What ``execution=None`` means: plain in-process runs, nothing else.
DEFAULT_EXECUTION = Execution()

#: Fallback used when no Execution is passed — only the deprecated
#: :func:`set_execution` shim ever rebinds this away from the default.
_SESSION: Execution = DEFAULT_EXECUTION

_UNSET = object()


def set_execution(jobs: Optional[int] = None,
                  cache: Union[None, str, Path, ResultCache,
                               object] = _UNSET,
                  csv_dir: Union[None, str, Path, object] = _UNSET,
                  progress: Optional[bool] = None,
                  profile: Union[None, str, object] = _UNSET) -> None:
    """Deprecated shim over the old module-global session state.

    Build an :class:`Execution` and pass it to :func:`sweep` (and the
    experiment ``main``/``run_*`` functions) instead; this shim survives
    one release for callers that configured the session globally.  It
    rebinds the fallback Execution used when ``sweep`` is called with
    ``execution=None``.
    """
    warnings.warn(
        "set_execution() is deprecated: build an "
        "repro.experiments.common.Execution and pass it to sweep() / "
        "the experiment entry points instead",
        DeprecationWarning,
        stacklevel=2,
    )
    global _SESSION
    changes: Dict[str, Any] = {}
    if jobs is not None:
        changes["jobs"] = jobs
    if cache is not _UNSET:
        changes["cache"] = cache
    if csv_dir is not _UNSET:
        changes["csv_dir"] = Path(csv_dir) if csv_dir else None
    if progress is not None:
        changes["progress"] = progress
    if profile is not _UNSET:
        changes["profile"] = profile
    _SESSION = _SESSION.replace(**changes)


def _effective(execution: Optional[Execution]) -> Execution:
    return execution if execution is not None else _SESSION


def sweep(specs: Sequence[RunSpec],
          execution: Optional[Execution] = None,
          jobs: Optional[int] = None,
          cache: Union[None, str, Path, ResultCache, object] = _UNSET
          ) -> List[Any]:
    """Execute a declared sweep under an :class:`Execution`.

    Results come back in spec order; each is a
    :class:`~repro.metrics.RunResult` or the scenario runner's plain-data
    payload.  ``execution=None`` falls back to the session default
    (plain in-process runs unless the deprecated :func:`set_execution`
    changed it).  Explicit ``jobs``/``cache`` override the Execution's
    fields (pass ``cache=None`` to force a cache-off run).
    """
    ex = _effective(execution)
    if jobs is not None:
        ex = ex.replace(jobs=jobs)
    if cache is not _UNSET:
        ex = ex.replace(cache=cache)
    if ex.profile is not None:
        specs = [s.replace(profile=ex.profile) for s in specs]
    progress = (Progress(len(specs), parallelism=ex.parallelism(),
                         stream=sys.stderr)
                if ex.progress else None)
    return execute(specs, jobs=ex.jobs, cache=ex.cache, backend=ex.backend,
                   progress=progress)


def scaled_config(n_systems: int, n_cpus: int = 1,
                  data_sharing: bool = True,
                  pages_per_engine: int = 25_000,
                  dasd_per_engine: int = 16,
                  seed: int = 1,
                  **overrides) -> SysplexConfig:
    """A capacity-run configuration scaled to its engine count."""
    engines = max(2, n_systems * n_cpus)
    n_cfs = overrides.pop("n_cfs", 1 if data_sharing else 0)
    return SysplexConfig(
        n_systems=n_systems,
        cpu=CpuConfig(n_cpus=n_cpus),
        db=DatabaseConfig(n_pages=pages_per_engine * engines),
        n_dasd=dasd_per_engine * engines,
        data_sharing=data_sharing,
        n_cfs=n_cfs,
        seed=seed,
        **overrides,
    )


def print_rows(title: str, rows: List[dict], columns: List[str],
               csv_path: Union[None, str, Path] = None,
               execution: Optional[Execution] = None) -> None:
    """Render rows as a fixed-width table (the bench harness output).

    ``csv_path`` additionally archives the table as a CSV artifact; when
    the governing :class:`Execution` carries a ``csv_dir``, every
    printed table is archived there under a slug of its title.
    """
    print(f"\n== {title} ==")
    widths = {
        c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for r in rows:
        print("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))
    csv_dir = _effective(execution).csv_dir
    if csv_path is None and csv_dir is not None:
        csv_path = csv_dir / f"{_slug(title)}.csv"
    if csv_path is not None:
        write_csv(csv_path, rows, columns)


def write_csv(path: Union[str, Path], rows: List[dict],
              columns: List[str]) -> Path:
    """Archive sweep rows as a CSV file (parents created as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore",
                                restval="")
        writer.writeheader()
        for r in rows:
            writer.writerow({c: r.get(c, "") for c in columns})
    return path


def _slug(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    return slug[:80] or "table"


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)
