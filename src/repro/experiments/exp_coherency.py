"""EXP-COHER — CF coherency vs. message-broadcast coherency (paper §3.3).

The paper's justification for building the Coupling Facility at all: the
"fundamental performance obstacles" of data sharing were (1) lock traffic
and (2) buffer-invalidation broadcasts.  This experiment runs the same
OLTP workload on

* the CF-based sysplex (cross-invalidation signals: zero target CPU,
  microsecond locks), and
* the :class:`BroadcastCluster` (message-based DLM + invalidation
  broadcast to all N−1 peers),

sweeping N.  Reported per point: CPU ms per transaction (overhead grows
~O(N) for broadcast, ~flat for the CF), throughput, and p95.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.broadcast import BroadcastCluster
from ..runspec import RunSpec
from ..workloads.oltp import OltpGenerator
from .common import QUICK, Execution, print_rows, scaled_config
from .common import sweep as _sweep

__all__ = ["run_coherency", "coherency_specs", "main"]

SWEEP = (2, 4, 8, 12)

#: Dotted runner path for the broadcast-coherency scenario (importable
#: from a pool worker regardless of how this module was loaded).
BROADCAST_RUNNER = "repro.experiments.exp_coherency:run_broadcast_spec"


def run_broadcast_spec(spec: RunSpec):
    """Scenario runner: one measured window on the broadcast baseline."""
    config = spec.config
    cluster = BroadcastCluster(config)
    gen = OltpGenerator(
        cluster.sim, config.oltp, config.db.n_pages, config.n_systems,
        cluster.streams.stream("oltp"), router=cluster,
    )
    # prewarm the simple version-checked pools
    hot = gen.sampler.hottest(config.db.buffer_pages)
    for stack in cluster._stacks:
        for page in hot:
            stack["pool"][page] = 0
            stack["pool_order"].append(page)
    gen.start_closed_loop(config.oltp.terminals_per_cpu * config.cpu.n_cpus)
    cluster.sim.run(until=spec.warmup)
    cluster.reset_measurement()
    cluster.sim.run(until=spec.warmup + spec.duration)
    return cluster.collect(spec.label or f"broadcast-{config.n_systems}")


def coherency_specs(sweep: Sequence[int] = SWEEP,
                    duration: float = QUICK["duration"],
                    warmup: float = QUICK["warmup"],
                    seed: int = 1) -> List[RunSpec]:
    """Declare (CF, broadcast) spec pairs for each sysplex size."""
    specs: List[RunSpec] = []
    for n in sweep:
        specs.append(RunSpec(
            config=scaled_config(n, seed=seed),
            duration=duration, warmup=warmup, label=f"cf-{n}",
        ))
        specs.append(RunSpec(
            runner=BROADCAST_RUNNER,
            config=scaled_config(n, data_sharing=False, seed=seed),
            duration=duration, warmup=warmup, label=f"broadcast-{n}",
        ))
    return specs


def run_coherency(sweep: Sequence[int] = SWEEP,
                  duration: float = QUICK["duration"],
                  warmup: float = QUICK["warmup"],
                  seed: int = 1,
                  execution: Optional[Execution] = None) -> Dict:
    results = _sweep(coherency_specs(sweep, duration, warmup, seed),
                     execution=execution)
    rows: List[dict] = []
    for i, n in enumerate(sweep):
        r_cf, r_bc = results[2 * i], results[2 * i + 1]
        cpu_cf = (r_cf.mean_utilization * n * r_cf.duration
                  / max(r_cf.completed, 1))
        cpu_bc = (r_bc.mean_utilization * n * r_bc.duration
                  / max(r_bc.completed, 1))

        rows.append(
            {
                "systems": n,
                "cf_cpu_ms": 1e3 * cpu_cf,
                "bcast_cpu_ms": 1e3 * cpu_bc,
                "cf_tput": r_cf.throughput,
                "bcast_tput": r_bc.throughput,
                "cf_p95_ms": 1e3 * r_cf.response_p95,
                "bcast_p95_ms": 1e3 * r_bc.response_p95,
                "bcast_inval_msgs": r_bc.extras["invalidation_messages"],
            }
        )
    return {"rows": rows}


def check_shape(rows: List[dict]) -> List[str]:
    problems = []
    # broadcast per-txn CPU must grow materially with N; CF must not
    if rows[-1]["bcast_cpu_ms"] <= rows[0]["bcast_cpu_ms"] * 1.05:
        problems.append("broadcast overhead does not grow with N")
    if rows[-1]["cf_cpu_ms"] > rows[0]["cf_cpu_ms"] * 1.15:
        problems.append("CF overhead grows too much with N")
    # at the largest N the CF wins on CPU per transaction
    if rows[-1]["cf_cpu_ms"] >= rows[-1]["bcast_cpu_ms"]:
        problems.append("CF does not win at scale")
    return problems


def main(quick: bool = True, seed: int = 1,
         execution: Optional[Execution] = None) -> Dict:
    kw = QUICK if quick else {"duration": 1.0, "warmup": 0.5}
    out = run_coherency(duration=kw["duration"], warmup=kw["warmup"],
                        seed=seed, execution=execution)
    print_rows(
        "EXP-COHER — CF vs broadcast coherency",
        out["rows"],
        ["systems", "cf_cpu_ms", "bcast_cpu_ms", "cf_tput", "bcast_tput",
         "cf_p95_ms", "bcast_p95_ms", "bcast_inval_msgs"],
        execution=execution,
    )
    problems = check_shape(out["rows"])
    print("\nshape check:", "OK" if not problems else problems)
    return out


if __name__ == "__main__":
    main(quick=False)
