"""Coverage-guided chaos fuzzer for the sysplex simulator.

``python -m repro.fuzz --budget N --seed S`` runs a deterministic
mutation loop over the chaos-runner scenario space: starting from the
healthy :func:`~repro.adversaries.base_spec`, the adversary catalog, and
one faulty chaos soak spec, it mutates RunSpec dimensions (workload
shape, database geometry, CF structure sizing, robustness settings,
kernel execution — scheduler backend and event collapse — and chaos
fault classes), runs each mutant in-process, and keeps the ones
that light up **new coverage features** as seeds for further mutation.

Coverage is a feature map over run *outcomes*, not code: which invariant
branches the checker exercised, which violations fired, which degraded
events and chaos fire/skip combinations occurred, and log-bucketed
pathology observables (lock waits, deadlocks, XI signals, false
contention, castout backlog, …).  A mutant that drives the simulator
somewhere observably new joins the corpus.

Three oracles judge every run:

* **crash** — the runner raised (simulator bug or unhandled interaction);
* **invariant** — :class:`~repro.invariants.InvariantChecker` (plus the
  reconvergence check the chaos runner folds in) recorded a violation;
* **nondet** — a novel run, re-executed from its spec, failed to
  reproduce byte-identically (canonical JSON compare), breaking the
  executor's determinism contract.

Failures are **shrunk** — every spec dimension is walked back toward the
healthy base while the failure key still reproduces — and saved as
standalone JSON repro files loadable with :meth:`RunSpec.from_json` and
replayable via ``python -m repro.fuzz --replay PATH`` (or
:func:`repro.run`).  The whole campaign is a pure function of
``(budget, seed)``: corpus, coverage, and failure files are
byte-identical across re-runs.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from bisect import bisect_right
from dataclasses import dataclass
from dataclasses import replace as dc_replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .adversaries import adversary_specs, base_spec, edit_chaos, edit_config
from .executor import canonical_payload
from .runspec import RunSpec, canonical_json

__all__ = [
    "DIMENSIONS",
    "FuzzResult",
    "features",
    "fuzz",
    "load_corpus",
    "main",
    "mutate",
    "outcome_key",
    "replay",
    "seed_specs",
    "shrink",
]

#: Geometry shared by every seed and mutant: short horizon keeps one run
#: in the hundreds of milliseconds so a 200-mutation nightly campaign
#: finishes in minutes.
GEOMETRY: Dict[str, float] = {"horizon": 1.5, "drain": 1.0, "window": 0.5}

#: Cap on simulator runs one shrink may spend (a full pass over the
#: dimensions costs ~25; three passes almost always reach the fixpoint).
SHRINK_RUN_CAP = 120

#: Bucket edges for pathology observables: a feature like ``waits:b3``
#: means the value fell in ``[EDGES[2], EDGES[3])``.  Log-ish spacing so
#: "a bit more contention" and "10x more contention" are different
#: features but noise within a bucket is not.
_EDGES = (0.001, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0)


def _bucket(value: float) -> str:
    return f"b{bisect_right(_EDGES, float(value))}"


# -- spec dimensions ---------------------------------------------------------


@dataclass(frozen=True)
class Dim:
    """One mutable axis of the scenario space.

    ``choices`` is what mutation samples from; shrinking instead moves
    the axis back to the healthy base spec's value.  Values must be
    plain data (JSON-able) so operator logs and repro files stay
    readable.
    """

    name: str
    choices: tuple
    get: Callable[[RunSpec], Any]
    set: Callable[[RunSpec, Any], RunSpec]


def _section_dim(section: str, fld: str, choices: tuple) -> Dim:
    return Dim(
        name=f"{section}.{fld}",
        choices=choices,
        get=lambda s: getattr(getattr(s.config, section), fld),
        set=lambda s, v: edit_config(s, **{section: {fld: v}}),
    )


def _top_dim(fld: str, choices: tuple) -> Dim:
    return Dim(
        name=f"config.{fld}",
        choices=choices,
        get=lambda s: getattr(s.config, fld),
        set=lambda s, v: s.replace(config=dc_replace(s.config, **{fld: v})),
    )


def _option_dim(fld: str, choices: tuple) -> Dim:
    return Dim(
        name=f"options.{fld}",
        choices=choices,
        get=lambda s: getattr(s.options, fld),
        set=lambda s, v: s.replace(**{fld: v}),
    )


def _chaos_class_dim(name: str, presets: tuple) -> Dim:
    return Dim(
        name=f"chaos.{name}",
        choices=presets,
        get=lambda s: s.params["chaos"].get(name),
        set=lambda s, v: edit_chaos(s, **{name: v}),
    )


def _chaos_field_dim(fld: str, choices: tuple) -> Dim:
    return Dim(
        name=f"chaos.{fld}",
        choices=choices,
        get=lambda s: s.params["chaos"][fld],
        set=lambda s, v: edit_chaos(s, **{fld: v}),
    )


#: Fault-process presets (as dicts: they ride in ``params["chaos"]``).
#: mtbf values are tuned to the 1.5 s chaos window; long-mttr presets
#: leave the component broken for the rest of the run.
_FAST = {"mtbf": 0.4, "mttr": 0.3, "max_faults": 2}
_SLOW = {"mtbf": 1.0, "mttr": 0.5, "max_faults": 1}
_STUCK = {"mtbf": 0.6, "mttr": 30.0, "max_faults": 1}

DIMENSIONS: Tuple[Dim, ...] = (
    _top_dim("seed", tuple(range(1, 17))),
    _top_dim("n_systems", (2, 3, 4)),
    _top_dim("n_dasd", (8, 16, 48)),
    _section_dim("oltp", "zipf_theta", (0.0, 0.3, 0.6, 0.8, 1.0, 1.2, 1.4)),
    _section_dim("oltp", "reads_per_txn", (0, 2, 5, 8, 12)),
    _section_dim("oltp", "writes_per_txn", (0, 1, 3, 6, 10)),
    _section_dim("db", "n_pages", (150, 600, 2000, 10000, 75000)),
    _section_dim("db", "deadlock_interval", (0.05, 0.1, 0.5)),
    _section_dim("db", "log_force_io", (0.0012, 0.006, 0.012)),
    _section_dim("cf", "lock_table_entries", (64, 1024, 1 << 20)),
    _section_dim("cf", "cache_elements", (1024, 8192, 65536)),
    _section_dim("cf", "request_timeout", (None, 0.005, 0.02)),
    _section_dim("cf", "request_retries", (0, 1, 4)),
    # duplexing axes: every mutant with duplex on runs the duplexed-write
    # protocol and the duplex-consistency invariant; the SFM axes move
    # the switch-vs-rebuild timing the chaos classes below collide with
    _section_dim("cf", "duplex", ("none", "lock", "cache", "list", "all")),
    _section_dim("sfm", "detection_interval", (0.005, 0.02, 0.1)),
    _section_dim("sfm", "reestablish_delay", (0.05, 0.5, 2.0)),
    _section_dim("dasd", "service_mean", (0.0025, 0.01, 0.025)),
    _option_dim("offered_tps_per_system", (30.0, 60.0, 120.0, 240.0)),
    _option_dim("router_policy", ("local", "threshold", "wlm")),
    # kernel execution axes: every corpus entry is re-checked for byte
    # determinism on admission, so mutating these puts both calendar
    # backends and both collapse settings under the nondet oracle
    _option_dim("scheduler", (None, "heap", "calendar")),
    _option_dim("collapse", (None, True, False)),
    _chaos_class_dim("systems", (None, _FAST, _SLOW)),
    _chaos_class_dim("cfs", (None, _SLOW, _STUCK)),
    _chaos_class_dim("links", (None, _FAST)),
    _chaos_class_dim("dasd", (None, _SLOW)),
    _chaos_class_dim("sick", (None, _SLOW, _STUCK)),
    _chaos_field_dim("sick_cpu_factor", (2.0, 4.0, 8.0, 16.0)),
)


# -- seeds, mutation, features ----------------------------------------------


def seed_specs(seed: int = 0) -> List[RunSpec]:
    """The initial corpus: healthy base, adversary catalog, one soak.

    ``seed`` offsets the sysplex seeds so different campaigns start from
    different (but internally deterministic) corners.
    """
    from .experiments.exp_chaos import chaos_spec

    s0 = 1 + seed
    specs = [base_spec(seed=s0, **GEOMETRY)]
    specs += adversary_specs(seed=s0, **GEOMETRY)
    specs.append(chaos_spec(seed=s0, **GEOMETRY))
    return specs


def load_corpus(path: Path, exclude: Optional[Set[str]] = None) -> List[RunSpec]:
    """Reload a previous campaign's corpus entries as extra seeds.

    Reads the ``corpus.json`` a prior :func:`fuzz` run wrote (each entry
    carries its full spec), skipping hashes in ``exclude`` and duplicate
    entries.  Entries from older schema versions without an embedded
    spec are skipped silently — resuming from them is impossible.
    """
    doc = json.loads(Path(path).read_text())
    seen = set(exclude or ())
    specs: List[RunSpec] = []
    for entry in doc.get("entries", []):
        if "spec" not in entry or entry.get("spec_hash") in seen:
            continue
        seen.add(entry["spec_hash"])
        specs.append(RunSpec.from_dict(entry["spec"]))
    return specs


def mutate(
    spec: RunSpec, rng: random.Random, n_ops: Optional[int] = None
) -> Tuple[RunSpec, List[str]]:
    """Apply 1-3 random dimension changes; returns ``(mutant, op log)``."""
    if n_ops is None:
        n_ops = rng.randint(1, 3)
    ops: List[str] = []
    for _ in range(n_ops):
        for _attempt in range(4):
            dim = rng.choice(DIMENSIONS)
            current = dim.get(spec)
            candidates = [c for c in dim.choices if c != current]
            if not candidates:
                continue
            value = rng.choice(candidates)
            try:
                spec = dim.set(spec, value)
            except (TypeError, ValueError):
                continue  # invalid combination: try another dimension
            ops.append(f"{dim.name}={value}")
            break
    return spec, ops


def features(payload: dict) -> Set[str]:
    """The coverage feature map over one chaos-runner payload."""
    f: Set[str] = set()
    inv = payload["invariants"]
    for name in inv["branches"]:
        f.add(f"branch:{name}")
    for v in inv["violations"]:
        f.add(f"violation:{v['name']}")
    for _t, label in payload["degraded"]:
        f.add("degraded:" + str(label).split(":", 1)[0])
    for _t, label, state in payload["outcomes"]:
        f.add("chaos:" + str(label).split(":", 1)[0] + ":" + state)
    s = payload["summary"]
    p = s["pathology"]
    completed = max(1, int(s["completed"]))
    f.add("waits:" + _bucket(p["lock_waits"] / completed))
    f.add("deadlocks:" + _bucket(p["deadlocks"]))
    f.add("xi:" + _bucket(p.get("xi_signals", 0) / completed))
    f.add(
        "false-contention:" + _bucket(100.0 * p.get("false_contention_rate", 0.0))
    )
    f.add("castout-backlog:" + _bucket(p.get("castout_backlog", 0)))
    f.add("cache-full:" + _bucket(p["cache_full"]))
    f.add("retained:" + _bucket(p["retained_locks"]))
    f.add(f"sick:{p['sick_systems']}")
    f.add(f"partitioned:{_bucket(p['partitioned'])}")
    f.add("lost:" + _bucket(s["lost"]))
    f.add("rebuilds:" + _bucket(s["rebuilds_started"]))
    f.add("duplex-breaks:" + _bucket(p.get("duplex_breaks", 0)))
    f.add("switches:" + _bucket(p.get("duplex_switches", 0)))
    f.add("reduplexed:" + _bucket(p.get("duplex_reestablished", 0)))
    return f


# -- oracles -----------------------------------------------------------------


def outcome_key(
    spec: RunSpec, replay_check: bool = False
) -> Tuple[Optional[str], Optional[dict], str]:
    """Run ``spec`` and judge it: ``(failure key | None, payload, detail)``.

    ``replay_check=True`` re-runs the spec and compares canonical JSON —
    the byte-determinism oracle.  Payloads go through
    :func:`repro.executor.canonical_payload`, so "deterministic" is
    judged on exactly the bytes a cache file or a work-queue worker
    would carry.  Keys are stable strings ("crash:…", "invariant:…",
    "nondet:payload") so equal failures dedup and a shrunk spec can be
    checked for *the same* failure.
    """
    try:
        payload = canonical_payload(spec)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return f"crash:{type(exc).__name__}", None, str(exc)
    names = sorted({v["name"] for v in payload["invariants"]["violations"]})
    if names:
        first = payload["invariants"]["violations"][0]
        return "invariant:" + ",".join(names), payload, first["detail"]
    if replay_check:
        second = canonical_payload(spec)
        if canonical_json(second) != canonical_json(payload):
            return (
                "nondet:payload",
                payload,
                "re-running the spec produced a different payload",
            )
    return None, payload, ""


def shrink(spec: RunSpec, key: str, seed: int = 0) -> Tuple[RunSpec, int]:
    """Greedily walk ``spec`` back toward the healthy base while ``key``
    still reproduces; returns ``(minimal spec, runs spent)``.

    Deterministic by construction: the candidate order is the fixed
    ``DIMENSIONS`` order and acceptance depends only on run outcomes, so
    the same failing spec always shrinks to the same minimal spec.
    """
    base = base_spec(seed=1 + seed, **GEOMETRY)
    replay_check = key.startswith("nondet")
    runs = 0
    current = spec
    improved = True
    while improved and runs < SHRINK_RUN_CAP:
        improved = False
        for dim in DIMENSIONS:
            if runs >= SHRINK_RUN_CAP:
                break
            target = dim.get(base)
            if dim.get(current) == target:
                continue
            try:
                candidate = dim.set(current, target)
            except (TypeError, ValueError):
                continue
            got, _payload, _detail = outcome_key(candidate, replay_check)
            runs += 1
            if got == key:
                current = candidate
                improved = True
    return current, runs


# -- the campaign ------------------------------------------------------------


@dataclass
class FuzzResult:
    """Everything one campaign produced (JSON-ready via :meth:`to_dict`)."""

    corpus: List[dict]
    coverage: List[str]
    failures: List[dict]
    stats: Dict[str, int]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "corpus": self.corpus,
            "coverage": self.coverage,
            "failures": self.failures,
            "stats": dict(self.stats),
        }


def fuzz(
    budget: int = 50,
    seed: int = 0,
    out: Optional[Path] = None,
    quiet: bool = False,
    seeds: Optional[List[RunSpec]] = None,
    corpus: Optional[Path] = None,
    emit_fixtures: Optional[Path] = None,
) -> FuzzResult:
    """Run one coverage-guided campaign of ``budget`` mutations.

    Pure function of ``(budget, seed)``: the corpus entries, coverage
    feature list, and shrunk failure specs are identical across re-runs.
    ``out`` (a directory) gets ``corpus.json``, ``coverage.json`` and
    one ``failures/<key>.json`` repro file per distinct failure key.
    ``seeds`` overrides the initial corpus (tests use a short list);
    ``corpus`` additionally reseeds from a previous campaign's
    ``corpus.json`` (nightly runs resume where the last one stopped),
    still a pure function of ``(budget, seed, corpus bytes)``.
    ``emit_fixtures`` writes every admitted corpus spec as a standalone
    repro JSON — known-clean scenarios a regression test can pin.
    """
    rng = random.Random(seed)
    say = (lambda *a: None) if quiet else (lambda *a: print(*a, flush=True))

    corpus_specs: List[RunSpec] = []
    corpus_rows: List[dict] = []
    coverage: Set[str] = set()
    failures: Dict[str, dict] = {}
    stats = {
        "budget": budget,
        "runs": 0,
        "corpus": 0,
        "rejected": 0,
        "shrink_runs": 0,
        "failures": 0,
        "duplicate_failures": 0,
    }

    def record_failure(
        spec: RunSpec, key: str, detail: str, origin: str, ops: List[str]
    ) -> None:
        if key in failures:
            stats["duplicate_failures"] += 1
            return
        say(f"  FAILURE {key}: {detail}")
        minimal, runs = shrink(spec, key, seed=seed)
        stats["shrink_runs"] += runs
        stats["failures"] += 1
        failures[key] = {
            "key": key,
            "detail": detail,
            "origin": origin,
            "ops": ops,
            "shrink_runs": runs,
            "spec_hash": minimal.content_hash(),
            "spec": minimal.to_dict(),
        }
        say(f"  shrunk in {runs} runs -> {minimal.content_hash()[:12]}")

    def consider(spec: RunSpec, origin: str, ops: List[str]) -> None:
        key, payload, detail = outcome_key(spec)
        stats["runs"] += 1
        if payload is not None:
            feats = features(payload)
            new = feats - coverage
        else:
            feats, new = set(), set()
        if key is not None:
            coverage.update(feats)
            record_failure(spec, key, detail, origin, ops)
            return
        if not new:
            stats["rejected"] += 1
            return
        # novelty must also be *reproducible* before seeding more work
        # off it: the byte-determinism oracle runs on corpus admission
        key2, _p2, detail2 = outcome_key(spec, replay_check=True)
        stats["runs"] += 1
        if key2 is not None:
            coverage.update(feats)
            record_failure(spec, key2, detail2, origin, ops)
            return
        coverage.update(feats)
        corpus_specs.append(spec)
        corpus_rows.append(
            {
                "label": spec.label,
                "origin": origin,
                "ops": ops,
                "new_features": sorted(new),
                "spec_hash": spec.content_hash(),
                # the full spec rides along so a later campaign (or a
                # fixture emitter) can resume from this corpus file
                "spec": spec.to_dict(),
            }
        )
        stats["corpus"] = len(corpus_specs)
        say(f"  corpus+= {spec.label} (+{len(new)} features)")

    say(f"fuzz: seeding corpus (seed={seed})")
    initial = seeds if seeds is not None else seed_specs(seed)
    if corpus is not None:
        resumed = load_corpus(corpus, exclude={s.content_hash() for s in initial})
        say(f"fuzz: resuming {len(resumed)} corpus entr(ies) from {corpus}")
        initial = initial + resumed
    for spec in initial:
        say(f"[seed] {spec.label}")
        consider(spec, origin="seed", ops=[])

    for i in range(budget):
        if not corpus_specs:
            say("corpus is empty (every seed failed): stopping early")
            break
        parent_idx = rng.randrange(len(corpus_specs))
        parent = corpus_specs[parent_idx]
        mutant, ops = mutate(parent, rng)
        mutant = mutant.replace(label=f"fuzz-{seed}-{i:04d}")
        say(
            f"[{i + 1}/{budget}] {mutant.label} <- "
            f"{parent.label}: {', '.join(ops) or 'no-op'}"
        )
        consider(mutant, origin=parent.label, ops=ops)

    result = FuzzResult(
        corpus=corpus_rows,
        coverage=sorted(coverage),
        failures=[failures[k] for k in sorted(failures)],
        stats=stats,
    )
    if out is not None:
        _write_outputs(Path(out), result)
    if emit_fixtures is not None:
        _write_fixtures(Path(emit_fixtures), corpus_specs)
        say(f"fuzz: {len(corpus_specs)} fixture(s) in {emit_fixtures}")
    say(
        f"\nfuzz done: {stats['runs']} runs, corpus {stats['corpus']}, "
        f"{len(result.coverage)} features, {stats['failures']} failure(s)"
    )
    return result


def _failure_filename(entry: dict) -> str:
    slug = "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in entry["key"])
    return f"{slug[:60]}-{entry['spec_hash'][:12]}.json"


def _write_outputs(out: Path, result: FuzzResult) -> None:
    out.mkdir(parents=True, exist_ok=True)
    (out / "corpus.json").write_text(
        json.dumps(
            {"entries": result.corpus, "stats": result.stats},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    (out / "coverage.json").write_text(
        json.dumps(
            {"features": result.coverage, "stats": result.stats},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    fail_dir = out / "failures"
    fail_dir.mkdir(exist_ok=True)
    from .runspec import SCHEMA_VERSION

    for entry in result.failures:
        doc = {
            "schema": SCHEMA_VERSION,
            "spec": entry["spec"],
            "failure": {
                k: entry[k] for k in ("key", "detail", "origin", "ops", "shrink_runs")
            },
        }
        path = fail_dir / _failure_filename(entry)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _write_fixtures(out: Path, specs: List[RunSpec]) -> None:
    """One standalone repro JSON per admitted corpus spec.

    Every file is loadable with :meth:`RunSpec.from_json` and carries no
    failure record — the regression suite asserts these stay *clean*.
    """
    out.mkdir(parents=True, exist_ok=True)
    for spec in specs:
        slug = "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in spec.label)
        path = out / f"{slug[:60]}-{spec.content_hash()[:12]}.json"
        path.write_text(spec.to_json() + "\n")


# -- replay ------------------------------------------------------------------


def replay(path: Path, quiet: bool = False) -> int:
    """Re-run a saved repro file; exit code 0 iff it reproduces.

    For a failure file written by :func:`fuzz`, "reproduces" means the
    recorded failure key fires again; for a bare spec file it means the
    run is clean.
    """
    say = (lambda *a: None) if quiet else (lambda *a: print(*a, flush=True))
    text = Path(path).read_text()
    doc = json.loads(text)
    expected = (doc.get("failure") or {}).get("key")
    spec = RunSpec.from_json(text)
    key, _payload, detail = outcome_key(spec, replay_check=True)
    if expected is not None:
        if key == expected:
            say(f"reproduced {key}: {detail}")
            return 0
        say(f"did NOT reproduce: expected {expected}, got {key or 'clean'}")
        return 1
    if key is None:
        say("clean run (no recorded failure to reproduce)")
        return 0
    say(f"spec fails: {key}: {detail}")
    return 1


# -- CLI ---------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided fuzzer over chaos scenario specs.",
    )
    parser.add_argument(
        "--budget", type=int, default=50, help="mutations to evaluate (default: 50)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    parser.add_argument(
        "--out",
        default="fuzz-out",
        metavar="DIR",
        help="output directory (default: fuzz-out)",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="re-run a saved repro file instead of fuzzing",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="PATH",
        help="resume: reseed from a previous campaign's corpus.json",
    )
    parser.add_argument(
        "--emit-fixtures",
        default=None,
        metavar="DIR",
        help="write each admitted corpus spec as a repro JSON under DIR",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress output"
    )
    args = parser.parse_args(argv)

    if args.replay is not None:
        return replay(Path(args.replay), quiet=args.quiet)

    result = fuzz(
        budget=args.budget,
        seed=args.seed,
        out=Path(args.out),
        quiet=args.quiet,
        corpus=Path(args.corpus) if args.corpus else None,
        emit_fixtures=Path(args.emit_fixtures) if args.emit_fixtures else None,
    )
    if not result.ok:
        print(
            f"FAIL: {len(result.failures)} distinct failure(s); "
            f"repro specs in {args.out}/failures/",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
