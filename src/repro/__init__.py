"""repro — a behavioural reproduction of the IBM S/390 Parallel Sysplex.

A discrete-event simulation library implementing the architecture of
Nick, Chung & Bowen, "Overview of IBM System/390 Parallel Sysplex — A
Commercial Parallel Processing System" (IPPS 1996): the Coupling Facility
(lock / cache / list structures), the MVS multi-system services (XCF,
couple data sets, heartbeat + SFM fencing, XES, WLM, ARM), the exploiting
subsystems (global lock manager, coherent buffer manager, database and
transaction managers, VTAM generic resources), the shared-nothing
baseline the paper argues against, and the workloads/benchmarks that
reproduce its Figure 3 and §4 overhead claims.

Quickstart::

    from repro import SysplexConfig, CpuConfig, run_oltp

    cfg = SysplexConfig(n_systems=4, cpu=CpuConfig(n_cpus=2))
    result = run_oltp(cfg, duration=1.0)
    print(result.row())
"""

from .config import (
    ArmConfig,
    CfConfig,
    CpuConfig,
    DasdConfig,
    DatabaseConfig,
    LinkConfig,
    OltpConfig,
    SysplexConfig,
    WlmConfig,
    XcfConfig,
    quick_sysplex,
)
from .executor import ResultCache, execute
from .metrics import RunResult, scalability_table
from .runner import build_loaded_sysplex, run_oltp, run_spec
from .runspec import RunSpec
from .sysplex import Instance, Sysplex
from .trace import Span, Tracer
from .trace_analysis import (
    Attribution,
    attribute,
    attribution_delta,
    format_attribution,
)

__version__ = "1.0.0"

__all__ = [
    "ArmConfig",
    "Attribution",
    "CfConfig",
    "CpuConfig",
    "DasdConfig",
    "DatabaseConfig",
    "Instance",
    "LinkConfig",
    "OltpConfig",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "Span",
    "Sysplex",
    "SysplexConfig",
    "Tracer",
    "WlmConfig",
    "XcfConfig",
    "attribute",
    "attribution_delta",
    "build_loaded_sysplex",
    "execute",
    "format_attribution",
    "quick_sysplex",
    "run_oltp",
    "run_spec",
    "scalability_table",
    "__version__",
]
