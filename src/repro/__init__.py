"""repro — a behavioural reproduction of the IBM S/390 Parallel Sysplex.

A discrete-event simulation library implementing the architecture of
Nick, Chung & Bowen, "Overview of IBM System/390 Parallel Sysplex — A
Commercial Parallel Processing System" (IPPS 1996): the Coupling Facility
(lock / cache / list structures), the MVS multi-system services (XCF,
couple data sets, heartbeat + SFM fencing, XES, WLM, ARM), the exploiting
subsystems (global lock manager, coherent buffer manager, database and
transaction managers, VTAM generic resources), the shared-nothing
baseline the paper argues against, and the workloads/benchmarks that
reproduce its Figure 3 and §4 overhead claims.

Quickstart — :func:`run` is the one entry point::

    from repro import CpuConfig, RunOptions, SysplexConfig, run

    cfg = SysplexConfig(n_systems=4, cpu=CpuConfig(n_cpus=2))
    result = run(cfg, options=RunOptions(router_policy="wlm"), duration=1.0)
    print(result.row())

or, declaratively (cache- and sweep-friendly)::

    from repro import RunSpec, execute

    spec = RunSpec(config=cfg, duration=1.0)
    result = run(spec)              # one spec, in-process
    results = run([spec, ...])      # many specs: routed through execute()
    results = execute([spec, ...], jobs=4, cache=".runcache")

Sweeps execute behind a pluggable :class:`ExecutorBackend` — the default
:class:`LocalPoolBackend` (in-process or a local process pool) or a
:class:`WorkQueueBackend` (a work-queue server feeding worker clients
over a socket) — with :func:`execute_iter` streaming completions as they
land and :class:`Progress` rendering per-point progress/ETA lines.
Every path returns byte-identical results for equal specs.
"""

from typing import Optional, Sequence, Union

from .chaos import ChaosConfig, ChaosEngine, FaultClassConfig
from .config import (
    ArmConfig,
    CfConfig,
    CpuConfig,
    DasdConfig,
    DatabaseConfig,
    LinkConfig,
    OltpConfig,
    SysplexConfig,
    WlmConfig,
    XcfConfig,
    quick_sysplex,
)
from .executor import (
    ExecutorBackend,
    LocalPoolBackend,
    Progress,
    ResultCache,
    WorkQueueBackend,
    execute,
    execute_iter,
)
from .invariants import InvariantChecker, Violation, check_reconvergence
from .metrics import RunResult, scalability_table
from .options import RunOptions
from .runner import build_loaded_sysplex, run_oltp, run_spec
from .runspec import RunSpec
from .sysplex import Instance, Sysplex
from .trace import Span, Tracer
from .trace_analysis import (
    Attribution,
    attribute,
    attribution_delta,
    format_attribution,
)

__version__ = "2.3.0"


def run(spec_or_config: Union[RunSpec, SysplexConfig],
        options: Optional[RunOptions] = None,
        **kwargs):
    """Run one simulation — the unified front door.

    Accepts either form of "what to run":

    * a :class:`SysplexConfig` — an OLTP window is run over it;
      ``options`` plus any :func:`repro.runner.run_oltp` keywords
      (``duration``, ``warmup``, ``label``, ``trace``) apply directly;
    * a :class:`RunSpec` — executed via its runner; ``options`` and
      keyword overrides (``duration=``, ``tracing=``, ...) are folded
      into the spec with :meth:`RunSpec.replace` first, so the result is
      identical to running the adjusted spec through the executor;
    * a sequence of :class:`RunSpec` — the whole sweep is routed through
      :func:`execute` (``jobs=``, ``cache=``, ``backend=``,
      ``progress=`` pass straight through) and the results come back in
      spec order.

    Returns whatever the runner returns — a :class:`RunResult` for OLTP
    runs, a JSON-serializable payload for scenario runners — or the list
    of them for a sweep.
    """
    if (isinstance(spec_or_config, Sequence)
            and not isinstance(spec_or_config, (str, bytes))):
        specs = list(spec_or_config)
        if not all(isinstance(s, RunSpec) for s in specs):
            raise TypeError("run() sweep form expects a sequence of RunSpec")
        if options is not None:
            specs = [s.replace(options=options) for s in specs]
        return execute(specs, **kwargs)
    if isinstance(spec_or_config, RunSpec):
        spec = spec_or_config
        if options is not None:
            spec = spec.replace(options=options)
        if kwargs:
            spec = spec.replace(**kwargs)
        return spec.run()
    if isinstance(spec_or_config, SysplexConfig):
        return run_oltp(spec_or_config, options=options, **kwargs)
    raise TypeError(
        f"run() expects a RunSpec or SysplexConfig, "
        f"got {type(spec_or_config).__name__}"
    )


#: The stable public surface.  Everything else under ``repro.*`` is
#: implementation detail and may move between minor versions.
__all__ = [
    "ArmConfig",
    "Attribution",
    "CfConfig",
    "ChaosConfig",
    "ChaosEngine",
    "CpuConfig",
    "DasdConfig",
    "DatabaseConfig",
    "ExecutorBackend",
    "FaultClassConfig",
    "Instance",
    "InvariantChecker",
    "LinkConfig",
    "LocalPoolBackend",
    "OltpConfig",
    "Progress",
    "ResultCache",
    "RunOptions",
    "RunResult",
    "RunSpec",
    "Span",
    "Sysplex",
    "SysplexConfig",
    "Tracer",
    "Violation",
    "WlmConfig",
    "WorkQueueBackend",
    "XcfConfig",
    "attribute",
    "attribution_delta",
    "build_loaded_sysplex",
    "check_reconvergence",
    "execute",
    "execute_iter",
    "format_attribution",
    "quick_sysplex",
    "run",
    "run_oltp",
    "run_spec",
    "scalability_table",
    "__version__",
]
