"""Aggregate trace spans into the overhead-attribution table.

Turns a :class:`repro.trace.Tracer`'s raw spans into the decomposition the
paper's §4 argument needs: *where* each microsecond of mean response time
goes — dispatch, lock, coherency, I/O, commit, other — per configuration
size, so the < 18 % / < 0.5 % data-sharing overheads can be reported per
category instead of only in aggregate.

Method: every span's **exclusive** time (its duration minus its direct
children's durations) is attributed to the nearest enclosing *stage*
category (:data:`repro.trace.STAGES`).  A ``cf.sync`` round trip issued
inside a lock acquisition therefore counts toward ``lock``; a DASD read
nested inside a buffer-coherency miss counts toward ``io`` (because
``io`` is itself a stage).  Stage spans partition a transaction's
response time by construction, so the attributed categories plus the
unattributed residual sum to the mean response time exactly; the
*residual* (abort processing, deadlock-retry backoff) being small is the
internal consistency check that no time was double counted or lost.

Reported categories fold the measured ``cpu`` stage into ``other``
(application + database path length is useful work, not sharing
overhead), keeping the table's shape at the issue's six rows:
``dispatch, lock, coherency, io, commit, other``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from .trace import STAGES, Tracer

__all__ = [
    "Attribution",
    "attribute",
    "attribution_extras",
    "attribution_delta",
    "format_attribution",
    "CATEGORIES",
]

#: Rows of the attribution table, in reporting order.
CATEGORIES = ("dispatch", "lock", "coherency", "io", "commit", "other")

_STAGE_SET = frozenset(STAGES)


@dataclass
class Attribution:
    """Per-category decomposition of mean transaction response time."""

    n_txns: int
    #: mean response time of the attributed transactions, in seconds
    response_mean: float
    #: seconds per transaction for each of CATEGORIES
    per_txn: Dict[str, float]
    #: percentage of mean response time for each of CATEGORIES
    pct: Dict[str, float]
    #: measured cpu stage (part of ``other``), seconds per transaction
    cpu_per_txn: float = 0.0
    #: unattributed remainder (part of ``other``), seconds per transaction
    residual_per_txn: float = 0.0
    #: drill-down detail: seconds per transaction by raw span category
    detail_per_txn: Dict[str, float] = field(default_factory=dict)
    #: CF command round trips per transaction (sync + async)
    cf_ops_per_txn: float = 0.0

    def total_pct(self) -> float:
        return sum(self.pct.values())


def _stage_of(spans, idx: int) -> Optional[str]:
    """The nearest enclosing stage category of span ``idx`` (or None)."""
    span = spans[idx]
    while True:
        if span.category in _STAGE_SET:
            return span.category
        if span.parent < 0:
            return None
        span = spans[span.parent]


def attribute(tracer: Tracer, start: float = 0.0,
              end: Optional[float] = None) -> Attribution:
    """Decompose mean response time over the measurement window.

    Only transactions that both *arrived* and *completed* inside
    ``[start, end]`` are attributed, so every one of their spans is in
    the trace and the categories sum to the mean response time exactly.
    """
    if end is None:
        end = tracer.sim.now
    txns = [t for t in tracer.completed if t[1] >= start and t[2] <= end]
    ids = {t[0] for t in txns}
    n = len(txns)
    if n == 0:
        zeros = dict.fromkeys(CATEGORIES, 0.0)
        return Attribution(0, math.nan, dict(zeros), dict(zeros))
    response_total = sum(t[3] for t in txns)

    spans = tracer.spans
    child_time = [0.0] * len(spans)
    for span in spans:
        if span.parent >= 0 and span.end is not None:
            child_time[span.parent] += span.end - span.start

    stage_totals = dict.fromkeys(STAGES, 0.0)
    detail_totals: Dict[str, float] = {}
    cf_ops = 0
    for i, span in enumerate(spans):
        if span.end is None or span.txn_id not in ids:
            continue
        duration = span.end - span.start
        detail_totals[span.category] = (
            detail_totals.get(span.category, 0.0) + duration
        )
        if span.category in ("cf.sync", "cf.async"):
            cf_ops += 1
        stage = _stage_of(spans, i)
        if stage is None:
            continue
        stage_totals[stage] += duration - child_time[i]

    measured = sum(stage_totals.values())
    residual = response_total - measured
    per_txn = {
        c: stage_totals[c] / n for c in CATEGORIES if c != "other"
    }
    per_txn["other"] = (stage_totals["cpu"] + residual) / n
    response_mean = response_total / n
    pct = {
        c: 100.0 * v / response_mean if response_mean else 0.0
        for c, v in per_txn.items()
    }
    return Attribution(
        n_txns=n,
        response_mean=response_mean,
        per_txn=per_txn,
        pct=pct,
        cpu_per_txn=stage_totals["cpu"] / n,
        residual_per_txn=residual / n,
        detail_per_txn={c: v / n for c, v in sorted(detail_totals.items())},
        cf_ops_per_txn=cf_ops / n,
    )


def attribution_extras(tracer: Tracer, start: float = 0.0,
                       end: Optional[float] = None) -> Dict[str, float]:
    """Flatten an attribution into ``RunResult.extras`` keys.

    Keys (all floats): ``trace.txns``, ``trace.rt_us`` (mean response of
    the attributed transactions), ``trace.<category>_us`` and
    ``trace.<category>_pct`` for each of :data:`CATEGORIES`, plus the
    ``other`` breakdown ``trace.other_cpu_us`` / ``trace.residual_us``
    and the CF drill-down ``trace.cf_ops_per_txn`` / ``trace.cf_us``.
    """
    a = attribute(tracer, start, end)
    extras: Dict[str, float] = {
        "trace.txns": float(a.n_txns),
        "trace.rt_us": 1e6 * a.response_mean if a.n_txns else 0.0,
    }
    for c in CATEGORIES:
        extras[f"trace.{c}_us"] = 1e6 * a.per_txn[c]
        extras[f"trace.{c}_pct"] = a.pct[c]
    extras["trace.other_cpu_us"] = 1e6 * a.cpu_per_txn
    extras["trace.residual_us"] = 1e6 * a.residual_per_txn
    extras["trace.cf_ops_per_txn"] = a.cf_ops_per_txn
    extras["trace.cf_us"] = 1e6 * a.detail_per_txn.get("cf.sync", 0.0)
    return extras


def attribution_delta(base_extras: Dict[str, float],
                      other_extras: Dict[str, float]) -> Dict[str, float]:
    """Per-category µs/transaction deltas between two traced runs.

    Feeds TAB1: ``attribution_delta(extras_1system, extras_2system)``
    says where the data-sharing transition cost actually goes.
    """
    out: Dict[str, float] = {}
    for c in CATEGORIES:
        key = f"trace.{c}_us"
        if key in base_extras and key in other_extras:
            out[c] = other_extras[key] - base_extras[key]
    if out:
        out["total"] = sum(v for k, v in out.items() if k != "total")
    return out


def format_attribution(a: Attribution, label: str = "") -> str:
    """Render one attribution as a fixed-width table (benchmark output)."""
    lines = [
        f"overhead attribution{' — ' + label if label else ''} "
        f"({a.n_txns} txns, rt mean {1e6 * a.response_mean:.1f} us)",
        f"{'category':<12s} {'us/txn':>10s} {'% of rt':>8s}",
    ]
    for c in CATEGORIES:
        lines.append(
            f"{c:<12s} {1e6 * a.per_txn[c]:>10.1f} {a.pct[c]:>7.1f}%"
        )
    lines.append(
        f"{'  (cpu)':<12s} {1e6 * a.cpu_per_txn:>10.1f}"
        f" {'':>8s}  (inside 'other')"
    )
    lines.append(
        f"{'  (residual)':<12s} {1e6 * a.residual_per_txn:>10.1f}"
        f" {'':>8s}  (inside 'other')"
    )
    lines.append(
        f"{'cf ops/txn':<12s} {a.cf_ops_per_txn:>10.2f}"
        f"   ({1e6 * a.detail_per_txn.get('cf.sync', 0.0):.1f} us sync)"
    )
    return "\n".join(lines)
