"""The Parallel Sysplex builder: wires every component of Figure 1 and 2.

``Sysplex(config)`` constructs the full stack — sysplex timer, shared
DASD, couple data sets, coupling facilities with lock/cache/list
structures, per-system MVS services (XCF, heartbeat/SFM, WLM, ARM, XES)
and per-system subsystems (IRLM-like lock manager, buffer manager, log
manager, database manager, transaction manager) — and connects the
failure/recovery plumbing so that killing a :class:`SystemNode` exercises
the paper's whole §2.5 story: heartbeat detection, fencing, retained
locks, ARM-driven restart, peer recovery, workload redistribution.

``add_system()`` implements §2.4's non-disruptive growth: a new member
joins a running sysplex and starts attracting work through WLM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .cf.cache import CacheStructure
from .cf.facility import CouplingFacility
from .cf.list import ListStructure
from .cf.lock import LockStructure
from .config import SysplexConfig
from .hardware.dasd import DasdDevice, DasdFarm
from .hardware.failures import FailureInjector
from .hardware.links import LinkSet, MessageFabric
from .hardware.system import SystemNode
from .hardware.timer import SysplexTimer
from .metrics import RunResult
from .mvs.arm import AutomaticRestartManager
from .mvs.cds import CoupleDataSet
from .mvs.heartbeat import SysplexMonitor
from .mvs.wlm import WorkloadManager
from .mvs.xcf import XcfGroupServices
from .mvs.xes import XesServices
from .simkernel import MetricSet, RandomStreams, Simulator
from .subsystems.buffermgr import BufferManager, CastoutEngine
from .subsystems.database import DatabaseManager
from .subsystems.lockmgr import DeadlockDetector, LockManager, LockSpace
from .subsystems.logmgr import LogManager
from .subsystems.recovery import PeerRecovery
from .subsystems.txn import SysplexRouter, TransactionManager
from .trace import Tracer
from .trace_analysis import attribution_extras

__all__ = ["Sysplex", "Instance"]

LOCK_STRUCTURE = "IRLMLOCK1"
CACHE_STRUCTURE = "GBP0"
LIST_STRUCTURE = "WORKQ1"


@dataclass
class Instance:
    """One system's full software stack."""

    node: SystemNode
    lockmgr: LockManager
    buffers: BufferManager
    log: LogManager
    db: DatabaseManager
    tm: TransactionManager
    xes_lock: Optional[object] = None
    xes_cache: Optional[object] = None
    xes_list: Optional[object] = None
    castout: Optional[CastoutEngine] = None


class Sysplex:
    """A fully wired Parallel Sysplex simulation."""

    def __init__(self, config: SysplexConfig,
                 monitoring: bool = True,
                 router_policy: str = "threshold",
                 tracing: bool = False,
                 scheduler: str = "heap",
                 collapse: Optional[bool] = None):
        self.config = config
        # scheduler picks the kernel's calendar backend ("heap" is the
        # golden default; "calendar" is the sweep backend — bit-identical
        # results either way); collapse=True turns on event merging on
        # the CF command fast path and the uncontended CPU dispatch
        # (statistically neutral, NOT byte-identical at saturation).
        # None defers to the repro.cf.commands.COLLAPSE module default.
        from .cf import commands as _cf_commands

        self._collapse_events = bool(
            _cf_commands.COLLAPSE if collapse is None else collapse
        ) and not tracing
        self.sim = Simulator(scheduler=scheduler)
        # collapse also elides terminal events of processes nobody waits
        # on (fire-and-forget transactions, shipments, castout I/O)
        self.sim._elide_done = self._collapse_events
        self.streams = RandomStreams(config.seed)
        self.metrics = MetricSet(self.sim)
        # transaction-level tracing (overhead attribution): a passive
        # observer — when off, no tracer object exists and every
        # instrumentation point reduces to one `is None` test
        self.tracer = Tracer(self.sim) if tracing else None
        #: the canonical failure injector for this sysplex: experiments
        #: and the chaos engine schedule outages through it so the event
        #: timeline lands on the RunResult (zero sim impact when unused)
        self.injector = FailureInjector(self.sim)
        #: (time, label) rows for degraded-mode outcomes — recovery paths
        #: that could not run (e.g. a rebuild with no live CF) but must
        #: not kill the run; the invariant checker reads these
        self.degraded_events: List[tuple] = []

        # --- hardware -----------------------------------------------------
        self.timer = SysplexTimer(self.sim, sync_interval=1.0)
        self.fabric = MessageFabric(self.sim, config.xcf)
        farm_rng = self.streams.stream("dasd")
        self.farm = DasdFarm(self.sim, config.dasd, farm_rng,
                             n_devices=config.n_dasd)
        if self._collapse_events:
            for dev in self.farm.devices:
                dev.collapse = True
        self.cds = CoupleDataSet(
            self.sim,
            DasdDevice(self.sim, config.dasd, farm_rng, "cds-primary"),
            DasdDevice(self.sim, config.dasd, farm_rng, "cds-alternate"),
        )

        # --- coupling facilities + structures --------------------------------
        self.cfs: List[CouplingFacility] = []
        self.xes = XesServices(self.sim, config.cf, trace=self.tracer,
                               streams=self.streams, collapse=collapse)
        if config.data_sharing and config.n_cfs > 0:
            for i in range(config.n_cfs):
                cf = CouplingFacility(self.sim, config.cf, name=f"CF{i + 1:02d}")
                cf.trace = self.tracer
                self.cfs.append(cf)
                self.xes.add_facility(cf)
            self.xes.allocate(
                LockStructure(LOCK_STRUCTURE, config.cf.lock_table_entries)
            )
            self.xes.allocate(
                CacheStructure(CACHE_STRUCTURE, config.cf.cache_elements,
                               config.cf.cache_directory_entries)
            )
            self.xes.allocate(ListStructure(LIST_STRUCTURE, n_headers=8,
                                            n_locks=4))
            # system-managed structure duplexing: stand up hot secondary
            # instances in the second CF per the configured policy
            if config.cf.duplex != "none" and len(self.cfs) >= 2:
                secondary_cf = self.cfs[1]
                if config.cf.duplexes("lock"):
                    self.xes.establish_duplexing(
                        LOCK_STRUCTURE,
                        lambda: LockStructure(LOCK_STRUCTURE,
                                              config.cf.lock_table_entries),
                        secondary_cf,
                    )
                if config.cf.duplexes("cache"):
                    self.xes.establish_duplexing(
                        CACHE_STRUCTURE,
                        lambda: CacheStructure(
                            CACHE_STRUCTURE, config.cf.cache_elements,
                            config.cf.cache_directory_entries),
                        secondary_cf,
                    )
                if config.cf.duplexes("list"):
                    self.xes.establish_duplexing(
                        LIST_STRUCTURE,
                        lambda: ListStructure(LIST_STRUCTURE, n_headers=8,
                                              n_locks=4),
                        secondary_cf,
                    )

        # --- sysplex-wide services --------------------------------------------
        self.xcf = XcfGroupServices(self.sim, self.fabric)
        self.monitoring = monitoring
        self.monitor = SysplexMonitor(self.sim, config.xcf, self.cds, self.xcf)
        self.wlm = WorkloadManager(self.sim, config.wlm,
                                   self.streams.stream("wlm"))
        self.lock_space = LockSpace(self.sim)
        self.deadlocks = DeadlockDetector(self.sim, self.lock_space,
                                          interval=config.db.deadlock_interval)
        self.recovery = PeerRecovery(self.sim, config.arm, self.lock_space)

        # --- systems ------------------------------------------------------------
        self.nodes: List[SystemNode] = []
        self.instances: Dict[str, Instance] = {}
        for i in range(config.n_systems):
            self._build_system(i)

        self.arm = AutomaticRestartManager(self.sim, config.arm, self.wlm,
                                           self.nodes)
        self.router = SysplexRouter(
            self.sim,
            [inst.tm for inst in self.instances.values()],
            self.wlm,
            config.xcf,
            policy=router_policy,
            trace=self.tracer,
            metrics=self.metrics,
        )
        for inst in self.instances.values():
            self._register_arm(inst)
        self.monitor.on_partition(self._on_partition)
        self.monitor.on_rejoin(self._revive_system)
        for cf in self.cfs:
            cf.on_failure(self._on_cf_failed)
        from .mvs.sfm import SfmPolicyEngine

        #: failure-management policy engine: decides duplex-switch vs
        #: rebuild and records recovery-incident timelines.  Purely
        #: event-driven — costs nothing until a CF actually fails.
        self.sfm = SfmPolicyEngine(self)
        from .mvs.operations import OperationsConsole

        self.console = OperationsConsole(self)

    # -- construction helpers ---------------------------------------------------
    def _build_system(self, index: int) -> Instance:
        cfg = self.config
        node = SystemNode(self.sim, cfg, index,
                          tod=self.timer.attach(drift_ppm=(index - 8) * 2.0))
        node.cpu.collapse = self._collapse_events
        for cf in self.cfs:
            node.cf_links[cf.name] = LinkSet(
                self.sim, cfg.link, name=f"{node.name}-{cf.name}"
            )
        self.nodes.append(node)
        inst = self._build_instance(node)
        self.instances[node.name] = inst
        if self.monitoring:
            self.monitor.add_system(node)
        self.wlm.watch(node)
        return inst

    def _build_instance(self, node: SystemNode) -> Instance:
        """Build the subsystem stack for one system."""
        cfg = self.config
        sharing = bool(self.cfs) and cfg.data_sharing
        xes_lock = xes_cache = xes_list = None
        if sharing:
            # duplex-aware connect: plain simplex connections when the
            # structure has no pair (the duplex="none" default)
            xes_lock = self.xes.connect_duplexed(node, LOCK_STRUCTURE)
            xes_cache = self.xes.connect_duplexed(node, CACHE_STRUCTURE)
            xes_list = self.xes.connect_duplexed(node, LIST_STRUCTURE)

        lockmgr = LockManager(self.sim, self.lock_space,
                              xes_lock if sharing else _LocalXes(node),
                              cfg.xcf, node.name, trace=self.tracer)
        buffers = BufferManager(self.sim, node, cfg.db, self.farm,
                                xes=xes_cache, trace=self.tracer)
        log_dev = DasdDevice(self.sim, cfg.dasd,
                             self.streams.stream(f"log-{node.name}"),
                             name=f"log-{node.name}")
        log = LogManager(self.sim, node, cfg.db, log_dev)
        db = DatabaseManager(self.sim, node, cfg.db, lockmgr, buffers, log,
                             trace=self.tracer)
        tm = TransactionManager(self.sim, node, db, cfg.oltp, self.wlm,
                                self.metrics,
                                self.streams.stream(f"tm-{node.name}"),
                                max_tasks=32 * cfg.cpu.n_cpus,
                                trace=self.tracer)
        inst = Instance(node, lockmgr, buffers, log, db, tm,
                        xes_lock, xes_cache, xes_list)
        if sharing and not self._has_active_castout():
            inst.castout = CastoutEngine(self.sim, xes_cache, self.farm)
        if not sharing:
            self.sim.process(self._deferred_writer(inst),
                             name=f"dwq-{node.name}")
        return inst

    def _deferred_writer(self, inst: Instance):
        while inst.db.alive:
            yield self.sim.timeout(0.05)
            yield from inst.buffers.flush_deferred(limit=128)

    def _register_arm(self, inst: Instance) -> None:
        self.arm.register(
            f"DBMS-{inst.node.name}", inst.node,
            lambda el, target, failed=inst: self._arm_recovery(failed, target),
            level=0,
        )

    # -- failure / recovery wiring --------------------------------------------------
    def _on_partition(self, node: SystemNode) -> None:
        inst = self.instances.get(node.name)
        if inst is None:
            return
        if inst.db.alive:
            inst.db.fail()
        # CF-side fencing: the dead system's connectors are disconnected
        # (on both instances of a duplexed structure)
        for xes in (inst.xes_lock, inst.xes_cache, inst.xes_list):
            if xes is None:
                continue
            if not xes.structure.lost:
                xes.structure.disconnect(xes.connector)
            # purge the *pair's current* secondary, not the connection's
            # cached binding: a break + re-establish between this
            # system's death and its detection leaves the dead
            # connection unattached (re-attach skips dead nodes) while
            # the fresh secondary cloned the not-yet-fenced registrations
            pair = getattr(xes, "pair", None)
            if pair is not None:
                pair.purge_connector(xes.connector)
                if xes in pair.connections:
                    pair.connections.remove(xes)
        if inst.castout is not None:
            inst.castout.stop()
            self._reassign_castout(exclude=node)
        self.metrics.counter("failures.partitioned").add()
        self.arm.system_failed(node)

    def _reassign_castout(self, exclude: SystemNode) -> None:
        for inst in self.instances.values():
            if inst.node is exclude or not inst.node.alive:
                continue
            if inst.xes_cache is not None and inst.castout is None:
                inst.castout = CastoutEngine(self.sim, inst.xes_cache,
                                             self.farm)
                return

    def _arm_recovery(self, failed: Instance, target: SystemNode):
        """ARM restart body: the failed DBMS restarts on ``target`` and
        performs takeover recovery, releasing retained locks."""
        peer = self.instances.get(target.name)
        if peer is None or not peer.db.alive:
            return
        try:
            yield from self.recovery.recover(failed.db, peer.db)
        except Exception as exc:
            # the recoverer lost its coupling path (or died) mid-recovery:
            # retained locks stay protected; recorded so the invariant
            # checker excuses them instead of the run dying here
            self._degraded(
                f"recovery-failed:{failed.node.name}:{type(exc).__name__}"
            )
            return
        self.metrics.counter("failures.recovered").add()

    def _revive_system(self, node: SystemNode) -> None:
        """A failed system came back (planned outage ended / repair): it
        re-IPLs with a fresh subsystem stack — cold buffer pool, new CF
        connections — and rejoins workload balancing (§2.5)."""
        old = self.instances.get(node.name)
        if old is not None and old.db.alive:
            # The outage was shorter than the SFM detection threshold, so
            # the previous incarnation was never partitioned out.  A
            # rejoining system always forces its prior instance through
            # failure cleanup first (XCF does not allow two incarnations):
            # retained locks, connector teardown, ARM-driven recovery.
            self._on_partition(node)
        try:
            inst = self._build_instance(node)
        except Exception as exc:
            # re-IPL failed (e.g. no structure to connect to after a total
            # coupling outage): the image stays up but its subsystems
            # cannot join — a degraded-mode outcome, not a dead run
            self._degraded(f"revive-failed:{node.name}:{type(exc).__name__}")
            return
        self.instances[node.name] = inst
        if old is not None and old.tm in self.router.tms:
            self.router.tms[self.router.tms.index(old.tm)] = inst.tm
        else:
            self.router.add_manager(inst.tm)
        self.arm.deregister(f"DBMS-{node.name}")
        self._register_arm(inst)
        self.metrics.counter("systems.rejoined").add()

    def _has_active_castout(self) -> bool:
        return any(
            i.castout is not None and i.castout.active and i.node.alive
            for i in self.instances.values()
        )

    # -- CF failover (paper §3.3: "Multiple CF's ... for availability") ---------
    def _on_cf_failed(self, cf: CouplingFacility) -> None:
        self.metrics.counter("cf.failures").add()
        if self.xes.duplex_pairs:
            # duplexed run: SFM chooses duplex-switch vs rebuild per
            # structure and records the recovery timeline
            self.sfm.cf_failed(cf)
            return
        if not self.xes.live_facilities():
            # total coupling outage: nothing to rebuild into.  Recorded
            # as a degraded-mode outcome rather than silently ignored —
            # the invariant checker excuses non-reconvergence behind it.
            self._degraded(f"no-live-cf-after:{cf.name}")
            return
        self.metrics.counter("cf.rebuilds_started").add()
        self.sfm.rebuild_started(cf, [
            (LOCK_STRUCTURE, "lock"),
            (CACHE_STRUCTURE, "cache"),
            (LIST_STRUCTURE, "list"),
        ])
        self.sim.process(self._rebuild_guarded(cf),
                         name=f"rebuild-after-{cf.name}")

    def _degraded(self, label: str) -> None:
        self.degraded_events.append((self.sim.now, label))
        self.metrics.counter("degraded.events").add()

    def _rebuild_guarded(self, cf: CouplingFacility):
        """Run the structure rebuild, converting unrecoverable situations
        (every CF died mid-rebuild, connectors gone) into recorded
        degraded-mode outcomes.  A raising process whose failure nobody
        waits on would otherwise take down the whole simulation — under
        chaos, ill-timed second failures make that a real path."""
        try:
            yield from self._rebuild_structures()
        except Exception as exc:
            self._degraded(
                f"rebuild-abandoned-after:{cf.name}:{type(exc).__name__}"
            )
            self.sfm.rebuild_abandoned(cf)
        else:
            self.metrics.counter("cf.rebuilds").add()
            self.sfm.rebuild_finished(cf)

    def _rebuild_structures(self, names=(LOCK_STRUCTURE, CACHE_STRUCTURE,
                                         LIST_STRUCTURE)):
        """Rebuild the named structures into a surviving CF from the
        connectors' local state, then swap the instances onto the new
        connections.

        Lock interest and persistent lock records are reconstructed from
        the lock managers' ``held`` maps; cache registrations from the
        buffer pools (local copies are assumed current — a simplification
        of DB2's GRECP recovery, see DESIGN.md); list contents are lost
        (queued entries are in-flight work, counted as failed).  SFM's
        managed path passes a single name when only that structure needs
        recovery (e.g. the others duplex-switched instead).
        """
        from .cf.lock import LockMode

        cfg = self.config

        def lock_contrib(inst: Instance):
            def fn(xconn):
                structure, conn = xconn.structure, xconn.connector

                def replay():
                    # snapshot `held` at CF-execution time: tasks that
                    # abandoned their locks while the rebuild was being
                    # issued are then correctly absent
                    for modes in inst.lockmgr.held.values():
                        for r, m in modes.items():
                            structure.force_record(conn, r, m)
                            if m == LockMode.EXCL:
                                structure.write_record(
                                    conn, r, {"sys": inst.node.name})

                n_units = sum(len(m) for m in inst.lockmgr.held.values())
                yield from xconn.sync(
                    replay, service_factor=max(1.0, 0.25 * n_units))
                inst.lockmgr.xes = xconn
                inst.xes_lock = xconn

            return fn

        def cache_contrib(inst: Instance):
            def fn(xconn):
                cache, conn = xconn.structure, xconn.connector
                # only buffers that were VALID at failure time may be
                # re-registered as current; cross-invalidated copies stay
                # invalid and refresh through the normal miss path
                old = inst.xes_cache
                old_vec = (
                    old.structure.vectors.get(old.connector.conn_id)
                    if old is not None else None
                )
                pool = [
                    (page, buf)
                    for page, buf in inst.buffers._pool.items()
                    if old_vec is None or old_vec.test(buf.slot)
                ]

                def reregister():
                    for page, buf in pool:
                        cache.register_and_read(conn, page, buf.slot)

                yield from xconn.sync(
                    reregister, service_factor=max(1.0, 0.1 * len(pool)))
                inst.buffers.xes = xconn
                inst.xes_cache = xconn

            return fn

        def list_contrib(inst: Instance):
            def fn(xconn):
                yield from xconn.sync(lambda: None)  # (re)connect handshake
                inst.xes_list = xconn

            return fn

        alive = [i for i in self.instances.values() if i.node.alive]
        if LOCK_STRUCTURE in names:
            yield from self.xes.rebuild(
                LOCK_STRUCTURE,
                lambda: LockStructure(LOCK_STRUCTURE,
                                      cfg.cf.lock_table_entries),
                {i.node: lock_contrib(i) for i in alive},
            )
        if CACHE_STRUCTURE in names:
            yield from self.xes.rebuild(
                CACHE_STRUCTURE,
                lambda: CacheStructure(CACHE_STRUCTURE, cfg.cf.cache_elements,
                                       cfg.cf.cache_directory_entries),
                {i.node: cache_contrib(i) for i in alive},
            )
        if LIST_STRUCTURE in names:
            yield from self.xes.rebuild(
                LIST_STRUCTURE,
                lambda: ListStructure(LIST_STRUCTURE, n_headers=8, n_locks=4),
                {i.node: list_contrib(i) for i in alive},
            )
        # the castout engine died with the old cache structure
        if CACHE_STRUCTURE in names:
            for inst in self.instances.values():
                if inst.castout is not None:
                    inst.castout.stop()
                    inst.castout = None
            for inst in alive:
                if inst.xes_cache is not None:
                    inst.castout = CastoutEngine(self.sim, inst.xes_cache,
                                                 self.farm)
                    break

    def _restart_castout(self) -> None:
        """Ensure a live castout drainer exists for the shared cache.

        The engine's drain loop exits when its connection goes
        non-operational — a window every CF failure opens, even one a
        duplex switch closes 20 ms later.  The rebuild path recreates
        the engine as part of re-wiring; the switch path calls this
        instead, since its connections rebind in place."""
        for inst in self.instances.values():
            if inst.castout is not None and inst.castout.active:
                return
        for inst in self.instances.values():
            if (inst.node.alive and inst.xes_cache is not None
                    and inst.xes_cache.operational):
                inst.castout = CastoutEngine(self.sim, inst.xes_cache,
                                             self.farm)
                return

    # -- growth (paper §2.4) -------------------------------------------------------
    def add_system(self) -> Instance:
        """Non-disruptively introduce a new system into the running sysplex."""
        if len(self.nodes) >= 32:
            raise RuntimeError("paper supports up to 32 systems")
        index = len(self.nodes)
        inst = self._build_system(index)
        self.arm.nodes = self.nodes
        self._register_arm(inst)
        self.router.add_manager(inst.tm)
        return inst

    # -- measurement -----------------------------------------------------------------
    def reset_measurement(self) -> None:
        """Snapshot statistics after warmup (non-destructive: the WLM
        samplers keep reading the same busy-area counters)."""
        for tally in self.metrics.tallies.values():
            tally.reset()
        self._busy_snapshot = {
            name: inst.node.cpu.engines.busy_area()
            for name, inst in self.instances.items()
        }
        self._cf_snapshot = [cf.processors.busy_area() for cf in self.cfs]
        self._measure_start = self.sim.now
        self._completed_start = self.metrics.counter("txn.completed").count
        self._events_start = self.sim.events_processed

    def collect(self, label: str) -> RunResult:
        """Summarize the window since :meth:`reset_measurement`."""
        start = getattr(self, "_measure_start", 0.0)
        completed0 = getattr(self, "_completed_start", 0)
        busy0 = getattr(self, "_busy_snapshot", {})
        cf0 = getattr(self, "_cf_snapshot", [0.0] * len(self.cfs))
        duration = self.sim.now - start
        completed = self.metrics.counter("txn.completed").count - completed0
        rt = self.metrics.tally("txn.response")
        rt_p50, rt_p90, rt_p95, rt_p99 = rt.percentiles((50, 90, 95, 99))

        def _window_util(resource, base: float, capacity: int) -> float:
            if duration <= 0:
                return 0.0
            return (resource.busy_area() - base) / (duration * capacity)

        cf_util = 0.0
        for i, cf in enumerate(self.cfs):
            base = cf0[i] if i < len(cf0) else 0.0
            cf_util = max(
                cf_util,
                _window_util(cf.processors, base, cf.config.n_cpus),
            )
        lock_struct = self.xes.find(LOCK_STRUCTURE) if self.cfs else None
        extras = {
            "deadlocks": float(self.lock_space.deadlocks),
            "lock_waits": float(self.lock_space.waits),
            "shipped": float(self.router.shipped),
        }
        if lock_struct is not None:
            extras["false_contention_rate"] = lock_struct.false_contention_rate()
            extras["cf_lock_requests"] = float(lock_struct.requests)
        if self.tracer is not None:
            extras.update(
                attribution_extras(self.tracer, start=start, end=self.sim.now)
            )
        return RunResult(
            label=label,
            duration=duration,
            completed=completed,
            throughput=completed / duration if duration > 0 else 0.0,
            response_mean=rt.mean,
            response_p50=rt_p50,
            response_p90=rt_p90,
            response_p95=rt_p95,
            response_p99=rt_p99,
            cpu_utilization={
                name: _window_util(
                    inst.node.cpu.engines,
                    busy0.get(name, 0.0),
                    inst.node.cpu.n_cpus,
                )
                for name, inst in self.instances.items()
                if inst.node.alive
            },
            cf_utilization=cf_util,
            extras=extras,
            events=self.injector.log_events(),
            sim_events=(
                self.sim.events_processed - getattr(self, "_events_start", 0)
            ),
        )


class _LocalXes:
    """Null CF connection for the non-data-sharing single-system case.

    Lock requests are granted from a private in-memory table at pure local
    cost — no coupling, exactly the §4 base case.
    """

    def __init__(self, node: SystemNode):
        self.node = node
        self.structure = LockStructure(f"LOCAL-{node.name}", 1 << 16)
        self.connector = self.structure.connect(node.name)

    def sync(self, fn, **_kw):
        # local latch: a few hundred nanoseconds of path length, charged
        # as plain CPU without a link round trip
        yield from self.node.cpu.consume(0.5e-6)
        return fn()

    def async_(self, fn, **_kw):
        yield from self.node.cpu.consume(0.5e-6)
        return fn()

    def instances(self):
        return [(self.structure, self.connector)]

    @property
    def operational(self) -> bool:
        return True
