"""Campaign driver: thousand-point overnight grids with a resumable manifest.

A *campaign* is a large deterministic grid of :class:`~repro.runspec.
RunSpec` points — capacity surfaces, chaos soaks, fuzz corpora — driven
through :func:`repro.executor.execute_iter` with ``errors="yield"`` (one
bad point must not sink the night) and checkpointed to an on-disk
manifest as each point lands.  Kill the driver, kill the workers, pull
the power: rerunning the same command reloads the manifest, skips every
point already done, and converges with zero lost or duplicated points,
because the manifest is keyed by content hash — the same identity the
result cache uses.

Layout of a campaign directory::

    campaigns/fuzz-1000-s0/
        manifest.jsonl      # one record per finished point, append-only
        summary.json        # totals + failure triage, rewritten per run

Grids are pure functions of ``(points, seed)``, so the spec list — and
every content hash in it — is reproducible from the command line alone.

Run one::

    python -m repro.campaign --grid fuzz --points 1000 \\
        --backend workqueue --workers 4 --depth 8
    python -m repro.campaign --grid capacity --points 500 \\
        --backend workqueue --workers big-host:8,bigger-host:16
    python -m repro.campaign --dir campaigns/fuzz-1000-s0 --status
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .executor import (
    DEFAULT_CACHE_DIR,
    ExecutorBackend,
    Progress,
    WorkQueueBackend,
    execute_iter,
)
from .runspec import RunSpec

__all__ = [
    "GRIDS",
    "Manifest",
    "build_grid",
    "main",
    "run_campaign",
    "triage",
]

MANIFEST_NAME = "manifest.jsonl"
SUMMARY_NAME = "summary.json"

#: Version of the manifest/summary record layout.
MANIFEST_SCHEMA = 1

GRIDS = ("capacity", "chaos", "fuzz", "micro")


# -- grids -------------------------------------------------------------------


def _capacity_grid(points: int, seed: int) -> List[RunSpec]:
    """Capacity surface: system count x data sharing, many seeds."""
    from .experiments.common import scaled_config

    specs: List[RunSpec] = []
    for round_ in itertools.count():
        for n_sys, sharing in itertools.product(
                (1, 2, 3, 4, 6, 8), (True, False)):
            if len(specs) >= points:
                return specs
            s = 1 + seed + round_
            kind = "ds" if sharing else "nods"
            specs.append(RunSpec(
                config=scaled_config(n_sys, data_sharing=sharing, seed=s),
                duration=0.25, warmup=0.15,
                label=f"cap-{n_sys}-{kind}-s{s}",
            ))
    return specs


def _chaos_grid(points: int, seed: int) -> List[RunSpec]:
    """Chaos soak: fault intensity x duplexing policy x size, many seeds."""
    from .experiments.exp_chaos import chaos_spec

    specs: List[RunSpec] = []
    for round_ in itertools.count():
        for intensity, duplex, n_sys in itertools.product(
                (0.5, 1.0, 2.0), ("none", "lock", "all"), (2, 3, 4)):
            if len(specs) >= points:
                return specs
            specs.append(chaos_spec(
                n_systems=n_sys, seed=1 + seed + round_,
                horizon=1.5, drain=1.0, intensity=intensity, duplex=duplex,
            ))
    return specs


def _fuzz_grid(points: int, seed: int) -> List[RunSpec]:
    """Fuzz corpus: random dimension walks away from the seed specs."""
    from .fuzz import mutate, seed_specs

    rng = random.Random(seed)
    corpus = seed_specs(seed)
    specs: List[RunSpec] = []
    while len(specs) < points:
        mutant, _ops = mutate(rng.choice(corpus), rng)
        specs.append(mutant)
    return specs


def _micro_grid(points: int, seed: int) -> List[RunSpec]:
    """Tiny probe points — per-point overhead dominates, so this grid is
    what makes protocol wins (pipelining, compression) measurable."""
    from .experiments.common import scaled_config

    specs: List[RunSpec] = []
    for round_ in itertools.count():
        for n_sys in (2, 3, 4):
            if len(specs) >= points:
                return specs
            s = 1 + seed + round_
            specs.append(RunSpec(
                config=scaled_config(n_sys, seed=s),
                duration=0.05, warmup=0.02,
                label=f"micro-{n_sys}-s{s}",
            ))
    return specs


_GRID_BUILDERS = {
    "capacity": _capacity_grid,
    "chaos": _chaos_grid,
    "fuzz": _fuzz_grid,
    "micro": _micro_grid,
}


def build_grid(grid: str, points: int, seed: int = 0) -> List[RunSpec]:
    """The campaign's spec list — deterministic in ``(grid, points, seed)``."""
    try:
        builder = _GRID_BUILDERS[grid]
    except KeyError:
        raise ValueError(
            f"unknown grid {grid!r}: expected one of {GRIDS}") from None
    if points < 1:
        raise ValueError("points must be >= 1")
    return builder(points, seed)


# -- manifest ----------------------------------------------------------------


class Manifest:
    """Append-only JSONL checkpoint of campaign progress, by content hash.

    Each line is one finished point::

        {"hash": "1f2e...", "status": "done" | "failed", "seconds": 1.9,
         "label": "cap-4-ds-s1", "error": null, "schema": 1}

    The last record for a hash wins, so retrying a failed point simply
    appends its new outcome.  Loading tolerates a torn final line (the
    driver may have been killed mid-write); everything before it counts.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self.records: Dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn tail from a killed driver
                if isinstance(rec, dict) and rec.get("hash"):
                    self.records[rec["hash"]] = rec

    def mark(self, content_hash: str, status: str,
             seconds: float = 0.0, label: Optional[str] = None,
             error: Optional[str] = None) -> None:
        rec = {
            "schema": MANIFEST_SCHEMA,
            "hash": content_hash,
            "status": status,
            "seconds": round(float(seconds), 6),
            "label": label,
            "error": error,
        }
        self.records[content_hash] = rec
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
            fh.flush()

    def status_of(self, content_hash: str) -> Optional[str]:
        rec = self.records.get(content_hash)
        return rec.get("status") if rec else None

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.records.values():
            out[rec.get("status", "?")] = out.get(rec.get("status", "?"), 0) + 1
        return out


def triage(failures: Sequence[dict]) -> List[dict]:
    """Group failure records by their error's first line, worst first."""
    groups: Dict[str, dict] = {}
    for rec in failures:
        head = (rec.get("error") or "unknown").splitlines()[0][:160]
        g = groups.setdefault(head, {
            "error": head, "count": 0,
            "example_hash": rec.get("hash"),
            "example_label": rec.get("label"),
        })
        g["count"] += 1
    return sorted(groups.values(), key=lambda g: -g["count"])


# -- the driver --------------------------------------------------------------


def run_campaign(specs: Sequence[RunSpec], root: Path, *,
                 backend: Optional[ExecutorBackend] = None,
                 jobs: int = 1,
                 cache: Optional[str] = DEFAULT_CACHE_DIR,
                 retry_failed: bool = True,
                 fresh: bool = False,
                 progress: bool = True,
                 stream=sys.stderr) -> dict:
    """Drive ``specs`` to completion, checkpointing into ``root``.

    Points whose content hash the manifest already marks ``done`` are
    skipped outright (``failed`` points too, with ``retry_failed=
    False``); everything else streams through :func:`execute_iter` with
    ``errors="yield"`` and is checkpointed the moment it lands.  The
    returned summary — also written to ``root/summary.json`` — carries
    totals, wall-clock, throughput and a failure triage table.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if fresh:
        try:
            (root / MANIFEST_NAME).unlink()
        except FileNotFoundError:
            pass
    manifest = Manifest(root / MANIFEST_NAME)

    hashes = [spec.content_hash() for spec in specs]
    unique = len(set(hashes))
    todo: List[Tuple[int, str]] = []
    seen_pending = set()
    skipped = 0
    for index, h in enumerate(hashes):
        status = manifest.status_of(h)
        if status == "done" or (status == "failed" and not retry_failed):
            skipped += 1
            continue
        if h in seen_pending:
            continue  # executor would dedup anyway; keep the count honest
        seen_pending.add(h)
        todo.append((index, h))

    if stream is not None:
        print(f"campaign: {len(specs)} point(s), {unique} unique, "
              f"{skipped} already in manifest, {len(todo)} to run",
              file=stream)

    t0 = time.perf_counter()
    done = failed = computed = cached_hits = 0
    run_specs = [specs[i] for i, _ in todo]
    run_hashes = [h for _, h in todo]
    par = backend.parallelism() if backend is not None else max(1, jobs)
    prog = (Progress(len(run_specs), parallelism=par, stream=stream)
            if progress and stream is not None and run_specs else None)
    for c in execute_iter(run_specs, jobs=jobs, backend=backend,
                          cache=cache, progress=prog, errors="yield"):
        h = run_hashes[c.index]
        if c.error is None:
            done += 1
            computed += 0 if c.cached else 1
            cached_hits += 1 if c.cached else 0
            manifest.mark(h, "done", c.seconds, c.spec.label)
        else:
            failed += 1
            manifest.mark(h, "failed", c.seconds, c.spec.label,
                          error=c.error)
    wall = time.perf_counter() - t0

    counts = manifest.counts()
    failures = [r for r in manifest.records.values()
                if r.get("status") == "failed"]
    summary = {
        "schema": MANIFEST_SCHEMA,
        "points": len(specs),
        "unique_points": unique,
        "skipped_from_manifest": skipped,
        "ran": len(run_specs),
        "done_this_run": done,
        "failed_this_run": failed,
        "computed": computed,
        "cache_hits": cached_hits,
        "manifest": counts,
        "complete": counts.get("done", 0) >= unique,
        "wall_seconds": round(wall, 3),
        "points_per_second": round(len(run_specs) / wall, 3) if wall > 0
        else None,
        "triage": triage(failures),
    }
    (root / SUMMARY_NAME).write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return summary


def _report(summary: dict, stream=sys.stderr) -> None:
    print(f"campaign: ran {summary['ran']} "
          f"({summary['done_this_run']} done, "
          f"{summary['failed_this_run']} failed, "
          f"{summary['cache_hits']} cache hits) in "
          f"{summary['wall_seconds']:.1f}s"
          + (f" — {summary['points_per_second']:.1f} pts/s"
             if summary.get("points_per_second") else ""),
          file=stream)
    m = summary["manifest"]
    state = "complete" if summary["complete"] else "INCOMPLETE"
    print(f"campaign: manifest {state}: "
          + ", ".join(f"{v} {k}" for k, v in sorted(m.items()))
          + f" of {summary['unique_points']} unique point(s)",
          file=stream)
    for g in summary["triage"]:
        print(f"  triage: {g['count']}x {g['error']} "
              f"(e.g. {g['example_label'] or g['example_hash'][:12]})",
              file=stream)


def _build_backend(args) -> Tuple[Optional[ExecutorBackend], int]:
    if args.backend == "local":
        return None, args.jobs
    from .distrib.launcher import CommandLauncher, parse_worker_spec

    spec = parse_worker_spec(args.workers)
    if args.worker_cmd:
        count = spec if isinstance(spec, int) else spec.count
        spawn = CommandLauncher(args.worker_cmd, count=count)
        workers = count
    elif isinstance(spec, int):
        spawn, workers = True, spec
    else:
        spawn, workers = spec, spec.count
    return WorkQueueBackend(
        workers=workers, spawn=spawn, depth=args.depth,
        compress=not args.no_compress,
    ), args.jobs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a large resumable grid of simulation points.",
    )
    parser.add_argument("--grid", default="fuzz", choices=GRIDS,
                        help="which grid to run (default: fuzz)")
    parser.add_argument("--points", type=int, default=1000,
                        help="grid size (default: 1000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="grid seed (default: 0)")
    parser.add_argument("--dir", default=None, metavar="DIR",
                        help="campaign directory (default: "
                        "campaigns/<grid>-<points>-s<seed>)")
    parser.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help=f"result cache (default: {DEFAULT_CACHE_DIR}; "
                        "'none' disables)")
    parser.add_argument("--backend", default="local",
                        choices=("local", "workqueue"),
                        help="executor backend (default: local)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="local pool width for --backend local "
                        "(0 = one per CPU)")
    parser.add_argument("--workers", default="2", metavar="SPEC",
                        help="workqueue workers: a count ('4') or ssh "
                        "hosts ('host1:4,host2:8')")
    parser.add_argument("--worker-cmd", default=None, metavar="TEMPLATE",
                        help="launch each worker via this sh -c template "
                        "({address}/{name}/{python} substituted)")
    parser.add_argument("--depth", type=int, default=4,
                        help="tasks kept in flight per worker (default: 4)")
    parser.add_argument("--no-compress", action="store_true",
                        help="disable protocol frame compression")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore (delete) any existing manifest")
    parser.add_argument("--no-retry-failed", action="store_true",
                        help="skip points the manifest marks failed")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress per-point progress/ETA lines")
    parser.add_argument("--status", action="store_true",
                        help="print manifest state and exit")
    args = parser.parse_args(argv)

    root = Path(args.dir or
                f"campaigns/{args.grid}-{args.points}-s{args.seed}")

    if args.status:
        manifest = Manifest(root / MANIFEST_NAME)
        counts = manifest.counts()
        total = len(build_grid(args.grid, args.points, args.seed))
        uniq = len({s.content_hash()
                    for s in build_grid(args.grid, args.points, args.seed)})
        print(f"{root}: " + (", ".join(
            f"{v} {k}" for k, v in sorted(counts.items())) or "empty")
            + f"; grid has {total} point(s), {uniq} unique")
        for g in triage([r for r in manifest.records.values()
                         if r.get("status") == "failed"]):
            print(f"  triage: {g['count']}x {g['error']}")
        return 0

    specs = build_grid(args.grid, args.points, args.seed)
    backend, jobs = _build_backend(args)
    cache = None if args.cache == "none" else args.cache
    summary = run_campaign(
        specs, root, backend=backend, jobs=jobs, cache=cache,
        retry_failed=not args.no_retry_failed, fresh=args.fresh,
        progress=not args.no_progress,
    )
    _report(summary)
    return 0 if summary["complete"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
