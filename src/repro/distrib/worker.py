"""Work-queue worker client: drain sweep tasks from a SweepServer.

Run one (or many, on any host that can reach the server and import
``repro``)::

    python -m repro.distrib.worker --connect 127.0.0.1:41733
    python -m repro.distrib.worker --connect unix:/tmp/sweep.sock \\
        --cache /shared/.runcache

The loop is deliberately dumb: hello, then pull one task at a time, run
it through :func:`repro.executor.run_task` (cache read-through included)
and ship the canonical payload back.  A runner exception becomes an
``error`` message — the worker itself survives and asks for the next
task.  The server owns all scheduling and retry policy.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from typing import List, Optional

from ..executor import run_task
from .protocol import connect, recv_message, send_message

__all__ = ["main", "serve"]


def serve(address: str, name: str = "worker",
          cache_root: Optional[str] = None,
          connect_timeout: float = 30.0) -> int:
    """Connect to ``address`` and process tasks until told to stop.

    Returns the number of tasks completed.  ``cache_root`` overrides the
    cache directory the server advertises (pass a path that is valid on
    *this* host when the submitter's path is not).
    """
    sock = connect(address, timeout=connect_timeout)
    sock.settimeout(None)  # task runs are unbounded; the server paces us
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    done = 0
    try:
        send_message(wfile, {"op": "hello", "worker": name})
        welcome = recv_message(rfile)
        if not isinstance(welcome, dict) or welcome.get("op") != "welcome":
            return done
        root = cache_root if cache_root is not None else welcome.get("cache")
        while True:
            msg = recv_message(rfile)
            if not isinstance(msg, dict) or msg.get("op") == "bye":
                return done
            if msg.get("op") != "task":
                return done
            t0 = time.perf_counter()
            try:
                payload, cached = run_task(msg["spec"], root)
            except Exception as exc:  # noqa: BLE001 - shipped to submitter
                send_message(wfile, {
                    "op": "error",
                    "id": msg["id"],
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                })
                continue
            send_message(wfile, {
                "op": "result",
                "id": msg["id"],
                "payload": payload,
                "cached": cached,
                "seconds": time.perf_counter() - t0,
            })
            done += 1
    finally:
        for f in (rfile, wfile):
            try:
                f.close()
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib.worker",
        description="Sweep worker: drain RunSpec tasks from a work-queue "
        "server.",
    )
    parser.add_argument("--connect", required=True, metavar="ADDR",
                        help="server address: HOST:PORT or unix:/path.sock")
    parser.add_argument("--name", default="worker",
                        help="worker name reported to the server")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="result-cache directory on this host "
                        "(default: whatever the server advertises)")
    args = parser.parse_args(argv)
    try:
        done = serve(args.connect, name=args.name, cache_root=args.cache)
    except (ConnectionError, OSError) as exc:
        print(f"{args.name}: connection failed: {exc}", file=sys.stderr)
        return 1
    print(f"{args.name}: {done} task(s) done", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
