"""Work-queue worker client: drain sweep tasks from a SweepServer.

Run one (or many, on any host that can reach the server and import
``repro``)::

    python -m repro.distrib.worker --connect 127.0.0.1:41733
    python -m repro.distrib.worker --connect unix:/tmp/sweep.sock \\
        --cache /shared/.runcache
    python -m repro.distrib.worker --connect big-host:41733 \\
        --cache-mode proto          # no shared filesystem: read the
                                    # submitter's cache over the wire

The worker offers protocol v2 at hello (batched frames, zlib frame
compression, protocol cache read-through) and falls back to the v1
strict request/reply loop against an old server.  The server may keep
several tasks in flight here (pipelining); they queue locally and run
one at a time, so the next task's bytes are already on hand when the
current one finishes.  Consecutive cache-hit answers are batched into
one ``results`` frame; computed results ship immediately so the server
can refill the pipeline.  A runner exception becomes an ``error``
message — the worker itself survives and asks for the next task.  The
server owns all scheduling and retry policy.

**Clean teardown**: the CLI installs SIGTERM/SIGINT handlers that
finish (never abort) the in-flight task, hand unstarted pipelined
tasks back to the server in a ``bye`` frame, and exit 0 — so tearing
down a fleet does not masquerade as worker death and resubmission
churn.  A second signal kills the process immediately.

Cache modes (``--cache-mode``):

* ``auto`` (default) — use ``--cache`` if given; else the directory the
  server advertises *if it exists on this host*; else protocol
  read-through when the server offers it; else no cache.
* ``fs`` — read the advertised (or ``--cache``) directory directly.
* ``proto`` — ask the server (``cache_get``) before simulating; the
  mode for remote hosts without a shared filesystem.
* ``off`` — always simulate.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
import time
import traceback
from collections import deque
from typing import Deque, List, Optional, Tuple

from ..executor import run_task
from ..runspec import RunSpec
from .protocol import (
    PROTO_VERSION,
    ProtocolError,
    connect,
    recv_message,
    send_message,
)

__all__ = ["GracefulExit", "main", "serve"]

CACHE_MODES = ("auto", "fs", "proto", "off")


class GracefulExit(BaseException):
    """Raised by the signal handler to interrupt an idle ``recv`` so the
    worker can say goodbye; derives from BaseException so no runner's
    ``except Exception`` can swallow a teardown request."""


def _resolve_cache(cache_mode: str, cache_root: Optional[str],
                   welcome: dict, proto: int) -> Tuple[str, Optional[str]]:
    """Decide how this worker consults the result cache: (mode, root)."""
    import os

    advertised = welcome.get("cache")
    offers_proto = bool(proto >= 2 and welcome.get("cache_proto"))
    if cache_mode == "off":
        return "off", None
    if cache_mode == "fs":
        root = cache_root or advertised
        return ("fs", root) if root else ("off", None)
    if cache_mode == "proto":
        return ("proto", None) if offers_proto else ("off", None)
    # auto: prefer an explicitly-given local directory, then a shared
    # filesystem, then the wire
    if cache_root:
        return "fs", cache_root
    if advertised and os.path.isdir(advertised):
        return "fs", advertised
    if offers_proto:
        return "proto", None
    return "off", None


def serve(address: str, name: str = "worker",
          cache_root: Optional[str] = None,
          connect_timeout: float = 30.0,
          *,
          compress: bool = True,
          cache_mode: str = "auto",
          stop_event: Optional[threading.Event] = None,
          _state: Optional[dict] = None) -> int:
    """Connect to ``address`` and process tasks until told to stop.

    Returns the number of tasks completed.  ``cache_root`` overrides the
    cache directory the server advertises (pass a path that is valid on
    *this* host when the submitter's path is not); ``cache_mode`` is the
    policy described in the module docs.  ``stop_event`` requests a
    graceful departure: the in-flight task finishes, unstarted tasks go
    back to the server, and the loop returns.
    """
    if cache_mode not in CACHE_MODES:
        raise ValueError(f"cache_mode must be one of {CACHE_MODES}")
    stop = stop_event if stop_event is not None else threading.Event()
    state = _state if _state is not None else {"phase": "run"}
    sock = connect(address, timeout=connect_timeout)
    sock.settimeout(None)  # task runs are unbounded; the server paces us
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    done = 0
    pending: Deque[dict] = deque()
    outbuf: List[dict] = []
    try:
        send_message(wfile, {"op": "hello", "worker": name,
                             "proto": PROTO_VERSION,
                             "compress": bool(compress)})
        welcome = recv_message(rfile)
        if not isinstance(welcome, dict) or welcome.get("op") != "welcome":
            return done
        proto = min(PROTO_VERSION, int(welcome.get("proto", 1)))
        wire_compress = bool(compress and welcome.get("compress"))
        mode, root = _resolve_cache(cache_mode, cache_root, welcome, proto)

        def flush() -> None:
            if not outbuf:
                return
            if proto >= 2 and len(outbuf) > 1:
                send_message(wfile, {"op": "results",
                                     "results": list(outbuf)}, wire_compress)
            else:
                for m in outbuf:
                    send_message(wfile, m, wire_compress)
            outbuf.clear()

        def ingest(msg) -> bool:
            """Absorb one server frame; False ends the connection."""
            op = msg.get("op") if isinstance(msg, dict) else None
            if op == "task":
                pending.append({"id": msg["id"], "spec": msg["spec"]})
                return True
            if op == "tasks":
                pending.extend(msg.get("tasks", ()))
                return True
            return False  # bye, or something we do not understand

        def goodbye() -> None:
            """Flush results and hand unstarted tasks back (protocol v2)."""
            flush()
            if proto >= 2:
                send_message(wfile, {
                    "op": "bye", "worker": name,
                    "abandoned": [t["id"] for t in pending],
                }, wire_compress)
                wfile.flush()

        def run_one(task: dict) -> Tuple[dict, bool]:
            spec_dict = task["spec"]
            if mode == "fs":
                return run_task(spec_dict, root)
            if mode == "proto":
                content_hash = RunSpec.from_dict(spec_dict).content_hash()
                flush()  # keep frame order: results before the query
                send_message(wfile, {"op": "cache_get", "id": task["id"],
                                     "hash": content_hash}, wire_compress)
                while True:
                    msg = recv_message(rfile)
                    if msg is None:
                        raise ConnectionError(
                            "server hung up while answering cache_get")
                    op = msg.get("op") if isinstance(msg, dict) else None
                    if (op == "cache_value"
                            and msg.get("id") == task["id"]):
                        payload = msg.get("payload")
                        if payload is not None:
                            return payload, True
                        break  # miss: simulate
                    if not ingest(msg):
                        raise ProtocolError(
                            f"unexpected {op!r} while awaiting cache_value")
            return run_task(spec_dict, None)

        while True:
            if not pending:
                flush()
                if stop.is_set():
                    goodbye()
                    return done
                state["phase"] = "recv"
                try:
                    msg = recv_message(rfile)
                except GracefulExit:
                    goodbye()
                    return done
                finally:
                    state["phase"] = "run"
                if msg is None or not ingest(msg):
                    return done
                continue
            if stop.is_set():
                goodbye()
                return done
            task = pending.popleft()
            t0 = time.perf_counter()
            try:
                payload, cached = run_one(task)
            except Exception as exc:  # noqa: BLE001 - shipped to submitter
                outbuf.append({
                    "op": "error",
                    "id": task["id"],
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                })
                flush()
                continue
            outbuf.append({
                "op": "result",
                "id": task["id"],
                "payload": payload,
                "cached": cached,
                "seconds": time.perf_counter() - t0,
            })
            done += 1
            if not cached:
                # computed results ship immediately so the server can
                # refill the pipeline; cache hits batch up instead
                flush()
    finally:
        for f in (rfile, wfile):
            try:
                f.close()
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass


def _install_signals(stop: threading.Event, state: dict) -> None:
    """Graceful SIGTERM/SIGINT: finish the in-flight task, say bye.

    The handler only *interrupts* the worker when it is parked in an
    idle ``recv`` (phase "recv"); mid-task it just sets the stop flag,
    which the loop honours at the next task boundary.  The handler also
    restores the default disposition, so a second signal kills the
    process immediately.
    """

    def handler(signum, _frame):
        stop.set()
        signal.signal(signum, signal.SIG_DFL)
        if state["phase"] == "recv":
            raise GracefulExit

    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, handler)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib.worker",
        description="Sweep worker: drain RunSpec tasks from a work-queue "
        "server.",
    )
    parser.add_argument("--connect", required=True, metavar="ADDR",
                        help="server address: HOST:PORT or unix:/path.sock")
    parser.add_argument("--name", default="worker",
                        help="worker name reported to the server")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="result-cache directory on this host "
                        "(default: whatever the server advertises)")
    parser.add_argument("--cache-mode", default="auto", choices=CACHE_MODES,
                        help="how to consult the result cache: filesystem, "
                        "over the protocol (no shared FS), or not at all "
                        "(default: auto)")
    parser.add_argument("--no-compress", action="store_true",
                        help="do not offer zlib frame compression at hello")
    args = parser.parse_args(argv)
    stop = threading.Event()
    state = {"phase": "run"}
    _install_signals(stop, state)
    try:
        done = serve(args.connect, name=args.name, cache_root=args.cache,
                     compress=not args.no_compress,
                     cache_mode=args.cache_mode,
                     stop_event=stop, _state=state)
    except (ConnectionError, OSError, ProtocolError) as exc:
        print(f"{args.name}: connection failed: {exc}", file=sys.stderr)
        return 1
    note = " (graceful stop)" if stop.is_set() else ""
    print(f"{args.name}: {done} task(s) done{note}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
