"""The submitter-side work-queue server for distributed sweeps.

A :class:`SweepServer` holds the pending ``(index, spec_dict)`` tasks of
one sweep and serves them to worker connections.  Since protocol v2 the
dispatch is **pipelined**: the server keeps up to ``depth`` tasks in
flight per worker instead of the original strict pull-per-round-trip,
so a worker always has its next task buffered locally and never idles
for a network round trip between points.  Multi-task refills go out as
one batched ``tasks`` frame, results may come back batched, and frames
are zlib-compressed when the worker negotiated it at hello.

Workers that cannot see the submitter's filesystem still skip warm
points: a v2 worker may ask ``{"op": "cache_get", "hash": ...}`` and
the server answers from its ``.runcache`` — protocol-level cache
read-through.

Fault model (the paper's, scaled down): a worker is allowed to die.  If
a connection drops with tasks outstanding, they go back on the queue
for another worker — up to ``max_resubmits`` extra attempts each, after
which the task surfaces as a failure (a spec that kills every worker
that touches it should fail the sweep, not spin forever).  A *runner*
exception inside a healthy worker is not retried: specs are
deterministic, so the error would simply repeat.  A worker that leaves
**cleanly** (SIGTERM teardown: it finishes its running task, sends
``bye`` naming its unstarted pipelined tasks) has those tasks requeued
without any resubmission penalty — fleet teardown is routine, not
churn.  Workers stay connected (polling for requeued work) until every
task has a result, so late resubmissions always have somewhere to go.

Each connection runs two daemon threads: a reader pumping decoded
frames into an inbox queue, and a dispatcher multiplexing that inbox
against the shared task queue.  That split is what lets the server
notice a half-closed socket, a buffered ``bye``, and a requeued task
without ever blocking on the wrong one.
"""

from __future__ import annotations

import logging
import queue
import re
import socket
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..executor import TaskDone
from .protocol import (
    PROTO_VERSION,
    ProtocolError,
    format_address,
    parse_address,
    recv_message,
    send_message,
)

__all__ = ["SweepServer", "WorkerTaskError"]

log = logging.getLogger("repro.distrib")

#: Default bind: loopback TCP on an ephemeral port.
DEFAULT_ADDRESS = "127.0.0.1:0"

#: Default pipeline depth: tasks kept in flight per worker.  1 restores
#: the original strict pull-per-round-trip behavior.
DEFAULT_DEPTH = 4

_HASH_RE = re.compile(r"[0-9a-f]{8,128}")


class WorkerTaskError(RuntimeError):
    """A sweep task failed on the worker side (runner raised, or the
    task exhausted its resubmission budget), or the worker fleet died
    before the sweep could finish."""


class SweepServer:
    """Serve one sweep's tasks to worker connections (see module docs)."""

    def __init__(self, tasks: Sequence[Tuple[int, dict]],
                 cache_root: Optional[str] = None,
                 max_resubmits: int = 3,
                 depth: int = DEFAULT_DEPTH,
                 compress: bool = True):
        self._tasks = list(tasks)
        self._total = len(self._tasks)
        self._cache_root = cache_root
        self._max_resubmits = max_resubmits
        self._depth = max(1, int(depth))
        self._compress = compress
        self._todo: "queue.Queue[Tuple[int, dict]]" = queue.Queue()
        for task in self._tasks:
            self._todo.put(task)
        self._out: "queue.Queue[TaskDone]" = queue.Queue()
        self._lock = threading.Lock()
        self._attempts: Dict[int, int] = {}
        self._completed = 0
        self._active_workers = 0
        self._ever_connected = False
        self._clean_departures = 0
        self._closing = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._unix_path: Optional[str] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self, address: Optional[str] = None) -> str:
        """Bind, listen, and start accepting; returns the bound address."""
        address = address or DEFAULT_ADDRESS
        family, sockaddr = parse_address(address)
        self._listener = socket.socket(family, socket.SOCK_STREAM)
        if family == socket.AF_INET:
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
        else:
            self._unix_path = str(sockaddr)
        self._listener.bind(sockaddr)
        self._listener.listen()
        bound = format_address(family, self._listener.getsockname())
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="sweep-server-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        log.info("sweep server listening on %s (%d tasks, depth %d)",
                 bound, self._total, self._depth)
        return bound

    def close(self) -> None:
        self._closing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # shut down live worker connections so their handlers (and any
        # remote worker blocked on this socket) unblock immediately —
        # this is also what tears down an SSH-launched fleet cleanly
        # when the submitter aborts
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._unix_path is not None:
            import os

            try:
                os.unlink(self._unix_path)
            except OSError:
                pass

    # -- submitter side -----------------------------------------------------

    def results(self, procs: Sequence = (),
                startup_timeout: float = 60.0) -> Iterator[TaskDone]:
        """Yield one :class:`~repro.executor.TaskDone` per task.

        Task *failures* come back as TaskDones with ``error`` set (the
        caller decides whether to raise or keep sweeping); fleet-level
        failures raise :class:`WorkerTaskError` here.  ``procs`` are the
        launched worker handles (anything with ``poll()``, e.g.
        ``subprocess.Popen``) used for liveness: if every one has
        permanently exited, none is connected, and tasks remain, the
        sweep raises instead of hanging.  ``startup_timeout`` bounds the
        wait for the *first* worker to appear.
        """
        import time

        yielded = 0
        deadline = time.monotonic() + startup_timeout
        while yielded < self._total:
            try:
                item = self._out.get(timeout=0.5)
            except queue.Empty:
                with self._lock:
                    connected = self._active_workers
                    seen_any = self._ever_connected
                if connected == 0:
                    if procs and all(p.poll() is not None for p in procs):
                        raise WorkerTaskError(
                            f"all {len(procs)} worker(s) exited with "
                            f"{self._total - yielded} task(s) unfinished"
                        )
                    if not seen_any and time.monotonic() > deadline:
                        raise WorkerTaskError(
                            f"no worker connected within {startup_timeout:.0f}s"
                        )
                continue
            yielded += 1
            yield item

    # -- worker side --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                self._conns.append(conn)
            handler = threading.Thread(target=self._serve_conn, args=(conn,),
                                       name="sweep-server-worker",
                                       daemon=True)
            handler.start()
            self._threads.append(handler)

    def _deliver(self, item: TaskDone) -> None:
        with self._lock:
            self._completed += 1
        self._out.put(item)

    def _read_loop(self, rfile, inbox: "queue.Queue") -> None:
        """Pump decoded frames from one worker into its inbox."""
        try:
            while True:
                msg = recv_message(rfile)
                if msg is None:
                    inbox.put(("eof", None))
                    return
                inbox.put(("msg", msg))
        except (ProtocolError, ValueError) as exc:
            inbox.put(("err", exc))
        except OSError:
            inbox.put(("eof", None))

    def _serve_conn(self, conn: socket.socket) -> None:
        with self._lock:
            self._active_workers += 1
            self._ever_connected = True
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        in_flight: Dict[int, Tuple[int, dict]] = {}
        worker = "?"
        compress = False
        try:
            hello = recv_message(rfile)
            if not isinstance(hello, dict) or hello.get("op") != "hello":
                raise ProtocolError(
                    f"expected hello, got "
                    f"{hello.get('op') if isinstance(hello, dict) else hello!r}"
                )
            worker = str(hello.get("worker", "?"))
            proto = min(PROTO_VERSION, int(hello.get("proto", 1)))
            compress = bool(self._compress and proto >= 2
                            and hello.get("compress"))
            send_message(wfile, {
                "op": "welcome",
                "proto": proto,
                "compress": compress,
                "depth": self._depth,
                "cache": self._cache_root,
                "cache_proto": bool(proto >= 2 and self._cache_root),
            })
            log.info("worker %s connected (proto %d%s)", worker, proto,
                     ", compressed" if compress else "")
            inbox: "queue.Queue" = queue.Queue()
            reader = threading.Thread(
                target=self._read_loop, args=(rfile, inbox),
                name=f"sweep-server-read-{worker}", daemon=True)
            reader.start()
            self._dispatch(worker, proto, compress, wfile, inbox, in_flight)
        except (ConnectionError, OSError, ProtocolError, ValueError,
                KeyError, TypeError) as exc:
            if self._closing.is_set():
                pass  # teardown reset, not a worker failure
            elif in_flight:
                log.warning(
                    "connection to worker %s failed (%s); requeueing "
                    "%d task(s)", worker, exc, len(in_flight))
            else:
                log.warning("connection to worker %s failed: %s", worker, exc)
        finally:
            for task in in_flight.values():
                self._requeue(task)
            with self._lock:
                self._active_workers -= 1
                try:
                    self._conns.remove(conn)
                except ValueError:
                    pass
            for f in (rfile, wfile):
                try:
                    f.close()
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, worker: str, proto: int, compress: bool,
                  wfile, inbox: "queue.Queue",
                  in_flight: Dict[int, Tuple[int, dict]]) -> None:
        """Multiplex one worker's inbox against the shared task queue."""
        while not self._closing.is_set():
            # refill the pipeline up to depth; multi-task refills go out
            # as one batched frame on v2 connections
            batch: List[Tuple[int, dict]] = []
            while len(in_flight) < self._depth:
                try:
                    task = self._todo.get_nowait()
                except queue.Empty:
                    break
                with self._lock:
                    self._attempts[task[0]] = (
                        self._attempts.get(task[0], 0) + 1)
                in_flight[task[0]] = task
                batch.append(task)
            if batch:
                if proto >= 2 and len(batch) > 1:
                    send_message(wfile, {
                        "op": "tasks",
                        "tasks": [{"id": i, "spec": s} for i, s in batch],
                    }, compress)
                else:
                    for i, s in batch:
                        send_message(wfile, {"op": "task", "id": i,
                                             "spec": s}, compress)
            if not in_flight:
                with self._lock:
                    done = self._completed >= self._total
                if done:
                    send_message(wfile, {"op": "bye"}, compress)
                    log.info("worker %s released: sweep complete", worker)
                    return
            try:
                kind, msg = inbox.get(timeout=0.2)
            except queue.Empty:
                continue  # idle: a resubmission may still arrive
            if kind == "eof":
                if in_flight:
                    raise ConnectionError("worker hung up with "
                                          f"{len(in_flight)} task(s) in "
                                          "flight")
                log.info("worker %s disconnected while idle", worker)
                return
            if kind == "err":
                raise msg
            op = msg.get("op") if isinstance(msg, dict) else None
            if op == "result":
                self._finish(worker, msg, in_flight)
            elif op == "results" and proto >= 2:
                for sub in msg.get("results", ()):
                    self._finish(worker, sub, in_flight)
            elif op == "error":
                self._finish(worker, msg, in_flight)
            elif op == "cache_get" and proto >= 2:
                send_message(wfile, {
                    "op": "cache_value",
                    "id": msg.get("id"),
                    "payload": self._cache_lookup(msg.get("hash")),
                }, compress)
            elif op == "bye":
                self._depart(worker, msg, in_flight)
                return
            else:
                raise ProtocolError(f"unknown op {op!r} from worker")

    def _finish(self, worker: str, msg: dict,
                in_flight: Dict[int, Tuple[int, dict]]) -> None:
        index = msg.get("id")
        if index not in in_flight:
            raise ProtocolError(
                f"{msg.get('op')} for task {index!r}, which is not in "
                "flight on this connection"
            )
        del in_flight[index]
        if msg.get("op") == "error":
            # deterministic runner failure: retrying would repeat it
            detail = str(msg.get("traceback", "")).rstrip()
            error = str(msg.get("error", "?")) + (
                f"\n{detail}" if detail else "")
            log.warning("task %d failed on worker %s: %s",
                        index, worker, msg.get("error", "?"))
            self._deliver(TaskDone(index, None, False, 0.0, error=error))
        else:
            self._deliver(TaskDone(
                index, msg["payload"], bool(msg.get("cached")),
                float(msg.get("seconds", 0.0)),
            ))

    def _depart(self, worker: str, msg: dict,
                in_flight: Dict[int, Tuple[int, dict]]) -> None:
        """A clean worker departure: requeue abandoned tasks penalty-free."""
        abandoned = msg.get("abandoned") or ()
        requeued = 0
        for index in abandoned:
            task = in_flight.pop(index, None)
            if task is None:
                continue
            with self._lock:
                # the dispatch attempt never ran: it does not count
                # against the task's resubmission budget
                self._attempts[index] = max(
                    0, self._attempts.get(index, 1) - 1)
            self._todo.put(task)
            requeued += 1
        with self._lock:
            self._clean_departures += 1
        log.info("worker %s departed cleanly (%d task(s) handed back)",
                 worker, requeued)

    def _cache_lookup(self, content_hash) -> Optional[dict]:
        """Answer a protocol-level cache read-through request."""
        if (not self._cache_root or not isinstance(content_hash, str)
                or not _HASH_RE.fullmatch(content_hash)):
            return None
        from ..executor import ResultCache

        return ResultCache(Path(self._cache_root)).get_by_hash(content_hash)

    def _requeue(self, task: Tuple[int, dict]) -> None:
        index = task[0]
        with self._lock:
            attempts = self._attempts.get(index, 0)
        if attempts > self._max_resubmits:
            self._deliver(TaskDone(
                index, None, False, 0.0,
                error=(f"crashed its worker on every one of {attempts} "
                       "attempt(s)"),
            ))
        else:
            self._todo.put(task)
