"""The submitter-side work-queue server for distributed sweeps.

A :class:`SweepServer` holds the pending ``(index, spec_dict)`` tasks of
one sweep and serves them to worker connections one at a time: a worker
gets a task, the server waits for its ``result``/``error`` message, then
hands it the next.  Results land on an internal queue that
:meth:`SweepServer.results` drains as an iterator — the streaming source
:class:`repro.executor.WorkQueueBackend` plugs into ``execute_iter``.

Fault model (the paper's, scaled down): a worker is allowed to die.  If
a connection drops while a task is outstanding, the task goes back on
the queue for another worker — up to ``max_resubmits`` extra attempts,
after which it surfaces as a :class:`WorkerTaskError` (a spec that kills
every worker that touches it should fail the sweep, not spin forever).
A *runner* exception inside a healthy worker is not retried: specs are
deterministic, so the error would simply repeat.  Workers stay connected
(polling for requeued work) until every task has a result, so late
resubmissions always have somewhere to go.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..executor import TaskDone
from .protocol import format_address, parse_address, recv_message, send_message

__all__ = ["SweepServer", "WorkerTaskError"]

#: Default bind: loopback TCP on an ephemeral port.
DEFAULT_ADDRESS = "127.0.0.1:0"


class WorkerTaskError(RuntimeError):
    """A sweep task failed on the worker side (runner raised, or the
    task exhausted its resubmission budget)."""


class _Failure:
    __slots__ = ("index", "error", "traceback")

    def __init__(self, index: int, error: str, traceback: str = ""):
        self.index = index
        self.error = error
        self.traceback = traceback


class SweepServer:
    """Serve one sweep's tasks to worker connections (see module docs)."""

    def __init__(self, tasks: Sequence[Tuple[int, dict]],
                 cache_root: Optional[str] = None,
                 max_resubmits: int = 3):
        self._tasks = list(tasks)
        self._total = len(self._tasks)
        self._cache_root = cache_root
        self._max_resubmits = max_resubmits
        self._todo: "queue.Queue[Tuple[int, dict]]" = queue.Queue()
        for task in self._tasks:
            self._todo.put(task)
        self._out: "queue.Queue[object]" = queue.Queue()
        self._lock = threading.Lock()
        self._attempts: Dict[int, int] = {}
        self._completed = 0
        self._active_workers = 0
        self._ever_connected = False
        self._closing = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._unix_path: Optional[str] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self, address: Optional[str] = None) -> str:
        """Bind, listen, and start accepting; returns the bound address."""
        address = address or DEFAULT_ADDRESS
        family, sockaddr = parse_address(address)
        self._listener = socket.socket(family, socket.SOCK_STREAM)
        if family == socket.AF_INET:
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
        else:
            self._unix_path = str(sockaddr)
        self._listener.bind(sockaddr)
        self._listener.listen()
        bound = format_address(family, self._listener.getsockname())
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="sweep-server-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return bound

    def close(self) -> None:
        self._closing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._unix_path is not None:
            import os

            try:
                os.unlink(self._unix_path)
            except OSError:
                pass

    # -- submitter side -----------------------------------------------------

    def results(self, procs: Sequence = (),
                startup_timeout: float = 60.0) -> Iterator[TaskDone]:
        """Yield one :class:`~repro.executor.TaskDone` per task.

        ``procs`` are the spawned worker processes (``subprocess.Popen``
        objects) used for liveness: if every one has exited, none is
        connected, and tasks remain, the sweep raises instead of
        hanging.  ``startup_timeout`` bounds the wait for the *first*
        worker to appear.
        """
        import time

        yielded = 0
        deadline = time.monotonic() + startup_timeout
        while yielded < self._total:
            try:
                item = self._out.get(timeout=0.5)
            except queue.Empty:
                with self._lock:
                    connected = self._active_workers
                    seen_any = self._ever_connected
                if connected == 0:
                    if procs and all(p.poll() is not None for p in procs):
                        raise WorkerTaskError(
                            f"all {len(procs)} worker(s) exited with "
                            f"{self._total - yielded} task(s) unfinished"
                        )
                    if not seen_any and time.monotonic() > deadline:
                        raise WorkerTaskError(
                            f"no worker connected within {startup_timeout:.0f}s"
                        )
                continue
            if isinstance(item, _Failure):
                detail = f"\n{item.traceback}" if item.traceback else ""
                raise WorkerTaskError(
                    f"task {item.index} failed on a worker: "
                    f"{item.error}{detail}"
                )
            yielded += 1
            yield item

    # -- worker side --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(target=self._serve_conn, args=(conn,),
                                       name="sweep-server-worker",
                                       daemon=True)
            handler.start()
            self._threads.append(handler)

    def _deliver(self, item) -> None:
        with self._lock:
            self._completed += 1
        self._out.put(item)

    def _serve_conn(self, conn: socket.socket) -> None:
        with self._lock:
            self._active_workers += 1
            self._ever_connected = True
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        outstanding: Optional[Tuple[int, dict]] = None
        try:
            hello = recv_message(rfile)
            if not isinstance(hello, dict) or hello.get("op") != "hello":
                return
            send_message(wfile, {"op": "welcome", "cache": self._cache_root})
            while not self._closing.is_set():
                try:
                    task = self._todo.get(timeout=0.2)
                except queue.Empty:
                    with self._lock:
                        done = self._completed >= self._total
                    if done:
                        send_message(wfile, {"op": "bye"})
                        return
                    continue  # idle, but a resubmission may still arrive
                index, spec_dict = task
                with self._lock:
                    self._attempts[index] = self._attempts.get(index, 0) + 1
                outstanding = task
                send_message(wfile, {"op": "task", "id": index,
                                     "spec": spec_dict})
                msg = recv_message(rfile)
                if not isinstance(msg, dict) or msg.get("id") != index:
                    raise ConnectionError("worker hung up mid-task")
                if msg.get("op") == "result":
                    outstanding = None
                    self._deliver(TaskDone(
                        index, msg["payload"], bool(msg.get("cached")),
                        float(msg.get("seconds", 0.0)),
                    ))
                elif msg.get("op") == "error":
                    # deterministic runner failure: retrying would repeat it
                    outstanding = None
                    self._deliver(_Failure(index, str(msg.get("error", "?")),
                                           str(msg.get("traceback", ""))))
                else:
                    raise ConnectionError(
                        f"unexpected worker message {msg.get('op')!r}"
                    )
        except (ConnectionError, OSError, ValueError):
            pass  # connection-level failure: handled by requeue below
        finally:
            if outstanding is not None:
                self._requeue(outstanding)
            with self._lock:
                self._active_workers -= 1
            for f in (rfile, wfile):
                try:
                    f.close()
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:
                pass

    def _requeue(self, task: Tuple[int, dict]) -> None:
        index = task[0]
        with self._lock:
            attempts = self._attempts.get(index, 0)
        if attempts > self._max_resubmits:
            self._deliver(_Failure(
                index,
                f"crashed its worker on every one of {attempts} attempt(s)",
            ))
        else:
            self._todo.put(task)
