"""Wire protocol: newline-delimited JSON messages over a socket.

Every message is one JSON object on one line, UTF-8 encoded.  The
conversation between server and worker::

    worker -> {"op": "hello", "worker": "worker-0"}
    server -> {"op": "welcome", "cache": "/path/.runcache" | null}
    server -> {"op": "task", "id": 7, "spec": {...}}
    worker -> {"op": "result", "id": 7, "payload": {...},
               "cached": false, "seconds": 1.93}
            | {"op": "error", "id": 7, "error": "ValueError: ...",
               "traceback": "..."}
    ...                         # repeat task/result until the queue is dry
    server -> {"op": "bye"}

Payloads are canonical-JSON dicts (see :func:`repro.executor.run_task`),
so the bytes a worker ships are exactly the bytes a cache file would
hold — the transport can never perturb the determinism contract.

Addresses are strings: ``"host:port"`` for TCP (port 0 = ephemeral) or
``"unix:/path.sock"`` for unix-domain sockets.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional, Tuple, Union

__all__ = [
    "connect",
    "format_address",
    "parse_address",
    "recv_message",
    "send_message",
]

#: (family, sockaddr) — what parse_address returns.
Address = Tuple[int, Union[str, Tuple[str, int]]]


def parse_address(address: str) -> Address:
    """``"host:port"`` or ``"unix:/path"`` -> ``(family, sockaddr)``."""
    if address.startswith("unix:"):
        if not hasattr(socket, "AF_UNIX"):
            raise ValueError("unix sockets are not supported on this platform")
        return socket.AF_UNIX, address[len("unix:"):]
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(
            f"bad address {address!r}: expected 'host:port' or 'unix:/path'"
        )
    return socket.AF_INET, (host or "127.0.0.1", int(port))


def format_address(family: int, sockaddr: Union[str, Tuple[str, int]]) -> str:
    """The string form of a bound socket address (inverse of parse)."""
    if hasattr(socket, "AF_UNIX") and family == socket.AF_UNIX:
        return f"unix:{sockaddr}"
    host, port = sockaddr[0], sockaddr[1]
    return f"{host}:{port}"


def connect(address: str, timeout: Optional[float] = None) -> socket.socket:
    """Open a client connection to a server address string."""
    family, sockaddr = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    sock.connect(sockaddr)
    return sock


def send_message(wfile, message: dict) -> None:
    """Write one message (compact JSON + newline) and flush."""
    wfile.write(json.dumps(message, separators=(",", ":")).encode("utf-8"))
    wfile.write(b"\n")
    wfile.flush()


def recv_message(rfile) -> Optional[Any]:
    """Read one message; ``None`` on a clean EOF (peer went away)."""
    line = rfile.readline()
    if not line:
        return None
    return json.loads(line)
