"""Wire protocol: versioned, optionally compressed JSON frames.

Every message is one JSON object, normally on one UTF-8 line.  The
conversation between server and worker (protocol version 2)::

    worker -> {"op": "hello", "worker": "worker-0", "proto": 2,
               "compress": true}
    server -> {"op": "welcome", "proto": 2, "compress": true,
               "depth": 4, "cache": "/path/.runcache" | null,
               "cache_proto": true}
    server -> {"op": "task", "id": 7, "spec": {...}}
            | {"op": "tasks", "tasks": [{"id": 7, "spec": {...}}, ...]}
    worker -> {"op": "result", "id": 7, "payload": {...},
               "cached": false, "seconds": 1.93}
            | {"op": "results", "results": [{...}, ...]}
            | {"op": "error", "id": 7, "error": "ValueError: ...",
               "traceback": "..."}
            | {"op": "cache_get", "id": 7, "hash": "<sha256>"}
              (server -> {"op": "cache_value", "id": 7,
                          "payload": {...} | null})
    ...                         # repeat until the queue is dry
    worker -> {"op": "bye", "worker": "worker-0", "abandoned": [8, 9]}
              (clean departure: unstarted pipelined tasks go back)
    server -> {"op": "bye"}

**Versioning.** The worker's ``hello`` carries the highest protocol
version it speaks (a missing ``proto`` field means version 1 — the
original strict request/reply protocol); the server answers with the
minimum of both sides.  Version-2 features (batched ``tasks``/
``results`` frames, frame compression, protocol-level cache
read-through, clean ``bye`` with abandoned tasks) are only used when
both ends negotiated version 2, so old workers still connect and drain
tasks one frame at a time.  Task *pipelining* needs no version gate:
a version-1 worker simply leaves queued ``task`` frames in its socket
buffer and answers them in order.

**Compression.** When both sides offer ``compress`` at hello/welcome,
every subsequent frame may be sent compressed: the JSON bytes are
zlib-deflated and framed as ``z<len>\\n<blob>`` (a length-prefixed
binary frame — JSON objects always start with ``{``, so the leading
``z`` is unambiguous).  Payloads are large canonical JSON, which
deflates 5-10x, so the CPU spent is nearly free real-bandwidth savings
on anything but a loopback link.  Compression never touches payload
*content*: the bytes that come out of :func:`recv_message` are exactly
the bytes that went into :func:`send_message`, so the byte-determinism
contract is transport-invariant.

**Robustness.** A frame that cannot be parsed — truncated mid-frame,
an unterminated line longer than ``max_line``, non-JSON garbage, a bad
compressed blob — raises :class:`ProtocolError` with a message naming
what was wrong.  Receivers treat that as fatal *for the one
connection* (the peer is speaking garbage; resynchronising a framed
stream is hopeless) and never as fatal for the server.

Addresses are strings: ``"host:port"`` for TCP (port 0 = ephemeral) or
``"unix:/path.sock"`` for unix-domain sockets.
"""

from __future__ import annotations

import json
import socket
import zlib
from typing import Any, Optional, Tuple, Union

__all__ = [
    "PROTO_VERSION",
    "MAX_FRAME",
    "ProtocolError",
    "connect",
    "format_address",
    "parse_address",
    "recv_message",
    "send_message",
]

#: Highest protocol version this build speaks.  Version 1 is the
#: original one-line-JSON strict request/reply protocol; version 2 adds
#: batched frames, zlib frame compression, protocol-level cache
#: read-through and clean worker departure.
PROTO_VERSION = 2

#: Upper bound on one frame, compressed or not (a 64 MiB line is not a
#: message, it is a bug or an attack on the submitter's memory).
MAX_FRAME = 64 * 1024 * 1024

#: zlib level for compressed frames: level 1 already gets most of the
#: win on canonical JSON and costs the least CPU per task.
COMPRESS_LEVEL = 1

#: (family, sockaddr) — what parse_address returns.
Address = Tuple[int, Union[str, Tuple[str, int]]]


class ProtocolError(ValueError):
    """The peer sent bytes that are not a well-formed protocol frame.

    Fatal for the connection it arrived on (the framing cannot be
    resynchronised), never for the server as a whole.
    """


def parse_address(address: str) -> Address:
    """``"host:port"`` or ``"unix:/path"`` -> ``(family, sockaddr)``."""
    if address.startswith("unix:"):
        if not hasattr(socket, "AF_UNIX"):
            raise ValueError("unix sockets are not supported on this platform")
        return socket.AF_UNIX, address[len("unix:"):]
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(
            f"bad address {address!r}: expected 'host:port' or 'unix:/path'"
        )
    return socket.AF_INET, (host or "127.0.0.1", int(port))


def format_address(family: int, sockaddr: Union[str, Tuple[str, int]]) -> str:
    """The string form of a bound socket address (inverse of parse)."""
    if hasattr(socket, "AF_UNIX") and family == socket.AF_UNIX:
        return f"unix:{sockaddr}"
    host, port = sockaddr[0], sockaddr[1]
    return f"{host}:{port}"


def connect(address: str, timeout: Optional[float] = None) -> socket.socket:
    """Open a client connection to a server address string."""
    family, sockaddr = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    sock.connect(sockaddr)
    return sock


def send_message(wfile, message: dict, compress: bool = False) -> None:
    """Write one message and flush.

    Uncompressed frames are compact JSON + newline (protocol v1's only
    form); with ``compress`` the JSON bytes go out zlib-deflated behind
    a ``z<len>\\n`` header.  Only enable ``compress`` after both sides
    negotiated it at hello/welcome.
    """
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if compress:
        blob = zlib.compress(data, COMPRESS_LEVEL)
        wfile.write(b"z%d\n" % len(blob))
        wfile.write(blob)
    else:
        wfile.write(data)
        wfile.write(b"\n")
    wfile.flush()


def recv_message(rfile, max_frame: int = MAX_FRAME) -> Optional[Any]:
    """Read one message; ``None`` on a clean EOF (peer went away).

    Raises :class:`ProtocolError` on anything that is not a well-formed
    frame: an unterminated line longer than ``max_frame``, a line
    truncated by EOF, a compressed frame shorter than its declared
    length, a blob zlib cannot inflate, or bytes that are not JSON.
    """
    line = rfile.readline(max_frame + 1)
    if not line:
        return None
    if len(line) > max_frame:
        raise ProtocolError(
            f"oversized frame: line exceeds {max_frame} bytes "
            "without a newline"
        )
    if line[:1] == b"z":
        # length-prefixed compressed frame: z<len>\n<blob>
        try:
            length = int(line[1:])
        except ValueError:
            raise ProtocolError(
                f"bad frame header {line[:40]!r}: expected 'z<len>'"
            ) from None
        if not (0 <= length <= max_frame):
            raise ProtocolError(
                f"oversized compressed frame: {length} bytes declared, "
                f"limit {max_frame}"
            )
        blob = rfile.read(length)
        if len(blob) < length:
            raise ProtocolError(
                f"truncated frame: {length} bytes declared, "
                f"{len(blob)} received before EOF"
            )
        inflater = zlib.decompressobj()
        try:
            data = inflater.decompress(blob, max_frame)
        except zlib.error as exc:
            raise ProtocolError(f"bad compressed frame: {exc}") from None
        if inflater.unconsumed_tail:
            raise ProtocolError(
                f"oversized compressed frame: inflates past {max_frame} bytes"
            )
    else:
        if not line.endswith(b"\n"):
            raise ProtocolError(
                "truncated frame: EOF in the middle of a line"
            )
        data = line
    try:
        return json.loads(data)
    except ValueError:
        head = data[:60]
        raise ProtocolError(f"frame is not JSON: {head!r}...") from None
