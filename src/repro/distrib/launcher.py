"""Worker launchers: who starts the fleet, and where.

:class:`~repro.executor.WorkQueueBackend` only needs something that can
``launch(address)`` a set of worker processes and later ``stop()`` them.
That contract is :class:`WorkerLauncher`; three implementations cover
the useful space:

* :class:`LocalLauncher` — N ``python -m repro.distrib.worker``
  subprocesses on this host (the default spawn path);
* :class:`CommandLauncher` — an arbitrary shell template run through
  ``sh -c``, one process per ``count``; the escape hatch for
  containers, schedulers, and CI;
* :class:`SshLauncher` — a fleet described as ``"host1:4,host2:8"``
  specs, one ``ssh`` per worker slot, with environment bootstrap,
  automatic reconnect with exponential backoff when a remote worker
  dies, and clean teardown (SIGTERM → the worker finishes its task,
  sends ``bye``, exits 0).

Templates (:class:`CommandLauncher` and :class:`SshLauncher`'s remote
command) substitute ``{address}``, ``{name}`` and ``{python}``.

Every handle returned by ``launch()`` is ``subprocess.Popen``-shaped —
``poll()``/``terminate()``/``kill()``/``wait()`` — which is all the
server's liveness check needs.  :class:`SshLauncher` hands back
supervisor handles that report "alive" while a reconnect is pending, so
a worker bouncing across the backoff window is not mistaken for a dead
fleet.
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
import threading
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "CommandLauncher",
    "LocalLauncher",
    "SshLauncher",
    "WorkerLauncher",
    "parse_worker_spec",
    "worker_env",
]


def worker_env(pythonpath: Sequence[Union[str, Path]] = ()) -> dict:
    """A copy of the environment with :mod:`repro` importable.

    ``pythonpath`` entries are prepended; the directory that contains
    the running ``repro`` package is always included, so locally
    spawned workers import the same code as the submitter.
    """
    import repro

    env = dict(os.environ)
    entries = [str(p) for p in pythonpath]
    entries.append(str(Path(repro.__file__).resolve().parent.parent))
    if env.get("PYTHONPATH"):
        entries.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(entries))
    return env


class WorkerLauncher:
    """Start worker processes against a server address; stop them later.

    Subclasses implement :meth:`launch` (return one handle per worker)
    and may override :meth:`stop`; ``count`` is the number of workers
    the launcher will start, used by the executor for chunk sizing.
    """

    #: How many workers :meth:`launch` will start.
    count: int = 0

    def __init__(self) -> None:
        self._handles: List = []

    def launch(self, address: str) -> List:
        raise NotImplementedError

    def stop(self, timeout: float = 10.0) -> None:
        """Terminate every launched worker and reap it.

        SIGTERM first — workers finish their in-flight task, hand
        pipelined tasks back, and exit 0 — then SIGKILL anything that
        does not comply within ``timeout``.
        """
        for h in self._handles:
            try:
                if h.poll() is None:
                    h.terminate()
            except OSError:
                pass
        for h in self._handles:
            try:
                h.wait(timeout=timeout)
            except Exception:
                try:
                    h.kill()
                    h.wait(timeout=5)
                except Exception:
                    pass
        self._handles = []


class LocalLauncher(WorkerLauncher):
    """Spawn ``count`` worker subprocesses on this host."""

    def __init__(self, count: int = 2,
                 pythonpath: Sequence[Union[str, Path]] = (),
                 cache_mode: str = "auto",
                 extra_args: Sequence[str] = ()):
        super().__init__()
        self.count = max(1, int(count))
        self.pythonpath = list(pythonpath)
        self.cache_mode = cache_mode
        self.extra_args = list(extra_args)

    def launch(self, address: str) -> List:
        env = worker_env(self.pythonpath)
        for w in range(self.count):
            self._handles.append(subprocess.Popen(
                [sys.executable, "-m", "repro.distrib.worker",
                 "--connect", address, "--name", f"worker-{w}",
                 "--cache-mode", self.cache_mode, *self.extra_args],
                env=env,
            ))
        return list(self._handles)


class CommandLauncher(WorkerLauncher):
    """Run a shell template, ``count`` times, via ``sh -c``.

    The template is formatted with ``{address}`` (the server's bound
    address), ``{name}`` (``cmd-0``, ``cmd-1``, ...) and ``{python}``
    (the submitter's interpreter)::

        CommandLauncher(
            "{python} -m repro.distrib.worker --connect {address} "
            "--name {name} --cache-mode proto", count=2)

    Processes inherit :func:`worker_env`, so a template that just execs
    a worker needs no PYTHONPATH plumbing of its own.
    """

    def __init__(self, template: str, count: int = 1,
                 pythonpath: Sequence[Union[str, Path]] = ()):
        super().__init__()
        self.template = template
        self.count = max(1, int(count))
        self.pythonpath = list(pythonpath)

    def launch(self, address: str) -> List:
        env = worker_env(self.pythonpath)
        for w in range(self.count):
            cmd = self.template.format(
                address=address, name=f"cmd-{w}", python=sys.executable)
            self._handles.append(
                subprocess.Popen(["sh", "-c", cmd], env=env))
        return list(self._handles)


def _parse_hosts(hosts: Union[str, Sequence[str]]) -> List[Tuple[str, int]]:
    """``"a:4,b:8"`` / ``["a:4", "b"]`` -> ``[("a", 4), ("b", 1)]``."""
    if isinstance(hosts, str):
        hosts = [h for h in hosts.split(",") if h.strip()]
    out: List[Tuple[str, int]] = []
    for item in hosts:
        item = item.strip()
        host, sep, n = item.rpartition(":")
        if sep and n.isdigit():
            count = int(n)
        else:
            host, count = item, 1
        if not host or count < 1:
            raise ValueError(f"bad worker spec {item!r}: expected host[:n]")
        out.append((host, count))
    if not out:
        raise ValueError("empty worker host spec")
    return out


class _Supervised:
    """Popen-shaped handle around a respawning worker process.

    Runs ``spawn()`` in a daemon thread; when the process exits
    non-zero and stop was not requested, respawns it after an
    exponential backoff, up to ``max_restarts`` times.  ``poll()``
    reports ``None`` (alive) while the supervisor is still trying —
    including during the backoff sleep — so the server's all-workers-
    dead check does not fire on a transient ssh drop.
    """

    def __init__(self, spawn, label: str = "worker",
                 max_restarts: int = 5, backoff: float = 1.0):
        self._spawn = spawn
        self._label = label
        self._max_restarts = max_restarts
        self._backoff = backoff
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._proc: Optional[subprocess.Popen] = None
        self._returncode: Optional[int] = None
        self._thread = threading.Thread(
            target=self._run, name=f"supervise-{label}", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        restarts = 0
        rc: Optional[int] = None
        while True:
            try:
                proc = self._spawn()
            except OSError as exc:
                print(f"{self._label}: launch failed: {exc}",
                      file=sys.stderr)
                rc = 127
                break
            with self._lock:
                self._proc = proc
            if self._stopping.is_set():
                proc.terminate()
            rc = proc.wait()
            if self._stopping.is_set() or rc == 0:
                break
            if restarts >= self._max_restarts:
                print(f"{self._label}: exited {rc}, giving up after "
                      f"{restarts} restart(s)", file=sys.stderr)
                break
            delay = min(30.0, self._backoff * (2 ** restarts))
            restarts += 1
            print(f"{self._label}: exited {rc}, reconnect {restarts}/"
                  f"{self._max_restarts} in {delay:.1f}s", file=sys.stderr)
            if self._stopping.wait(delay):
                break
        self._returncode = rc if rc is not None else 0

    # -- Popen-shaped surface ----------------------------------------------

    def poll(self) -> Optional[int]:
        return self._returncode if not self._thread.is_alive() else None

    def terminate(self) -> None:
        self._stopping.set()
        with self._lock:
            proc = self._proc
        if proc is not None and proc.poll() is None:
            try:
                proc.terminate()
            except OSError:
                pass

    def kill(self) -> None:
        self._stopping.set()
        with self._lock:
            proc = self._proc
        if proc is not None and proc.poll() is None:
            try:
                proc.kill()
            except OSError:
                pass

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise subprocess.TimeoutExpired(self._label, timeout or 0)
        return self._returncode


class SshLauncher(WorkerLauncher):
    """One ssh-launched worker per slot in a ``host1:4,host2:8`` fleet.

    Each slot runs ``ssh <opts> <host> <remote command>``; the remote
    command defaults to starting a worker from ``remote_cwd`` (or the
    login directory) with ``--cache-mode proto``, because remote hosts
    usually cannot see the submitter's ``.runcache`` — they read it
    over the wire instead.  Override ``command`` (same ``{address}`` /
    ``{name}`` / ``{python}`` placeholders) for bespoke bootstraps.

    A remote worker that dies (lost connection, OOM, crashed spec) is
    relaunched with exponential backoff up to ``max_restarts`` times;
    teardown SIGTERMs the local ssh client, which forwards the signal
    where configured and otherwise drops the connection — either way
    the server requeues anything unfinished.

    ``connect_host`` rewrites the host part of the advertised address
    (a server bound to ``0.0.0.0`` or ``127.0.0.1`` is not reachable
    from another machine under that name).
    """

    def __init__(self, hosts: Union[str, Sequence[str]],
                 python: str = "python3",
                 remote_cwd: Optional[str] = None,
                 remote_pythonpath: Optional[str] = None,
                 connect_host: Optional[str] = None,
                 cache_mode: str = "proto",
                 command: Optional[str] = None,
                 ssh_args: Sequence[str] = ("-o", "BatchMode=yes"),
                 ssh_binary: str = "ssh",
                 max_restarts: int = 5,
                 backoff: float = 1.0):
        super().__init__()
        self.hosts = _parse_hosts(hosts)
        self.count = sum(n for _, n in self.hosts)
        self.python = python
        self.remote_cwd = remote_cwd
        self.remote_pythonpath = remote_pythonpath
        self.connect_host = connect_host
        self.cache_mode = cache_mode
        self.command = command
        self.ssh_args = list(ssh_args)
        self.ssh_binary = ssh_binary
        self.max_restarts = max_restarts
        self.backoff = backoff

    def _rewrite(self, address: str) -> str:
        if not self.connect_host or address.startswith("unix:"):
            return address
        _host, _, port = address.rpartition(":")
        return f"{self.connect_host}:{port}"

    def _remote_command(self, address: str, name: str) -> str:
        if self.command is not None:
            return self.command.format(
                address=address, name=name, python=self.python)
        parts = []
        if self.remote_cwd:
            parts.append(f"cd {shlex.quote(self.remote_cwd)} &&")
        if self.remote_pythonpath:
            parts.append(
                f"PYTHONPATH={shlex.quote(self.remote_pythonpath)}")
        parts.append(
            f"exec {self.python} -m repro.distrib.worker "
            f"--connect {shlex.quote(address)} --name {shlex.quote(name)} "
            f"--cache-mode {self.cache_mode}")
        return " ".join(parts)

    def launch(self, address: str) -> List:
        address = self._rewrite(address)
        for host, n in self.hosts:
            for slot in range(n):
                name = f"{host.split('@')[-1]}-{slot}"
                argv = [self.ssh_binary, *self.ssh_args, host,
                        self._remote_command(address, name)]

                def spawn(argv=argv):
                    return subprocess.Popen(argv)

                self._handles.append(_Supervised(
                    spawn, label=f"ssh:{name}",
                    max_restarts=self.max_restarts, backoff=self.backoff))
        return list(self._handles)


def parse_worker_spec(spec: str,
                      pythonpath: Sequence[Union[str, Path]] = ()
                      ) -> Union[int, WorkerLauncher]:
    """Turn a CLI ``--workers`` value into a count or a launcher.

    ``"4"`` means four local workers (returned as the int, so the
    caller keeps today's LocalLauncher path); anything with host names
    — ``"big:8"``, ``"a:4,b:8"``, ``"gpu-box"`` — builds an
    :class:`SshLauncher` over those hosts.
    """
    spec = spec.strip()
    if spec.isdigit():
        return int(spec)
    return SshLauncher(spec)
