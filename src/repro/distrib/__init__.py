"""Distributed sweep execution: a work-queue server plus worker clients.

This package is the transport behind
:class:`repro.executor.WorkQueueBackend`.  The shape mirrors the
sysplex itself: a shared queue (the server, playing the CF list
structure) that any number of loosely-coupled workers drain, with the
death of a worker surfacing as a resubmitted unit of work rather than a
lost one.

* :mod:`repro.distrib.protocol` — versioned JSON message framing
  (optionally zlib-compressed) over TCP or unix sockets, plus address
  parsing;
* :mod:`repro.distrib.server` — :class:`~repro.distrib.server.
  SweepServer`, the submitter-side task queue: keeps up to ``depth``
  tasks in flight per connected worker, collects results, answers
  protocol-level cache reads, and requeues the outstanding tasks of any
  worker that disconnects mid-run;
* :mod:`repro.distrib.worker` — the worker client loop and its CLI
  (``python -m repro.distrib.worker --connect HOST:PORT``), which pulls
  tasks, answers from a content-addressed cache (shared filesystem or
  over the wire) when it can, and streams canonical payloads back;
* :mod:`repro.distrib.launcher` — who starts the fleet:
  :class:`~repro.distrib.launcher.LocalLauncher` subprocesses,
  :class:`~repro.distrib.launcher.CommandLauncher` shell templates, or
  :class:`~repro.distrib.launcher.SshLauncher` ``host1:4,host2:8``
  fleets with auto-reconnect.

Nothing here knows about experiments or simulators beyond
:func:`repro.executor.run_task`; the protocol carries only JSON.
"""

# NOTE: .worker is deliberately not imported here — it is an executable
# module (`python -m repro.distrib.worker`), and importing it from the
# package __init__ would make runpy warn about double execution.
from .launcher import (
    CommandLauncher,
    LocalLauncher,
    SshLauncher,
    WorkerLauncher,
    parse_worker_spec,
)
from .protocol import (
    PROTO_VERSION,
    ProtocolError,
    format_address,
    parse_address,
)
from .server import SweepServer, WorkerTaskError

__all__ = [
    "PROTO_VERSION",
    "CommandLauncher",
    "LocalLauncher",
    "ProtocolError",
    "SshLauncher",
    "SweepServer",
    "WorkerLauncher",
    "WorkerTaskError",
    "format_address",
    "parse_address",
    "parse_worker_spec",
]
