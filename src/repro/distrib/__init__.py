"""Distributed sweep execution: a work-queue server plus worker clients.

This package is the transport behind
:class:`repro.executor.WorkQueueBackend`.  The shape mirrors the
sysplex itself: a shared queue (the server, playing the CF list
structure) that any number of loosely-coupled workers drain, with the
death of a worker surfacing as a resubmitted unit of work rather than a
lost one.

* :mod:`repro.distrib.protocol` — newline-delimited JSON message
  framing over TCP or unix sockets, plus address parsing;
* :mod:`repro.distrib.server` — :class:`~repro.distrib.server.
  SweepServer`, the submitter-side task queue: hands one task at a time
  to each connected worker, collects results, and requeues the
  outstanding task of any worker that disconnects mid-run;
* :mod:`repro.distrib.worker` — the worker client loop and its CLI
  (``python -m repro.distrib.worker --connect HOST:PORT``), which pulls
  tasks, answers from a shared content-addressed cache when it can, and
  streams canonical payloads back.

Nothing here knows about experiments or simulators beyond
:func:`repro.executor.run_task`; the protocol carries only JSON.
"""

# NOTE: .worker is deliberately not imported here — it is an executable
# module (`python -m repro.distrib.worker`), and importing it from the
# package __init__ would make runpy warn about double execution.
from .protocol import format_address, parse_address
from .server import SweepServer, WorkerTaskError

__all__ = [
    "SweepServer",
    "WorkerTaskError",
    "format_address",
    "parse_address",
]
