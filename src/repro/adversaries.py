"""Adversarial scenario library: pathological sysplex workloads as data.

Every scenario here is a *transform* on a clean chaos-runner
:class:`~repro.runspec.RunSpec`: it reshapes the workload, the database
geometry, or the :class:`~repro.chaos.ChaosConfig` until one specific
sysplex pathology — the kind §2.5/§3.3 of the paper say the design must
survive — reliably manifests.  The transforms are pure data edits, so
every adversary inherits the executor's determinism contract: the same
``(name, seed)`` pair always produces the same spec (same
``content_hash``), and re-running it reproduces the pathology
byte-identically.

The library serves two masters:

* **Regression tests** (``tests/test_adversaries.py``) assert via
  :func:`manifests` that each pathology actually shows up in the payload's
  pathology observables — an adversary that stops biting is a failure,
  because it means the simulator lost the mechanism that produced it.
* **The fuzzer** (:mod:`repro.fuzz`) uses the adversary specs as corpus
  seeds, starting its search deep inside the nasty corners of the
  configuration space instead of at the friendly defaults.

Catalog
-------

====================  ====================================================
name                  pathology
====================  ====================================================
``lock_hog``          write-heavy transactions with slow log forces hold
                      EXCL locks long enough to convoy the whole plex
``deadlock_cycle``    SHR reads upgraded against EXCL writes on a tiny
                      hot set force wait-for cycles the detector must
                      break (victim aborts, not hangs)
``hot_page_convoy``   extreme Zipf skew turns the one CF cache structure
                      into a cross-invalidate storm (§3.3.2)
``sick_system``       a member runs slow-but-alive; it never misses a
                      heartbeat, so SFM never fences it — the hardest
                      detection case (§2.5)
``false_contention``  a coarsened lock table hashes distinct resources
                      onto the same entries (§3.3.1's failure mode)
``castout_laggard``   slow DASD under a write-heavy load lets the CF
                      cache's changed-block backlog grow unboundedly
``duplex_split``      repeated kills of the duplexed-write carrier links
                      must drop every pair cleanly to simplex — never
                      divergence, never a hang
====================  ====================================================
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional, Tuple

from .chaos import ChaosConfig, FaultClassConfig
from .config import MILLI, ArmConfig, CfConfig, XcfConfig
from .options import RunOptions
from .runspec import RunSpec

__all__ = [
    "ADVERSARIES",
    "adversary_spec",
    "adversary_specs",
    "base_spec",
    "edit_chaos",
    "edit_config",
    "manifests",
]

#: Same scenario runner the chaos soak uses: its payload carries the
#: pathology observables every :func:`manifests` predicate reads.
CHAOS_RUNNER = "repro.experiments.exp_chaos:run_chaos_spec"


def base_spec(
    seed: int = 1,
    n_systems: int = 3,
    horizon: float = 2.5,
    drain: float = 1.5,
    offered_tps_per_system: float = 120.0,
    window: float = 0.5,
) -> RunSpec:
    """The healthy starting point every adversary perturbs.

    Mirrors :func:`repro.experiments.exp_chaos.chaos_spec` (two CFs,
    request-level robustness, fast ARM/XCF) but arms **no** fault
    classes — adversaries add exactly the stress they are about, nothing
    else.  ``reconverge_fraction`` is 0 because these are deliberate
    overload scenarios: the availability promise (throughput returns
    after *repair*) is not the property under test, the invariants are.
    """
    from .experiments.common import scaled_config

    config = scaled_config(
        n_systems,
        seed=seed,
        n_cfs=2,
        cf=CfConfig(request_timeout=20 * MILLI, request_retries=4),
        arm=ArmConfig(restart_time=0.5, log_replay_time=0.3),
        xcf=XcfConfig(heartbeat_interval=0.25),
    )
    chaos = ChaosConfig(start=1.0, horizon=horizon)
    return RunSpec(
        runner=CHAOS_RUNNER,
        config=config,
        options=RunOptions(
            mode="open",
            router_policy="wlm",
            offered_tps_per_system=offered_tps_per_system,
        ),
        label=f"adv-base-seed{seed}",
        params={
            "chaos": chaos.to_dict(),
            "window": window,
            "drain": drain,
            "grace": 3.0,
            "check_interval": 0.1,
            "reconverge_fraction": 0.0,
        },
    )


# -- transform plumbing ------------------------------------------------------


def edit_config(spec: RunSpec, **sections) -> RunSpec:
    """Replace fields inside named config sections (``oltp``, ``db``, …)."""
    cfg = spec.config
    changed = {
        name: dc_replace(getattr(cfg, name), **fields)
        for name, fields in sections.items()
    }
    return spec.replace(config=dc_replace(cfg, **changed))


def edit_chaos(spec: RunSpec, **changes) -> RunSpec:
    """Replace fields of the ChaosConfig riding in ``params["chaos"]``."""
    chaos = dc_replace(ChaosConfig.from_dict(spec.params["chaos"]), **changes)
    params = dict(spec.params)
    params["chaos"] = chaos.to_dict()
    return spec.replace(params=params)


# -- the adversaries ---------------------------------------------------------


def lock_hog(spec: RunSpec) -> RunSpec:
    """Long lock-shadowed commits: EXCL locks held across a slow log force.

    Write-heavy transactions on a small database, with the commit log
    force stretched to 6 ms, keep every page lock held ~5x longer than
    the healthy workload — classic IMS-era lock convoying.  Observable:
    global lock waits per completed transaction explode.
    """
    return edit_config(
        spec,
        oltp={"reads_per_txn": 2, "writes_per_txn": 6, "zipf_theta": 0.8},
        db={"n_pages": 600, "log_force_io": 6 * MILLI},
    )


def deadlock_cycle(spec: RunSpec) -> RunSpec:
    """Cross-phase lock-order cycles on a tiny hot set.

    Transactions acquire SHR read locks first, then EXCL write locks —
    each phase sorted, but not the union, so two transactions reading
    what the other writes form a cycle.  150 pages shared by three
    systems makes such overlap routine; a fast detector sweep (100 ms)
    must break every cycle.  Observable: resolved deadlocks > 0.
    """
    return edit_config(
        spec,
        oltp={"reads_per_txn": 5, "writes_per_txn": 3, "zipf_theta": 0.7},
        db={"n_pages": 150, "deadlock_interval": 0.1},
    )


def hot_page_convoy(spec: RunSpec) -> RunSpec:
    """Cross-invalidate storm on one CF cache structure.

    Zipf theta 1.2 over 800 pages concentrates the working set so every
    commit of a hot page cross-invalidates peers' registered copies,
    which re-read and re-register — the coherency traffic the paper's XI
    protocol (§3.3.2) keeps off host CPUs.  Offered load is throttled so
    commits keep flowing (the storm needs committers, and an overloaded
    plex seizes into a pure lock convoy instead).  Observable: XI
    signals per completed transaction, roughly double the healthy rate.
    """
    spec = edit_config(
        spec,
        oltp={"reads_per_txn": 6, "writes_per_txn": 3, "zipf_theta": 1.2},
        db={"n_pages": 800},
    )
    return spec.replace(offered_tps_per_system=40.0)


def sick_system(spec: RunSpec) -> RunSpec:
    """Sick-but-not-dead member: degraded CPU, healthy heartbeat.

    A sick fault class slows struck systems' CPUs 8x without stopping
    them: XCF status updates keep flowing, so SFM (which only sees
    fail-stopped members, §2.5) never fences anybody.  The long mttr
    means nobody heals within the run, and the ``min_healthy_systems``
    guardrail keeps at least one full-speed member as a comparison
    baseline.  Observable: systems end the run degraded, zero partitions
    were declared, and the sick members complete far less work than
    their healthy peers.
    """
    return edit_chaos(
        spec,
        sick=FaultClassConfig(mtbf=1.0, mttr=30.0, max_faults=1),
        sick_cpu_factor=8.0,
    )


def false_contention(spec: RunSpec) -> RunSpec:
    """False-contention storm from a coarsened lock table.

    Shrinking the lock structure from 2^20 to 64 entries hashes distinct
    resources onto the same entry, so the CF reports contention for
    locks nobody actually holds — exactly what §3.3.1 sizes the table to
    avoid.  Observable: the lock structure's false-contention rate.
    """
    return edit_config(spec, cf={"lock_table_entries": 64})


def castout_laggard(spec: RunSpec) -> RunSpec:
    """Castout engine starved by slow DASD under a write-heavy load.

    A third of the usual devices, each 10x slower, against a workload
    dirtying ~8 pages per commit: changed pages accumulate in the CF
    cache far faster than the castout engine can drain them to DASD.
    Observable: the changed-block backlog still undrained at end of run
    (and, if it ever saturates the structure, cache-full aborts).
    """
    spec = edit_config(
        spec,
        oltp={"reads_per_txn": 4, "writes_per_txn": 8},
        dasd={"service_mean": 25 * MILLI},
    )
    return spec.replace(config=dc_replace(spec.config, n_dasd=16))


def duplex_split(spec: RunSpec) -> RunSpec:
    """Duplexed-write carrier severed mid-stream.

    Every structure class runs duplexed (primaries on CF01, secondaries
    on CF02), then the link fault process attacks **only** the linksets
    reaching CF02 — the carrier every mirrored write rides.  With both
    links of a set down, the next duplexed write's secondary leg times
    out and the pair must break to simplex *cleanly*: the primary keeps
    serving (work keeps completing), nothing diverges, and SFM logs the
    break on the degraded timeline.  Observable: duplex breaks > 0 with
    transactions still completing.
    """
    spec = edit_config(spec, cf={"duplex": "all"})
    return edit_chaos(
        spec,
        links=FaultClassConfig(mtbf=0.3, mttr=30.0, max_faults=2),
        link_target="CF02",
    )


#: name -> spec transform; iteration order is the catalog order above.
ADVERSARIES: Dict[str, Callable[[RunSpec], RunSpec]] = {
    "lock_hog": lock_hog,
    "deadlock_cycle": deadlock_cycle,
    "hot_page_convoy": hot_page_convoy,
    "sick_system": sick_system,
    "false_contention": false_contention,
    "castout_laggard": castout_laggard,
    "duplex_split": duplex_split,
}


def adversary_spec(name: str, seed: int = 1, **geometry) -> RunSpec:
    """The named adversary's RunSpec for ``seed`` (deterministic).

    ``geometry`` forwards to :func:`base_spec` (n_systems, horizon, …).
    Equal ``(name, seed, geometry)`` always yields an equal
    ``content_hash`` — that is the seed contract the tests pin.
    """
    try:
        transform = ADVERSARIES[name]
    except KeyError:
        known = ", ".join(sorted(ADVERSARIES))
        raise KeyError(f"unknown adversary {name!r} (known: {known})") from None
    spec = transform(base_spec(seed=seed, **geometry))
    return spec.replace(label=f"adv-{name}-seed{seed}")


def adversary_specs(
    seed: int = 1, names: Optional[List[str]] = None, **geometry
) -> List[RunSpec]:
    """One spec per adversary (catalog order), all at the same seed."""
    return [
        adversary_spec(name, seed, **geometry)
        for name in (names if names is not None else list(ADVERSARIES))
    ]


# -- manifestation predicates ------------------------------------------------
# Thresholds sit between the healthy baseline and the adversarial
# measurement with margin on both sides, so they detect "the mechanism
# disappeared" without flaking on simulator tuning.  Runs are seeded and
# byte-deterministic, so any threshold crossing is a real change.

#: lock_hog: global lock waits per completed transaction (healthy ~0.05,
#: adversarial ~2.8).
LOCK_HOG_WAITS_PER_TXN = 0.5
#: deadlock_cycle: resolved deadlocks over the whole run (healthy ~1,
#: adversarial hundreds).
DEADLOCK_MIN = 10
#: hot_page_convoy: cross-invalidate signals per completed transaction
#: (healthy ~2.5, adversarial ~4.5-5.6 across seeds).
CONVOY_XI_PER_TXN = 3.5
#: sick_system: a sick member completes under this fraction of the
#: healthiest member's work (adversarial ~0.3-0.56 across seeds).
SICK_COMPLETION_RATIO = 0.7
#: false_contention: false-contention fraction of CF lock requests
#: (healthy ~0, adversarial ~0.2).
FALSE_CONTENTION_RATE = 0.05
#: castout_laggard: changed blocks still undrained at end of run
#: (healthy ~40, adversarial ~700).
CASTOUT_BACKLOG_MIN = 300
#: duplex_split: duplex pairs broken to simplex over the run (healthy 0
#: — the base spec runs simplex and records no duplex events at all).
DUPLEX_BREAKS_MIN = 1


def _waits_per_txn(payload: dict) -> Tuple[bool, str]:
    p = payload["summary"]["pathology"]
    rate = p["lock_waits"] / max(1, payload["summary"]["completed"])
    ok = rate > LOCK_HOG_WAITS_PER_TXN
    return ok, f"lock waits/txn {rate:.2f} (need > {LOCK_HOG_WAITS_PER_TXN})"


def _deadlocks(payload: dict) -> Tuple[bool, str]:
    n = payload["summary"]["pathology"]["deadlocks"]
    return n >= DEADLOCK_MIN, f"deadlocks {n} (need >= {DEADLOCK_MIN})"


def _xi_per_txn(payload: dict) -> Tuple[bool, str]:
    p = payload["summary"]["pathology"]
    rate = p.get("xi_signals", 0) / max(1, payload["summary"]["completed"])
    ok = rate > CONVOY_XI_PER_TXN
    return ok, f"XI signals/txn {rate:.2f} (need > {CONVOY_XI_PER_TXN})"


def _sick_skew(payload: dict) -> Tuple[bool, str]:
    p = payload["summary"]["pathology"]
    sick = p.get("sick_names", [])
    if not sick:
        return False, "no system ended the run sick"
    if p["partitioned"] != 0:
        return False, f"{p['partitioned']} partition(s): the plex fenced it"
    per = p["per_system_completed"]
    healthy = [v for k, v in per.items() if k not in sick]
    if not healthy:
        return False, "every system went sick: no healthy peer to compare"
    worst = min(per[k] for k in sick)
    best = max(healthy)
    ok = worst < SICK_COMPLETION_RATIO * best
    detail = (
        f"sick member completed {worst} vs healthy {best} "
        f"(need < {SICK_COMPLETION_RATIO:.0%})"
    )
    return ok, detail


def _false_contention_rate(payload: dict) -> Tuple[bool, str]:
    p = payload["summary"]["pathology"]
    rate = p.get("false_contention_rate", 0.0)
    ok = rate > FALSE_CONTENTION_RATE
    return ok, f"false-contention rate {rate:.3f} (need > {FALSE_CONTENTION_RATE})"


def _castout_backlog(payload: dict) -> Tuple[bool, str]:
    p = payload["summary"]["pathology"]
    backlog = p.get("castout_backlog", 0)
    ok = backlog > CASTOUT_BACKLOG_MIN
    return ok, f"castout backlog {backlog} blocks (need > {CASTOUT_BACKLOG_MIN})"


def _duplex_breaks(payload: dict) -> Tuple[bool, str]:
    p = payload["summary"]["pathology"]
    breaks = p.get("duplex_breaks", 0)
    completed = payload["summary"]["completed"]
    if breaks < DUPLEX_BREAKS_MIN:
        return False, f"duplex breaks {breaks} (need >= {DUPLEX_BREAKS_MIN})"
    if completed <= 0:
        return False, f"{breaks} breaks but zero transactions completed"
    return True, f"duplex breaks {breaks}, {completed} txns completed simplex"


_MANIFESTS: Dict[str, Callable[[dict], Tuple[bool, str]]] = {
    "lock_hog": _waits_per_txn,
    "deadlock_cycle": _deadlocks,
    "hot_page_convoy": _xi_per_txn,
    "sick_system": _sick_skew,
    "false_contention": _false_contention_rate,
    "castout_laggard": _castout_backlog,
    "duplex_split": _duplex_breaks,
}


def manifests(name: str, payload: dict) -> Tuple[bool, str]:
    """Did ``name``'s pathology show up in this chaos-runner payload?

    Returns ``(ok, detail)`` with the measured value and its threshold —
    the detail string is what the regression test prints on failure.
    """
    try:
        check = _MANIFESTS[name]
    except KeyError:
        known = ", ".join(sorted(_MANIFESTS))
        raise KeyError(f"unknown adversary {name!r} (known: {known})") from None
    return check(payload)
