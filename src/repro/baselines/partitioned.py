"""Shared-nothing (data-partitioning) cluster: the paper's counterpoint.

§2.3: "In a data-partitioning system, the database and the workload are
divided among the set of parallel processing nodes so that each system has
sole responsibility for workload access and update to a defined portion
of the database."  No coupling facility, no cross-system locks — but:

* a transaction touching remote data pays **function shipping** (an XCF-
  class message round trip plus CPU at both ends per remote call);
* multi-partition transactions commit with **two-phase commit** (extra
  log forces and message rounds);
* capacity must be *tuned* to match each partition's demand: when demand
  spikes on one partition, that owner saturates while peers idle
  (EXP-BAL measures exactly this);
* adding a system requires **repartitioning** — an outage window
  proportional to the data moved (EXP-GROW), versus the sysplex's
  non-disruptive growth.

Transactions are routed to the partition owning their first page (the
"home" the system was tuned for); their accesses are executed locally or
function-shipped.
"""

from __future__ import annotations

from typing import Generator, List


from ..cf.lock import LockMode
from ..config import SysplexConfig
from ..hardware.cpu import SystemDown
from ..hardware.dasd import DasdDevice, DasdFarm
from ..hardware.system import SystemNode
from ..hardware.timer import SysplexTimer
from ..metrics import RunResult
from ..mvs.wlm import WorkloadManager
from ..simkernel import MetricSet, RandomStreams, Resource, Simulator
from ..subsystems.buffermgr import BufferManager
from ..subsystems.database import UNDO_CPU_PER_PAGE
from ..subsystems.lockmgr import (
    DeadlockAbort,
    RetainedLockReject,
    DeadlockDetector,
    LockManager,
    LockSpace,
)
from ..subsystems.logmgr import LogManager
from ..sysplex import _LocalXes

__all__ = ["PartitionedCluster"]

MAX_RETRIES = 10


class PartitionedCluster:
    """A shared-nothing cluster with the same hardware as a sysplex."""

    def __init__(self, config: SysplexConfig):
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.metrics = MetricSet(self.sim)
        self.timer = SysplexTimer(self.sim)
        self.farm = DasdFarm(self.sim, config.dasd,
                             self.streams.stream("dasd"),
                             n_devices=config.n_dasd)
        self.wlm = WorkloadManager(self.sim, config.wlm,
                                   self.streams.stream("wlm"))
        self.lock_space = LockSpace(self.sim)
        self.deadlocks = DeadlockDetector(self.sim, self.lock_space,
                                          interval=config.db.deadlock_interval)
        self.nodes: List[SystemNode] = []
        self._stacks: List[dict] = []
        for i in range(config.n_systems):
            self._build_system(i)
        self.n_partitions = config.n_systems
        self.completed = 0
        self.failed_txns = 0
        self.remote_calls = 0
        self.two_phase_commits = 0
        self.repartition_until = 0.0
        self.deadlock_retries = 0

    def _build_system(self, index: int) -> None:
        cfg = self.config
        node = SystemNode(self.sim, cfg, index, tod=self.timer.attach())
        self.nodes.append(node)
        lockmgr = LockManager(self.sim, self.lock_space, _LocalXes(node),
                              cfg.xcf, node.name)
        buffers = BufferManager(self.sim, node, cfg.db, self.farm, xes=None)
        log_dev = DasdDevice(self.sim, cfg.dasd,
                             self.streams.stream(f"log-{node.name}"),
                             name=f"log-{node.name}")
        log = LogManager(self.sim, node, cfg.db, log_dev)
        tasks = Resource(self.sim, capacity=32 * cfg.cpu.n_cpus)
        self._stacks.append(
            {"node": node, "locks": lockmgr, "buffers": buffers,
             "log": log, "tasks": tasks}
        )
        self.wlm.watch(node)
        self.sim.process(self._deferred_writer(index), name=f"dwq-{node.name}")

    def _deferred_writer(self, index: int):
        stack = self._stacks[index]
        while stack["node"].alive:
            yield self.sim.timeout(0.05)
            yield from stack["buffers"].flush_deferred(limit=128)

    # -- partition map -----------------------------------------------------------
    def owner_of(self, page: int) -> int:
        """Range partitioning over the permuted page space."""
        return min(page * self.n_partitions // self.config.db.n_pages,
                   self.n_partitions - 1)

    # -- the router interface (matches SysplexRouter.route) --------------------------
    def route(self, txn) -> None:
        if self.sim.now < self.repartition_until:
            self.failed_txns += 1  # database offline for repartitioning
            return
        first = (txn.writes or txn.reads)[0]
        coord = self.owner_of(first)
        if not self.nodes[coord].alive:
            self.failed_txns += 1  # that partition's data is unavailable
            return
        self.sim.process(self._run(txn, coord), name=f"ptxn-{txn.txn_id}")

    def _run(self, txn, coord: int) -> Generator:
        stack = self._stacks[coord]
        req = stack["tasks"].request()
        rng = self.streams.stream(f"retry-{coord}")
        try:
            yield req
            node = stack["node"]
            app_half = 0.5 * self.config.oltp.app_cpu
            owner_key = (node.name, txn.txn_id)
            try:
                for _attempt in range(MAX_RETRIES):
                    participants = {coord}
                    try:
                        yield from node.cpu.consume(app_half)
                        for page in txn.reads:
                            yield from self._access(
                                coord, owner_key, page, LockMode.SHR,
                                participants,
                            )
                        for page in txn.writes:
                            yield from self._access(
                                coord, owner_key, page, LockMode.EXCL,
                                participants,
                            )
                        yield from node.cpu.consume(app_half)
                        yield from self._commit(coord, owner_key, txn,
                                                participants)
                        break
                    except DeadlockAbort:
                        self.deadlock_retries += 1
                        yield from self._abort(owner_key, participants)
                        yield self.sim.timeout(float(rng.exponential(2e-3)))
                else:
                    self.failed_txns += 1
                    return
            except (SystemDown, RetainedLockReject):
                self.failed_txns += 1
                return
            rt = self.sim.now - txn.arrival
            self.completed += 1
            self.metrics.counter("txn.completed").add()
            self.metrics.tally("txn.response").record(rt)
            self.wlm.record_response(txn.service_class, rt)
            if txn.done is not None and not txn.done.triggered:
                txn.done.succeed(rt)
        finally:
            req.cancel()

    def _access(self, coord: int, owner_key, page: int, mode: str,
                participants: set) -> Generator:
        owner = self.owner_of(page)
        xcfg = self.config.xcf
        cstack = self._stacks[coord]
        if owner == coord:
            yield from self._local_access(owner, owner_key, page, mode)
            return
        # function shipping: request message, remote execution, reply
        participants.add(owner)
        self.remote_calls += 1
        if not self.nodes[owner].alive:
            raise SystemDown(self.nodes[owner].name)
        yield from cstack["node"].cpu.consume(xcfg.message_cpu)
        yield self.sim.timeout(xcfg.message_latency)
        ostack = self._stacks[owner]
        yield from ostack["node"].cpu.consume(xcfg.message_cpu)
        yield from self._local_access(owner, owner_key, page, mode)
        yield from ostack["node"].cpu.consume(xcfg.message_cpu)
        yield self.sim.timeout(xcfg.message_latency)
        yield from cstack["node"].cpu.consume(xcfg.message_cpu)

    def _local_access(self, owner: int, owner_key, page: int,
                      mode: str) -> Generator:
        stack = self._stacks[owner]
        yield from stack["locks"].lock(owner_key, page, mode)
        yield from stack["node"].cpu.consume(self.config.db.db_call_cpu)
        yield from stack["buffers"].get_page(page)
        if mode == LockMode.EXCL:
            stack["buffers"].mark_dirty(page)
            stack["log"].log_update(owner_key, page)

    def _commit(self, coord: int, owner_key, txn, participants: set
                ) -> Generator:
        xcfg = self.config.xcf
        cstack = self._stacks[coord]
        others = sorted(participants - {coord})
        if others:
            # two-phase commit: prepare round (each participant forces its
            # log), then the coordinator's decision force, then commits
            self.two_phase_commits += 1
            for p in others:
                yield from cstack["node"].cpu.consume(xcfg.message_cpu)
                yield self.sim.timeout(xcfg.message_latency)
                pstack = self._stacks[p]
                yield from pstack["node"].cpu.consume(xcfg.message_cpu)
                yield from pstack["log"].force()
                yield self.sim.timeout(xcfg.message_latency)
                yield from cstack["node"].cpu.consume(xcfg.message_cpu)
        yield from cstack["log"].force()
        for p in others:  # commit messages (participants ack lazily)
            yield from cstack["node"].cpu.consume(xcfg.message_cpu)
        # release locks everywhere
        for p in sorted(participants):
            self._stacks[p]["log"].log_end(owner_key)
            yield from self._stacks[p]["locks"].unlock_all(owner_key)

    def _abort(self, owner_key, participants: set) -> Generator:
        for p in sorted(participants):
            stack = self._stacks[p]
            touched = stack["log"].in_flight.get(owner_key, [])
            if touched:
                yield from stack["node"].cpu.consume(
                    UNDO_CPU_PER_PAGE * len(touched)
                )
            stack["log"].log_end(owner_key)
            yield from stack["locks"].unlock_all(owner_key)

    # -- growth: repartitioning outage (EXP-GROW) -------------------------------------
    def add_system(self, page_move_time: float = 0.2e-3) -> float:
        """Add a node; the database is offline while data is rebalanced.

        Returns the repartition window length.  Each of the new system's
        pages must be read from and rewritten to DASD; devices work in
        parallel, so the window is pages_moved x per-page time / devices.
        """
        self._build_system(len(self.nodes))
        self.n_partitions = len(self.nodes)
        pages_moved = self.config.db.n_pages // self.n_partitions
        window = pages_moved * page_move_time / max(1, self.config.n_dasd / 4)
        self.repartition_until = self.sim.now + window
        return window

    # -- measurement -------------------------------------------------------------------
    def reset_measurement(self) -> None:
        for tally in self.metrics.tallies.values():
            tally.reset()
        # snapshot, don't reset: the WLM samplers read these counters too
        self._busy_snapshot = {
            s["node"].name: s["node"].cpu.engines.busy_area()
            for s in self._stacks
        }
        self._measure_start = self.sim.now
        self._completed_start = self.metrics.counter("txn.completed").count

    def collect(self, label: str) -> RunResult:
        start = getattr(self, "_measure_start", 0.0)
        completed0 = getattr(self, "_completed_start", 0)
        busy0 = getattr(self, "_busy_snapshot", {})
        duration = self.sim.now - start

        def _util(stack) -> float:
            if duration <= 0:
                return 0.0
            node = stack["node"]
            base = busy0.get(node.name, 0.0)
            return (node.cpu.engines.busy_area() - base) / (
                duration * node.cpu.n_cpus
            )
        completed = self.metrics.counter("txn.completed").count - completed0
        rt = self.metrics.tally("txn.response")
        return RunResult(
            label=label,
            duration=duration,
            completed=completed,
            throughput=completed / duration if duration > 0 else 0.0,
            response_mean=rt.mean,
            response_p50=rt.percentile(50),
            response_p90=rt.percentile(90),
            response_p95=rt.percentile(95),
            response_p99=rt.percentile(99),
            cpu_utilization={
                s["node"].name: _util(s)
                for s in self._stacks
                if s["node"].alive
            },
            extras={
                "remote_calls": float(self.remote_calls),
                "two_phase_commits": float(self.two_phase_commits),
                "failed": float(self.failed_txns),
                "deadlock_retries": float(self.deadlock_retries),
            },
        )
