"""Baseline architectures the paper argues against: shared-nothing
data-partitioning (§2.3) and message-broadcast data sharing (§3.3)."""

from .broadcast import BroadcastCluster
from .partitioned import PartitionedCluster

__all__ = ["BroadcastCluster", "PartitionedCluster"]
