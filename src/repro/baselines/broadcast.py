"""Message-broadcast data sharing: coupling without a Coupling Facility.

The strawman the paper's §3.3 opens with: data-sharing clusters
historically showed "poor performance and rapidly-diminishing scalability"
because (1) lock grant/release required **inter-system communication
traffic** and (2) buffer coherency required **broadcast messages to other
nodes to perform buffer invalidation**.

This baseline implements exactly that design on the same hardware:

* locks are mastered by hashing resources across systems (a distributed
  lock manager à la VAXcluster): a request whose master is remote costs a
  full message round trip — *hundreds of microseconds and CPU at both
  ends* — versus the CF's spin-synchronous microseconds;
* every committed page update broadcasts an invalidation message to every
  other system and waits for acknowledgements, so write cost grows O(N);
* there is no global cache: a system whose buffer was invalidated
  re-reads from DASD.

EXP-COHER sweeps system count against per-transaction overhead for this
cluster versus the CF-based sysplex.
"""

from __future__ import annotations

from typing import Dict, Generator, List


from ..cf.lock import LockMode
from ..config import SysplexConfig
from ..hardware.cpu import SystemDown
from ..hardware.dasd import DasdDevice, DasdFarm
from ..hardware.system import SystemNode
from ..metrics import RunResult
from ..mvs.wlm import WorkloadManager
from ..simkernel import MetricSet, RandomStreams, Resource, Simulator
from ..subsystems.database import UNDO_CPU_PER_PAGE
from ..subsystems.lockmgr import (
    DeadlockAbort,
    RetainedLockReject,
    DeadlockDetector,
    LockManager,
    LockSpace,
)
from ..subsystems.logmgr import LogManager
from ..sysplex import _LocalXes

__all__ = ["BroadcastCluster"]

MAX_RETRIES = 10


class _MessageLockPort(_LocalXes):
    """Lock-manager transport where remote-mastered requests pay messaging."""

    def __init__(self, node: SystemNode, cluster: "BroadcastCluster"):
        super().__init__(node)
        self.cluster = cluster

    def sync(self, fn, **kw):
        # which system masters this resource is decided by the cluster;
        # the lock manager calls us once per request/release
        cost = self.cluster.lock_transport_cost(self.node)
        if cost > 0:
            yield from self.node.cpu.consume(self.cluster.config.xcf.message_cpu)
            yield self.node.sim.timeout(cost)
            # master-side processing
            yield from self.node.cpu.consume(0.5e-6)
        else:
            yield from self.node.cpu.consume(0.5e-6)
        return fn()


class BroadcastCluster:
    """Data sharing via messages only (no CF)."""

    def __init__(self, config: SysplexConfig):
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.metrics = MetricSet(self.sim)
        self.farm = DasdFarm(self.sim, config.dasd,
                             self.streams.stream("dasd"),
                             n_devices=config.n_dasd)
        self.wlm = WorkloadManager(self.sim, config.wlm,
                                   self.streams.stream("wlm"))
        self.lock_space = LockSpace(self.sim)
        self.deadlocks = DeadlockDetector(self.sim, self.lock_space,
                                          interval=config.db.deadlock_interval)
        self.nodes: List[SystemNode] = []
        self._stacks: List[dict] = []
        #: page -> version, the ground truth each system compares against
        self._page_version: Dict[int, int] = {}
        self._rng = self.streams.stream("lockmaster")
        self.completed = 0
        self.failed_txns = 0
        self.invalidation_messages = 0
        self.remote_lock_requests = 0
        self.deadlock_retries = 0
        for i in range(config.n_systems):
            self._build_system(i)

    def _build_system(self, index: int) -> None:
        cfg = self.config
        node = SystemNode(self.sim, cfg, index)
        self.nodes.append(node)
        port = _MessageLockPort(node, self)
        locks = LockManager(self.sim, self.lock_space, port, cfg.xcf, node.name)
        log_dev = DasdDevice(self.sim, cfg.dasd,
                             self.streams.stream(f"log-{node.name}"),
                             name=f"log-{node.name}")
        log = LogManager(self.sim, node, cfg.db, log_dev)
        self._stacks.append(
            {
                "node": node,
                "locks": locks,
                "log": log,
                "tasks": Resource(self.sim, capacity=32 * cfg.cpu.n_cpus),
                # local pool: page -> seen version
                "pool": {},
                "pool_order": [],
            }
        )
        self.wlm.watch(node)

    # -- lock transport cost ------------------------------------------------------
    def lock_transport_cost(self, node: SystemNode) -> float:
        """Remote-master probability (N-1)/N; cost = 2x message latency."""
        n = len(self.nodes)
        if n <= 1:
            return 0.0
        if self._rng.random() < (n - 1) / n:
            self.remote_lock_requests += 1
            return 2 * self.config.xcf.message_latency
        return 0.0

    # -- buffer model -----------------------------------------------------------------
    def _get_page(self, index: int, page: int) -> Generator:
        stack = self._stacks[index]
        pool = stack["pool"]
        current = self._page_version.get(page, 0)
        seen = pool.get(page)
        if seen is not None and seen == current:
            return  # valid local copy
        # invalid or absent: DASD re-read (no second-level cache here)
        yield from self.farm.read_page(page)
        if len(pool) >= self.config.db.buffer_pages and page not in pool:
            victim = stack["pool_order"].pop(0)
            pool.pop(victim, None)
        if page not in pool:
            stack["pool_order"].append(page)
        pool[page] = current

    def _write_page(self, index: int, page: int) -> Generator:
        """Commit-time update: bump version, broadcast invalidations."""
        self._page_version[page] = self._page_version.get(page, 0) + 1
        self._stacks[index]["pool"][page] = self._page_version[page]
        xcfg = self.config.xcf
        node = self._stacks[index]["node"]
        targets = [s for s in self._stacks if s["node"] is not node
                   and s["node"].alive]
        # sends are parallel but each costs sender CPU; each target pays
        # receive CPU; the writer waits one round trip for the slowest ack
        for target in targets:
            self.invalidation_messages += 1
            yield from node.cpu.consume(xcfg.message_cpu)
            self.sim.process(
                target["node"].cpu.consume(xcfg.message_cpu),
                name="bcast-recv",
            )
        if targets:
            yield self.sim.timeout(2 * xcfg.message_latency)
            yield from node.cpu.consume(xcfg.message_cpu * len(targets) * 0.5)
        # write-through to DASD so peers re-read current data
        yield from self.farm.write_page(page)

    # -- router interface ----------------------------------------------------------------
    def route(self, txn) -> None:
        index = txn.home % len(self.nodes)
        if not self.nodes[index].alive:
            self.failed_txns += 1
            return
        self.sim.process(self._run(txn, index), name=f"btxn-{txn.txn_id}")

    def _run(self, txn, index: int) -> Generator:
        stack = self._stacks[index]
        rng = self.streams.stream(f"retry-{index}")
        req = stack["tasks"].request()
        try:
            yield req
            node = stack["node"]
            app_half = 0.5 * self.config.oltp.app_cpu
            owner_key = (node.name, txn.txn_id)
            try:
                for _attempt in range(MAX_RETRIES):
                    try:
                        yield from node.cpu.consume(app_half)
                        for page in txn.reads:
                            yield from stack["locks"].lock(
                                owner_key, page, LockMode.SHR)
                            yield from node.cpu.consume(
                                self.config.db.db_call_cpu)
                            yield from self._get_page(index, page)
                        for page in txn.writes:
                            yield from stack["locks"].lock(
                                owner_key, page, LockMode.EXCL)
                            yield from node.cpu.consume(
                                self.config.db.db_call_cpu)
                            yield from self._get_page(index, page)
                            stack["log"].log_update(owner_key, page)
                        yield from node.cpu.consume(app_half)
                        yield from stack["log"].force()
                        for page in txn.writes:
                            yield from self._write_page(index, page)
                        stack["log"].log_end(owner_key)
                        yield from stack["locks"].unlock_all(owner_key)
                        break
                    except DeadlockAbort:
                        self.deadlock_retries += 1
                        touched = stack["log"].in_flight.get(owner_key, [])
                        if touched:
                            yield from node.cpu.consume(
                                UNDO_CPU_PER_PAGE * len(touched))
                        stack["log"].log_end(owner_key)
                        yield from stack["locks"].unlock_all(owner_key)
                        yield self.sim.timeout(float(rng.exponential(2e-3)))
                else:
                    self.failed_txns += 1
                    return
            except (SystemDown, RetainedLockReject):
                self.failed_txns += 1
                return
            rt = self.sim.now - txn.arrival
            self.completed += 1
            self.metrics.counter("txn.completed").add()
            self.metrics.tally("txn.response").record(rt)
            if txn.done is not None and not txn.done.triggered:
                txn.done.succeed(rt)
        finally:
            req.cancel()

    # -- measurement -------------------------------------------------------------------
    def reset_measurement(self) -> None:
        for tally in self.metrics.tallies.values():
            tally.reset()
        # snapshot, don't reset: the WLM samplers read these counters too
        self._busy_snapshot = {
            s["node"].name: s["node"].cpu.engines.busy_area()
            for s in self._stacks
        }
        self._measure_start = self.sim.now
        self._completed_start = self.metrics.counter("txn.completed").count

    def collect(self, label: str) -> RunResult:
        start = getattr(self, "_measure_start", 0.0)
        completed0 = getattr(self, "_completed_start", 0)
        busy0 = getattr(self, "_busy_snapshot", {})
        duration = self.sim.now - start

        def _util(stack) -> float:
            if duration <= 0:
                return 0.0
            node = stack["node"]
            base = busy0.get(node.name, 0.0)
            return (node.cpu.engines.busy_area() - base) / (
                duration * node.cpu.n_cpus
            )
        completed = self.metrics.counter("txn.completed").count - completed0
        rt = self.metrics.tally("txn.response")
        return RunResult(
            label=label,
            duration=duration,
            completed=completed,
            throughput=completed / duration if duration > 0 else 0.0,
            response_mean=rt.mean,
            response_p50=rt.percentile(50),
            response_p90=rt.percentile(90),
            response_p95=rt.percentile(95),
            response_p99=rt.percentile(99),
            cpu_utilization={s["node"].name: _util(s) for s in self._stacks},
            extras={
                "invalidation_messages": float(self.invalidation_messages),
                "remote_lock_requests": float(self.remote_lock_requests),
                "deadlock_retries": float(self.deadlock_retries),
            },
        )
