"""Declarative run specifications.

A :class:`RunSpec` is a frozen, JSON-serializable description of one
independent simulation run: the :class:`~repro.config.SysplexConfig` to
build plus the drive parameters (mode, duration, warmup, routing,
tracing, …) or — for experiments whose drive logic is richer than a
plain OLTP window — the dotted name of a *scenario runner* plus its
parameters.  Experiments declare their sweep as a list of RunSpecs and
hand it to :func:`repro.executor.execute`, which may run the specs
in-process, across a process pool, or answer them from the on-disk
result cache.

The contract that makes all of that safe is **content addressing**: two
specs with equal :meth:`RunSpec.content_hash` produce bit-identical
results, whichever way they are executed.  The hash covers the canonical
JSON form of the spec (config tree included) plus a schema version, so
cache entries are invalidated wholesale when the spec format changes.

Runner resolution
-----------------

``RunSpec.runner`` names the function that executes the spec:

* ``"oltp"`` (the default) — :func:`repro.runner.run_spec`, a measured
  OLTP window via :func:`repro.runner.run_oltp`;
* ``"package.module:function"`` — any importable function taking the
  spec and returning either a :class:`~repro.metrics.RunResult` or a
  JSON-serializable payload (dict/list of plain data).

The dotted-path form is what lets a subprocess worker re-resolve the
runner without the parent shipping code objects across the pipe.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional

from .config import SysplexConfig
from .options import OPTION_FIELDS, RunOptions

__all__ = [
    "RunSpec",
    "SCHEMA_VERSION",
    "canonical_json",
    "resolve_runner",
]

#: Bumped whenever the serialized spec format (or the meaning of any
#: field) changes, so stale ``.runcache`` entries can never be replayed
#: against a new schema.  v2: drive parameters moved from loose spec
#: fields into a nested :class:`~repro.options.RunOptions` bundle.
#: v3: :class:`~repro.chaos.ChaosConfig` gained the sick-system fault
#: class, and the chaos runner's payload carries pathology observables
#: plus invariant branch coverage (see ``repro.adversaries`` /
#: ``repro.fuzz``).  v4: :class:`~repro.options.RunOptions` gained the
#: execution profile (``profile``/``scheduler``/``collapse``), and
#: ``profile="sweep"`` — the default — runs event-collapsed, so v3
#: results are not comparable byte-for-byte.
SCHEMA_VERSION = 4

#: Short names for the built-in runners.
RUNNER_ALIASES: Dict[str, str] = {
    "oltp": "repro.runner:run_spec",
}

_RUNNER_CACHE: Dict[str, Callable[["RunSpec"], Any]] = {}


def resolve_runner(name: str) -> Callable[["RunSpec"], Any]:
    """Import and return the runner function behind ``name``."""
    target = RUNNER_ALIASES.get(name, name)
    fn = _RUNNER_CACHE.get(target)
    if fn is None:
        module_name, sep, attr = target.partition(":")
        if not sep:
            raise ValueError(
                f"unknown runner {name!r}: not an alias and not a "
                f"'module:function' path"
            )
        fn = getattr(importlib.import_module(module_name), attr)
        _RUNNER_CACHE[target] = fn
    return fn


def _json_default(obj: Any) -> Any:
    # Scenario payloads occasionally carry numpy scalars (counters,
    # balance indices); coerce them so canonical JSON never depends on
    # whether a runner used numpy or builtin arithmetic.
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {obj!r} ({type(obj).__name__})")


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, repr'd floats."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


@dataclass(frozen=True)
class RunSpec:
    """One independent, reproducible simulation run, as data.

    ``config`` says *what* to build, ``options`` says *how* to drive it
    (mirroring :func:`repro.runner.run_oltp`); scenario runners are free
    to interpret ``params`` however they like (everything in it must be
    JSON-serializable).
    """

    runner: str = "oltp"
    config: Optional[SysplexConfig] = None
    duration: float = 1.0
    warmup: float = 0.3
    options: RunOptions = RunOptions()
    label: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)

    # -- drive-option views ------------------------------------------------
    # Read-only pass-throughs so spec consumers (runners, reports) can say
    # ``spec.tracing`` without reaching into the bundle.

    @property
    def mode(self) -> str:
        return self.options.mode

    @property
    def router_policy(self) -> str:
        return self.options.router_policy

    @property
    def monitoring(self) -> bool:
        return self.options.monitoring

    @property
    def tracing(self) -> bool:
        return self.options.tracing

    @property
    def terminals_per_system(self) -> Optional[int]:
        return self.options.terminals_per_system

    @property
    def offered_tps_per_system(self) -> float:
        return self.options.offered_tps_per_system

    @property
    def profile(self) -> str:
        return self.options.profile

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        d = {
            "runner": self.runner,
            "config": self.config.to_dict() if self.config else None,
            "duration": self.duration,
            "warmup": self.warmup,
            "options": self.options.to_dict(),
            "label": self.label,
            "params": dict(self.params),
        }
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        kw = dict(data)
        if kw.get("config") is not None:
            kw["config"] = SysplexConfig.from_dict(kw["config"])
        opts = kw.get("options")
        if isinstance(opts, dict):
            kw["options"] = RunOptions.from_dict(opts)
        # schema-v1 dicts carried the drive options as flat spec keys
        flat = {k: kw.pop(k) for k in list(kw) if k in OPTION_FIELDS}
        if flat:
            kw["options"] = kw.get("options", RunOptions()).replace(**flat)
        return cls(**kw)

    def to_json(self) -> str:
        """This spec as a standalone, human-diffable repro file.

        The schema version travels with the spec so a saved repro (e.g. a
        shrunk fuzz finding) refuses to replay against an incompatible
        spec format instead of silently meaning something else.
        """
        return json.dumps(
            {"schema": SCHEMA_VERSION, "spec": self.to_dict()},
            indent=2, sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Rebuild a spec saved by :meth:`to_json` (or a bare spec dict)."""
        data = json.loads(text)
        if "spec" in data and "config" not in data:
            schema = data.get("schema")
            if schema != SCHEMA_VERSION:
                raise ValueError(
                    f"spec file has schema {schema!r}, this build expects "
                    f"{SCHEMA_VERSION}"
                )
            data = data["spec"]
        return cls.from_dict(data)

    def replace(self, **changes) -> "RunSpec":
        """A copy with ``changes`` applied (frozen-dataclass friendly).

        Drive-option names are routed into the nested bundle, so
        ``spec.replace(tracing=True)`` keeps working exactly as it did
        when tracing was a flat spec field.
        """
        opt_changes = {k: changes.pop(k) for k in list(changes)
                       if k in OPTION_FIELDS}
        if opt_changes:
            base = changes.get("options", self.options)
            changes["options"] = base.replace(**opt_changes)
        return replace(self, **changes)

    # -- identity ----------------------------------------------------------
    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical spec (hex digest).

        Equal hashes mean "same simulation": the executor's cache and its
        determinism guarantee both key off this value.
        """
        payload = {"schema": SCHEMA_VERSION, "spec": self.to_dict()}
        digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
        return digest.hexdigest()

    def short_hash(self) -> str:
        """First 12 hex chars of :meth:`content_hash` — the display form
        used in progress lines, worker logs, and repro filenames."""
        return self.content_hash()[:12]

    # -- execution ---------------------------------------------------------
    def run(self) -> Any:
        """Execute this spec in-process via its runner."""
        return resolve_runner(self.runner)(self)
