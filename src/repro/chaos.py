"""Chaos engine: seeded stochastic fault injection for sysplex soak runs.

Where :class:`~repro.hardware.failures.FailureInjector` runs *scripted*
outages (one experiment, one scenario), the :class:`ChaosEngine` layers
sampled fault *processes* over a whole run: each component class —
systems, coupling facilities, individual coupling links, DASD devices —
alternates exponentially-distributed up intervals (mean ``mtbf``) and
down intervals (mean ``mttr``), all drawn from the sysplex's named
random streams, so the entire fault schedule is a deterministic function
of ``(seed, ChaosConfig, topology)``.

The schedule is sampled **eagerly at construction** and exposed as plain
``[time, label]`` rows (:meth:`schedule_rows`), which experiment payloads
serialize verbatim — a cached chaos result carries the exact faults it
ran under, and re-running the spec reproduces them byte-identically.

Fire-time **guardrails** keep runs analyzable rather than trivially
dead: a system crash that would drop live systems below
``min_live_systems`` (or a CF failure below ``min_live_cfs``) is
suppressed and logged as ``chaos-skip:<label>`` on the same injector
timeline.  The guard decision depends only on simulated state, so it is
as deterministic as the schedule itself.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional

__all__ = ["FaultClassConfig", "ChaosConfig", "ChaosEngine",
           "summarize_schedule"]


@dataclass(frozen=True)
class FaultClassConfig:
    """Fault process parameters for one component class."""

    #: Mean time between failures (exponential up-interval), seconds.
    mtbf: float
    #: Mean time to repair (exponential down-interval), seconds.
    mttr: float
    #: Cap on fail/repair cycles sampled per component.
    max_faults: int = 4

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultClassConfig":
        return cls(**data)


@dataclass(frozen=True)
class ChaosConfig:
    """What the chaos engine attacks, how hard, and within what window.

    A component class with ``None`` config is left alone.  Faults are
    sampled in ``[start, horizon)``; repairs always complete even if they
    land past the horizon (no component is left broken by the sampling
    cutoff itself).
    """

    start: float = 1.0
    horizon: float = 10.0
    systems: Optional[FaultClassConfig] = None
    cfs: Optional[FaultClassConfig] = None
    links: Optional[FaultClassConfig] = None
    #: Restrict the ``links`` fault process to linksets reaching this CF
    #: (e.g. ``"CF02"`` attacks only the duplexed-write carrier links).
    #: ``None`` attacks every linkset, as always.
    link_target: Optional[str] = None
    dasd: Optional[FaultClassConfig] = None
    #: Sick-but-not-dead fault process: a "failure" degrades the system's
    #: CPU complex by :attr:`sick_cpu_factor` instead of killing it, and
    #: the "repair" restores full speed.  The system never stops
    #: heartbeating and is never declared failed — the hardest case for
    #: SFM, which only sees fail-stopped members (paper §2.5).
    sick: Optional[FaultClassConfig] = None
    #: CPU slowdown multiplier applied while a system is sick.
    sick_cpu_factor: float = 4.0
    #: Guardrails: never take a fault that would leave fewer live
    #: systems / CFs than these floors (the suppressed event is logged).
    min_live_systems: int = 1
    min_live_cfs: int = 1
    #: Sick-class guardrail: never degrade a system if that would leave
    #: fewer than this many live *and* full-speed members — a fully sick
    #: plex has no healthy baseline left to measure the pathology against.
    min_healthy_systems: int = 1

    def to_dict(self) -> dict:
        """JSON-ready view (nested class configs as dicts or ``None``)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        kw = dict(data)
        for name in ("systems", "cfs", "links", "dasd", "sick"):
            if isinstance(kw.get(name), dict):
                kw[name] = FaultClassConfig(**kw[name])
        return cls(**kw)


@dataclass
class _Planned:
    """One schedulable chaos event."""

    time: float
    label: str
    guard: Callable[[], bool]
    action: Callable[[], None]
    fired: Optional[bool] = field(default=None)  # None until fire time


class ChaosEngine:
    """Samples a fault schedule for one sysplex and arms it.

    Construction samples the complete schedule (deterministically, from
    ``plex.streams``); :meth:`arm` schedules it on the simulator through
    the sysplex's :class:`~repro.hardware.failures.FailureInjector` log,
    so chaos events and scripted events share one timeline.
    """

    def __init__(self, plex, config: ChaosConfig):
        self.plex = plex
        self.config = config
        self.planned: List[_Planned] = []
        self._armed = False
        self._sample()

    # -- schedule introspection -------------------------------------------
    def schedule_rows(self) -> List[list]:
        """The sampled schedule as JSON-ready ``[time, label]`` rows."""
        return [[p.time, p.label] for p in self.planned]

    def outcome_rows(self) -> List[list]:
        """Post-run: ``[time, label, outcome]`` (fired/skipped/pending)."""
        state = {None: "pending", True: "fired", False: "skipped"}
        return [[p.time, p.label, state[p.fired]] for p in self.planned]

    # -- sampling ----------------------------------------------------------
    def _sample(self) -> None:
        cfg = self.config
        plex = self.plex
        if cfg.systems is not None:
            rng = plex.streams.stream("chaos.systems")
            for node in plex.nodes:
                self._sample_component(
                    rng, cfg.systems,
                    fail_label=f"crash:{node.name}",
                    repair_label=f"restart:{node.name}",
                    fail_guard=lambda n=node: n.alive and self._live_systems()
                    > cfg.min_live_systems,
                    fail_action=lambda n=node: n.fail(),
                    repair_guard=lambda n=node: not n.alive,
                    repair_action=lambda n=node: n.restart(),
                )
        if cfg.sick is not None:
            rng = plex.streams.stream("chaos.sick")
            for node in plex.nodes:
                self._sample_component(
                    rng, cfg.sick,
                    fail_label=f"sick:{node.name}",
                    repair_label=f"heal:{node.name}",
                    fail_guard=lambda n=node: n.alive
                    and not n.cpu.degraded
                    and self._healthy_systems() > cfg.min_healthy_systems,
                    fail_action=lambda n=node:
                    n.cpu.degrade(cfg.sick_cpu_factor),
                    repair_guard=lambda n=node: n.alive and n.cpu.degraded,
                    repair_action=lambda n=node: n.cpu.recover(),
                )
        if cfg.cfs is not None:
            rng = plex.streams.stream("chaos.cfs")
            for cf in plex.cfs:
                self._sample_component(
                    rng, cfg.cfs,
                    fail_label=f"cf-fail:{cf.name}",
                    repair_label=f"cf-repair:{cf.name}",
                    fail_guard=lambda c=cf: not c.failed and self._live_cfs()
                    > cfg.min_live_cfs,
                    fail_action=lambda c=cf: c.fail(),
                    repair_guard=lambda c=cf: c.failed,
                    repair_action=lambda c=cf: c.repair(),
                )
        if cfg.links is not None:
            rng = plex.streams.stream("chaos.links")
            for node in plex.nodes:
                for cf_name in sorted(node.cf_links):
                    if (cfg.link_target is not None
                            and cf_name != cfg.link_target):
                        continue
                    linkset = node.cf_links[cf_name]
                    for i, link in enumerate(linkset.links):
                        self._sample_component(
                            rng, cfg.links,
                            fail_label=f"link-fail:{linkset.name}.{i}",
                            repair_label=f"link-repair:{linkset.name}.{i}",
                            fail_guard=lambda lk=link: lk.operational,
                            fail_action=lambda ls=linkset, j=i:
                            ls.fail_link(j),
                            repair_guard=lambda lk=link: not lk.operational,
                            repair_action=lambda ls=linkset, j=i:
                            ls.repair_link(j),
                        )
        if cfg.dasd is not None:
            rng = plex.streams.stream("chaos.dasd")
            for dev in plex.farm.devices:
                self._sample_component(
                    rng, cfg.dasd,
                    fail_label=f"path-fail:{dev.name}",
                    repair_label=f"path-repair:{dev.name}",
                    # DasdDevice itself never drops the last path
                    fail_guard=lambda d=dev: d.available_paths > 1,
                    fail_action=lambda d=dev: d.fail_path(),
                    repair_guard=lambda d=dev:
                    d.available_paths < d.config.paths,
                    repair_action=lambda d=dev: d.repair_path(),
                )
        self.planned.sort(key=lambda p: (p.time, p.label))

    def _sample_component(self, rng, fc: FaultClassConfig, *,
                          fail_label: str, repair_label: str,
                          fail_guard, fail_action,
                          repair_guard, repair_action) -> None:
        """Alternating-renewal sampling for one component."""
        t = self.config.start
        for _cycle in range(fc.max_faults):
            t += float(rng.exponential(fc.mtbf))
            if t >= self.config.horizon:
                return
            down = float(rng.exponential(fc.mttr))
            self.planned.append(
                _Planned(t, fail_label, fail_guard, fail_action)
            )
            self.planned.append(
                _Planned(t + down, repair_label, repair_guard, repair_action)
            )
            t += down

    # -- arming ------------------------------------------------------------
    def arm(self) -> int:
        """Schedule every sampled event; returns the number armed."""
        if self._armed:
            raise RuntimeError("chaos schedule already armed")
        self._armed = True
        for p in self.planned:
            self.plex.sim.call_at(p.time, lambda p=p: self._fire(p))
        return len(self.planned)

    def _fire(self, p: _Planned) -> None:
        log = self.plex.injector.log
        if p.guard():
            p.fired = True
            log.append((self.plex.sim.now, p.label))
            p.action()
        else:
            p.fired = False
            log.append((self.plex.sim.now, f"chaos-skip:{p.label}"))

    # -- guard helpers -----------------------------------------------------
    def _live_systems(self) -> int:
        return sum(1 for n in self.plex.nodes if n.alive)

    def _live_cfs(self) -> int:
        return sum(1 for cf in self.plex.cfs if not cf.failed)

    def _healthy_systems(self) -> int:
        return sum(
            1 for n in self.plex.nodes if n.alive and not n.cpu.degraded
        )


def summarize_schedule(rows: List[list]) -> dict:
    """Aggregate a schedule (or outcome) row list by component class."""
    by_kind: dict = {}
    for row in rows:
        label = row[1]
        kind = label.split(":", 1)[0].replace("chaos-skip", "skip")
        by_kind[kind] = by_kind.get(kind, 0) + 1
    return by_kind
