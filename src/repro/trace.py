"""Transaction-level tracing: spans for every stage of a transaction's life.

The paper's §4 numbers — the < 18 % single→two-system data-sharing cost
and the < 0.5 % per-added-system increment — are *attribution* claims:
they say where cycles go (CF lock and cache round trips, buffer-coherency
invalidations, link latency) as systems are added.  This module records
enough structure to decompose a run's mean response time into those
stages instead of only reporting the end-to-end aggregate.

Design:

* A :class:`Tracer` is attached to one :class:`~repro.simkernel.Simulator`
  and records :class:`Span` intervals.  Spans opened while a simulation
  process is executing nest under that process's currently open span, so
  a CF sync command issued from inside a lock acquisition is recorded as
  a child of the ``lock`` span — :mod:`repro.trace_analysis` uses the
  parent links to compute exclusive times without double counting.
* Transaction context is *bound* to the executing process
  (:meth:`Tracer.bind`), so instrumentation deep in the stack (lock
  manager, buffer manager, CF command path) tags its spans with the
  transaction automatically.
* **Zero cost when disabled**: components hold ``trace=None`` by default
  and guard every instrumentation point with a single ``is not None``
  check; no tracer object, no span allocation, no kernel watcher exists
  unless tracing was requested (``Sysplex(config, tracing=True)``).

Span categories come in two layers:

* **stage** categories (:data:`STAGES`) partition a transaction's
  response time: ``dispatch`` (arrival → region task start, including
  routing/function-shipping and admission queueing), ``lock``,
  ``coherency`` (buffer registration / refresh), ``io`` (demand DASD
  reads), ``commit`` (log force, page externalization with
  cross-invalidate, lock release) and ``cpu`` (application + database
  path length).  Stage spans never overlap within one transaction.
* **detail** categories (dotted names: ``cf.sync``, ``cf.service``,
  ``lock.wait``, ``lock.negotiate``, ``dispatch.ship``) nest inside
  stage spans and subdivide them for drill-down reporting.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "STAGES"]

#: Top-level lifecycle categories; ``repro.trace_analysis`` attributes
#: every traced microsecond of a transaction to exactly one of these.
STAGES: Tuple[str, ...] = (
    "dispatch", "lock", "coherency", "io", "commit", "cpu",
)


class Span:
    """One timed interval in a transaction's (or system task's) life."""

    __slots__ = ("category", "start", "end", "txn_id", "system",
                 "parent", "depth")

    def __init__(self, category: str, start: float,
                 txn_id: Optional[int] = None, system: Optional[str] = None,
                 parent: int = -1, depth: int = 0):
        self.category = category
        self.start = start
        self.end: Optional[float] = None  # set when the span closes
        self.txn_id = txn_id
        self.system = system
        self.parent = parent  # index into Tracer.spans, -1 for roots
        self.depth = depth

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.category} [{self.start:.6f}, "
            f"{self.end if self.end is None else f'{self.end:.6f}'}] "
            f"txn={self.txn_id} depth={self.depth}>"
        )


class Tracer:
    """Records spans and completed-transaction facts for one simulator.

    The tracer keys open-span stacks by the kernel's *active process*, so
    concurrent transactions (each a separate process) trace independently
    even though they interleave on the event calendar.  It registers a
    kernel process watcher to close dangling spans when an instrumented
    process dies mid-span (system failure, deadlock victim, CF loss).

    The tracer is strictly passive: it never schedules events, so an
    identically seeded run produces identical results traced or not.
    """

    def __init__(self, sim):
        self.sim = sim
        self.spans: List[Span] = []
        #: (txn_id, arrival, completion_time, response) per completed txn
        self.completed: List[Tuple[Any, float, float, float]] = []
        self.counts: Dict[str, int] = {}
        self._stacks: Dict[object, List[int]] = {}  # process -> span idxs
        self._ctx: Dict[object, Tuple[Any, str]] = {}  # process -> (txn, sys)
        sim.add_process_watcher(self._on_process)

    # -- transaction context ------------------------------------------------
    def bind(self, txn_id: Any, system: str) -> None:
        """Tag all further spans of the active process with this txn."""
        proc = self.sim.active_process
        if proc is not None:
            self._ctx[proc] = (txn_id, system)

    def unbind(self) -> None:
        self._ctx.pop(self.sim.active_process, None)

    def txn_complete(self, txn_id: Any, arrival: float,
                     response: float) -> None:
        """A transaction committed; remember it for attribution."""
        self.completed.append((txn_id, arrival, self.sim.now, response))

    # -- span recording -----------------------------------------------------
    def begin(self, category: str) -> int:
        """Open a span in ``category``; returns its index for :meth:`end`."""
        proc = self.sim.active_process
        stack = self._stacks.get(proc)
        if stack is None:
            stack = self._stacks[proc] = []
        ctx = self._ctx.get(proc)
        span = Span(
            category, self.sim.now,
            txn_id=ctx[0] if ctx else None,
            system=ctx[1] if ctx else None,
            parent=stack[-1] if stack else -1,
            depth=len(stack),
        )
        idx = len(self.spans)
        self.spans.append(span)
        stack.append(idx)
        return idx

    def end(self, idx: int) -> None:
        """Close the span opened as ``idx`` at the current time."""
        span = self.spans[idx]
        if span.end is None:
            span.end = self.sim.now
        stack = self._stacks.get(self.sim.active_process)
        if stack:
            # normally idx is the top; self-heal if an inner span leaked
            while stack:
                top = stack.pop()
                if self.spans[top].end is None:
                    self.spans[top].end = self.sim.now
                if top == idx:
                    break

    def record(self, category: str, start: float, end: float,
               txn_id: Any = None, system: Optional[str] = None) -> None:
        """Record a complete root-level span from externally kept times
        (e.g. ``dispatch``: transaction arrival → region task start)."""
        span = Span(category, start, txn_id=txn_id, system=system)
        span.end = end
        self.spans.append(span)

    def traced(self, category: str, gen: Generator) -> Generator:
        """Run a process-step generator inside a span of ``category``.

        Usage at an instrumentation point (``tr`` may be ``None``)::

            if tr is None:
                yield from self.locks.lock(owner, page, mode)
            else:
                yield from tr.traced("lock", self.locks.lock(owner, page, mode))
        """
        idx = self.begin(category)
        try:
            result = yield from gen
        finally:
            self.end(idx)
        return result

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named event counter (no timing attached)."""
        self.counts[name] = self.counts.get(name, 0) + n

    # -- kernel hook --------------------------------------------------------
    def _on_process(self, process, event: str) -> None:
        if event != "end":
            return
        stack = self._stacks.pop(process, None)
        if stack:
            # the process died with spans open (failure paths): close them
            # at the time of death so durations stay well-defined
            for idx in stack:
                if self.spans[idx].end is None:
                    self.spans[idx].end = self.sim.now
        self._ctx.pop(process, None)

    # -- introspection ------------------------------------------------------
    @property
    def n_spans(self) -> int:
        return len(self.spans)

    def spans_of(self, txn_id: Any) -> List[Span]:
        return [s for s in self.spans if s.txn_id == txn_id]

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is None]
