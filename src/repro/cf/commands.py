"""Issuing CF commands from a system: the cost model of §3.3.

``CfPort`` binds one system to one Coupling Facility over a LinkSet and
executes structure operations with the paper's cost semantics:

* **Synchronous** — the issuing CPU *spins* for the whole round trip
  (engine held; no task switch, no cache disruption).  Round trip =
  issue CPU + 2x link latency + transfer + CF processor service
  (+ signal-completion wait for invalidating commands).  "Completion
  times measured in micro-seconds."
* **Asynchronous** — the engine is released during the trip, but the
  requester pays ``async_extra_cpu`` afterwards for task switching and
  processor cache disruption — exactly the overhead the paper says
  synchronous execution avoids.  ABL-SYNC quantifies this trade.

The actual structure mutation runs at the CF at command-execution time,
passed in as a plain closure.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..config import CfConfig
from ..hardware.links import LinkSet
from ..hardware.system import SystemNode, SystemDown
from .facility import CouplingFacility

__all__ = ["CfPort"]


class CfPort:
    """One system's command path to one Coupling Facility."""

    def __init__(self, node: SystemNode, cf: CouplingFacility,
                 links: LinkSet, config: CfConfig, trace=None):
        self.node = node
        self.cf = cf
        self.links = links
        self.config = config
        self.sim = node.sim
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        self.sync_ops = 0
        self.async_ops = 0

    # -- internals ----------------------------------------------------------
    def _service(self, fn: Callable[[], Any], data: bool, signal_wait: bool,
                 box: list, service_factor: float = 1.0) -> Generator:
        svc = service_factor * self.config.cmd_service + (
            self.config.data_cmd_service if data else 0.0
        )
        yield from self.cf.execute(svc)
        box.append(fn())
        if signal_wait:
            # CF responds only after observing signal completion (§3.3.2)
            yield self.sim.timeout(self.config.signal_latency)

    # -- synchronous --------------------------------------------------------
    def sync(self, fn: Callable[[], Any], out_bytes: int = 64,
             in_bytes: int = 64, data: bool = False,
             signal_wait: bool = False, service_factor: float = 1.0) -> Generator:
        """Process step: execute ``fn`` at the CF CPU-synchronously.

        Returns ``fn()``'s result.  The issuing engine is held (spinning)
        for the entire round trip.
        """
        if not self.node.alive:
            raise SystemDown(self.node.name)
        tr = self.trace
        span = -1 if tr is None else tr.begin("cf.sync")
        cpu = self.node.cpu
        box: list = []
        req = cpu.engines.request()
        try:
            yield req
            start = self.sim.now
            # command build / response handling path length (MP-inflated)
            yield self.sim.timeout(
                self.config.sync_issue_cpu * cpu.config.inflation()
            )
            link = self.links.pick()
            yield from link.occupy(
                out_bytes, in_bytes,
                self._service(fn, data, signal_wait, box, service_factor),
            )
            cpu.busy_seconds += self.sim.now - start
        finally:
            req.cancel()
            if tr is not None:
                tr.end(span)
        self.sync_ops += 1
        return box[0]

    # -- asynchronous ----------------------------------------------------------
    def async_(self, fn: Callable[[], Any], out_bytes: int = 64,
               in_bytes: int = 64, data: bool = False,
               signal_wait: bool = False,
               service_factor: float = 1.0) -> Generator:
        """Process step: execute ``fn`` asynchronously.

        The engine is free during the link round trip, but completion costs
        ``async_extra_cpu`` (task switch + cache disruption).
        """
        if not self.node.alive:
            raise SystemDown(self.node.name)
        tr = self.trace
        span = -1 if tr is None else tr.begin("cf.async")
        cpu = self.node.cpu
        box: list = []
        try:
            yield from cpu.consume(self.config.sync_issue_cpu)
            link = self.links.pick()
            yield from link.occupy(
                out_bytes, in_bytes,
                self._service(fn, data, signal_wait, box, service_factor),
            )
            yield from cpu.consume(self.config.async_extra_cpu)
        finally:
            if tr is not None:
                tr.end(span)
        self.async_ops += 1
        return box[0]

    @property
    def operational(self) -> bool:
        return (not self.cf.failed) and self.links.operational
