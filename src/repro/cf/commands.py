"""Issuing CF commands from a system: the cost model of §3.3.

``CfPort`` binds one system to one Coupling Facility over a LinkSet and
executes structure operations with the paper's cost semantics:

* **Synchronous** — the issuing CPU *spins* for the whole round trip
  (engine held; no task switch, no cache disruption).  Round trip =
  issue CPU + 2x link latency + transfer + CF processor service
  (+ signal-completion wait for invalidating commands).  "Completion
  times measured in micro-seconds."
* **Asynchronous** — the engine is released during the trip, but the
  requester pays ``async_extra_cpu`` afterwards for task switching and
  processor cache disruption — exactly the overhead the paper says
  synchronous execution avoids.  ABL-SYNC quantifies this trade.

The actual structure mutation runs at the CF at command-execution time,
passed in as a plain closure.

**Request-level robustness** (chaos runs): with
``CfConfig.request_timeout`` set, each link round trip runs under a
timeout; a trip that times out or dies with an interface control check
(its link failed mid-flight) is redriven after seeded exponential
backoff over a surviving link, up to ``request_retries`` times.  The
structure mutation is executed at most once across redrives (the
response, not the command, is what was lost).  With the default
``request_timeout=None`` the single-attempt fast path below runs
unchanged — no extra events, no behavioural drift for non-chaos runs.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import numpy as np

from ..config import CfConfig
from ..hardware.links import InterfaceControlCheck, LinkDownError, LinkSet
from ..hardware.system import SystemNode, SystemDown
from ..simkernel import Interrupt
from .facility import CfFailedError, CouplingFacility

__all__ = ["CfPort", "CfRequestTimeout", "mirror_sync", "mirror_async"]

#: Global kill switch for the flattened fast path (checked at port
#: construction).  Tests flip it to prove fast and general paths produce
#: identical results; production code leaves it on.
FAST_PATH = True

#: Opt-in event-collapsed variant of the fast path.  When the whole stack
#: is idle it merges the issue+latency+transfer head and the
#: signal+latency tail into single absolute-time events (8 -> 5 calendar
#: events per sync command).  Event *times* and resource state are
#: bit-identical to the general path, but merged events are *created*
#: earlier, so at saturation — where the workload's constant costs
#: phase-lock many commands onto the exact same float instants — two
#: commands arriving at the CF in the same instant can pop in a different
#: order than the general path when one of them went general (async, or
#: subchannel-contended fallback).  That reordering is statistically
#: neutral but not byte-identical, so the collapse is off by default;
#: flip it for maximum event throughput when exact replay of a general-
#: path run is not required.
COLLAPSE = False


class CfRequestTimeout(Exception):
    """A CF request exhausted its timeout/retry budget without completing."""


class CfPort:
    """One system's command path to one Coupling Facility."""

    def __init__(self, node: SystemNode, cf: CouplingFacility,
                 links: LinkSet, config: CfConfig, trace=None,
                 retry_rng: Optional[np.random.Generator] = None,
                 collapse: Optional[bool] = None):
        self.node = node
        self.cf = cf
        self.links = links
        self.config = config
        self.sim = node.sim
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        #: seeded generator for retry-backoff jitter (only drawn from on
        #: redrives, so common-path runs consume no extra randomness)
        self.retry_rng = retry_rng
        self.sync_ops = 0
        self.async_ops = 0
        #: sync commands that completed via the collapsed fast path
        self.fast_syncs = 0
        #: robustness counters (only move when request_timeout is set)
        self.timeouts = 0
        self.iccs = 0
        self.retries = 0
        # Per-port constants, resolved once at wiring time instead of per
        # command.  ``_issue_inflated`` memoizes the MP-inflation product
        # (a float pow per call otherwise); the rest are attribute-chain
        # flattening.  Each is used by *both* paths with the exact
        # expression shape of the original per-command computation, so the
        # resulting floats are bit-identical.
        self._issue_inflated = config.sync_issue_cpu * node.cpu.config.inflation()
        self._latency = links.config.latency
        self._bandwidth = links.config.bandwidth
        self._cmd_service = config.cmd_service
        self._data_cmd_service = config.data_cmd_service
        self._signal_latency = config.signal_latency
        #: the fast path engages only when there is nothing it could hide:
        #: no request-level robustness (chaos) and no span tracer on either
        #: end of the command (attach tracers at construction time)
        self._fast = (FAST_PATH and config.request_timeout is None
                      and trace is None and cf.trace is None)
        # per-port collapse policy: an explicit True/False (threaded down
        # from RunOptions via Sysplex/XesServices) wins; None falls back
        # to the module default so direct CfPort construction — and the
        # tests that monkeypatch COLLAPSE — keep their old meaning.  The
        # collapse can only ever engage where the fast path may.
        self._collapse = (COLLAPSE if collapse is None else collapse) \
            and self._fast

    # -- internals ----------------------------------------------------------
    def _service(self, fn: Callable[[], Any], data: bool, signal_wait: bool,
                 box: list, service_factor: float = 1.0) -> Generator:
        svc = service_factor * self.config.cmd_service + (
            self.config.data_cmd_service if data else 0.0
        )
        yield from self.cf.execute(svc)
        if not box:
            # redrives re-pay the CF service but execute the structure
            # mutation exactly once (the first attempt may have executed
            # at the CF with only the response lost)
            box.append(fn())
        if signal_wait:
            # CF responds only after observing signal completion (§3.3.2)
            yield self.sim.timeout(self.config.signal_latency)

    def _trip_once(self, link, out_bytes: int, in_bytes: int,
                   service: Generator) -> Generator:
        """One guarded link round trip for the robust path.

        Never fails as a process: outcomes come back as ``(tag, error)``
        values so the timeout race in :meth:`_robust_trip` cannot leave
        an undefused failed event behind.
        """
        try:
            yield from link.occupy(out_bytes, in_bytes, service)
        except Interrupt:
            return ("interrupted", None)
        except Exception as exc:
            return ("error", exc)
        return ("ok", None)

    def _robust_trip(self, fn: Callable[[], Any], out_bytes: int,
                     in_bytes: int, data: bool, signal_wait: bool,
                     box: list, service_factor: float) -> Generator:
        """Timed, redriven link round trip (chaos-hardened path)."""
        cfg = self.config
        last_error: Exception = LinkDownError(self.links.name)
        for attempt in range(cfg.request_retries + 1):
            if not self.node.alive:
                raise SystemDown(self.node.name)
            if self.cf.failed:
                raise CfFailedError(self.cf.name)
            try:
                link = self.links.pick()
            except LinkDownError as exc:
                last_error = exc
            else:
                trip = self.sim.process(
                    self._trip_once(
                        link, out_bytes, in_bytes,
                        self._service(fn, data, signal_wait, box,
                                      service_factor),
                    ),
                    name="cf-trip",
                )
                timer = self.sim.timeout(cfg.request_timeout)
                yield self.sim.any_of([trip, timer])
                if trip.triggered:
                    tag, err = trip.value
                    if tag == "ok":
                        if attempt:
                            self.retries += attempt
                        return
                    # classify the in-flight failure
                    if isinstance(err, (CfFailedError, SystemDown)):
                        raise err
                    if isinstance(err, LinkDownError):
                        self.iccs += 1
                        last_error = err
                    elif err is not None:
                        # structure-level errors (e.g. StructureFailedError)
                        # are real command outcomes, not link trouble
                        raise err
                    else:  # pragma: no cover - interrupted without timer
                        last_error = CfRequestTimeout(self.cf.name)
                else:
                    # the timeout beat the response: abandon the trip
                    trip.interrupt("timeout")
                    self.timeouts += 1
                    last_error = CfRequestTimeout(
                        f"{self.cf.name} via {link.name}"
                    )
            if attempt >= cfg.request_retries:
                break
            backoff = cfg.retry_backoff * (2 ** attempt)
            if self.retry_rng is not None:
                backoff *= float(self.retry_rng.uniform(0.5, 1.5))
            yield self.sim.timeout(backoff)
        raise last_error

    def _trip(self, fn: Callable[[], Any], out_bytes: int, in_bytes: int,
              data: bool, signal_wait: bool, box: list,
              service_factor: float) -> Generator:
        """The link round trip: plain fast path, or robust when enabled."""
        if self.config.request_timeout is None:
            link = self.links.pick()
            yield from link.occupy(
                out_bytes, in_bytes,
                self._service(fn, data, signal_wait, box, service_factor),
            )
        else:
            yield from self._robust_trip(fn, out_bytes, in_bytes, data,
                                         signal_wait, box, service_factor)

    # -- the flattened fast path --------------------------------------------
    def _plain_trip(self, fn: Callable[[], Any], out_bytes: int,
                    in_bytes: int, data: bool, signal_wait: bool, box: list,
                    service_factor: float) -> Generator:
        """The general round trip with its generator stack flattened.

        Byte-identical to ``_trip`` with ``request_timeout=None`` — the
        same resource requests, the same timeouts with the same float
        arithmetic, the same checks at the same instants — but in one
        generator frame instead of four (``_trip`` -> ``occupy`` ->
        ``_service`` -> ``execute``), with per-port constants instead of
        per-command attribute chains.
        """
        sim = self.sim
        cf = self.cf
        link = self.links.pick()
        sreq = link.subchannels.request()
        try:
            yield sreq
            if not link.operational:
                raise InterfaceControlCheck(link.name)
            yield sim.timeout(
                self._latency + (out_bytes + in_bytes) / self._bandwidth
            )
            if not link.operational:
                raise InterfaceControlCheck(link.name)
            if cf.failed:
                raise CfFailedError(cf.name)
            preq = cf.processors.request()
            try:
                yield preq
                if cf.failed:
                    raise CfFailedError(cf.name)
                yield sim.timeout(
                    service_factor * self._cmd_service
                    + (self._data_cmd_service if data else 0.0)
                )
                if cf.failed:
                    raise CfFailedError(cf.name)
                cf.commands_executed += 1
            finally:
                preq.cancel()
            box.append(fn())
            if signal_wait:
                # CF responds only after observing signal completion
                yield sim.timeout(self._signal_latency)
            yield sim.timeout(self._latency)
            if not link.operational:
                raise InterfaceControlCheck(link.name)
            link.ops += 1
        finally:
            sreq.cancel()

    # -- synchronous --------------------------------------------------------
    def sync(self, fn: Callable[[], Any], out_bytes: int = 64,
             in_bytes: int = 64, data: bool = False,
             signal_wait: bool = False, service_factor: float = 1.0) -> Generator:
        """Process step: execute ``fn`` at the CF CPU-synchronously.

        Returns ``fn()``'s result.  The issuing engine is held (spinning)
        for the entire round trip — including any redrives on the robust
        path, as a spinning requester would.
        """
        if not self.node.alive:
            raise SystemDown(self.node.name)
        box: list = []
        if self._fast:
            if self._collapse:
                # Collapsed fast path, fused into this frame: the whole
                # round trip runs here with *scalar* resource holds — an
                # idle engine, subchannel, or CF processor is claimed as a
                # bare occupancy count (no Request object, no grant event,
                # no ``yield``) — and every merged stop lands on the
                # bit-identical float instant the general event chain
                # would have produced (absolute-time scheduling via
                # ``timeout_at``; same expression shapes for every sum).
                # A busy stage falls back to the general queueing from
                # the exact same instant.  Net: 3 calendar events instead
                # of 8 and no per-stage allocation — see ``COLLAPSE`` for
                # the intra-instant ordering caveat that keeps this
                # variant opt-in.
                sim = self.sim
                cpu = self.node.cpu
                engines = cpu.engines
                ereq = None
                if not engines.claim():
                    ereq = engines.request()
                start = -1.0
                try:
                    if ereq is not None:
                        yield ereq
                    start = sim._now
                    link = None
                    try:
                        link = self.links.pick()
                    except LinkDownError:
                        pass
                    if link is None or not link.subchannels.claim():
                        # subchannel contention (or no operational link):
                        # general path from here — its own pick() at
                        # issue-complete time, its own queueing and error
                        # timing
                        yield sim.timeout(self._issue_inflated)
                        yield from self._plain_trip(fn, out_bytes,
                                                    in_bytes, data,
                                                    signal_wait, box,
                                                    service_factor)
                        self.sync_ops += 1
                        return box[0]
                    subchannels = link.subchannels
                    try:
                        # engine-grant time -> command arrival at the CF:
                        # issue CPU, then one-way latency + transfer, one
                        # merged event
                        transfer = (out_bytes + in_bytes) / self._bandwidth
                        t_arrive = (sim._now + self._issue_inflated) \
                            + (self._latency + transfer)
                        yield sim.timeout_at(t_arrive)
                        if not link.operational:
                            raise InterfaceControlCheck(link.name)
                        cf = self.cf
                        if cf.failed:
                            raise CfFailedError(cf.name)
                        svc = service_factor * self._cmd_service + (
                            self._data_cmd_service if data else 0.0
                        )
                        # CF processor: idle -> scalar claim (same
                        # busy-area accounting, same instants);
                        # contended -> the command queues exactly as
                        # ``CouplingFacility.execute`` would
                        procs = cf.processors
                        if procs.claim():
                            try:
                                yield sim.timeout(svc)
                            finally:
                                procs.unclaim()
                        else:
                            preq = procs.request()
                            try:
                                yield preq
                                if cf.failed:
                                    raise CfFailedError(cf.name)
                                yield sim.timeout(svc)
                            finally:
                                preq.cancel()
                        if cf.failed:
                            raise CfFailedError(cf.name)
                        cf.commands_executed += 1
                        # structure mutation at the exact
                        # service-completion instant (it may schedule XI
                        # signals from "now")
                        box.append(fn())
                        # optional signal-completion wait + return latency
                        if signal_wait:
                            t_done = (sim._now + self._signal_latency) \
                                + self._latency
                        else:
                            t_done = sim._now + self._latency
                        yield sim.timeout_at(t_done)
                        if not link.operational:
                            raise InterfaceControlCheck(link.name)
                        link.ops += 1
                        self.fast_syncs += 1
                    finally:
                        subchannels.unclaim()
                finally:
                    if start >= 0.0:
                        cpu.busy_seconds += sim._now - start
                    if ereq is None:
                        engines.unclaim()
                    else:
                        ereq.cancel()
                self.sync_ops += 1
                return box[0]
            # Flattened fast path: the whole round trip in this one frame.
            # Event-for-event and float-for-float identical to the general
            # branch below — the win is the Python that *isn't* here: four
            # nested generator frames, per-command attribute chains, an
            # MP-inflation pow, and tracer branches.
            sim = self.sim
            cf = self.cf
            cpu = self.node.cpu
            req = cpu.engines.request()
            start = -1.0
            try:
                yield req
                start = sim._now
                yield sim.timeout(self._issue_inflated)
                link = self.links.pick()
                sreq = link.subchannels.request()
                try:
                    yield sreq
                    if not link.operational:
                        raise InterfaceControlCheck(link.name)
                    yield sim.timeout(
                        self._latency
                        + (out_bytes + in_bytes) / self._bandwidth
                    )
                    if not link.operational:
                        raise InterfaceControlCheck(link.name)
                    if cf.failed:
                        raise CfFailedError(cf.name)
                    preq = cf.processors.request()
                    try:
                        yield preq
                        if cf.failed:
                            raise CfFailedError(cf.name)
                        yield sim.timeout(
                            service_factor * self._cmd_service
                            + (self._data_cmd_service if data else 0.0)
                        )
                        if cf.failed:
                            raise CfFailedError(cf.name)
                        cf.commands_executed += 1
                    finally:
                        preq.cancel()
                    box.append(fn())
                    if signal_wait:
                        yield sim.timeout(self._signal_latency)
                    yield sim.timeout(self._latency)
                    if not link.operational:
                        raise InterfaceControlCheck(link.name)
                    link.ops += 1
                finally:
                    sreq.cancel()
            finally:
                if start >= 0.0:
                    cpu.busy_seconds += sim._now - start
                req.cancel()
            self.sync_ops += 1
            self.fast_syncs += 1
            return box[0]
        tr = self.trace
        span = -1 if tr is None else tr.begin("cf.sync")
        cpu = self.node.cpu
        req = cpu.engines.request()
        start = -1.0
        try:
            yield req
            start = self.sim.now
            # command build / response handling path length (MP-inflated)
            yield self.sim.timeout(self._issue_inflated)
            yield from self._trip(fn, out_bytes, in_bytes, data,
                                  signal_wait, box, service_factor)
        finally:
            if start >= 0.0:
                # charge the spin actually burned — previously only
                # credited on success, dropping the elapsed time when the
                # trip died mid-flight (SystemDown / CfFailedError / ICC)
                cpu.busy_seconds += self.sim.now - start
            req.cancel()
            if tr is not None:
                tr.end(span)
        self.sync_ops += 1
        return box[0]

    # -- asynchronous ----------------------------------------------------------
    def async_(self, fn: Callable[[], Any], out_bytes: int = 64,
               in_bytes: int = 64, data: bool = False,
               signal_wait: bool = False,
               service_factor: float = 1.0) -> Generator:
        """Process step: execute ``fn`` asynchronously.

        The engine is free during the link round trip, but completion costs
        ``async_extra_cpu`` (task switch + cache disruption).
        """
        if not self.node.alive:
            raise SystemDown(self.node.name)
        cpu = self.node.cpu
        box: list = []
        if self._fast:
            yield from cpu.consume(self.config.sync_issue_cpu)
            yield from self._plain_trip(fn, out_bytes, in_bytes, data,
                                        signal_wait, box, service_factor)
            yield from cpu.consume(self.config.async_extra_cpu)
            self.async_ops += 1
            return box[0]
        tr = self.trace
        span = -1 if tr is None else tr.begin("cf.async")
        try:
            yield from cpu.consume(self.config.sync_issue_cpu)
            yield from self._trip(fn, out_bytes, in_bytes, data,
                                  signal_wait, box, service_factor)
            yield from cpu.consume(self.config.async_extra_cpu)
        finally:
            if tr is not None:
                tr.end(span)
        self.async_ops += 1
        return box[0]

    @property
    def operational(self) -> bool:
        return (not self.cf.failed) and self.links.operational


# -- duplexed writes ---------------------------------------------------------
#
# System-managed structure duplexing (paper §3.3: "Multiple CF's can be
# connected for availability") splits every mutating command into two legs:
# the primary leg carries the command *and* applies the mirrored mutation to
# the secondary instance atomically (both instances observe operations in
# the primary's execution order, so a quiesced pair always byte-agrees),
# and the secondary leg pays the second round trip — link occupancy on the
# path to the secondary CF plus CF processor service there.  The requester
# therefore sees roughly double the CF command cost while duplexed, which
# is the steady-state overhead EXP-DUPLEX sweeps against recovery time.


def _noop() -> None:
    return None


def mirror_sync(port: "CfPort", out_bytes: int = 64, in_bytes: int = 64,
                data: bool = False, signal_wait: bool = False,
                service_factor: float = 1.0) -> Generator:
    """The secondary leg of a duplexed synchronous write.

    The structure mutation already happened (applied with the primary
    leg); this charges the honest cost of shipping the same command to
    the secondary CF.  Failures propagate — the caller decides whether
    to break the pair back to simplex.
    """
    return port.sync(_noop, out_bytes=out_bytes, in_bytes=in_bytes,
                     data=data, signal_wait=signal_wait,
                     service_factor=service_factor)


def mirror_async(port: "CfPort", out_bytes: int = 64, in_bytes: int = 64,
                 data: bool = False, signal_wait: bool = False,
                 service_factor: float = 1.0) -> Generator:
    """The secondary leg of a duplexed asynchronous write."""
    return port.async_(_noop, out_bytes=out_bytes, in_bytes=in_bytes,
                       data=data, signal_wait=signal_wait,
                       service_factor=service_factor)
