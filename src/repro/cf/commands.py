"""Issuing CF commands from a system: the cost model of §3.3.

``CfPort`` binds one system to one Coupling Facility over a LinkSet and
executes structure operations with the paper's cost semantics:

* **Synchronous** — the issuing CPU *spins* for the whole round trip
  (engine held; no task switch, no cache disruption).  Round trip =
  issue CPU + 2x link latency + transfer + CF processor service
  (+ signal-completion wait for invalidating commands).  "Completion
  times measured in micro-seconds."
* **Asynchronous** — the engine is released during the trip, but the
  requester pays ``async_extra_cpu`` afterwards for task switching and
  processor cache disruption — exactly the overhead the paper says
  synchronous execution avoids.  ABL-SYNC quantifies this trade.

The actual structure mutation runs at the CF at command-execution time,
passed in as a plain closure.

**Request-level robustness** (chaos runs): with
``CfConfig.request_timeout`` set, each link round trip runs under a
timeout; a trip that times out or dies with an interface control check
(its link failed mid-flight) is redriven after seeded exponential
backoff over a surviving link, up to ``request_retries`` times.  The
structure mutation is executed at most once across redrives (the
response, not the command, is what was lost).  With the default
``request_timeout=None`` the single-attempt fast path below runs
unchanged — no extra events, no behavioural drift for non-chaos runs.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import numpy as np

from ..config import CfConfig
from ..hardware.links import LinkDownError, LinkSet
from ..hardware.system import SystemNode, SystemDown
from ..simkernel import Interrupt
from .facility import CfFailedError, CouplingFacility

__all__ = ["CfPort", "CfRequestTimeout"]


class CfRequestTimeout(Exception):
    """A CF request exhausted its timeout/retry budget without completing."""


class CfPort:
    """One system's command path to one Coupling Facility."""

    def __init__(self, node: SystemNode, cf: CouplingFacility,
                 links: LinkSet, config: CfConfig, trace=None,
                 retry_rng: Optional[np.random.Generator] = None):
        self.node = node
        self.cf = cf
        self.links = links
        self.config = config
        self.sim = node.sim
        self.trace = trace  # Tracer or None (zero-cost when disabled)
        #: seeded generator for retry-backoff jitter (only drawn from on
        #: redrives, so common-path runs consume no extra randomness)
        self.retry_rng = retry_rng
        self.sync_ops = 0
        self.async_ops = 0
        #: robustness counters (only move when request_timeout is set)
        self.timeouts = 0
        self.iccs = 0
        self.retries = 0

    # -- internals ----------------------------------------------------------
    def _service(self, fn: Callable[[], Any], data: bool, signal_wait: bool,
                 box: list, service_factor: float = 1.0) -> Generator:
        svc = service_factor * self.config.cmd_service + (
            self.config.data_cmd_service if data else 0.0
        )
        yield from self.cf.execute(svc)
        if not box:
            # redrives re-pay the CF service but execute the structure
            # mutation exactly once (the first attempt may have executed
            # at the CF with only the response lost)
            box.append(fn())
        if signal_wait:
            # CF responds only after observing signal completion (§3.3.2)
            yield self.sim.timeout(self.config.signal_latency)

    def _trip_once(self, link, out_bytes: int, in_bytes: int,
                   service: Generator) -> Generator:
        """One guarded link round trip for the robust path.

        Never fails as a process: outcomes come back as ``(tag, error)``
        values so the timeout race in :meth:`_robust_trip` cannot leave
        an undefused failed event behind.
        """
        try:
            yield from link.occupy(out_bytes, in_bytes, service)
        except Interrupt:
            return ("interrupted", None)
        except Exception as exc:
            return ("error", exc)
        return ("ok", None)

    def _robust_trip(self, fn: Callable[[], Any], out_bytes: int,
                     in_bytes: int, data: bool, signal_wait: bool,
                     box: list, service_factor: float) -> Generator:
        """Timed, redriven link round trip (chaos-hardened path)."""
        cfg = self.config
        last_error: Exception = LinkDownError(self.links.name)
        for attempt in range(cfg.request_retries + 1):
            if not self.node.alive:
                raise SystemDown(self.node.name)
            if self.cf.failed:
                raise CfFailedError(self.cf.name)
            try:
                link = self.links.pick()
            except LinkDownError as exc:
                last_error = exc
            else:
                trip = self.sim.process(
                    self._trip_once(
                        link, out_bytes, in_bytes,
                        self._service(fn, data, signal_wait, box,
                                      service_factor),
                    ),
                    name="cf-trip",
                )
                timer = self.sim.timeout(cfg.request_timeout)
                yield self.sim.any_of([trip, timer])
                if trip.triggered:
                    tag, err = trip.value
                    if tag == "ok":
                        if attempt:
                            self.retries += attempt
                        return
                    # classify the in-flight failure
                    if isinstance(err, (CfFailedError, SystemDown)):
                        raise err
                    if isinstance(err, LinkDownError):
                        self.iccs += 1
                        last_error = err
                    elif err is not None:
                        # structure-level errors (e.g. StructureFailedError)
                        # are real command outcomes, not link trouble
                        raise err
                    else:  # pragma: no cover - interrupted without timer
                        last_error = CfRequestTimeout(self.cf.name)
                else:
                    # the timeout beat the response: abandon the trip
                    trip.interrupt("timeout")
                    self.timeouts += 1
                    last_error = CfRequestTimeout(
                        f"{self.cf.name} via {link.name}"
                    )
            if attempt >= cfg.request_retries:
                break
            backoff = cfg.retry_backoff * (2 ** attempt)
            if self.retry_rng is not None:
                backoff *= float(self.retry_rng.uniform(0.5, 1.5))
            yield self.sim.timeout(backoff)
        raise last_error

    def _trip(self, fn: Callable[[], Any], out_bytes: int, in_bytes: int,
              data: bool, signal_wait: bool, box: list,
              service_factor: float) -> Generator:
        """The link round trip: plain fast path, or robust when enabled."""
        if self.config.request_timeout is None:
            link = self.links.pick()
            yield from link.occupy(
                out_bytes, in_bytes,
                self._service(fn, data, signal_wait, box, service_factor),
            )
        else:
            yield from self._robust_trip(fn, out_bytes, in_bytes, data,
                                         signal_wait, box, service_factor)

    # -- synchronous --------------------------------------------------------
    def sync(self, fn: Callable[[], Any], out_bytes: int = 64,
             in_bytes: int = 64, data: bool = False,
             signal_wait: bool = False, service_factor: float = 1.0) -> Generator:
        """Process step: execute ``fn`` at the CF CPU-synchronously.

        Returns ``fn()``'s result.  The issuing engine is held (spinning)
        for the entire round trip — including any redrives on the robust
        path, as a spinning requester would.
        """
        if not self.node.alive:
            raise SystemDown(self.node.name)
        tr = self.trace
        span = -1 if tr is None else tr.begin("cf.sync")
        cpu = self.node.cpu
        box: list = []
        req = cpu.engines.request()
        try:
            yield req
            start = self.sim.now
            # command build / response handling path length (MP-inflated)
            yield self.sim.timeout(
                self.config.sync_issue_cpu * cpu.config.inflation()
            )
            yield from self._trip(fn, out_bytes, in_bytes, data,
                                  signal_wait, box, service_factor)
            cpu.busy_seconds += self.sim.now - start
        finally:
            req.cancel()
            if tr is not None:
                tr.end(span)
        self.sync_ops += 1
        return box[0]

    # -- asynchronous ----------------------------------------------------------
    def async_(self, fn: Callable[[], Any], out_bytes: int = 64,
               in_bytes: int = 64, data: bool = False,
               signal_wait: bool = False,
               service_factor: float = 1.0) -> Generator:
        """Process step: execute ``fn`` asynchronously.

        The engine is free during the link round trip, but completion costs
        ``async_extra_cpu`` (task switch + cache disruption).
        """
        if not self.node.alive:
            raise SystemDown(self.node.name)
        tr = self.trace
        span = -1 if tr is None else tr.begin("cf.async")
        cpu = self.node.cpu
        box: list = []
        try:
            yield from cpu.consume(self.config.sync_issue_cpu)
            yield from self._trip(fn, out_bytes, in_bytes, data,
                                  signal_wait, box, service_factor)
            yield from cpu.consume(self.config.async_extra_cpu)
        finally:
            if tr is not None:
                tr.end(span)
        self.async_ops += 1
        return box[0]

    @property
    def operational(self) -> bool:
        return (not self.cf.failed) and self.links.operational
