"""Coupling Facility: lock, cache, and list structure models plus the
command-execution cost machinery (paper §3.3)."""

from .cache import CacheFullError, CacheStructure, LocalVector
from .commands import CfPort, CfRequestTimeout
from .facility import CfFailedError, CouplingFacility, StructureExistsError
from .list import ListEntry, ListStructure, LockHeldError
from .lock import GrantResult, LockMode, LockStructure
from .structure import Connector, Structure, StructureFailedError

__all__ = [
    "CacheFullError",
    "CacheStructure",
    "CfFailedError",
    "CfPort",
    "CfRequestTimeout",
    "Connector",
    "CouplingFacility",
    "GrantResult",
    "ListEntry",
    "ListStructure",
    "LocalVector",
    "LockHeldError",
    "LockMode",
    "LockStructure",
    "Structure",
    "StructureExistsError",
    "StructureFailedError",
]
