"""The Coupling Facility: processors, storage, structures, signals.

Physically "hardware and specialized microcode ... based on the S/390
processor" (paper §3.3).  The model gives the CF its own processor pool (a
command queues for a CF engine and holds it for the command's service
time), storage accounting for allocated structures, and the signal path
used for cross-invalidation and list-transition notification.

Signals are the paper's signature mechanism: they are applied at the
target after ``signal_latency`` with **no target CPU consumption and no
interrupt** — the specialized link hardware updates the local vector bit
directly.  ``CouplingFacility.signal`` therefore schedules a plain
callback, never a process on the target's CPU complex.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..config import CfConfig
from ..simkernel import Resource, Simulator

__all__ = ["CouplingFacility", "CfFailedError", "StructureExistsError"]


class CfFailedError(Exception):
    """Raised when a command targets a failed Coupling Facility."""


class StructureExistsError(Exception):
    """Raised when allocating a structure name that is already allocated."""


class CouplingFacility:
    """One CF image: command engine + allocated structures."""

    def __init__(self, sim: Simulator, config: CfConfig, name: str = "CF01"):
        self.sim = sim
        self.config = config
        self.name = name
        self.processors = Resource(sim, capacity=config.n_cpus)
        self.structures: Dict[str, object] = {}
        self.failed = False
        self.commands_executed = 0
        self.signals_sent = 0
        #: optional repro.trace.Tracer — set by the sysplex builder when
        #: tracing is enabled; records per-command CF service spans
        self.trace = None
        self._failure_hooks: List[Callable[["CouplingFacility"], None]] = []

    def on_failure(self, hook: Callable[["CouplingFacility"], None]) -> None:
        """Register a callback fired when this facility fails."""
        self._failure_hooks.append(hook)

    # -- structure management ------------------------------------------------
    def allocate(self, structure) -> None:
        """Install a structure (built by the caller) into this CF."""
        if self.failed:
            raise CfFailedError(self.name)
        if structure.name in self.structures:
            raise StructureExistsError(structure.name)
        self.structures[structure.name] = structure
        structure.facility = self

    def deallocate(self, name: str) -> None:
        st = self.structures.pop(name, None)
        if st is not None:
            st.facility = None

    def structure(self, name: str):
        return self.structures.get(name)

    # -- command execution -----------------------------------------------------
    def execute(self, service_time: float):
        """Process step: run one command on a CF processor.

        Queues for a CF engine; the caller composes this inside a coupling
        link round trip.  Raises :class:`CfFailedError` if the CF dies
        before or during execution.
        """
        if self.failed:
            raise CfFailedError(self.name)
        tr = self.trace
        span = -1 if tr is None else tr.begin("cf.service")
        req = self.processors.request()
        try:
            yield req
            if self.failed:
                raise CfFailedError(self.name)
            yield self.sim.timeout(service_time)
            if self.failed:
                raise CfFailedError(self.name)
            self.commands_executed += 1
        finally:
            req.cancel()
            if tr is not None:
                tr.end(span)

    def try_reserve_processor(self):
        """Event-free CF-processor claim for the uncontended fast path.

        Returns a granted request (release via ``cancel()``) when a
        processor is idle with nobody queued, else ``None`` — the caller
        falls back to queueing exactly as :meth:`execute` would.
        """
        return self.processors.try_acquire()

    def signal(self, apply: Callable[[], None]) -> None:
        """Deliver a CF→system signal: apply after latency, zero target CPU."""
        self.signals_sent += 1
        self.sim.call_at(self.sim.now + self.config.signal_latency, apply)

    def utilization(self, since: float = 0.0) -> float:
        return self.processors.utilization(since)

    # -- failure -----------------------------------------------------------------
    def fail(self) -> None:
        """The CF dies: every structure's connectors get a loss callback."""
        if self.failed:
            return
        self.failed = True
        for st in list(self.structures.values()):
            st.on_facility_failed()
        for hook in list(self._failure_hooks):
            hook(self)

    def repair(self) -> None:
        """The CF returns to service after repair.

        CF storage is volatile across a failure: the facility comes back
        *empty* (any structures it held were lost at :meth:`fail` and
        rebuilt elsewhere, or remain lost).  It immediately becomes a
        valid allocation/rebuild target again.
        """
        if not self.failed:
            return
        for name in list(self.structures):
            self.deallocate(name)
        self.failed = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CouplingFacility {self.name} {'FAILED' if self.failed else 'up'}>"
