"""Base machinery shared by the three CF structure models.

"CF storage resources can be dynamically partitioned and allocated into CF
'structures', subscribing to one of three defined behavior models: lock,
cache, and list" (paper §3.3).  Connectors are the per-system subsystem
instances (e.g. one IRLM per MVS image) attached to a structure.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

__all__ = ["Structure", "Connector", "StructureFailedError"]


class StructureFailedError(Exception):
    """Raised when a command targets a structure in a failed CF."""


class Connector:
    """One system's connection to one structure."""

    __slots__ = ("conn_id", "system_name", "on_loss", "active")

    def __init__(self, conn_id: int, system_name: str,
                 on_loss: Optional[Callable[[], None]] = None):
        self.conn_id = conn_id
        self.system_name = system_name
        self.on_loss = on_loss  # called if the structure's CF fails
        self.active = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Connector {self.conn_id}@{self.system_name}>"


class Structure:
    """Common connector registry and failure propagation."""

    #: subclasses set: "lock" | "cache" | "list"
    model = "base"

    def __init__(self, name: str):
        self.name = name
        self.facility = None  # set by CouplingFacility.allocate
        self.connectors: Dict[int, Connector] = {}
        self._next_conn = 0
        self.lost = False

    def connect(self, system_name: str,
                on_loss: Optional[Callable[[], None]] = None,
                conn_id: Optional[int] = None) -> Connector:
        """Attach a new connector for ``system_name``.

        ``conn_id`` forces a specific connector id — the duplexing layer
        uses it so a secondary instance's connectors mirror the
        primary's ids exactly (state snapshots then compare directly).
        """
        self._check()
        if conn_id is None:
            conn_id = self._next_conn
        conn = Connector(conn_id, system_name, on_loss)
        self._next_conn = max(self._next_conn, conn_id) + 1
        self.connectors[conn.conn_id] = conn
        return conn

    def disconnect(self, conn: Connector) -> None:
        conn.active = False
        self.connectors.pop(conn.conn_id, None)
        self._purge_connector(conn)

    def _purge_connector(self, conn: Connector) -> None:
        """Subclasses drop per-connector state (interest, registrations)."""

    def duplex_state(self) -> object:
        """Canonical comparable snapshot of the structure's shared state.

        A duplexed primary/secondary pair must produce *equal* snapshots
        whenever no duplexed write is in flight — the duplex-consistency
        invariant compares these.  Subclasses cover exactly the state
        the duplexed-write protocol mirrors (not local-vector shadows or
        per-instance counters).
        """
        return None

    def state_units(self) -> int:
        """Size metric used to cost a re-duplex state copy."""
        return 0

    def on_facility_failed(self) -> None:
        """The owning CF died: notify every connector (loss of structure)."""
        self.lost = True
        for conn in list(self.connectors.values()):
            if conn.on_loss is not None:
                conn.on_loss()

    def _check(self) -> None:
        if self.lost or (self.facility is not None and self.facility.failed):
            raise StructureFailedError(self.name)
