"""CF list structure: multi-system queueing constructs.

Paper §3.3.3: a program-specified number of **list headers** hold entries
created dynamically, queued LIFO/FIFO or in collating sequence by key,
readable/updatable/deletable/movable **atomically** without software
serialization.  Optional **lock entries** support conditional command
execution (mainline commands run only while a given lock is free — the
recovery-quiesce protocol the paper describes).  Programs can register
interest in a header and receive a **list-transition signal** when it goes
empty → non-empty; like cache cross-invalidates, delivery costs the target
no CPU (a local vector bit is set and observed by polling).

Used by: VTAM generic resources, XCF signalling, shared work queues for
dynamic workload distribution, and ARM's shared state.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .cache import LocalVector
from .structure import Connector, Structure

__all__ = ["ListStructure", "ListEntry", "LockHeldError"]


class LockHeldError(Exception):
    """A conditional command was rejected because the lock entry is held."""


_entry_seq = 0


@dataclass
class ListEntry:
    """One list entry: optional collating key plus an attached data block."""

    key: Any = None
    data: Any = None
    entry_id: int = field(default_factory=lambda: _next_entry_id())
    created_at: float = 0.0


def _next_entry_id() -> int:
    global _entry_seq
    _entry_seq += 1
    return _entry_seq


class _Header:
    __slots__ = ("entries", "monitors")

    def __init__(self):
        self.entries: List[ListEntry] = []
        # conn_id -> vector bit index to set on empty->non-empty transition
        self.monitors: Dict[int, int] = {}


class ListStructure(Structure):
    model = "list"

    def __init__(self, name: str, n_headers: int, n_locks: int = 0):
        if n_headers < 1:
            raise ValueError("need at least one list header")
        super().__init__(name)
        self.n_headers = n_headers
        self._headers = [_Header() for _ in range(n_headers)]
        self._locks: List[Optional[int]] = [None] * n_locks
        self.vectors: Dict[int, LocalVector] = {}
        self.transitions_signalled = 0
        self.total_entries = 0

    # -- connection -------------------------------------------------------
    def connect(self, system_name: str, on_loss=None, conn_id=None) -> Connector:
        conn = super().connect(system_name, on_loss, conn_id=conn_id)
        self.vectors[conn.conn_id] = LocalVector()
        return conn

    def vector_of(self, conn: Connector) -> LocalVector:
        return self.vectors[conn.conn_id]

    # -- lock entries (serialized lists) ---------------------------------------
    def lock_get(self, conn: Connector, lock_index: int) -> bool:
        """Try to acquire a lock entry; True on success."""
        self._check()
        if self._locks[lock_index] is None:
            self._locks[lock_index] = conn.conn_id
            return True
        return self._locks[lock_index] == conn.conn_id

    def lock_release(self, conn: Connector, lock_index: int) -> None:
        self._check()
        if self._locks[lock_index] == conn.conn_id:
            self._locks[lock_index] = None

    def lock_holder(self, lock_index: int) -> Optional[int]:
        return self._locks[lock_index]

    def _check_lock_free(self, unless_lock: Optional[int]) -> None:
        """Conditional execution: reject mainline cmd while lock is held."""
        if unless_lock is not None and self._locks[unless_lock] is not None:
            raise LockHeldError(f"lock {unless_lock} held")

    # -- mainline commands ----------------------------------------------------
    def push(self, conn: Connector, header: int, entry: ListEntry,
             where: str = "fifo", unless_lock: Optional[int] = None) -> None:
        """Queue an entry: 'fifo', 'lifo', or 'keyed' (collating by key)."""
        self._check()
        self._check_lock_free(unless_lock)
        h = self._headers[header]
        was_empty = not h.entries
        if where == "fifo":
            h.entries.append(entry)
        elif where == "lifo":
            h.entries.insert(0, entry)
        elif where == "keyed":
            keys = [e.key for e in h.entries]
            h.entries.insert(bisect.bisect_right(keys, entry.key), entry)
        else:
            raise ValueError(f"unknown queueing discipline {where!r}")
        self.total_entries += 1
        if was_empty and h.monitors:
            self._signal_transition(h)

    def pop(self, conn: Connector, header: int,
            unless_lock: Optional[int] = None) -> Optional[ListEntry]:
        """Atomically remove and return the head entry (None if empty)."""
        self._check()
        self._check_lock_free(unless_lock)
        h = self._headers[header]
        if not h.entries:
            return None
        self.total_entries -= 1
        return h.entries.pop(0)

    def read(self, header: int) -> List[ListEntry]:
        """Non-destructive read of a whole list (recovery scans)."""
        self._check()
        return list(self._headers[header].entries)

    def length(self, header: int) -> int:
        return len(self._headers[header].entries)

    def delete(self, conn: Connector, header: int, entry_id: int,
               unless_lock: Optional[int] = None) -> bool:
        """Atomically delete a specific entry; True if found."""
        self._check()
        self._check_lock_free(unless_lock)
        h = self._headers[header]
        for i, e in enumerate(h.entries):
            if e.entry_id == entry_id:
                del h.entries[i]
                self.total_entries -= 1
                return True
        return False

    def move(self, conn: Connector, src: int, dst: int, entry_id: int,
             where: str = "fifo", unless_lock: Optional[int] = None) -> bool:
        """Atomically move an entry between headers (no serialization
        needed by the caller — the CF command is atomic)."""
        self._check()
        self._check_lock_free(unless_lock)
        h = self._headers[src]
        for i, e in enumerate(h.entries):
            if e.entry_id == entry_id:
                del h.entries[i]
                self.total_entries -= 1  # push() re-adds
                self.push(conn, dst, e, where)
                return True
        return False

    def update(self, conn: Connector, header: int, entry_id: int, data: Any,
               unless_lock: Optional[int] = None) -> bool:
        """Atomically replace an entry's data block."""
        self._check()
        self._check_lock_free(unless_lock)
        for e in self._headers[header].entries:
            if e.entry_id == entry_id:
                e.data = data
                return True
        return False

    # -- monitoring -----------------------------------------------------------
    def register_monitor(self, conn: Connector, header: int, bit_index: int) -> None:
        """Watch a header for empty→non-empty transitions."""
        self._check()
        h = self._headers[header]
        h.monitors[conn.conn_id] = bit_index
        # if already non-empty, the bit reflects that immediately
        if h.entries:
            self.vectors[conn.conn_id].set_valid(bit_index)

    def deregister_monitor(self, conn: Connector, header: int) -> None:
        self._headers[header].monitors.pop(conn.conn_id, None)

    def _signal_transition(self, h: _Header) -> None:
        for cid, bit in h.monitors.items():
            vector = self.vectors.get(cid)
            if vector is None:
                continue
            if self.facility is not None:
                self.facility.signal(lambda v=vector, b=bit: v.set_valid(b))
            else:
                vector.set_valid(bit)
            self.transitions_signalled += 1

    def clear_monitor_bit(self, conn: Connector, bit_index: int) -> None:
        """Polling program observed the transition and resets its bit."""
        self.vectors[conn.conn_id].invalidate(bit_index)

    # -- duplexing ------------------------------------------------------------
    def clone_state_from(self, other: "ListStructure") -> None:
        """Adopt the peer's queue contents (re-duplexing).

        Shares the peer's :class:`ListEntry` objects — the duplexed-write
        protocol pushes the same objects to both instances, so sharing at
        clone time keeps entry ids (and later in-place ``update``\\ s)
        identical on both sides.
        """
        self._headers = []
        for h in other._headers:
            mine = _Header()
            mine.entries = list(h.entries)
            mine.monitors = dict(h.monitors)
            self._headers.append(mine)
        self._locks = list(other._locks)
        self.total_entries = other.total_entries

    def state_units(self) -> int:
        """Size metric for the re-duplex state copy cost."""
        return self.total_entries + len(self._headers)

    def duplex_state(self) -> object:
        """Queue contents + lock entries + monitor interest, comparable.

        A duplexed pair pushes the *same* :class:`ListEntry` objects to
        both instances, so entry ids compare directly; vectors are the
        shared per-system ones and excluded.
        """
        return (
            "list",
            [
                ([(e.entry_id, str(e.key), str(e.data)) for e in h.entries],
                 dict(h.monitors))
                for h in self._headers
            ],
            list(self._locks),
        )

    # -- cleanup --------------------------------------------------------------
    def _purge_connector(self, conn: Connector) -> None:
        for h in self._headers:
            h.monitors.pop(conn.conn_id, None)
        for i, holder in enumerate(self._locks):
            if holder == conn.conn_id:
                self._locks[i] = None
        self.vectors.pop(conn.conn_id, None)
