"""CF lock structure: hardware-assisted global lock contention detection.

Semantics follow paper §3.3.1: software lock names hash onto a
program-specified number of **lock table entries**; the CF records shared
or exclusive *interest per connector* (i.e. per system's lock-manager
instance) on each entry.  A request whose mode is compatible with the
recorded interest of every *other* connector is granted synchronously; an
incompatible request gets back the identity of the holders so the
requester can negotiate selectively via messaging.

Because granularity is the hash class, two different resource names that
collide can conflict without any real lock conflict — **false contention**.
The structure classifies each contention as real or false (in hardware the
requester's lock manager discovers this during negotiation; we compute it
here and the lock-manager layer charges the corresponding costs), and
counts both so EXP-LOCK can sweep table size against false-contention
rate.

**Record data** entries model the persistent lock information used for
"fast lock recovery in the event of an MVS system failure while holding
lock resources" — they survive connector death and drive retained-lock
recovery.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .structure import Connector, Structure

__all__ = ["LockMode", "LockStructure", "GrantResult"]


class LockMode:
    SHR = "SHR"
    EXCL = "EXCL"

    @staticmethod
    def compatible(a: str, b: str) -> bool:
        return a == LockMode.SHR and b == LockMode.SHR


@dataclass
class GrantResult:
    """Outcome of one lock-table request."""

    granted: bool
    #: connector ids holding incompatible interest (empty when granted)
    holders: Tuple[int, ...] = ()
    #: True if some holder owns the *same resource name* incompatibly;
    #: False for pure hash-class (false) contention.
    real_conflict: bool = False
    #: lock table entry index the name hashed to (for diagnostics)
    entry: int = -1


class _Entry:
    """Book-keeping for one lock-table entry.

    ``holds[conn_id][name] = [shr_count, excl_count]`` — counts because one
    connector may hold the same name for many transactions (the global
    entry records the *system-level* union of interest).
    """

    __slots__ = ("holds",)

    def __init__(self):
        self.holds: Dict[int, Dict[object, list]] = {}


class LockStructure(Structure):
    model = "lock"

    def __init__(self, name: str, n_entries: int):
        if n_entries < 1:
            raise ValueError("lock table needs at least one entry")
        super().__init__(name)
        self.n_entries = n_entries
        self._table: Dict[int, _Entry] = {}  # sparse: only touched entries
        self._record: Dict[Tuple[int, object], dict] = {}  # persistent locks
        # statistics
        self.requests = 0
        self.grants = 0
        self.real_contention = 0
        self.false_contention = 0

    # -- hashing -----------------------------------------------------------
    def entry_of(self, lock_name: object) -> int:
        """Deterministic software hash of a lock name to a table entry."""
        return zlib.crc32(str(lock_name).encode()) % self.n_entries

    # -- mainline commands ----------------------------------------------------
    def request(self, conn: Connector, lock_name: object, mode: str) -> GrantResult:
        """Try to record ``mode`` interest for ``conn`` on ``lock_name``."""
        self._check()
        self.requests += 1
        idx = self.entry_of(lock_name)
        entry = self._table.get(idx)
        if entry is None:
            entry = self._table[idx] = _Entry()

        other_excl = other_shr = False
        holders: List[int] = []
        real = False
        for cid, names in entry.holds.items():
            if cid == conn.conn_id:
                continue
            has_excl = any(c[1] > 0 for c in names.values())
            has_shr = any(c[0] > 0 for c in names.values())
            incompatible = has_excl or (mode == LockMode.EXCL and has_shr)
            if incompatible:
                holders.append(cid)
                counts = names.get(lock_name)
                if counts is not None and (
                    counts[1] > 0 or (mode == LockMode.EXCL and counts[0] > 0)
                ):
                    real = True
            other_excl |= has_excl
            other_shr |= has_shr

        if other_excl or (mode == LockMode.EXCL and other_shr):
            if real:
                self.real_contention += 1
            else:
                self.false_contention += 1
            return GrantResult(False, tuple(holders), real, idx)

        self._record_interest(entry, conn.conn_id, lock_name, mode)
        self.grants += 1
        return GrantResult(True, (), False, idx)

    def force_record(self, conn: Connector, lock_name: object, mode: str) -> None:
        """Record interest after software negotiation resolved contention.

        Used when the lock managers have determined (via messaging) that an
        apparently incompatible hash class is actually grantable — false
        contention — or that a waiter has been handed the resource.  The
        entry then carries multiple connectors' interest and further
        requests against it keep falling into the negotiation path, which
        is exactly how a degraded (collided) hash class behaves.
        """
        self._check()
        idx = self.entry_of(lock_name)
        entry = self._table.get(idx)
        if entry is None:
            entry = self._table[idx] = _Entry()
        self._record_interest(entry, conn.conn_id, lock_name, mode)

    def _record_interest(self, entry: _Entry, cid: int, name: object, mode: str) -> None:
        names = entry.holds.setdefault(cid, {})
        counts = names.setdefault(name, [0, 0])
        counts[0 if mode == LockMode.SHR else 1] += 1

    def release(self, conn: Connector, lock_name: object, mode: str) -> None:
        """Drop one unit of recorded interest."""
        self._check()
        idx = self.entry_of(lock_name)
        entry = self._table.get(idx)
        if entry is None:
            return
        names = entry.holds.get(conn.conn_id)
        if not names or lock_name not in names:
            return
        counts = names[lock_name]
        slot = 0 if mode == LockMode.SHR else 1
        if counts[slot] > 0:
            counts[slot] -= 1
        if counts == [0, 0]:
            del names[lock_name]
        if not names:
            del entry.holds[conn.conn_id]
        if not entry.holds:
            del self._table[idx]

    def interest_of(self, conn: Connector) -> List[Tuple[object, str]]:
        """All (name, mode) units currently recorded for a connector."""
        out: List[Tuple[object, str]] = []
        for entry in self._table.values():
            names = entry.holds.get(conn.conn_id)
            if not names:
                continue
            for name, (shr, excl) in names.items():
                out.extend([(name, LockMode.SHR)] * shr)
                out.extend([(name, LockMode.EXCL)] * excl)
        return out

    # -- record data (persistent locks for recovery) -----------------------------
    def write_record(self, conn: Connector, lock_name: object, data: dict) -> None:
        """Persist lock info that survives the connector's system failing."""
        self._check()
        self._record[(conn.conn_id, lock_name)] = dict(data)

    def delete_record(self, conn: Connector, lock_name: object) -> None:
        self._check()
        self._record.pop((conn.conn_id, lock_name), None)

    def records_of(self, conn_id: int) -> Dict[object, dict]:
        """Recovery read: persistent locks recorded by a (dead) connector."""
        return {
            name: data
            for (cid, name), data in self._record.items()
            if cid == conn_id
        }

    def purge_records(self, conn_id: int) -> None:
        for key in [k for k in self._record if k[0] == conn_id]:
            del self._record[key]

    # -- connector cleanup ----------------------------------------------------------
    def _purge_connector(self, conn: Connector) -> None:
        """Normal disconnect: drop interest (record data is kept — that is
        the point of persistent locks)."""
        for idx in list(self._table):
            entry = self._table[idx]
            entry.holds.pop(conn.conn_id, None)
            if not entry.holds:
                del self._table[idx]

    # -- duplexing -------------------------------------------------------------------
    def clone_state_from(self, other: "LockStructure") -> None:
        """Copy the peer's interest table + record data (re-duplexing)."""
        self._table = {}
        for idx, entry in other._table.items():
            mine = self._table[idx] = _Entry()
            mine.holds = {
                cid: {name: list(counts) for name, counts in names.items()}
                for cid, names in entry.holds.items()
            }
        self._record = {key: dict(data) for key, data in other._record.items()}

    def state_units(self) -> int:
        """Size metric for the re-duplex state copy cost."""
        return len(self._table) + len(self._record)

    def duplex_state(self) -> object:
        """Interest table + record data, in canonical comparable form."""
        table = {
            idx: {
                cid: {str(name): list(counts) for name, counts in names.items()}
                for cid, names in entry.holds.items()
            }
            for idx, entry in self._table.items()
        }
        records = {
            (cid, str(name)): data for (cid, name), data in self._record.items()
        }
        return ("lock", table, records)

    # -- diagnostics ----------------------------------------------------------------
    @property
    def occupied_entries(self) -> int:
        return len(self._table)

    def false_contention_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.false_contention / self.requests
