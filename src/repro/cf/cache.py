"""CF cache structure: multi-system buffer coherency + global data cache.

Implements paper §3.3.2 faithfully at the protocol level:

* A **global buffer directory** tracks, per uniquely-named data block,
  which connectors have the block in a local buffer and at which **local
  bit vector** index.
* ``register_and_read`` records interest when a manager brings a block
  into a local buffer (optionally returning the block from CF storage —
  the "second-level cache" role).
* ``write_and_invalidate`` stores the changed block and directs
  **cross-invalidate signals** to every *other* registered connector.  The
  signal flips the target's local vector bit after the link latency with
  *no processor interrupt or software involvement on the target system* —
  it is applied by a scheduled callback, never via the target's CPU
  complex.  The command completes only "once the CF has observed
  completion of all buffer invalidation signals", modeled as one extra
  signal latency on the command service time.
* Buffer validity checks are **local**: ``LocalVector.test`` — the new CPU
  instruction the paper describes — costs no CF trip.

Data blocks are modeled as monotonically increasing version numbers; the
coherency invariant (a valid bit implies the locally seen version equals
the directory's latest) is enforced by the structure and property-tested.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .structure import Connector, Structure

__all__ = ["CacheStructure", "LocalVector", "CacheFullError"]


class CacheFullError(Exception):
    """No storage for a changed block: castout has fallen behind."""


class LocalVector:
    """A connection's local bit vector in protected processor storage."""

    def __init__(self, size: int = 0):
        self._bits: List[bool] = [False] * size
        self.tests = 0
        self.invalidations = 0  # XI signals landed here

    def _grow(self, index: int) -> None:
        if index >= len(self._bits):
            self._bits.extend([False] * (index + 1 - len(self._bits)))

    def test(self, index: int) -> bool:
        """The new S/390 instruction: local validity check, no CF access."""
        self.tests += 1
        self._grow(index)
        return self._bits[index]

    def set_valid(self, index: int) -> None:
        self._grow(index)
        self._bits[index] = True

    def invalidate(self, index: int) -> None:
        self._grow(index)
        if self._bits[index]:
            self.invalidations += 1
        self._bits[index] = False


class _DirEntry:
    """Directory state for one named data block."""

    __slots__ = ("registrants", "version", "has_data", "changed", "seen")

    def __init__(self):
        self.registrants: Dict[int, int] = {}  # conn_id -> vector index
        self.version = 0
        self.has_data = False
        self.changed = False
        # last version each conn_id actually read (for invariant checking)
        self.seen: Dict[int, int] = {}


class CacheStructure(Structure):
    model = "cache"

    def __init__(self, name: str, data_elements: int, directory_entries: int):
        if data_elements < 1 or directory_entries < 1:
            raise ValueError("cache structure needs capacity")
        super().__init__(name)
        self.data_elements = data_elements
        self.directory_entries = directory_entries
        self._dir: "OrderedDict[object, _DirEntry]" = OrderedDict()
        #: changed entries in ``_dir`` order — a castout scan reads this
        #: instead of walking the whole directory.  The mirror stays in
        #: ``_dir`` order by construction: an entry only *becomes* changed
        #: at the directory's LRU tail (every write ends with
        #: ``move_to_end``), every later touch moves both tails together,
        #: and castout completion removes position-independently.
        self._changed: "OrderedDict[object, None]" = OrderedDict()
        self._data_count = 0
        self.vectors: Dict[int, LocalVector] = {}
        # statistics
        self.reads = 0
        self.read_hits = 0
        self.writes = 0
        self.xi_signals = 0
        self.reclaims = 0
        self.castouts = 0

    # -- connection ----------------------------------------------------------
    def connect(self, system_name: str, on_loss=None, conn_id=None) -> Connector:
        conn = super().connect(system_name, on_loss, conn_id=conn_id)
        # MVS allocates the local bit vector at connect time (paper §3.3.2)
        self.vectors[conn.conn_id] = LocalVector()
        return conn

    def vector_of(self, conn: Connector) -> LocalVector:
        return self.vectors[conn.conn_id]

    # -- mainline commands ------------------------------------------------------
    def register_and_read(self, conn: Connector, name: object,
                          bit_index: int) -> Tuple[str, int]:
        """Record interest in ``name``; return ('hit'|'miss', version).

        On 'hit' the CF also returns the current block, saving a DASD read.
        Either way the connector's vector bit becomes valid — for a miss
        the caller must then read DASD and the registration already covers
        the buffer it will fill.
        """
        self._check()
        self.reads += 1
        entry = self._entry(name)
        entry.registrants[conn.conn_id] = bit_index
        entry.seen[conn.conn_id] = entry.version
        self.vectors[conn.conn_id].set_valid(bit_index)
        self._dir.move_to_end(name)
        if entry.changed:
            self._changed.move_to_end(name)
        if entry.has_data:
            self.read_hits += 1
            return ("hit", entry.version)
        return ("miss", entry.version)

    def write_and_invalidate(self, conn: Connector, name: object,
                             store: bool = True, changed: bool = True) -> int:
        """Store an updated block; cross-invalidate other registrants.

        Returns the number of XI signals sent (the command's completion
        waits for them; the command wrapper adds the latency).
        """
        self._check()
        self.writes += 1
        entry = self._entry(name)
        # commands are atomic: secure storage BEFORE mutating anything, so
        # a CacheFullError rejects the command without side effects
        if store and not entry.has_data:
            self._make_room()
        entry.version += 1
        if store:
            if not entry.has_data:
                entry.has_data = True
                self._data_count += 1
            entry.changed = entry.changed or changed
        entry.seen[conn.conn_id] = entry.version
        self._dir.move_to_end(name)
        if entry.changed:
            self._changed[name] = None
            self._changed.move_to_end(name)

        # XI fan-out, flattened: every signal of one write leaves at the
        # same instant, so the facility's clock read, latency sum, and
        # method lookups are hoisted out of the loop.  Each signal still
        # schedules its own delivery event with the same target time the
        # per-signal ``facility.signal`` calls produced — byte-identical,
        # just without re-deriving the constants per registrant.
        n = 0
        my = conn.conn_id
        vectors = self.vectors
        seen = entry.seen
        fac = self.facility
        if fac is not None:
            sim = fac.sim
            deliver_at = sim.now + fac.config.signal_latency
            call_at = sim.call_at
            for cid, bit in list(entry.registrants.items()):
                if cid == my:
                    continue  # the writer's own copy is the current one
                vector = vectors.get(cid)
                del entry.registrants[cid]
                seen.pop(cid, None)
                if vector is not None:
                    fac.signals_sent += 1
                    call_at(deliver_at,
                            lambda v=vector, b=bit: v.invalidate(b))
                    n += 1
        else:
            for cid, bit in list(entry.registrants.items()):
                if cid == my:
                    continue
                vector = vectors.get(cid)
                del entry.registrants[cid]
                seen.pop(cid, None)
                if vector is not None:
                    vector.invalidate(bit)
                    n += 1
        self.xi_signals += n
        return n

    def prewarm_many(self, conn: Connector, pairs) -> None:
        """Bulk :meth:`register_and_read` for benchmark prewarm.

        ``pairs`` is an iterable of ``(name, bit_index)``.  Produces the
        exact final state and statistics of calling
        :meth:`register_and_read` once per pair (the returned hit/miss
        tuples are what prewarm discards anyway), with the per-call
        overhead — attribute chains, vector growth checks, counter
        stores — hoisted out of the loop.  Runs pre-simulation, so it
        must stay a plain state transform: no events, no clock reads.
        """
        self._check()
        d = self._dir
        move_to_end = d.move_to_end
        changed_move = self._changed.move_to_end
        directory_entries = self.directory_entries
        cid = conn.conn_id
        vector = self.vectors[cid]
        bits = vector._bits
        reads = 0
        hits = 0
        for name, bit in pairs:
            entry = d.get(name)
            if entry is None:
                if len(d) >= directory_entries:
                    self._reclaim_directory()
                entry = d[name] = _DirEntry()
            entry.registrants[cid] = bit
            entry.seen[cid] = entry.version
            if bit >= len(bits):  # LocalVector.set_valid, inlined
                bits.extend([False] * (bit + 1 - len(bits)))
            bits[bit] = True
            move_to_end(name)
            if entry.changed:
                changed_move(name)
            if entry.has_data:
                hits += 1
            reads += 1
        self.reads += reads
        self.read_hits += hits

    def unregister(self, conn: Connector, name: object) -> None:
        """Drop interest (buffer stolen locally for reuse)."""
        self._check()
        entry = self._dir.get(name)
        if entry is None:
            return
        entry.registrants.pop(conn.conn_id, None)
        entry.seen.pop(conn.conn_id, None)

    # -- castout ---------------------------------------------------------------
    def changed_blocks(self, limit: int = 64) -> List[object]:
        """Names of changed blocks awaiting castout (oldest first)."""
        out = []
        for name in self._changed:
            out.append(name)
            if len(out) >= limit:
                break
        return out

    def castout(self, name: object) -> Optional[int]:
        """Read a changed block for castout; returns its version or None."""
        self._check()
        entry = self._dir.get(name)
        if entry is None or not entry.changed:
            return None
        return entry.version

    def castout_complete(self, name: object, version: int) -> None:
        """DASD write done: clear changed if no newer write intervened."""
        self._check()
        entry = self._dir.get(name)
        if entry is not None and entry.version == version:
            entry.changed = False
            self._changed.pop(name, None)
            self.castouts += 1

    # -- storage management ---------------------------------------------------------
    def _entry(self, name: object) -> _DirEntry:
        entry = self._dir.get(name)
        if entry is None:
            if len(self._dir) >= self.directory_entries:
                self._reclaim_directory()
            entry = self._dir[name] = _DirEntry()
        return entry

    def _make_room(self) -> None:
        if self._data_count < self.data_elements:
            return
        # evict least-recently-used *unchanged* data element
        for name, entry in self._dir.items():
            if entry.has_data and not entry.changed:
                entry.has_data = False
                self._data_count -= 1
                return
        raise CacheFullError(self.name)

    def _reclaim_directory(self) -> None:
        """Steal the LRU dataless directory entry, invalidating registrants."""
        for name, entry in self._dir.items():
            if entry.has_data:
                continue
            for cid, bit in entry.registrants.items():
                vector = self.vectors.get(cid)
                if vector is not None:
                    if self.facility is not None:
                        self.facility.signal(
                            lambda v=vector, b=bit: v.invalidate(b))
                    else:
                        vector.invalidate(bit)
                    self.xi_signals += 1
            del self._dir[name]
            self.reclaims += 1
            return
        raise CacheFullError(f"{self.name}: directory full of changed data")

    # -- cleanup / introspection -------------------------------------------------------
    def _purge_connector(self, conn: Connector) -> None:
        for entry in self._dir.values():
            entry.registrants.pop(conn.conn_id, None)
            entry.seen.pop(conn.conn_id, None)
        self.vectors.pop(conn.conn_id, None)

    def version_of(self, name: object) -> int:
        entry = self._dir.get(name)
        return entry.version if entry else 0

    def has_data(self, name: object) -> bool:
        """Whether a read of ``name`` would hit CF storage (cost model:
        the response only carries a data block when one is cached)."""
        entry = self._dir.get(name)
        return bool(entry and entry.has_data)

    def is_registered(self, conn: Connector, name: object) -> bool:
        entry = self._dir.get(name)
        return bool(entry and conn.conn_id in entry.registrants)

    def check_coherency(self) -> None:
        """Invariant: a valid local bit implies the holder saw the latest
        version.  Raises AssertionError on violation (used by tests)."""
        for name, entry in self._dir.items():
            for cid, bit in entry.registrants.items():
                vector = self.vectors.get(cid)
                if vector is None or bit >= len(vector._bits):
                    continue
                if vector._bits[bit] and entry.seen.get(cid) is not None:
                    assert entry.seen[cid] == entry.version, (
                        f"{name}: conn {cid} valid at stale version "
                        f"{entry.seen[cid]} != {entry.version}"
                    )

    @property
    def data_in_use(self) -> int:
        return self._data_count

    # -- duplexing -------------------------------------------------------------
    def clone_state_from(self, other: "CacheStructure") -> None:
        """Copy the peer's directory + changed-set (re-duplexing).

        Vectors are *not* cloned — the wiring layer points this
        instance's ``vectors`` at the connectors' shared per-system
        vectors, which already reflect the directory being copied.
        """
        self._dir = OrderedDict()
        for name, entry in other._dir.items():
            mine = self._dir[name] = _DirEntry()
            mine.registrants = dict(entry.registrants)
            mine.version = entry.version
            mine.has_data = entry.has_data
            mine.changed = entry.changed
            mine.seen = dict(entry.seen)
        self._changed = OrderedDict((name, None) for name in other._changed)
        self._data_count = other._data_count

    def state_units(self) -> int:
        """Size metric for the re-duplex state copy cost."""
        return len(self._dir)

    def duplex_state(self) -> object:
        """Directory state in canonical comparable form.

        Covers exactly what the duplexed-write protocol mirrors: the
        directory (registrants, versions, data presence, changed bits,
        seen versions) in LRU order.  Local bit vectors are *excluded* —
        a duplexed pair shares the connectors' real vectors, so they are
        not per-instance state.
        """
        return (
            "cache",
            [
                (str(name), dict(e.registrants), e.version, e.has_data,
                 e.changed, dict(e.seen))
                for name, e in self._dir.items()
            ],
            [str(n) for n in self._changed],
        )
