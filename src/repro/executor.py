"""Parallel sweep executor with a content-addressed result cache.

Every quantitative target in the paper is produced by sweeping many
*independent* simulation runs, so the parallelism lives here — at the
embarrassingly-parallel process level — and never inside the
(deliberately deterministic) event kernel.  :func:`execute` takes a list
of :class:`~repro.runspec.RunSpec` and returns their results in order:

* ``jobs=1`` runs each spec in-process (the pre-refactor behavior);
* ``jobs>1`` fans the uncached specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* with a :class:`ResultCache`, results are stored on disk under their
  spec's content hash (``.runcache/<hash>.json``) and replayed on the
  next sweep, so re-running after editing one experiment is near-instant.

Determinism contract: for a given spec hash, the returned result is
bit-identical whether it was computed in-process, in a subprocess, or
read back from the cache.  To enforce that, *every* path round-trips the
runner's output through canonical JSON before handing it back — a fresh
in-process run cannot differ from a cache hit by float formatting or
dict ordering.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Union

from .metrics import RunResult
from .runspec import SCHEMA_VERSION, RunSpec, canonical_json

__all__ = ["execute", "ResultCache", "DEFAULT_CACHE_DIR"]

#: Where the CLI keeps its cache, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".runcache"

#: Progress callback: ``fn(index, spec, result, cached, seconds)``.
OnResult = Callable[[int, RunSpec, Any, bool, float], None]


# -- payloads ---------------------------------------------------------------
# A payload is the JSON form of whatever a runner returned: RunResults are
# tagged so they rebuild as RunResult, anything else passes through as
# plain data.

def _payload_from(obj: Any) -> dict:
    if isinstance(obj, RunResult):
        return {"kind": "runresult", "data": obj.to_dict()}
    return {"kind": "json", "data": obj}


def _result_from(payload: dict) -> Any:
    if payload["kind"] == "runresult":
        return RunResult.from_dict(payload["data"])
    return payload["data"]


def _run_spec_to_payload(spec_dict: dict) -> dict:
    """Pool worker: rebuild the spec, run it, return its JSON payload.

    Takes and returns plain dicts so the only things crossing the process
    boundary are JSON-shaped — no code objects, no live simulators.
    """
    spec = RunSpec.from_dict(spec_dict)
    payload = _payload_from(spec.run())
    # Canonicalize in the worker so the parent's json.loads sees exactly
    # what a cache file would contain.
    return json.loads(canonical_json(payload))


class ResultCache:
    """On-disk content-addressed store: ``<root>/<spec hash>.json``.

    Each file records the full spec alongside its payload, so a cache
    directory is self-describing (and auditable with ``jq``).  Writes are
    atomic (tempfile + rename); corrupt or schema-stale entries read as
    misses.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.content_hash()}.json"

    def get(self, spec: RunSpec) -> Optional[dict]:
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, spec: RunSpec, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "hash": spec.content_hash(),
            "spec": spec.to_dict(),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_json(entry))
            os.replace(tmp, self.path_for(spec))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def _as_cache(cache: Union[None, str, Path, ResultCache]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def execute(specs: Sequence[RunSpec],
            jobs: int = 1,
            cache: Union[None, str, Path, ResultCache] = None,
            on_result: Optional[OnResult] = None) -> List[Any]:
    """Run ``specs`` and return their results, in order.

    ``jobs`` caps the worker processes (1 = in-process, no pool);
    ``cache`` may be a :class:`ResultCache`, a directory path, or None.
    ``on_result`` is invoked once per spec as it completes — including
    cache hits — with ``(index, spec, result, cached, seconds)``.
    """
    cache = _as_cache(cache)
    payloads: List[Optional[dict]] = [None] * len(specs)

    pending: List[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            payloads[i] = hit
        else:
            pending.append(i)

    if pending:
        if jobs > 1:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                t0 = {}
                futures = {}
                for i in pending:
                    t0[i] = time.perf_counter()
                    futures[i] = pool.submit(
                        _run_spec_to_payload, specs[i].to_dict()
                    )
                for i in pending:
                    payloads[i] = futures[i].result()
                    _finish(specs[i], payloads[i], cache, on_result, i,
                            time.perf_counter() - t0[i])
        else:
            for i in pending:
                t0 = time.perf_counter()
                payloads[i] = json.loads(
                    canonical_json(_payload_from(specs[i].run()))
                )
                _finish(specs[i], payloads[i], cache, on_result, i,
                        time.perf_counter() - t0)

    results: List[Any] = []
    for i, (spec, payload) in enumerate(zip(specs, payloads)):
        result = _result_from(payload)
        if i not in pending and on_result is not None:
            on_result(i, spec, result, True, 0.0)
        results.append(result)
    return results


def _finish(spec: RunSpec, payload: dict, cache: Optional[ResultCache],
            on_result: Optional[OnResult], index: int,
            seconds: float) -> None:
    if cache is not None:
        cache.put(spec, payload)
    if on_result is not None:
        on_result(index, spec, _result_from(payload), False, seconds)
