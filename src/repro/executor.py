"""Parallel sweep execution behind pluggable backends.

Every quantitative target in the paper is produced by sweeping many
*independent* simulation runs, so the parallelism lives here — at the
embarrassingly-parallel sweep level — and never inside the
(deliberately deterministic) event kernel.  Two entry points:

* :func:`execute` takes a list of :class:`~repro.runspec.RunSpec` and
  returns their results **in spec order** (the barrier form every
  experiment uses);
* :func:`execute_iter` is the streaming form: it yields a
  :class:`Completion` per spec **as each one finishes** (cache hits
  first, then computed points in completion order), so a thousand-point
  sweep reports progress instead of going dark until the barrier.

Both run uncached specs through an **executor backend**:

* :class:`LocalPoolBackend` — ``jobs=1`` runs each spec in-process (the
  pre-backend behavior); ``jobs>1`` fans out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`;
* :class:`WorkQueueBackend` — a small work-queue server
  (:mod:`repro.distrib`) that N worker client processes drain over
  newline-delimited JSON on a TCP or unix socket.  Workers are spawned
  locally by default but any ``python -m repro.distrib.worker
  --connect HOST:PORT`` on any host with the repo installed can join.

Backend protocol
----------------

A backend is anything with::

    def run(self, tasks, cache=None):
        '''tasks: sequence of (index, RunSpec) pairs (the cache misses).

        Yield one TaskDone(index, payload, cached, seconds) per task, in
        whatever order the tasks complete.  ``payload`` must be the
        spec's canonical-JSON payload dict (see run_task); ``cached`` is
        True when a worker answered from its own read-through cache.
        '''

Backends receive the submitter's :class:`ResultCache` (or ``None``) so
they can offer its root to workers for **read-through**: a worker checks
the content-addressed store before simulating.  Write-back stays with
the submitter — :func:`execute_iter` puts every payload into its cache
as it arrives, so a sweep drained by remote workers leaves the local
``.runcache`` as warm as a local run would have.

Determinism contract: for a given spec hash, the returned result is
bit-identical whether it was computed in-process, in a pool worker, in a
work-queue worker, or read back from the cache.  To enforce that,
*every* path round-trips the runner's output through canonical JSON
before handing it back — a fresh in-process run cannot differ from a
cache hit by float formatting or dict ordering, and a work-queue worker
ships exactly the bytes a cache file would contain.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from .metrics import RunResult
from .runspec import SCHEMA_VERSION, RunSpec, canonical_json

__all__ = [
    "execute",
    "execute_iter",
    "ExecutorBackend",
    "LocalPoolBackend",
    "WorkQueueBackend",
    "ResultCache",
    "Progress",
]

#: Where the CLI keeps its cache, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".runcache"

#: Progress callback: ``fn(index, spec, result, cached, seconds)``.
OnResult = Callable[[int, RunSpec, Any, bool, float], None]


# -- payloads ---------------------------------------------------------------
# A payload is the JSON form of whatever a runner returned: RunResults are
# tagged so they rebuild as RunResult, anything else passes through as
# plain data.

def _payload_from(obj: Any) -> dict:
    if isinstance(obj, RunResult):
        return {"kind": "runresult", "data": obj.to_dict()}
    return {"kind": "json", "data": obj}


def _result_from(payload: dict) -> Any:
    if payload["kind"] == "runresult":
        return RunResult.from_dict(payload["data"])
    return payload["data"]


def canonical_payload(spec: RunSpec) -> Any:
    """Run ``spec`` in-process and return its canonically round-tripped
    result.

    The runner's output goes through the same canonical-JSON round trip
    a cache file or a work-queue worker applies, so the fuzzer's
    byte-determinism oracle judges exactly the bytes every execution
    path would carry — "deterministic" means the same thing there as it
    does here.
    """
    return _result_from(json.loads(canonical_json(_payload_from(spec.run()))))


def run_task(spec_dict: dict, cache_root: Optional[str] = None
             ) -> Tuple[dict, bool]:
    """Worker side of every backend: ``(payload, cached)`` for one spec.

    Takes and returns plain JSON-shaped data so the only things crossing
    a process or socket boundary are bytes — no code objects, no live
    simulators.  With ``cache_root``, the worker reads through the
    content-addressed store first and only simulates on a miss.
    """
    spec = RunSpec.from_dict(spec_dict)
    if cache_root:
        hit = ResultCache(cache_root).get(spec)
        if hit is not None:
            return hit, True
    payload = json.loads(canonical_json(_payload_from(spec.run())))
    return payload, False


def _run_spec_to_payload(spec_dict: dict) -> dict:
    """Back-compat pool worker entry (pre-backend name)."""
    return run_task(spec_dict)[0]


class ResultCache:
    """On-disk content-addressed store: ``<root>/<spec hash>.json``.

    Each file records the full spec alongside its payload, so a cache
    directory is self-describing (and auditable with ``jq``).  Writes are
    atomic (tempfile + rename); corrupt or schema-stale entries read as
    misses.  Because the key is the spec's content hash and the value is
    canonical JSON, a cache directory can be shared between hosts and
    backends: equal keys always map to equal bytes.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.content_hash()}.json"

    def get(self, spec: RunSpec) -> Optional[dict]:
        return self.get_by_hash(spec.content_hash())

    def get_by_hash(self, content_hash: str) -> Optional[dict]:
        """Look up a payload by its spec's content hash directly.

        This is the form the work-queue server uses to answer protocol
        ``cache_get`` requests from workers that cannot see this
        filesystem, and what the executor uses when it already holds
        the hash (so a spec is never canonicalised twice).
        """
        try:
            with open(self.root / f"{content_hash}.json", "r",
                      encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, spec: RunSpec, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "hash": spec.content_hash(),
            "spec": spec.to_dict(),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_json(entry))
            os.replace(tmp, self.path_for(spec))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def _as_cache(cache: Union[None, str, Path, ResultCache]) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# -- progress ---------------------------------------------------------------


class Progress:
    """Sweep-level progress: completed/total, cache hits, point cost, ETA.

    Feed it one :meth:`update` per finished spec (cache hits included).
    The per-point cost is an EWMA over *computed* points only, so a warm
    prefix of cache hits does not poison the estimate, and the ETA
    divides by the backend's parallelism (``jobs`` or worker count).
    With a ``stream``, each update prints a one-line report::

        [ 7/22  hits 3  1.9s/pt  eta 28s] plex-16
    """

    #: EWMA smoothing: ~the last 3-4 computed points dominate.
    ALPHA = 0.35

    def __init__(self, total: int, parallelism: int = 1,
                 stream: Optional[TextIO] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.total = int(total)
        self.parallelism = max(1, int(parallelism))
        self.completed = 0
        self.cache_hits = 0
        self.ewma_seconds: Optional[float] = None
        self._stream = stream
        self._clock = clock
        self.started_at = clock()

    def update(self, spec: RunSpec, cached: bool, seconds: float) -> None:
        self.completed += 1
        if cached:
            self.cache_hits += 1
        elif self.ewma_seconds is None:
            self.ewma_seconds = seconds
        else:
            self.ewma_seconds = (self.ALPHA * seconds
                                 + (1.0 - self.ALPHA) * self.ewma_seconds)
        if self._stream is not None:
            print(self.line(spec, cached, seconds), file=self._stream,
                  flush=True)

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.completed)

    def eta_seconds(self) -> Optional[float]:
        """Wall-clock estimate for the rest of the sweep (None = unknown).

        Remaining points are assumed uncached (the pessimistic estimate:
        hits only ever finish early) and to pipeline perfectly across
        the backend's parallel workers.
        """
        if self.remaining == 0:
            return 0.0
        if self.ewma_seconds is None:
            return None
        return self.remaining * self.ewma_seconds / self.parallelism

    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def line(self, spec: RunSpec, cached: bool, seconds: float) -> str:
        label = spec.label or f"{spec.runner}@{spec.short_hash()}"
        note = "cache" if cached else f"{seconds:4.1f}s"
        width = len(str(self.total))
        eta = self.eta_seconds()
        eta_note = "--" if eta is None else _fmt_seconds(eta)
        cost = ("" if self.ewma_seconds is None
                else f"  {self.ewma_seconds:.1f}s/pt")
        return (f"  [{self.completed:>{width}}/{self.total} {note}  "
                f"hits {self.cache_hits}{cost}  eta {eta_note}] {label}")

    def summary(self) -> str:
        done = _fmt_seconds(self.elapsed())
        return (f"{self.completed}/{self.total} points in {done} "
                f"({self.cache_hits} cache hits)")


def _fmt_seconds(s: float) -> str:
    if s >= 3600:
        return f"{s / 3600:.1f}h"
    if s >= 60:
        return f"{int(s // 60)}m{int(s % 60):02d}s"
    return f"{s:.0f}s"


# -- backends ---------------------------------------------------------------


class TaskDone(NamedTuple):
    """One finished backend task: the payload for ``specs[index]``.

    A *failed* task is a TaskDone too: ``payload`` is None and
    ``error`` holds the formatted failure (``exc`` additionally carries
    the live exception when the failure happened in this process or a
    local pool, so the caller can re-raise the original).  Backends
    never raise for a task failure — whether a failure aborts the sweep
    is the caller's policy (see ``execute_iter(errors=...)``).
    """

    index: int
    payload: Optional[dict]
    cached: bool
    seconds: float
    error: Optional[str] = None
    exc: Optional[BaseException] = None


class ExecutorBackend:
    """Interface every execution backend implements (see module docs).

    Subclasses override :meth:`run`; :meth:`parallelism` feeds the
    ETA estimate and defaults to 1.
    """

    def run(self, tasks: Sequence[Tuple[int, RunSpec]],
            cache: Optional[ResultCache] = None) -> Iterator[TaskDone]:
        raise NotImplementedError

    def parallelism(self) -> int:
        return 1


class LocalPoolBackend(ExecutorBackend):
    """The default backend: in-process at ``jobs=1``, else a local pool.

    Byte-identical to the pre-backend executor: ``jobs=1`` runs every
    spec in the calling process (no pool, no pickling), ``jobs>1`` fans
    out over a :class:`~concurrent.futures.ProcessPoolExecutor` and
    streams completions back as they land.  Pool workers read through
    the submitter's cache directory, which only matters when another
    process is filling the same cache concurrently.
    """

    def __init__(self, jobs: int = 1):
        self.jobs = max(1, int(jobs))

    def parallelism(self) -> int:
        return self.jobs

    def run(self, tasks: Sequence[Tuple[int, RunSpec]],
            cache: Optional[ResultCache] = None) -> Iterator[TaskDone]:
        if self.jobs == 1:
            # the submitter already consulted the cache for every task
            for index, spec in tasks:
                t0 = time.perf_counter()
                try:
                    payload, cached = run_task(spec.to_dict())
                except Exception as exc:  # noqa: BLE001 - caller's policy
                    yield TaskDone(index, None, False,
                                   time.perf_counter() - t0,
                                   error=f"{type(exc).__name__}: {exc}",
                                   exc=exc)
                    continue
                yield TaskDone(index, payload, cached,
                               time.perf_counter() - t0)
            return
        root = str(cache.root) if cache is not None else None
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            t0 = time.perf_counter()
            futures = {
                pool.submit(run_task, spec.to_dict(), root): index
                for index, spec in tasks
            }
            for fut in as_completed(futures):
                try:
                    payload, cached = fut.result()
                except Exception as exc:  # noqa: BLE001 - caller's policy
                    yield TaskDone(futures[fut], None, False,
                                   time.perf_counter() - t0,
                                   error=f"{type(exc).__name__}: {exc}",
                                   exc=exc)
                    continue
                yield TaskDone(futures[fut], payload, cached,
                               time.perf_counter() - t0)


class WorkQueueBackend(ExecutorBackend):
    """Drain a sweep through the :mod:`repro.distrib` work-queue server.

    The submitter starts a server holding the pending specs; worker
    client processes connect, pull tasks over versioned JSON frames,
    and stream canonical payloads back.  Dispatch is **pipelined**: the
    server keeps up to ``depth`` tasks in flight per worker (batched
    into single frames on protocol-v2 connections) so workers never
    idle for a round trip between points, and frames are
    zlib-``compress``-ed when the worker negotiates it.  A worker that
    dies mid-task has its in-flight tasks resubmitted to the queue (up
    to ``max_resubmits`` attempts per task); a worker whose *runner*
    raises reports the error, which surfaces at the submitter.

    ``spawn`` selects who starts the workers:

    * ``True`` (default) — ``workers`` local processes via
      :class:`~repro.distrib.launcher.LocalLauncher`;
    * a :class:`~repro.distrib.launcher.WorkerLauncher` — e.g.
      :class:`~repro.distrib.launcher.SshLauncher` for a
      ``host1:4,host2:8`` fleet or
      :class:`~repro.distrib.launcher.CommandLauncher` for an arbitrary
      shell template;
    * ``False`` — the server just listens; start workers yourself
      (possibly on other hosts) against the address in
      :attr:`last_address`.

    ``address`` may be ``"host:port"`` (TCP; ``"127.0.0.1:0"`` picks a
    free port) or ``"unix:/path.sock"``; the default is an ephemeral
    loopback TCP port.  ``pythonpath`` prepends extra entries to the
    spawned workers' ``PYTHONPATH`` (the directory containing
    :mod:`repro` is always included).  Workers read through the
    submitter's cache either directly (shared filesystem) or over the
    protocol (``cache_get``) when they cannot see it — disable both
    with ``worker_cache=False``.
    """

    def __init__(self, workers: int = 2,
                 address: Optional[str] = None,
                 spawn: Union[bool, "WorkerLauncher"] = True,
                 worker_cache: bool = True,
                 max_resubmits: int = 3,
                 pythonpath: Sequence[Union[str, Path]] = (),
                 startup_timeout: float = 60.0,
                 depth: int = 4,
                 compress: bool = True):
        self.workers = max(1, int(workers))
        self.address = address
        self.spawn = spawn
        self.worker_cache = worker_cache
        self.max_resubmits = max_resubmits
        self.pythonpath = [str(p) for p in pythonpath]
        self.startup_timeout = startup_timeout
        self.depth = max(1, int(depth))
        self.compress = compress
        #: The address the last server actually bound (for external
        #: workers when ``spawn=False``).
        self.last_address: Optional[str] = None

    def parallelism(self) -> int:
        count = getattr(self.spawn, "count", None)
        if count:
            return int(count)
        return self.workers

    def _launcher(self, n_tasks: int):
        from .distrib.launcher import LocalLauncher, WorkerLauncher

        if isinstance(self.spawn, WorkerLauncher):
            return self.spawn
        if self.spawn:
            return LocalLauncher(count=min(self.workers, n_tasks),
                                 pythonpath=self.pythonpath)
        return None

    def run(self, tasks: Sequence[Tuple[int, RunSpec]],
            cache: Optional[ResultCache] = None) -> Iterator[TaskDone]:
        from .distrib.server import SweepServer

        cache_root = (str(cache.root) if cache is not None
                      and self.worker_cache else None)
        server = SweepServer(
            [(index, spec.to_dict()) for index, spec in tasks],
            cache_root=cache_root,
            max_resubmits=self.max_resubmits,
            depth=self.depth,
            compress=self.compress,
        )
        address = server.start(self.address)
        self.last_address = address
        launcher = self._launcher(len(tasks))
        handles: List = []
        try:
            if launcher is not None:
                handles = list(launcher.launch(address))
            yield from server.results(
                procs=handles, startup_timeout=self.startup_timeout)
        finally:
            # closing the server sends/forces EOF on every worker
            # connection, so remote (e.g. SSH-launched) workers exit on
            # their own; the launcher then reaps local processes
            server.close()
            if launcher is not None:
                launcher.stop()


def _as_backend(backend: Optional[ExecutorBackend],
                jobs: int) -> ExecutorBackend:
    if backend is None:
        return LocalPoolBackend(jobs)
    return backend


# -- entry points -----------------------------------------------------------


class Completion(NamedTuple):
    """One streamed sweep result: ``specs[index]`` finished.

    With ``execute_iter(errors="yield")`` a failed spec completes too:
    ``result`` is None and ``error`` holds the formatted failure.
    """

    index: int
    spec: RunSpec
    result: Any
    cached: bool
    seconds: float
    error: Optional[str] = None


def execute_iter(specs: Sequence[RunSpec],
                 jobs: int = 1,
                 cache: Union[None, str, Path, ResultCache] = None,
                 backend: Optional[ExecutorBackend] = None,
                 progress: Union[None, bool, Progress] = None,
                 on_result: Optional[OnResult] = None,
                 errors: str = "raise"
                 ) -> Iterator[Completion]:
    """Run ``specs``, yielding a :class:`Completion` per spec as it lands.

    Submitter-side cache hits stream first (in spec order, instantly),
    then the backend's completions in whatever order they finish — so
    consumers see results incrementally instead of waiting for the
    barrier.  Every computed payload is written back to ``cache`` as it
    arrives.  ``progress`` may be a :class:`Progress` (it is updated per
    completion) or ``True`` for a default one printing to stderr;
    ``on_result`` is the legacy per-spec callback.

    **Deduplication**: specs with equal content hashes are computed
    once — the one result fans out to every index that asked for it, so
    a sweep with repeated points costs one simulation even on a cold
    cache.

    **Failure policy**: with ``errors="raise"`` (the default) the first
    failed spec aborts the sweep — in-process failures re-raise the
    original exception, worker-side failures raise
    :class:`~repro.distrib.WorkerTaskError`.  With ``errors="yield"``
    a failed spec is yielded as a Completion with ``error`` set and the
    sweep keeps going — the campaign driver's mode, where one bad point
    must not sink a thousand-point night.
    """
    if errors not in ("raise", "yield"):
        raise ValueError(f"errors must be 'raise' or 'yield', not {errors!r}")
    cache = _as_cache(cache)
    backend = _as_backend(backend, jobs)
    if progress is True:
        progress = Progress(len(specs), parallelism=backend.parallelism(),
                            stream=sys.stderr)

    def emit(index: int, spec: RunSpec, result: Any, cached: bool,
             seconds: float, error: Optional[str] = None) -> Completion:
        if progress is not None:
            progress.update(spec, cached, seconds)
        if on_result is not None:
            on_result(index, spec, result, cached, seconds)
        return Completion(index, spec, result, cached, seconds, error)

    pending: List[Tuple[int, RunSpec]] = []
    hits: List[Tuple[int, dict]] = []
    duplicates: Dict[int, List[int]] = {}
    first_with_hash: Dict[str, int] = {}
    for i, spec in enumerate(specs):
        content_hash = spec.content_hash()
        hit = (cache.get_by_hash(content_hash)
               if cache is not None else None)
        if hit is not None:
            hits.append((i, hit))
            continue
        rep = first_with_hash.get(content_hash)
        if rep is None:
            first_with_hash[content_hash] = i
            pending.append((i, spec))
        else:
            # identical spec already submitted: fan its result out here
            duplicates.setdefault(rep, []).append(i)
    for i, payload in hits:
        yield emit(i, specs[i], _result_from(payload), True, 0.0)
    if not pending:
        return
    for done in backend.run(pending, cache=cache):
        fanout = [done.index, *duplicates.get(done.index, ())]
        if done.error is not None:
            if errors == "raise":
                if done.exc is not None:
                    raise done.exc
                from .distrib.server import WorkerTaskError

                raise WorkerTaskError(
                    f"task {done.index} failed on a worker: {done.error}"
                )
            for j in fanout:
                yield emit(j, specs[j], None, False,
                           done.seconds if j == done.index else 0.0,
                           error=done.error)
            continue
        if cache is not None:
            # write-back at the submitter: idempotent (atomic replace of
            # identical canonical bytes) even if a worker cache-hit
            cache.put(specs[done.index], done.payload)
        for j in fanout:
            yield emit(j, specs[j], _result_from(done.payload),
                       done.cached, done.seconds if j == done.index else 0.0)


def execute(specs: Sequence[RunSpec],
            jobs: int = 1,
            cache: Union[None, str, Path, ResultCache] = None,
            backend: Optional[ExecutorBackend] = None,
            progress: Union[None, bool, Progress] = None,
            on_result: Optional[OnResult] = None,
            errors: str = "raise") -> List[Any]:
    """Run ``specs`` and return their results, in spec order.

    The barrier form of :func:`execute_iter`: results stream internally
    (progress and ``on_result`` fire as points finish) but the return
    value is assembled in deterministic spec order regardless of the
    backend's completion order.  ``jobs`` selects the default
    :class:`LocalPoolBackend` width when no ``backend`` is given;
    ``cache`` may be a :class:`ResultCache`, a directory path, or None.
    With ``errors="yield"``, failed specs come back as None.
    """
    results: List[Any] = [None] * len(specs)
    for c in execute_iter(specs, jobs=jobs, cache=cache, backend=backend,
                          progress=progress, on_result=on_result,
                          errors=errors):
        results[c.index] = c.result
    return results
