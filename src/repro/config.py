"""Configuration dataclasses and the calibrated cost model.

Every timing constant in the simulation lives here, with a comment saying
what 1995-era artifact it stands in for.  The headline claims of the paper
(Figure 3 shape, the <18 % data-sharing transition cost, the <0.5 %
per-system increment) are *not* hard-coded anywhere — they emerge from these
per-operation costs flowing through the mechanism models.  DESIGN.md §4
explains the calibration rationale.

All times are in **seconds** (so ``12e-6`` is 12 µs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

__all__ = [
    "CpuConfig",
    "LinkConfig",
    "DasdConfig",
    "CfConfig",
    "XcfConfig",
    "WlmConfig",
    "ArmConfig",
    "SfmConfig",
    "DatabaseConfig",
    "OltpConfig",
    "SysplexConfig",
    "DUPLEX_POLICIES",
    "quick_sysplex",
]

MICRO = 1e-6
MILLI = 1e-3

#: Structure-duplexing policies: which structure classes keep a hot
#: secondary instance in a second CF (``"all"`` = every class).
DUPLEX_POLICIES = ("none", "lock", "cache", "list", "all")


@dataclass
class CpuConfig:
    """A system node's CPU complex (a tightly coupled multiprocessor)."""

    #: Engines per system (the paper's initial product: 1-10).
    n_cpus: int = 1
    #: Relative engine speed (1.0 = the reference single engine).
    speed: float = 1.0
    #: Multiprocessor-effect inflation: running on an ``n``-way TCMP
    #: inflates every CPU-second by ``1 + mp_alpha * (n-1) ** mp_beta``.
    #: This models hardware cache cross-invalidation, conceptual instruction
    #: sequencing, and software serialization (paper §4) and is what bends
    #: the TCMP curve in Figure 3.  Defaults give a 10-way ~7.4 effective
    #: engines, matching published S/390 MP ratios.
    mp_alpha: float = 0.032
    mp_beta: float = 1.10

    def inflation(self, n: Optional[int] = None) -> float:
        """CPU-time inflation factor for an ``n``-way complex."""
        n = self.n_cpus if n is None else n
        if n <= 1:
            return 1.0
        return 1.0 + self.mp_alpha * (n - 1) ** self.mp_beta

    def effective_engines(self, n: Optional[int] = None) -> float:
        """Analytic effective capacity of an ``n``-way TCMP in engines."""
        n = self.n_cpus if n is None else n
        return n / self.inflation(n)


@dataclass
class LinkConfig:
    """A coupling link (fiber-optic channel to the Coupling Facility)."""

    #: One-way propagation + protocol latency.
    latency: float = 2 * MICRO
    #: Paper: "50 MegaBytes/second or 100 MB/second" — bytes/second here.
    bandwidth: float = 100e6
    #: Concurrent operations per link (subchannel images).
    subchannels: int = 2
    #: Links from each system to each CF.
    links_per_system: int = 2

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


@dataclass
class DasdConfig:
    """Shared DASD (ESCON-attached direct access storage)."""

    #: Mean device service time for a 4K page (cached controller era).
    service_mean: float = 2.5 * MILLI
    #: Service time spread (lognormal sigma in log-space).
    service_sigma: float = 0.35
    #: Channel paths per device (ESCON multi-path, paper §3.1).
    paths: int = 4
    #: Page size moved per I/O.
    page_size: int = 4096


@dataclass
class CfConfig:
    """The Coupling Facility and its command cost model."""

    #: CF processors executing commands (the CF is itself S/390-based).
    n_cpus: int = 2
    #: CF processor service time for a simple command (lock request,
    #: directory registration).  The paper: "synchronous execution times
    #: measured in micro-seconds".
    cmd_service: float = 3 * MICRO
    #: Extra CF service for data-carrying commands (cache read/write, list
    #: entry with data), on top of link transfer time.
    data_cmd_service: float = 6 * MICRO
    #: Requester-side CPU to build/issue a sync command and process its
    #: response (the CPU *spins* for the round trip — no task switch).
    sync_issue_cpu: float = 3 * MICRO
    #: Additional requester CPU for an *async* command: back-end completion
    #: processing, task switch, cache disruption (what sync mode avoids).
    async_extra_cpu: float = 45 * MICRO
    #: Latency of a cross-invalidate / list-notification signal delivered by
    #: the CF to a system.  Zero *target* CPU cost by design (paper §3.3.2).
    signal_latency: float = 4 * MICRO
    #: Lock-table entries in a lock structure (2^20 default: false
    #: contention "kept to a minimum", §3.3.1).
    lock_table_entries: int = 1 << 20
    #: Cache structure capacity in 4K data elements.
    cache_elements: int = 65536
    #: Directory entries (names trackable) in a cache structure.
    cache_directory_entries: int = 1 << 18
    #: End-to-end budget for one CF request attempt.  ``None`` (default)
    #: disables request-level robustness entirely — commands take the
    #: plain single-attempt path with no extra events, so established
    #: results stay byte-identical.  Chaos runs enable it.
    request_timeout: Optional[float] = None
    #: Redrive attempts after a timeout / interface control check before
    #: the request fails (only with ``request_timeout`` set).
    request_retries: int = 3
    #: Base delay of the exponential backoff between redrives; attempt
    #: ``k`` waits ``retry_backoff * 2**k`` (jittered when the port has a
    #: seeded RNG).
    retry_backoff: float = 20 * MICRO
    #: System-managed structure duplexing policy: ``"none"`` (default —
    #: simplex structures, byte-identical to historical results),
    #: ``"lock"``/``"cache"``/``"list"`` (duplex that structure class
    #: only), or ``"all"``.  Duplexed structures keep a hot secondary in
    #: a second CF: mutating commands pay the secondary's link + service
    #: latency, and CF failure becomes a duplex *switch* instead of a
    #: rebuild (paper §3.3: "Multiple CF's can be connected for
    #: availability").  Requires ``n_cfs >= 2`` to take effect.
    duplex: str = "none"

    def __post_init__(self) -> None:
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive (or None)")
        if self.request_retries < 0:
            raise ValueError("request_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.duplex not in DUPLEX_POLICIES:
            raise ValueError(
                f"unknown duplex policy {self.duplex!r} "
                f"(expected one of {DUPLEX_POLICIES})"
            )

    def duplexes(self, model: str) -> bool:
        """Whether this policy duplexes structures of class ``model``."""
        return self.duplex == "all" or self.duplex == model


@dataclass
class XcfConfig:
    """Cross-system coupling facility (messaging + status monitoring)."""

    #: One-way CTC message latency between systems.
    message_latency: float = 400 * MICRO
    #: Sender/receiver CPU per message (SRB dispatch, interrupt handling).
    message_cpu: float = 60 * MICRO
    #: Interval between status (heartbeat) updates to the couple data set.
    heartbeat_interval: float = 0.5
    #: Missed-update threshold before a system is declared status-missing.
    heartbeat_misses: int = 2
    #: Time for SFM to fence (isolate) a failed system once detected.
    fencing_time: float = 0.2


@dataclass
class WlmConfig:
    """Workload Manager policy engine."""

    #: Sampling interval for utilization / performance-index updates.
    interval: float = 0.1
    #: EWMA smoothing for utilization estimates.
    smoothing: float = 0.5
    #: Response-time goal for the default OLTP service class.
    response_goal: float = 50 * MILLI


@dataclass
class ArmConfig:
    """Automatic Restart Manager."""

    #: Time to restart a failed subsystem instance on a healthy system.
    restart_time: float = 2.0
    #: Per retained-lock recovery processing during peer/restart recovery.
    lock_recovery_each: float = 200 * MICRO
    #: Fixed log-replay portion of subsystem recovery.
    log_replay_time: float = 0.5


@dataclass
class SfmConfig:
    """Sysplex Failure Management policy for CF-structure recovery.

    Declarative per-run recovery policy (paper §5.2's SFM couple data
    set): how fast a CF failure is *detected*, how long the sysplex
    waits before re-establishing a lost secondary, and the per-class
    recovery-time SLOs the experiments score incidents against.
    """

    #: Time from a CF failing to the sysplex acting on it (status-update
    #: missing detection through the couple data set).
    detection_interval: float = 20 * MILLI
    #: Delay before a structure that dropped to simplex re-establishes a
    #: new secondary in another live CF (lets the failure storm settle).
    reestablish_delay: float = 0.5
    #: Recovery-time service-level objectives per structure class, in
    #: milliseconds (detect -> resume); incidents are scored against
    #: these in the recovery timelines.
    lock_slo_ms: float = 50.0
    cache_slo_ms: float = 150.0
    list_slo_ms: float = 150.0

    def __post_init__(self) -> None:
        if self.detection_interval < 0:
            raise ValueError("detection_interval must be >= 0")
        if self.reestablish_delay < 0:
            raise ValueError("reestablish_delay must be >= 0")

    def slo_ms(self, model: str) -> float:
        """The recovery SLO for structure class ``model`` (ms)."""
        return {
            "lock": self.lock_slo_ms,
            "cache": self.cache_slo_ms,
            "list": self.list_slo_ms,
        }.get(model, self.list_slo_ms)


@dataclass
class DatabaseConfig:
    """The record database and its managers (DB2/IMS-DB stand-in)."""

    n_pages: int = 50_000
    #: Local buffer pool pages per database-manager instance.
    buffer_pages: int = 15_000
    #: Whether changed pages are also written to the CF cache structure
    #: (store-in) for high-speed peer refresh, vs. DASD only.
    store_in_cf: bool = True
    #: CPU per database call (path length of the data manager itself).
    db_call_cpu: float = 60 * MICRO
    #: CPU to force a log record group at commit.
    log_force_cpu: float = 30 * MICRO
    #: Log force I/O time (DASD fast write era).
    log_force_io: float = 1.2 * MILLI
    #: Lock wait-for-graph deadlock detection interval.
    deadlock_interval: float = 0.5


@dataclass
class OltpConfig:
    """The synthetic CICS/DBCTL-like OLTP workload (paper §4's testbed)."""

    #: Base application CPU path length per transaction, *excluding*
    #: database calls (terminal handling, application logic).
    app_cpu: float = 1.7 * MILLI
    #: Database calls per transaction.
    reads_per_txn: int = 10
    writes_per_txn: int = 3
    #: Zipf skew of page accesses (0 = uniform).  0.6 keeps hot-page
    #: lock convoys below the level that would mask CPU scaling — the
    #: paper's measured workload was tuned the same way (EXP-BAL and the
    #: lock experiments sweep this up to show the contention regime).
    zipf_theta: float = 0.6
    #: Closed-loop terminals per configured engine (sets saturation).
    terminals_per_cpu: int = 15
    #: Think time between a terminal's transactions (0 = saturation drive).
    think_time: float = 0.0


@dataclass
class SysplexConfig:
    """Top-level description of one Parallel Sysplex to build."""

    n_systems: int = 2
    cpu: CpuConfig = field(default_factory=CpuConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    dasd: DasdConfig = field(default_factory=DasdConfig)
    cf: CfConfig = field(default_factory=CfConfig)
    xcf: XcfConfig = field(default_factory=XcfConfig)
    wlm: WlmConfig = field(default_factory=WlmConfig)
    arm: ArmConfig = field(default_factory=ArmConfig)
    sfm: SfmConfig = field(default_factory=SfmConfig)
    db: DatabaseConfig = field(default_factory=DatabaseConfig)
    oltp: OltpConfig = field(default_factory=OltpConfig)
    #: Number of Coupling Facilities (>=2 for CF failover).
    n_cfs: int = 1
    #: Data sharing on/off: a single system can run without connecting to
    #: the CF at all (the paper's non-data-sharing base case in §4).
    data_sharing: bool = True
    #: DASD devices the database is spread over.
    n_dasd: int = 32
    #: Root random seed.
    seed: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.n_systems <= 32:
            raise ValueError("paper supports 1..32 systems")
        if not 1 <= self.cpu.n_cpus <= 10:
            raise ValueError("paper supports 1..10 cpus per system")
        if self.n_cfs < 0:
            raise ValueError("n_cfs must be >= 0")
        if self.data_sharing and self.n_systems > 1 and self.n_cfs < 1:
            raise ValueError("multi-system data sharing requires a CF")

    def to_dict(self) -> dict:
        """A plain-data (JSON-serializable) view of the full config tree."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SysplexConfig":
        """Rebuild a config (and its nested sections) from :meth:`to_dict`."""
        kw = dict(data)
        for name, sub_cls in _SUBCONFIG_TYPES.items():
            if isinstance(kw.get(name), dict):
                kw[name] = sub_cls(**kw[name])
        return cls(**kw)


#: Nested config sections of :class:`SysplexConfig`, for deserialization.
_SUBCONFIG_TYPES = {
    "cpu": CpuConfig,
    "link": LinkConfig,
    "dasd": DasdConfig,
    "cf": CfConfig,
    "xcf": XcfConfig,
    "wlm": WlmConfig,
    "arm": ArmConfig,
    "sfm": SfmConfig,
    "db": DatabaseConfig,
    "oltp": OltpConfig,
}


def quick_sysplex(n_systems: int = 2, n_cpus: int = 1, **kw) -> SysplexConfig:
    """A small configuration suitable for tests and examples."""
    cfg = SysplexConfig(n_systems=n_systems, cpu=CpuConfig(n_cpus=n_cpus))
    return replace(cfg, **kw) if kw else cfg
