"""High-level entry points: build a sysplex, drive a workload, measure.

These are the functions behind the :func:`repro.run` facade; each returns
:class:`repro.metrics.RunResult`.  Drive parameters travel as one
:class:`~repro.options.RunOptions` bundle.  The pre-1.1 loose keyword
style (``mode=``, ``router_policy=``, ``tracing=``, ...) still works but
raises :class:`DeprecationWarning`::

    run_oltp(cfg, duration=1.0, tracing=True)                  # deprecated
    run_oltp(cfg, duration=1.0, options=RunOptions(tracing=True))  # current
"""

from __future__ import annotations

import gc
import warnings
from typing import TYPE_CHECKING, Optional, Tuple

from .config import SysplexConfig
from .metrics import RunResult
from .options import OPTION_FIELDS, RunOptions
from .sysplex import Sysplex
from .workloads.oltp import OltpGenerator
from .workloads.traces import DemandTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runspec import RunSpec

__all__ = ["run_oltp", "run_spec", "build_loaded_sysplex"]


def _resolve_options(options: Optional[RunOptions], legacy: dict,
                     caller: str) -> RunOptions:
    """Merge deprecated loose kwargs into a RunOptions bundle (warning once
    per call site), or pass an explicit bundle through untouched."""
    if legacy:
        unknown = set(legacy) - OPTION_FIELDS
        if unknown:
            raise TypeError(
                f"{caller}() got unexpected keyword arguments "
                f"{sorted(unknown)}"
            )
        warnings.warn(
            f"passing {sorted(legacy)} to {caller}() as loose keyword "
            f"arguments is deprecated; pass options=RunOptions(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return (options or RunOptions()).replace(**legacy)
    return options if options is not None else RunOptions()


def build_loaded_sysplex(config: SysplexConfig,
                         options: Optional[RunOptions] = None,
                         trace: Optional[DemandTrace] = None,
                         **legacy) -> Tuple[Sysplex, OltpGenerator]:
    """Construct a sysplex with an OLTP workload attached (not yet run).

    Returns ``(sysplex, generator)`` so callers can inject failures or
    add systems before/while running.  ``options`` bundles the drive
    parameters; ``trace`` optionally replays a recorded demand trace.
    With ``options.tracing`` the transaction-level span tracer is
    attached (see :mod:`repro.trace`), making per-category overhead
    attribution available from ``collect()``.
    """
    opts = _resolve_options(options, legacy, "build_loaded_sysplex")
    plex = Sysplex(config, monitoring=opts.monitoring,
                   router_policy=opts.router_policy, tracing=opts.tracing)
    gen = OltpGenerator(
        plex.sim,
        config.oltp,
        n_pages=config.db.n_pages,
        n_systems=config.n_systems,
        rng=plex.streams.stream("oltp"),
        router=plex.router,
        trace=trace,
        tracer=plex.tracer,
    )
    if opts.mode == "closed":
        terminals = opts.terminals_per_system
        if terminals is None:
            terminals = config.oltp.terminals_per_cpu * config.cpu.n_cpus
        gen.start_closed_loop(terminals)
    else:  # "open" — RunOptions validates the mode at construction
        gen.start_open_loop(opts.offered_tps_per_system)
    # steady-state setup: pools start warm with the hot working set, as
    # they would be after hours of production running
    hot = gen.sampler.hottest(config.db.buffer_pages)
    for inst in plex.instances.values():
        inst.buffers.prewarm(hot)
    return plex, gen


def run_oltp(config: SysplexConfig,
             duration: float = 1.0,
             warmup: float = 0.3,
             options: Optional[RunOptions] = None,
             label: Optional[str] = None,
             trace: Optional[DemandTrace] = None,
             **legacy) -> RunResult:
    """Run one measured OLTP window and return its results.

    ``warmup`` simulated seconds are run and discarded (buffer pools fill,
    WLM utilization estimates settle), then ``duration`` seconds are
    measured.  With ``options.tracing`` the result's ``extras``
    additionally carries ``trace.*`` overhead-attribution keys (µs and %%
    of mean response per lifecycle category — see
    :mod:`repro.trace_analysis`).
    """
    opts = _resolve_options(options, legacy, "run_oltp")
    plex, _gen = build_loaded_sysplex(config, options=opts, trace=trace)
    # The event loop allocates millions of short-lived cyclic objects
    # (process <-> generator frame <-> event); letting the cycle collector
    # run mid-simulation costs ~10% of wall time and can never free much,
    # since the calendar keeps everything reachable.  Suspend it for the
    # run and let the backlog collect afterwards.  No simulation state is
    # affected, so results are unchanged.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        plex.sim.run(until=warmup)
        plex.reset_measurement()
        plex.sim.run(until=warmup + duration)
    finally:
        if was_enabled:
            gc.enable()
    if label is None:
        sharing = "DS" if config.data_sharing and config.n_cfs else "noDS"
        label = (
            f"{config.n_systems}x{config.cpu.n_cpus}cpu {sharing} {opts.mode}"
        )
    return plex.collect(label)


def run_spec(spec: "RunSpec") -> RunResult:
    """Execute a declarative OLTP :class:`~repro.runspec.RunSpec`.

    This is the executor's default runner (the ``"oltp"`` alias): the
    spec's config, window, and options map 1:1 onto :func:`run_oltp`.
    """
    if spec.config is None:
        raise ValueError("an 'oltp' RunSpec needs a SysplexConfig")
    return run_oltp(
        spec.config,
        duration=spec.duration,
        warmup=spec.warmup,
        options=spec.options,
        label=spec.label,
    )
