"""High-level entry points: build a sysplex, drive a workload, measure.

These are the functions the examples and the benchmark harness call; each
returns :class:`repro.metrics.RunResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .config import SysplexConfig
from .metrics import RunResult
from .sysplex import Sysplex
from .workloads.oltp import OltpGenerator
from .workloads.traces import DemandTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runspec import RunSpec

__all__ = ["run_oltp", "run_spec", "build_loaded_sysplex"]


def build_loaded_sysplex(config: SysplexConfig,
                         mode: str = "closed",
                         offered_tps_per_system: float = 200.0,
                         trace: Optional[DemandTrace] = None,
                         router_policy: str = "threshold",
                         monitoring: bool = True,
                         terminals_per_system: Optional[int] = None,
                         tracing: bool = False):
    """Construct a sysplex with an OLTP workload attached (not yet run).

    Returns ``(sysplex, generator)`` so callers can inject failures or
    add systems before/while running.  ``tracing=True`` attaches the
    transaction-level span tracer (see :mod:`repro.trace`), making
    per-category overhead attribution available from ``collect()``.
    """
    plex = Sysplex(config, monitoring=monitoring, router_policy=router_policy,
                   tracing=tracing)
    gen = OltpGenerator(
        plex.sim,
        config.oltp,
        n_pages=config.db.n_pages,
        n_systems=config.n_systems,
        rng=plex.streams.stream("oltp"),
        router=plex.router,
        trace=trace,
        tracer=plex.tracer,
    )
    if mode == "closed":
        if terminals_per_system is None:
            terminals_per_system = (
                config.oltp.terminals_per_cpu * config.cpu.n_cpus
            )
        gen.start_closed_loop(terminals_per_system)
    elif mode == "open":
        gen.start_open_loop(offered_tps_per_system)
    else:
        raise ValueError(f"unknown drive mode {mode!r}")
    # steady-state setup: pools start warm with the hot working set, as
    # they would be after hours of production running
    hot = gen.sampler.hottest(config.db.buffer_pages)
    for inst in plex.instances.values():
        inst.buffers.prewarm(hot)
    return plex, gen


def run_oltp(config: SysplexConfig,
             duration: float = 1.0,
             warmup: float = 0.3,
             mode: str = "closed",
             offered_tps_per_system: float = 200.0,
             trace: Optional[DemandTrace] = None,
             router_policy: str = "threshold",
             monitoring: bool = True,
             label: Optional[str] = None,
             terminals_per_system: Optional[int] = None,
             tracing: bool = False) -> RunResult:
    """Run one measured OLTP window and return its results.

    ``warmup`` simulated seconds are run and discarded (buffer pools fill,
    WLM utilization estimates settle), then ``duration`` seconds are
    measured.  With ``tracing=True`` the result's ``extras`` additionally
    carries ``trace.*`` overhead-attribution keys (µs and %% of mean
    response per lifecycle category — see :mod:`repro.trace_analysis`).
    """
    plex, _gen = build_loaded_sysplex(
        config,
        mode=mode,
        offered_tps_per_system=offered_tps_per_system,
        trace=trace,
        router_policy=router_policy,
        monitoring=monitoring,
        terminals_per_system=terminals_per_system,
        tracing=tracing,
    )
    plex.sim.run(until=warmup)
    plex.reset_measurement()
    plex.sim.run(until=warmup + duration)
    if label is None:
        sharing = "DS" if config.data_sharing and config.n_cfs else "noDS"
        label = (
            f"{config.n_systems}x{config.cpu.n_cpus}cpu {sharing} {mode}"
        )
    return plex.collect(label)


def run_spec(spec: "RunSpec") -> RunResult:
    """Execute a declarative OLTP :class:`~repro.runspec.RunSpec`.

    This is the executor's default runner (the ``"oltp"`` alias): the
    spec's config and drive fields map 1:1 onto :func:`run_oltp`.
    """
    if spec.config is None:
        raise ValueError("an 'oltp' RunSpec needs a SysplexConfig")
    return run_oltp(
        spec.config,
        duration=spec.duration,
        warmup=spec.warmup,
        mode=spec.mode,
        offered_tps_per_system=spec.offered_tps_per_system,
        router_policy=spec.router_policy,
        monitoring=spec.monitoring,
        label=spec.label,
        terminals_per_system=spec.terminals_per_system,
        tracing=spec.tracing,
    )
