"""High-level entry points: build a sysplex, drive a workload, measure.

These are the functions behind the :func:`repro.run` facade; each returns
:class:`repro.metrics.RunResult`.  Drive parameters travel as one
:class:`~repro.options.RunOptions` bundle::

    run_oltp(cfg, duration=1.0, options=RunOptions(tracing=True))

(The pre-1.1 loose keyword style — ``run_oltp(cfg, tracing=True)`` —
was deprecated in 1.1 and removed in 2.0.)

The options bundle also carries the execution profile:
``RunOptions(profile="sweep")`` (the default) runs on the calendar-queue
scheduler with CF-command event collapsing — fast and statistically
neutral; ``profile="verify"`` runs the golden heapq/no-collapse path,
byte-identical to historical results.  See :mod:`repro.options`.
"""

from __future__ import annotations

import gc
from typing import TYPE_CHECKING, Optional, Tuple

from .config import SysplexConfig
from .metrics import RunResult
from .options import RunOptions
from .sysplex import Sysplex
from .workloads.oltp import OltpGenerator
from .workloads.traces import DemandTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runspec import RunSpec

__all__ = ["run_oltp", "run_spec", "build_loaded_sysplex"]


def build_loaded_sysplex(config: SysplexConfig,
                         options: Optional[RunOptions] = None,
                         trace: Optional[DemandTrace] = None,
                         ) -> Tuple[Sysplex, OltpGenerator]:
    """Construct a sysplex with an OLTP workload attached (not yet run).

    Returns ``(sysplex, generator)`` so callers can inject failures or
    add systems before/while running.  ``options`` bundles the drive
    parameters; ``trace`` optionally replays a recorded demand trace.
    With ``options.tracing`` the transaction-level span tracer is
    attached (see :mod:`repro.trace`), making per-category overhead
    attribution available from ``collect()``.  The options' execution
    profile picks the kernel scheduler and the CF-command collapse mode
    (``"sweep"`` = calendar + collapse, ``"verify"`` = golden heapq).
    """
    opts = options if options is not None else RunOptions()
    plex = Sysplex(config, monitoring=opts.monitoring,
                   router_policy=opts.router_policy, tracing=opts.tracing,
                   scheduler=opts.resolved_scheduler(),
                   collapse=opts.resolved_collapse())
    gen = OltpGenerator(
        plex.sim,
        config.oltp,
        n_pages=config.db.n_pages,
        n_systems=config.n_systems,
        rng=plex.streams.stream("oltp"),
        router=plex.router,
        trace=trace,
        tracer=plex.tracer,
    )
    if opts.mode == "closed":
        terminals = opts.terminals_per_system
        if terminals is None:
            terminals = config.oltp.terminals_per_cpu * config.cpu.n_cpus
        gen.start_closed_loop(terminals)
    else:  # "open" — RunOptions validates the mode at construction
        gen.start_open_loop(opts.offered_tps_per_system)
    # steady-state setup: pools start warm with the hot working set, as
    # they would be after hours of production running
    hot = gen.sampler.hottest(config.db.buffer_pages)
    for inst in plex.instances.values():
        inst.buffers.prewarm(hot)
    return plex, gen


def run_oltp(config: SysplexConfig,
             duration: float = 1.0,
             warmup: float = 0.3,
             options: Optional[RunOptions] = None,
             label: Optional[str] = None,
             trace: Optional[DemandTrace] = None) -> RunResult:
    """Run one measured OLTP window and return its results.

    ``warmup`` simulated seconds are run and discarded (buffer pools fill,
    WLM utilization estimates settle), then ``duration`` seconds are
    measured.  With ``options.tracing`` the result's ``extras``
    additionally carries ``trace.*`` overhead-attribution keys (µs and %%
    of mean response per lifecycle category — see
    :mod:`repro.trace_analysis`).
    """
    opts = options if options is not None else RunOptions()
    plex, _gen = build_loaded_sysplex(config, options=opts, trace=trace)
    # The event loop allocates millions of short-lived cyclic objects
    # (process <-> generator frame <-> event); letting the cycle collector
    # run mid-simulation costs ~10% of wall time and can never free much,
    # since the calendar keeps everything reachable.  Suspend it for the
    # run and let the backlog collect afterwards.  No simulation state is
    # affected, so results are unchanged.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        plex.sim.run(until=warmup)
        plex.reset_measurement()
        plex.sim.run(until=warmup + duration)
    finally:
        if was_enabled:
            gc.enable()
    if label is None:
        sharing = "DS" if config.data_sharing and config.n_cfs else "noDS"
        label = (
            f"{config.n_systems}x{config.cpu.n_cpus}cpu {sharing} {opts.mode}"
        )
    return plex.collect(label)


def run_spec(spec: "RunSpec") -> RunResult:
    """Execute a declarative OLTP :class:`~repro.runspec.RunSpec`.

    This is the executor's default runner (the ``"oltp"`` alias): the
    spec's config, window, and options map 1:1 onto :func:`run_oltp`.
    """
    if spec.config is None:
        raise ValueError("an 'oltp' RunSpec needs a SysplexConfig")
    return run_oltp(
        spec.config,
        duration=spec.duration,
        warmup=spec.warmup,
        options=spec.options,
        label=spec.label,
    )
