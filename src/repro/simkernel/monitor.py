"""Measurement primitives: counters, tallies, and time-weighted averages.

These feed the experiment harness; every metric the benchmark tables print
comes from one of these three collectors.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List

import numpy as np

__all__ = ["Counter", "Tally", "TimeWeighted", "MetricSet"]


class Counter:
    """A monotonically increasing event count with rate support."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._marks: List[tuple] = []  # (time, count) checkpoints

    def add(self, n: int = 1) -> None:
        self.count += n

    def mark(self, now: float) -> None:
        """Checkpoint the current count at simulated time ``now``."""
        self._marks.append((now, self.count))

    def rate(self, start: float, end: float) -> float:
        """Events per second between two previously marked times."""
        if end <= start:
            return 0.0
        c0 = self._value_at(start)
        c1 = self._value_at(end)
        return (c1 - c0) / (end - start)

    def _value_at(self, t: float) -> int:
        # marks are appended at monotonically increasing simulated times,
        # so the latest mark at-or-before ``t`` is found by binary search
        # (a linear scan here made sweep-wide rate() queries O(n^2))
        i = bisect_right(self._marks, t, key=lambda m: m[0])
        return self._marks[i - 1][1] if i else 0


class Tally:
    """Collects individual observations (e.g. response times)."""

    def __init__(self, name: str = ""):
        self.name = name
        self._values: List[float] = []

    def record(self, value: float) -> None:
        self._values.append(value)

    @property
    def n(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else math.nan

    @property
    def std(self) -> float:
        return float(np.std(self._values)) if self._values else math.nan

    @property
    def maximum(self) -> float:
        return float(np.max(self._values)) if self._values else math.nan

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        if not self._values:
            return math.nan
        return float(np.percentile(self._values, q))

    def percentiles(self, qs) -> List[float]:
        """Several percentiles in one pass (one sort instead of len(qs)).

        Values are identical to calling :meth:`percentile` per ``q``;
        result collection (e.g. p50/p90/p95/p99 at window close) uses
        this batched form.
        """
        if not self._values:
            return [math.nan] * len(qs)
        return [float(v) for v in np.percentile(self._values, list(qs))]

    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def reset(self) -> None:
        self._values.clear()


class TimeWeighted:
    """Time-weighted average of a piecewise-constant quantity.

    Call :meth:`update` whenever the level changes; :meth:`mean` integrates
    level x dt over the observation window.
    """

    def __init__(self, sim, initial: float = 0.0, name: str = ""):
        self.sim = sim
        self.name = name
        self._level = float(initial)
        self._area = 0.0
        self._t0 = sim.now
        self._last = sim.now
        self._peak = float(initial)

    def update(self, level: float) -> None:
        now = self.sim.now
        self._area += self._level * (now - self._last)
        self._last = now
        self._level = float(level)
        self._peak = max(self._peak, self._level)

    def add(self, delta: float) -> None:
        self.update(self._level + delta)

    @property
    def level(self) -> float:
        return self._level

    @property
    def peak(self) -> float:
        return self._peak

    def mean(self) -> float:
        now = self.sim.now
        span = now - self._t0
        if span <= 0:
            return self._level
        return (self._area + self._level * (now - self._last)) / span

    def reset(self) -> None:
        self._area = 0.0
        self._t0 = self.sim.now
        self._last = self.sim.now
        self._peak = self._level


class MetricSet:
    """A named bag of collectors with lazy creation."""

    def __init__(self, sim):
        self.sim = sim
        self.counters: Dict[str, Counter] = {}
        self.tallies: Dict[str, Tally] = {}
        self.gauges: Dict[str, TimeWeighted] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def tally(self, name: str) -> Tally:
        t = self.tallies.get(name)
        if t is None:
            t = self.tallies[name] = Tally(name)
        return t

    def gauge(self, name: str, initial: float = 0.0) -> TimeWeighted:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = TimeWeighted(self.sim, initial, name)
        return g

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of headline values (counts, means) for reporting."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[f"{name}.count"] = c.count
        for name, t in self.tallies.items():
            if t.n:
                out[f"{name}.mean"] = t.mean
                out[f"{name}.n"] = t.n
        for name, g in self.gauges.items():
            out[f"{name}.mean"] = g.mean()
        return out
