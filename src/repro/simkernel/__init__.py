"""Discrete-event simulation kernel underpinning the Parallel Sysplex model."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
    NORMAL,
    URGENT,
)
from .monitor import Counter, MetricSet, Tally, TimeWeighted
from .random import RandomStreams, zipf_weights
from .resources import Container, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Counter",
    "Event",
    "Interrupt",
    "MetricSet",
    "NORMAL",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "URGENT",
    "zipf_weights",
]
