"""Discrete-event simulation kernel underpinning the Parallel Sysplex model."""

from .core import (
    AllOf,
    AnyOf,
    CalendarScheduler,
    Condition,
    Event,
    HeapScheduler,
    Interrupt,
    Process,
    Scheduler,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
    NORMAL,
    URGENT,
)
from .monitor import Counter, MetricSet, Tally, TimeWeighted
from .random import RandomStreams, zipf_weights
from .resources import Container, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarScheduler",
    "Condition",
    "Container",
    "Counter",
    "Event",
    "HeapScheduler",
    "Interrupt",
    "MetricSet",
    "NORMAL",
    "Process",
    "Scheduler",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "URGENT",
    "zipf_weights",
]
