"""Reproducible random streams.

Every stochastic component in the simulation draws from its own named
stream, spawned deterministically from one root seed.  Changing one
component's draw count therefore never perturbs another component's
sequence — runs are comparable across configurations, which the
benchmark harness relies on (common random numbers variance reduction).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "zipf_weights"]


class RandomStreams:
    """A registry of independent, deterministically seeded generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The same (root seed, name) pair always yields the same sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=tuple(name.encode("utf-8")),
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def zipf_weights(n: int, theta: float) -> np.ndarray:
    """Normalised Zipf(θ) popularity weights over ``n`` items.

    θ = 0 is uniform; θ around 0.8–1.0 matches commonly cited OLTP record
    access skew.  Returned array sums to 1.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if theta < 0:
        raise ValueError("theta must be >= 0")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-theta)
    w /= w.sum()
    return w
