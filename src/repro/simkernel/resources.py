"""Shared-resource primitives for the simulation kernel.

:class:`Resource`  — ``capacity`` identical servers with a FIFO (optionally
priority-ordered) wait queue; models CPU engines, channel paths, link
subchannels.

:class:`Store` — an unbounded FIFO of Python objects with blocking ``get``;
models message queues and work queues.

:class:`Container` — a continuous level (tokens) with blocking ``get``;
models buffer-pool free space and similar counted capacity.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional

from .core import _PENDING, _PROCESSED, _TRIGGERED, Event, Simulator, NORMAL

__all__ = ["Resource", "Request", "Store", "Container"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released automatically
    """

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int):
        # constructed once per CPU/channel/subchannel claim — the hottest
        # allocation after Timeout; initialize flat (no Event.__init__)
        self.sim = resource.sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = _PENDING
        self._defused = False
        self.resource = resource
        self.priority = priority
        self._key = None  # set by the resource when queued

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release if granted; withdraw from the queue if still waiting."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` interchangeable servers with a priority/FIFO queue."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: set = set()
        #: scalar holds (see claim): occupancy with no Request object
        self._held = 0
        self._waiters: list = []  # heap of (priority, seq, request)
        self._seq = 0
        # Time-weighted busy statistics.
        self._busy_area = 0.0
        self._last_change = sim.now

    # -- statistics ----------------------------------------------------------
    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += (len(self.users) + self._held) * (now - self._last_change)
        self._last_change = now

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity busy since time ``since``."""
        self._account()
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return self._busy_area / (span * self.capacity)

    def reset_stats(self) -> None:
        self._busy_area = 0.0
        self._last_change = self.sim.now

    def busy_area(self) -> float:
        """Cumulative busy engine-seconds (for windowed utilization)."""
        self._account()
        return self._busy_area

    @property
    def in_use(self) -> int:
        return len(self.users) + self._held

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # -- protocol --------------------------------------------------------------
    def request(self, priority: int = NORMAL) -> Request:
        """Claim one unit.  Yield the returned event to wait for the grant."""
        req = Request(self, priority)
        users = self.users
        if len(users) + self._held < self.capacity and not self._waiters:
            # immediate-grant fast path: _grant + Event.succeed flattened
            # (free capacity is the common case on CPU engines and links)
            sim = self.sim
            now = sim._now
            self._busy_area += (len(users) + self._held) * (now - self._last_change)
            self._last_change = now
            users.add(req)
            req._value = req
            req._state = _TRIGGERED
            sim._seq = seq = sim._seq + 1
            if sim._alt is None:
                heappush(sim._queue, (now, NORMAL, seq, req))
            else:
                sim._alt.push((now, NORMAL, seq, req))
        else:
            self._seq += 1
            req._key = (priority, self._seq)
            heappush(self._waiters, (priority, self._seq, req))
        return req

    def try_acquire(self, priority: int = NORMAL) -> Optional[Request]:
        """Claim one unit *now*, without scheduling any event.

        Returns a granted (already-processed) :class:`Request` when a unit
        is free and nobody is queued, else ``None`` (the caller should fall
        back to :meth:`request`).  Yielding the returned request from a
        process is a harmless no-op — the kernel feeds a processed event's
        value straight back — so fast paths can keep the same ``yield req``
        shape as the general path.  Release via ``req.cancel()`` as usual.
        """
        users = self.users
        if len(users) + self._held >= self.capacity or self._waiters:
            return None
        req = Request(self, priority)
        now = self.sim._now
        self._busy_area += (len(users) + self._held) * (now - self._last_change)
        self._last_change = now
        users.add(req)
        req._value = req
        req._state = _PROCESSED
        return req

    def claim(self) -> bool:
        """Claim one unit *now* with no Request object and no event.

        The cheapest acquisition: a free unit with nobody queued is held
        as a bare occupancy count — no allocation, no grant event, no
        ``yield``.  Returns False (claiming nothing) when the resource is
        busy or contended; the caller falls back to :meth:`request`.
        Release with :meth:`unclaim`.  Collapse-mode fast paths use this;
        the golden paths never do, so ``_held`` stays 0 there and every
        accounting expression reduces to the historical form.
        """
        users = self.users
        held = self._held
        if len(users) + held >= self.capacity or self._waiters:
            return False
        now = self.sim._now
        self._busy_area += (len(users) + held) * (now - self._last_change)
        self._last_change = now
        self._held = held + 1
        return True

    def unclaim(self) -> None:
        """Release one :meth:`claim` hold (grants to waiters if any)."""
        users = self.users
        now = self.sim._now
        n = len(users) + self._held
        self._busy_area += n * (now - self._last_change)
        self._last_change = now
        self._held -= 1
        if self._waiters and n - 1 < self.capacity:
            self._dispatch()

    def release(self, request: Request) -> None:
        """Return one unit previously granted to ``request``."""
        users = self.users
        if request not in users:
            return
        now = self.sim._now
        self._busy_area += (len(users) + self._held) * (now - self._last_change)
        self._last_change = now
        users.discard(request)
        if self._waiters and len(users) + self._held < self.capacity:
            self._dispatch()

    def _grant(self, req: Request) -> None:
        self._account()
        self.users.add(req)
        req.succeed(req)

    def _dispatch(self) -> None:
        while self._waiters and len(self.users) + self._held < self.capacity:
            _p, _s, req = heappop(self._waiters)
            if req._key is None:
                continue  # cancelled while queued
            req._key = False
            self._grant(req)

    def _cancel(self, req: Request) -> None:
        # ``release`` inlined (one membership test instead of two, no
        # extra frame): this runs once per engine/subchannel/CF-processor
        # hold, the third-hottest kernel path after Timeout and request.
        users = self.users
        if req in users:
            now = self.sim._now
            self._busy_area += (len(users) + self._held) * (now - self._last_change)
            self._last_change = now
            users.discard(req)
            if self._waiters and len(users) + self._held < self.capacity:
                self._dispatch()
        elif req._key:
            req._key = None  # lazily discarded by _dispatch


class Store:
    """Unbounded FIFO of items with blocking ``get``."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.items: List[Any] = []
        self._getters: List[Event] = []

    def put(self, item: Any) -> None:
        """Deposit an item (never blocks)."""
        while self._getters:
            getter = self._getters.pop(0)
            if getter.triggered:
                continue  # waiter withdrew (e.g. interrupted)
            getter.succeed(item)
            return
        self.items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item (FIFO)."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous level of tokens with blocking ``get``."""

    def __init__(self, sim: Simulator, init: float = 0.0, capacity: float = float("inf")):
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.level = float(init)
        self.capacity = float(capacity)
        self._getters: list = []  # (amount, event) FIFO

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("negative put")
        self.level = min(self.capacity, self.level + amount)
        self._drain()

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("negative get")
        ev = Event(self.sim)
        self._getters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        while self._getters:
            amount, ev = self._getters[0]
            if ev.triggered:
                self._getters.pop(0)
                continue
            if amount > self.level:
                break
            self.level -= amount
            self._getters.pop(0)
            ev.succeed(amount)
