"""Discrete-event simulation core.

A small, dependency-free kernel in the style of SimPy: a :class:`Simulator`
owns an event calendar and advances virtual time; model behaviour is
written as Python generator functions ("processes") that ``yield`` events
(timeouts, resource requests, other processes, conditions) and are resumed
when those events fire.

Time is a float in **seconds**; sub-microsecond resolution is fine because
events at equal times are ordered deterministically by (priority, sequence
number), so runs are exactly reproducible for a given seed.

The calendar itself is pluggable (see :class:`Scheduler`):

* :class:`HeapScheduler` — the classic binary heap.  O(log n) per
  operation, C-implemented, and the **golden** backend: every
  byte-identity guarantee in the repo is stated against its pop order.
* :class:`CalendarScheduler` — a bucketed calendar queue (Brown 1988)
  tuned to the observed inter-event gap.  Pushes append to an unsorted
  bucket (O(1)); a bucket is sorted once, when the clock reaches it, and
  same-instant cascades (succeed → resume → succeed at one timestamp)
  are insorted directly into the *draining* bucket so they never touch
  the tick heap at all.  Pop order is the exact ``(when, priority,
  seq)`` total order, so results are byte-identical to the heap backend;
  the win is pure constant-factor.

Either backend is selected per-:class:`Simulator` (``Simulator(
scheduler="calendar")``); model code never sees the difference.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional, Union

__all__ = [
    "Simulator",
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must fire before same-time NORMAL ones
#: (used internally for process resumption after interrupts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the calendar, value decided
_PROCESSED = 2  # callbacks ran


class SimulationError(Exception):
    """Raised for kernel-level misuse (e.g. yielding a non-event)."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* when given a value (and is
    scheduled), and *processed* once its callbacks have run.  Processes that
    yield the event are resumed with its value (or have its exception thrown
    into them if the event failed).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        # hot path: schedule at the current time without an _enqueue frame
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        if sim._alt is None:
            heappush(sim._queue, (sim._now, priority, seq, self))
        else:
            sim._alt.push((sim._now, priority, seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        if sim._alt is None:
            heappush(sim._queue, (sim._now, priority, seq, self))
        else:
            sim._alt.push((sim._now, priority, seq, self))
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so the kernel will not re-raise it."""
        self._defused = True
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            # Nobody waited for (or defused) a failed event: surface the error.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # the single most-constructed event type: initialize flat (no
        # Event.__init__ call) and schedule without an _enqueue frame
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        if sim._alt is None:
            heappush(sim._queue, (sim._now + delay, NORMAL, seq, self))
        else:
            sim._alt.push((sim._now + delay, NORMAL, seq, self))


class Process(Event):
    """Drives a generator, resuming it each time a yielded event fires.

    A process is itself an event: it succeeds with the generator's return
    value, or fails with any exception that escapes the generator.
    """

    __slots__ = ("_generator", "_target", "name", "_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: the bound resume callback, allocated once instead of on every
        #: suspension (callbacks.append(self._resume) re-binds each time)
        self._cb = self._resume
        if sim._process_watchers:
            for fn in sim._process_watchers:
                fn(self, "start")
        # Bootstrap: resume the generator at time now.
        init = Event(sim)
        init._ok = True
        init._state = _TRIGGERED
        init.callbacks.append(self._cb)
        sim._seq = seq = sim._seq + 1
        if sim._alt is None:
            heappush(sim._queue, (sim._now, URGENT, seq, init))
        else:
            sim._alt.push((sim._now, URGENT, seq, init))

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._state != _PENDING:
            return  # already finished; interrupt is a no-op
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev._state = _TRIGGERED
        ev.callbacks.append(self._cb)
        # Detach from whatever we were waiting on so that event no longer
        # resumes us when it fires.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._cb)
            except ValueError:
                pass
        self._target = None
        self.sim._enqueue(0.0, URGENT, ev)

    def _resume(self, event: Event) -> None:
        # the kernel's innermost loop: one call per process suspension;
        # locals bound up front keep the common send-and-suspend cycle
        # free of repeated attribute loads
        sim = self.sim
        sim._active_process = self
        gen = self._generator
        send = gen.send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event._defused = True
                    target = gen.throw(event._value)
            except StopIteration as exc:
                sim._active_process = None
                self._target = None
                if self._state == _PENDING:
                    if sim._elide_done and not self.callbacks:
                        # collapse mode, nobody waiting: the terminal event
                        # would pop with no callbacks, so skip the calendar
                        # and let any later ``yield process`` read the value
                        # straight off the processed event
                        self._value = exc.value
                        self.callbacks = None
                        self._state = _PROCESSED
                    else:
                        self.succeed(exc.value, priority=URGENT)
                    if sim._process_watchers:
                        for fn in sim._process_watchers:
                            fn(self, "end")
                return
            except BaseException as exc:
                sim._active_process = None
                self._target = None
                if self._state == _PENDING:
                    self.fail(exc, priority=URGENT)
                    if sim._process_watchers:
                        for fn in sim._process_watchers:
                            fn(self, "end")
                    return
                raise

            if isinstance(target, Event):
                if target.sim is not sim:
                    raise SimulationError(
                        "yielded event belongs to another simulator"
                    )
                if target._state != _PROCESSED:
                    target.callbacks.append(self._cb)
                    self._target = target
                    sim._active_process = None
                    return
                # Already over: feed its value straight back in.
                event = target
                continue

            err: BaseException = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            sim._active_process = None
            self._target = None
            try:
                gen.throw(err)
            except StopIteration:
                pass
            except BaseException as exc:
                err = exc
            else:
                # The generator caught the error and yielded again; it
                # cannot be resumed after an invalid yield, so shut it
                # down instead of leaving the process pending forever.
                gen.close()
            if self._state == _PENDING:
                self.fail(err, priority=URGENT)
                if sim._process_watchers:
                    for fn in sim._process_watchers:
                        fn(self, "end")
            return


class Condition(Event):
    """Waits for a boolean combination of events.

    Succeeds with a dict mapping each *fired* constituent event to its value.
    Fails as soon as any constituent fails.
    """

    __slots__ = ("_events", "_need", "_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event], need: int):
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes simulators")
        self._need = min(need, len(self._events)) if self._events else 0
        self._fired: list = []
        if self._need == 0:
            self.succeed({})
            return
        for ev in self._events:
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if len(self._fired) >= self._need:
            self.succeed({ev: ev._value for ev in self._fired})


class AnyOf(Condition):
    """Condition that fires when *any* constituent event fires."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, need=1)


class AllOf(Condition):
    """Condition that fires when *all* constituent events have fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = list(events)
        super().__init__(sim, events, need=len(events))


class Scheduler:
    """Interface for pluggable event-calendar backends.

    Items are ``(when, priority, seq, event)`` tuples; ``seq`` is unique
    and monotone, so the tuple order is total.  A backend must return
    items in exactly that order — the repo's byte-identity guarantees
    (equal spec hash ⇒ bit-identical payload, whichever backend ran it)
    depend on it, and ``tests/test_property_kernel.py`` cross-checks the
    implementations against each other on random schedules.
    """

    __slots__ = ()

    def push(self, item: tuple) -> None:
        raise NotImplementedError

    def pop_until(self, horizon: float) -> Optional[tuple]:
        """Remove and return the least item with ``when <= horizon``,
        or None (leaving the calendar untouched) if there is none."""
        raise NotImplementedError

    def peek_when(self) -> float:
        """Time of the least item, or +inf when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapScheduler(Scheduler):
    """The classic binary-heap calendar — the golden backend.

    :class:`Simulator` recognizes this class and aliases ``sim._queue``
    to :attr:`heap`, so the kernel's inlined push sites keep writing
    into the list with C ``heappush`` exactly as they always have.
    """

    __slots__ = ("heap",)

    def __init__(self):
        self.heap: list = []

    def push(self, item: tuple) -> None:
        heappush(self.heap, item)

    def pop_until(self, horizon: float) -> Optional[tuple]:
        heap = self.heap
        if heap and heap[0][0] <= horizon:
            return heappop(heap)
        return None

    def peek_when(self) -> float:
        return self.heap[0][0] if self.heap else float("inf")

    def __len__(self) -> int:
        return len(self.heap)


class CalendarScheduler(Scheduler):
    """A bucketed calendar queue tuned to observed inter-event gaps.

    Time is cut into buckets of ``width`` seconds.  Future items land in
    their bucket *unsorted* — a dict append, O(1) — and a min-heap of
    bucket ticks remembers which buckets exist.  When the clock reaches
    a bucket it is sorted once (timsort, on input that is cheap to sort)
    and drained by index.  Two properties make this faster than a heap
    for µs-dense simulations:

    * a push costs an append instead of an O(log n) sift against the
      whole calendar, and the sort at activation touches only the
      handful of items that share the bucket;
    * a same-instant cascade (succeed → resume → succeed … at one
      timestamp) is ``insort``-ed directly into the draining bucket at
      or after the drain cursor, so the whole chain drains without
      re-entering any heap.

    The bucket width adapts: activation occupancy is sampled and the
    width is re-tuned (and the calendar deterministically rebuilt) when
    buckets run too full or too empty.  Order is the exact ``(when,
    priority, seq)`` total order — tick is monotone in ``when``, buckets
    drain in tick order, in-bucket order is the tuple sort, and a
    cascade item can never sort below the drain cursor because its
    ``when`` is never in the past.
    """

    __slots__ = ("_width", "_inv", "_buckets", "_ticks", "_active",
                 "_atick", "_idx", "_occ_items", "_occ_rounds")

    #: Default bucket width (seconds).  The model's event density is
    #: µs-scale (CF service times ~5–50 µs), so 1 µs buckets start close
    #: to the ideal one-handful-per-bucket regime; adaptation does the
    #: fine tuning from observed occupancy.
    DEFAULT_WIDTH = 1e-6

    #: Re-tune after this many bucket activations.
    _SAMPLE = 512
    #: Occupancy band: rebuild wider/narrower outside [low, high].
    _OCC_LOW = 1.5
    _OCC_HIGH = 24.0
    #: Width bounds keep adaptation from running away on degenerate
    #: schedules (all-same-instant, or hour-long idle gaps).
    _MIN_WIDTH = 1e-9
    _MAX_WIDTH = 1e-2

    def __init__(self, width: float = DEFAULT_WIDTH):
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        self._width = width
        self._inv = 1.0 / width
        self._buckets: dict = {}   # tick -> unsorted list of items
        self._ticks: list = []     # min-heap of ticks present in _buckets
        self._active: list = []    # the draining (sorted) bucket
        self._atick = -1           # tick of _active
        self._idx = 0              # drain cursor into _active
        self._occ_items = 0
        self._occ_rounds = 0

    @property
    def width(self) -> float:
        """Current bucket width in seconds (adapts during a run)."""
        return self._width

    def push(self, item: tuple) -> None:
        when = item[0]
        try:
            tick = int(when * self._inv)
        except (OverflowError, ValueError):
            # when == +inf: a bucket of its own, after every finite tick
            tick = when
        if tick == self._atick:
            # same-instant cascade (or same-bucket future event) while
            # this bucket drains: insert at/after the cursor — it fires
            # in order without touching the tick heap
            insort(self._active, item, self._idx)
        else:
            bucket = self._buckets.get(tick)
            if bucket is None:
                self._buckets[tick] = [item]
                heappush(self._ticks, tick)
            else:
                bucket.append(item)

    def _activate(self) -> bool:
        """Sort and mount the next bucket; False when none remain."""
        if not self._ticks:
            self._active = []
            self._atick = -1
            self._idx = 0
            return False
        if self._occ_rounds >= self._SAMPLE:
            self._retune()
        tick = heappop(self._ticks)
        bucket = self._buckets.pop(tick)
        bucket.sort()
        self._active = bucket
        self._atick = tick
        self._idx = 0
        self._occ_items += len(bucket)
        self._occ_rounds += 1
        return True

    def _retune(self) -> None:
        """Adapt the bucket width to the observed occupancy and rebuild.

        Deterministic: depends only on the event history, and the
        rebuild preserves the total order exactly (it only re-partitions
        the same items).  Called between buckets, when the active one is
        exhausted.
        """
        avg = self._occ_items / self._occ_rounds
        self._occ_items = 0
        self._occ_rounds = 0
        if avg > self._OCC_HIGH:
            width = max(self._width / 8.0, self._MIN_WIDTH)
        elif avg < self._OCC_LOW:
            width = min(self._width * 8.0, self._MAX_WIDTH)
        else:
            return
        if width == self._width:
            return
        items = self._active[self._idx:]
        for bucket in self._buckets.values():
            items.extend(bucket)
        self._width = width
        self._inv = 1.0 / width
        self._buckets = {}
        self._ticks = []
        self._active = []
        self._atick = -1
        self._idx = 0
        for item in items:
            self.push(item)

    def pop_until(self, horizon: float) -> Optional[tuple]:
        active, idx = self._active, self._idx
        if idx >= len(active):
            if not self._activate():
                return None
            active, idx = self._active, 0
        item = active[idx]
        if item[0] > horizon:
            return None
        self._idx = idx + 1
        return item

    def peek_when(self) -> float:
        active, idx = self._active, self._idx
        if idx >= len(active):
            if not self._activate():
                return float("inf")
            active, idx = self._active, 0
        return active[idx][0]

    def __len__(self) -> int:
        # computed on demand so the hot push/pop paths carry no counter
        n = len(self._active) - self._idx
        for bucket in self._buckets.values():
            n += len(bucket)
        return n


#: Names accepted by ``Simulator(scheduler=...)`` and, downstream, by
#: ``RunOptions.scheduler``.
SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


class Simulator:
    """Owns the event calendar and the simulated clock.

    ``scheduler`` selects the calendar backend: a name from
    :data:`SCHEDULERS` (``"heap"`` — the golden default — or
    ``"calendar"``) or a ready :class:`Scheduler` instance.  Both
    built-in backends produce bit-identical runs; see the module
    docstring for when each wins.
    """

    def __init__(self, scheduler: Union[str, Scheduler] = "heap"):
        if isinstance(scheduler, str):
            try:
                scheduler = SCHEDULERS[scheduler]()
            except KeyError:
                raise ValueError(
                    f"unknown scheduler {scheduler!r}; "
                    f"expected one of {sorted(SCHEDULERS)}"
                ) from None
        self.scheduler: Scheduler = scheduler
        if type(scheduler) is HeapScheduler:
            # the golden fast path: push sites inline C heappush into
            # this list and skip the Scheduler interface entirely
            self._queue: Optional[list] = scheduler.heap
            self._alt: Optional[Scheduler] = None
        else:
            self._queue = None
            self._alt = scheduler
        self._now: float = 0.0
        self._seq = 0
        #: collapse mode (set by the model layer, never by the kernel):
        #: a finishing process nobody waits on skips its terminal event.
        #: Off by default — the golden schedule keeps every terminal.
        self._elide_done: bool = False
        self._active_process: Optional[Process] = None
        #: observers of the process lifecycle (see add_process_watcher);
        #: empty by default so the hot resume path pays one falsy check
        self._process_watchers: list = []
        #: calendar events processed so far (the model layer's cost metric:
        #: fewer events for the same simulated outcome = a faster run)
        self.events_processed: int = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def add_process_watcher(
        self, fn: Callable[[Process, str], None]
    ) -> None:
        """Observe the process lifecycle: ``fn(process, event)`` is called
        with ``"start"`` when a process is registered and ``"end"`` when its
        generator finishes (normally or with an error).

        Watchers must be passive — they run inside the kernel and must not
        schedule or trigger events.  The trace facility uses this to close
        dangling spans when an instrumented process dies mid-span.
        """
        self._process_watchers.append(fn)

    # -- event construction --------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, triggered manually via succeed()/fail()."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """An event firing at *absolute* time ``when`` (>= now).

        Unlike ``timeout(when - now)``, the target time is used exactly as
        given — no ``now + delay`` float round trip — so a caller collapsing
        a chain of relative timeouts can land on the bit-identical instants
        the chain would have produced.
        """
        if when < self._now:
            raise ValueError("cannot schedule in the past")
        ev = Event(self)
        ev._value = value
        ev._state = _TRIGGERED
        self._seq = seq = self._seq + 1
        if self._alt is None:
            heappush(self._queue, (when, NORMAL, seq, ev))
        else:
            self._alt.push((when, NORMAL, seq, ev))
        return ev

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a running process."""
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` (a plain callable, not a process) at absolute time."""
        if when < self._now:
            raise ValueError("cannot schedule in the past")
        ev = Event(self)
        ev._ok = True
        ev._state = _TRIGGERED
        ev.callbacks.append(lambda _e: fn())
        self._enqueue(when - self._now, NORMAL, ev)
        return ev

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        self._seq = seq = self._seq + 1
        if self._alt is None:
            heappush(self._queue, (self._now + delay, priority, seq, event))
        else:
            self._alt.push((self._now + delay, priority, seq, event))

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callable after ``delay`` seconds."""
        self.call_at(self._now + delay, fn)

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.  Raises IndexError when empty."""
        if self._alt is None:
            when, _prio, _seq, event = heappop(self._queue)
        else:
            item = self._alt.pop_until(float("inf"))
            if item is None:
                raise IndexError("step from an empty calendar")
            when, _prio, _seq, event = item
        self._now = when
        self.events_processed += 1
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._alt is None:
            return self._queue[0][0] if self._queue else float("inf")
        return self._alt.peek_when()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the calendar empties, ``until`` seconds pass, or an
        ``until`` event fires (its value is returned)."""
        stop_value: list = []
        if isinstance(until, Event):
            if until._state == _PROCESSED:
                return until._value

            def _stop(ev: Event) -> None:
                stop_value.append(ev._value)
                if not ev._ok:
                    ev._defused = True
                raise StopSimulation()

            until.callbacks.append(_stop)
            horizon = float("inf")
        elif until is None:
            horizon = float("inf")
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError("cannot run into the past")

        # The event loop proper.  This is `step()` inlined — pop, advance
        # the clock, run callbacks — with the calendar state bound to
        # locals: two fewer Python frames and ~6 fewer attribute loads per
        # event, which is the bulk of the kernel's per-event cost.  One
        # loop body per backend: the heap loop pops the raw list, the
        # calendar loop drains the active bucket by cursor (one
        # `_activate` call per bucket, not per event), and any custom
        # Scheduler gets the generic `pop_until` loop.
        count = 0
        alt = self._alt
        try:
            if alt is None:
                queue = self._queue
                pop = heappop
                while queue and queue[0][0] <= horizon:
                    when, _prio, _seq, event = pop(queue)
                    self._now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = _PROCESSED
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        # Nobody waited for (or defused) this failed event:
                        # surface the error (see Event._run_callbacks).
                        raise event._value
            elif type(alt) is CalendarScheduler:
                activate = alt._activate
                while True:
                    # re-read each iteration: callbacks push into (and
                    # _activate replaces) the active bucket
                    active = alt._active
                    idx = alt._idx
                    if idx >= len(active):
                        if not activate():
                            break
                        active = alt._active
                        idx = 0
                    item = active[idx]
                    when = item[0]
                    if when > horizon:
                        break
                    alt._idx = idx + 1
                    self._now = when
                    count += 1
                    event = item[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = _PROCESSED
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        raise event._value
            else:
                pop_until = alt.pop_until
                while True:
                    item = pop_until(horizon)
                    if item is None:
                        break
                    self._now = item[0]
                    count += 1
                    event = item[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = _PROCESSED
                    for cb in callbacks:
                        cb(event)
                    if not event._ok and not event._defused:
                        raise event._value
        except StopSimulation:
            val = stop_value[0]
            if isinstance(until, Event) and not until._ok:
                raise val
            return val
        finally:
            # flushed once per run() call, not per event, to keep the
            # loop free of per-event attribute stores
            self.events_processed += count
        if horizon != float("inf"):
            self._now = horizon
        if isinstance(until, Event):
            raise SimulationError("simulation ended before 'until' event fired")
        return None
